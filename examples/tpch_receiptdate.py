"""Scenario: the paper's TPC-H experiment (§V-H) — implicitly clustered dates.

TPC-H's lineitem table derives shipdate, commitdate and receiptdate from
orderdate with small bounded offsets, so a table sorted on shipdate leaves
receiptdate *near-sorted*: almost every row is slightly out of place (huge
K) but nothing travels far (tiny L). An index on receiptdate built while
scanning in shipdate order can exploit this.

Run:  python examples/tpch_receiptdate.py
"""

from repro import CostModel, Meter, SWAREConfig, make_baseline_btree, make_sa_btree
from repro.sortedness import measure_sortedness
from repro.workloads.tpch import (
    generate_lineitem_dates,
    receiptdate_keys,
    sorted_by_shipdate,
)


def main() -> None:
    n = 30_000
    dates = sorted_by_shipdate(generate_lineitem_dates(n, seed=1))
    for column in ("shipdate", "commitdate", "receiptdate"):
        values = getattr(dates, column)
        report = measure_sortedness(values[:6000])
        print(
            f"{column:12s}: K={report.k_fraction:6.1%}  L={report.l_fraction:6.2%}  "
            f"({report.degree()})"
        )
    print("(paper reports K=96.67%, L=0.1% for receiptdate at 6M rows)\n")

    # Index receiptdate (disambiguated to unique keys) in shipdate order.
    keys = receiptdate_keys(n, seed=1)
    model = CostModel()
    costs = {}
    for name, build in (
        ("B+-tree", lambda m: make_baseline_btree(meter=m)),
        (
            "SA B+-tree",
            lambda m: make_sa_btree(
                SWAREConfig(buffer_capacity=max(100, n // 200), page_size=50),
                meter=m,
            ),
        ),
    ):
        meter = Meter()
        index = build(meter)
        for key in keys:
            index.insert(key, key)
        # Point lookups on a sample of rows.
        for key in keys[:2000]:
            assert index.get(key) == key
        costs[name] = meter.nanos(model)
        print(f"{name:11s}: simulated workload cost {costs[name] / 1e6:8.1f} ms")

    print(
        f"\nSA B+-tree speedup with a buffer of only 0.5% of the data: "
        f"{costs['B+-tree'] / costs['SA B+-tree']:.2f}x"
    )


if __name__ == "__main__":
    main()
