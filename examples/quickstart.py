"""Quickstart: build a sortedness-aware B+-tree and see what it does.

Run:  python examples/quickstart.py
"""

from repro import CostModel, Meter, SWAREConfig, make_baseline_btree, make_sa_btree
from repro.sortedness import generate_kl_keys, measure_sortedness


def main() -> None:
    n = 50_000
    # A near-sorted stream: 10% of the entries are out of order, displaced
    # by at most 5% of the collection size (the paper's "near-sorted").
    keys = generate_kl_keys(n, k_fraction=0.10, l_fraction=0.05, seed=42)
    report = measure_sortedness(keys)
    print(
        f"ingesting {n} keys, measured sortedness: "
        f"K={report.k_fraction:.1%}, L={report.l_fraction:.1%} ({report.degree()})"
    )

    # SA B+-tree: a SWARE buffer sized at 1% of the data over an 80:20 tree.
    meter = Meter()
    index = make_sa_btree(
        SWAREConfig(buffer_capacity=n // 100, page_size=50), meter=meter
    )
    for key in keys:
        index.insert(key, key * 2 + 1)

    # Reads see buffered and flushed data alike.
    assert index.get(keys[0]) == keys[0] * 2 + 1
    assert index.get(-1) is None
    window = index.range_query(1000, 1020)
    print(f"range [1000, 1020] -> {len(window)} entries")

    # How did the ingestion go?
    stats = index.stats
    print(
        f"bulk-loaded {stats.bulk_loaded_entries} entries, "
        f"top-inserted {stats.top_inserted_entries} "
        f"({stats.bulk_load_fraction:.1%} via bulk loading), "
        f"{stats.flushes} buffer flushes"
    )

    # Compare simulated ingestion cost against a textbook B+-tree.
    model = CostModel()
    sa_cost = meter.nanos(model)
    base_meter = Meter()
    baseline = make_baseline_btree(meter=base_meter)
    for key in keys:
        baseline.insert(key, key * 2 + 1)
    base_cost = base_meter.nanos(model)
    print(
        f"simulated ingestion: SA B+-tree {sa_cost / 1e6:.1f} ms vs "
        f"B+-tree {base_cost / 1e6:.1f} ms -> {base_cost / sa_cost:.1f}x speedup"
    )


if __name__ == "__main__":
    main()
