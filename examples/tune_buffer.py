"""Scenario: tuning a sortedness-aware index for your workload.

Sweeps the SWARE-buffer's main knobs (size, flush fraction, query-sorting
threshold) over a configurable workload and prints a tuning report — the
same exploration §V-D of the paper performs, as a reusable tool.

Run:  python examples/tune_buffer.py [k_fraction] [l_fraction] [read_fraction]
"""

import sys

from repro import CostModel, Meter, SWAREConfig, make_baseline_btree, make_sa_btree
from repro.sortedness import generate_kl_keys
from repro.workloads.spec import MixedWorkloadSpec


def run_mixed(index, operations) -> None:
    from repro.workloads.spec import INSERT, LOOKUP

    for op, a, b in operations:
        if op == INSERT:
            index.insert(a, b)
        elif op == LOOKUP:
            index.get(a)


def simulated_ms(build, operations, model) -> float:
    meter = Meter()
    index = build(meter)
    run_mixed(index, operations)
    return meter.nanos(model) / 1e6


def main() -> None:
    k_fraction = float(sys.argv[1]) if len(sys.argv) > 1 else 0.10
    l_fraction = float(sys.argv[2]) if len(sys.argv) > 2 else 0.05
    read_fraction = float(sys.argv[3]) if len(sys.argv) > 3 else 0.50
    n = 25_000

    print(
        f"workload: n={n}, K={k_fraction:.0%}, L={l_fraction:.0%}, "
        f"{read_fraction:.0%} reads\n"
    )
    keys = generate_kl_keys(n, k_fraction, l_fraction, seed=3)
    operations = MixedWorkloadSpec(
        keys=tuple(keys), read_fraction=read_fraction, seed=3
    ).materialize()
    model = CostModel()
    baseline_ms = simulated_ms(lambda m: make_baseline_btree(meter=m), operations, model)
    print(f"baseline B+-tree: {baseline_ms:.1f} ms simulated\n")

    print("buffer size sweep (flush=50%, Q-S=10%):")
    best = (None, 0.0)
    for fraction in (0.005, 0.01, 0.02, 0.05):
        capacity = max(100, int(n * fraction))
        config = SWAREConfig(buffer_capacity=capacity, page_size=min(50, capacity // 2))
        ms = simulated_ms(lambda m: make_sa_btree(config, meter=m), operations, model)
        print(f"  buffer={fraction:5.1%} ({capacity:5d} entries): "
              f"{ms:8.1f} ms  speedup {baseline_ms / ms:4.2f}x")
        if baseline_ms / ms > best[1]:
            best = (f"buffer={fraction:.1%}", baseline_ms / ms)

    print("\nflush fraction sweep (buffer=1%):")
    for flush in (0.25, 0.50, 0.75):
        config = SWAREConfig(
            buffer_capacity=max(100, n // 100), page_size=50, flush_fraction=flush
        )
        ms = simulated_ms(lambda m: make_sa_btree(config, meter=m), operations, model)
        print(f"  flush={flush:.0%}: {ms:8.1f} ms  speedup {baseline_ms / ms:4.2f}x")

    print("\nquery-sorting threshold sweep (buffer=1%):")
    for threshold in (0.01, 0.05, 0.10, 0.25, 1.00):
        config = SWAREConfig(
            buffer_capacity=max(100, n // 100),
            page_size=50,
            query_sorting_threshold=threshold,
        )
        ms = simulated_ms(lambda m: make_sa_btree(config, meter=m), operations, model)
        label = "off" if threshold >= 1.0 else f"{threshold:.0%}"
        print(f"  Q-S={label:>3s}: {ms:8.1f} ms  speedup {baseline_ms / ms:4.2f}x")

    print(f"\nbest configuration seen: {best[0]} ({best[1]:.2f}x)")


if __name__ == "__main__":
    main()
