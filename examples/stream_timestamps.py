"""Scenario: indexing an event stream whose timestamps arrive near-sorted.

The paper's intro motivates sortedness-aware indexing with "the timestamp
attribute of an incoming data stream that has a few data packets arriving
out of order due to network congestion". This example simulates exactly
that: events are generated in timestamp order, each is delayed by a small
random network latency, and the index ingests them in *arrival* order.

Run:  python examples/stream_timestamps.py
"""

import heapq
import random

from repro import CostModel, Meter, SWAREConfig, make_baseline_btree, make_sa_btree
from repro.sortedness import measure_sortedness


def simulate_event_stream(n: int, mean_delay_us: int = 60, seed: int = 7):
    """Yield (timestamp_us, payload) in network-arrival order.

    Events are emitted every microsecond; each suffers an exponential
    network delay, so a burst of congestion reorders nearby packets.
    """
    rng = random.Random(seed)
    in_flight = []
    for ts in range(n):
        delay = int(rng.expovariate(1.0 / mean_delay_us))
        heapq.heappush(in_flight, (ts + delay, ts))
        # Deliver everything whose arrival time has passed.
        while in_flight and in_flight[0][0] <= ts:
            _, event_ts = heapq.heappop(in_flight)
            yield event_ts, f"event-{event_ts}"
    while in_flight:
        _, event_ts = heapq.heappop(in_flight)
        yield event_ts, f"event-{event_ts}"


def main() -> None:
    n = 40_000
    events = list(simulate_event_stream(n))
    timestamps = [ts for ts, _ in events]
    report = measure_sortedness(timestamps[:8000])
    print(
        f"{n} events; arrival-order sortedness: K={report.k_fraction:.1%}, "
        f"L={report.l_fraction:.2%} ({report.degree()})"
    )

    model = CostModel()
    results = {}
    for name, build in (
        ("B+-tree", lambda m: make_baseline_btree(meter=m)),
        (
            "SA B+-tree",
            lambda m: make_sa_btree(
                SWAREConfig(buffer_capacity=n // 100, page_size=50), meter=m
            ),
        ),
    ):
        meter = Meter()
        index = build(meter)
        for ts, payload in events:
            index.insert(ts, payload)
        # A monitoring query: the last minute of events.
        recent = index.range_query(n - 60, n - 1)
        results[name] = meter.nanos(model)
        print(
            f"{name:11s}: simulated ingest+query {results[name] / 1e6:8.1f} ms, "
            f"recent-window query returned {len(recent)} events"
        )

    print(f"speedup from sortedness-awareness: {results['B+-tree'] / results['SA B+-tree']:.1f}x")


if __name__ == "__main__":
    main()
