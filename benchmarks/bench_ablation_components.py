"""Ablations of the individual SWARE design elements (§III)."""

from repro.bench.experiments import ablation


def test_design_element_ablations(run_experiment):
    result = run_experiment("ablation_components", ablation.run, n=12_000)
    tail = result.data["tail-leaf node accesses/insert (sorted)"]
    assert tail["with tail pointer"] < tail["without"] / 2

    search = result.data["search probe steps (uniform keys)"]
    assert search["interpolation"] < search["binary"]

    sort = result.data["sort work, near-sorted buffer"]
    assert (
        sort["(K,L)-adaptive (est. comparisons)"]
        < sort["stable sort (est. comparisons)"]
    )

    flush = result.data["top-inserts (K=10%, L=5%)"]
    assert flush["partial flush (50%)"] <= flush["full flush (95%)"]
