"""Fig. 10 — SA B+-tree vs B+-tree speedup over mixed workloads."""

from repro.bench.experiments import fig10


def test_fig10_mixed_workload_speedup(run_experiment):
    result = run_experiment("fig10_mixed_ratio", fig10.run, n=20_000)
    # Paper shape: sorted write-heavy is the peak; speedup decays with reads;
    # scrambled never beats the baseline in memory.
    sorted_wh = result.data[("sorted", 0.10)]
    sorted_rh = result.data[("sorted", 0.90)]
    assert sorted_wh > 4.0
    assert sorted_wh > sorted_rh > 1.0
    assert result.data[("near-sorted", 0.10)] > result.data[("near-sorted", 0.90)]
    assert result.data[("scrambled", 0.50)] < 1.0
