"""Fig. 16 — query-driven sorting threshold sweep."""

from repro.bench.experiments import fig16


def test_fig16_query_sorting_threshold(run_experiment):
    result = run_experiment("fig16_query_sorting", fig16.run, n=12_000)
    # Query sorting must not catastrophically hurt any configuration, and
    # the tuned 10% threshold should be at least as good as disabling it
    # for some mid-sortedness point.
    k_mid = 0.10
    with_qs = result.data[(0.10, k_mid)]
    without = result.data[(1.00, k_mid)]
    assert with_qs >= without * 0.9
    for (threshold, k), value in result.data.items():
        assert value > 0.5, (threshold, k)
