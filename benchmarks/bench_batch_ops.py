"""Batch-operation throughput bench (per-op replay vs batch entry points).

Regenerates the numbers behind ``results/BENCH_batch_ops.json`` — the
artifact the CI perf gate compares against. ``python -m repro bench-batch
--json results/BENCH_batch_ops.json`` produces the committed baseline;
this pytest wrapper runs the same experiment at a REPRO_SCALE-able size
and sanity-checks that the batch paths actually outrun the per-op loop.
"""

from repro.bench.experiments import batch_ops

N = 50_000


def test_batch_ops(run_experiment):
    result = run_experiment("batch_ops", batch_ops.run, n=N)
    # The wall-clock margin is machine-dependent; just require that the
    # batch paths are not slower than per-op replay on the raw tree.
    assert result.speedups["btree"] > 1.0
    assert result.speedups["sa_btree"] > 1.0
    for gauge, value in result.throughputs.items():
        assert value > 0, gauge
