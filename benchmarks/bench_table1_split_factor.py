"""Table I — leaf splits vs split ratio, normalized to 50:50."""

from repro.bench.experiments import table1


def test_table1_split_factor(run_experiment):
    result = run_experiment("table1_split_factor", table1.run, n=20_000)
    # Near-sorted data: higher split ratios reduce splits monotonically-ish.
    assert result.data[(0.9, "K=2%, L=1%")] < result.data[(0.5, "K=2%, L=1%")]
    assert result.data[(0.8, "K=2%, L=1%")] < 1.0
    # Scrambled-ish data: aggressive ratios backfire (>= the 50:50 count).
    assert result.data[(0.9, "K=100%, L=50%")] > result.data[(0.6, "K=100%, L=50%")]
