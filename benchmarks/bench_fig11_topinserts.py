"""Fig. 11 — top-inserts vs bulk loads as K grows."""

from repro.bench.experiments import fig11


def test_fig11_topinsert_bulkload_split(run_experiment):
    result = run_experiment("fig11_topinserts", fig11.run, n=20_000)
    # Fully sorted data is 100% bulk loaded; top-inserts grow with K.
    assert result.data[0.0]["top_inserts"] == 0
    near = result.data[0.10]
    assert near["top_inserts"] / (near["top_inserts"] + near["bulk_loaded"]) < 0.15
    tops = [result.data[k]["top_inserts"] for k in sorted(result.data)]
    assert tops == sorted(tops)
