"""Shared helpers for the per-figure benchmark modules.

Every benchmark runs its experiment once under ``benchmark.pedantic`` (the
experiments are deterministic, multi-run timing adds nothing), prints the
regenerated table/figure, and writes it under ``results/`` so
EXPERIMENTS.md can reference the artifacts.

``REPRO_SCALE`` scales workload sizes (default 1.0; the defaults keep the
full suite in the minutes range).
"""

from __future__ import annotations

import pytest

from repro.bench.report import save_report


@pytest.fixture
def run_experiment(benchmark, capsys):
    """Run an experiment function once, print + persist its report."""

    def _run(name: str, fn, *args, **kwargs):
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
        path = save_report(name, result.report)
        with capsys.disabled():
            print(f"\n{result.report}\n[saved to {path}]")
        return result

    return _run
