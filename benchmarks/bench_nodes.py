"""Gapped-node layout micro-bench (search, batch descent, split counts).

Regenerates the numbers behind ``results/BENCH_nodes.json`` — the
artifact the CI nodes perf gate compares against. ``python -m repro
bench-nodes --json results/BENCH_nodes.json`` produces the committed
baseline; this pytest wrapper runs the same experiment at a
REPRO_SCALE-able size and sanity-checks the acceptance-critical ratios.
"""

from repro.bench.experiments import nodes

N = 30_000


def test_nodes(run_experiment):
    result = run_experiment("nodes", nodes.run, n=N, repeats=2)
    for gauge, value in result.throughputs.items():
        assert value > 0, gauge
    # Gap absorption + fission must collapse structural reorganizations on
    # near-sorted ingest (the acceptance criterion is >= 5x; full-scale
    # runs measure ~30-45x).
    assert result.splits["near_sorted"]["reduction_x"] >= 5.0
    # Batched descent must beat the per-op loop on the same gapped tree.
    assert (
        result.throughputs["nodes_batched_insert_ops_per_s"]
        > result.throughputs["nodes_perop_insert_ops_per_s"]
    )
    assert (
        result.throughputs["nodes_batched_lookup_ops_per_s"]
        > result.throughputs["nodes_perop_lookup_ops_per_s"]
    )
