"""Fig. 13 — latency breakdown of SA B+-tree ingestion and queries."""

from repro.bench.experiments import fig13


def test_fig13_latency_breakdown(run_experiment):
    result = run_experiment("fig13_breakdown", fig13.run, n=20_000)

    def share(breakdown, bucket):
        total = sum(breakdown.values()) or 1.0
        return breakdown.get(bucket, 0.0) / total

    # Ingestion: no sorting/top-inserts when fully sorted; top-insert time
    # escalates as sortedness decreases.
    assert share(result.ingest_breakdown["sorted"], "sort") == 0.0
    assert share(result.ingest_breakdown["sorted"], "top_insert") == 0.0
    assert (
        share(result.ingest_breakdown["less-sorted"], "top_insert")
        > share(result.ingest_breakdown["near-sorted"], "top_insert")
    )
    # Queries: tree search dominates in every configuration.
    for label, breakdown in result.query_breakdown.items():
        assert share(breakdown, "tree_search") > 0.5, label
