"""Fig. 9 — regenerate the sortedness workload family."""

from repro.bench.experiments import fig09


def test_fig09_workload_family(run_experiment):
    result = run_experiment("fig09_workloads", fig09.run, n=2000)
    # Sanity: the generated degrees must bracket the figure's intent.
    assert result.data["(a) sorted"]["measured_k"] == 0.0
    assert result.data["(f) scrambled"]["measured_k"] > 0.5
