"""Fig. 18 — on-disk mixed workloads (bufferpool fits internal nodes only)."""

from repro.bench.experiments import fig18


def test_fig18_ondisk_speedup(run_experiment):
    result = run_experiment("fig18_ondisk", fig18.run, n=12_000)
    # Paper: on disk SA B+-tree ALWAYS outperforms the B+-tree — even for
    # scrambled data and read-heavy mixes.
    for (label, ratio), value in result.data.items():
        assert value >= 1.0, (label, ratio, value)
    # And sorted write-heavy remains the peak.
    assert result.data[("sorted", 0.10)] >= result.data[("scrambled", 0.10)]
