"""Fig. 20 — SA Bε-tree vs Bε-tree, normalized against scrambled Bε."""

from repro.bench.experiments import fig20


def test_fig20_sa_betree(run_experiment):
    result = run_experiment("fig20_betree", fig20.run, n=10_000)
    for ratio in (0.10, 0.50, 0.90):
        # SA Bε amplifies sortedness well beyond the plain Bε-tree...
        assert result.data[(ratio, "S", "sa_betree")] > result.data[(ratio, "S", "betree")]
        assert result.data[(ratio, "N", "sa_betree")] > 1.0
        # ...and the plain Bε-tree itself gains a little from sortedness.
        assert result.data[(ratio, "S", "betree")] >= result.data[(ratio, "L", "betree")]
    # Write-heavy sorted is the global peak.
    assert result.data[(0.10, "S", "sa_betree")] == max(
        v for (r, d, i), v in result.data.items() if i == "sa_betree"
    )
