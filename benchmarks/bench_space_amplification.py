"""Space utilization — the intro's 'up to 48% reduction' claim."""

from repro.bench.experiments import space


def test_space_utilization(run_experiment):
    result = run_experiment("space_amplification", space.run, n=20_000)
    # Sorted ingestion: SA saves a large fraction of leaf slots (~48% in
    # the paper; bulk fill 95% vs half-full right-deep leaves).
    assert result.data["sorted"]["savings"] > 0.30
    assert result.data["near-sorted"]["savings"] > 0.20
    # SA's average leaf fill approaches the 95% bulk-load target.
    assert result.data["sorted"]["sa_fill"] > 0.85
    # Logical vs physical occupancy: physical slots include the gapped
    # layout's sentinel gap slots, so physical fill never exceeds logical
    # fill and the identity logical = physical - gaps holds exactly.
    for preset in ("sorted", "near-sorted"):
        row = result.data[preset]
        assert row["sa_physical_slots"] >= row["sa_slots"]
        assert row["sa_physical_fill"] <= row["sa_fill"] + 1e-9
        assert row["sa_physical_slots"] - row["sa_gap_slots"] == row["sa_logical_entries"]
        assert row["sa_logical_entries"] > 0
