"""Space utilization — the intro's 'up to 48% reduction' claim."""

from repro.bench.experiments import space


def test_space_utilization(run_experiment):
    result = run_experiment("space_amplification", space.run, n=20_000)
    # Sorted ingestion: SA saves a large fraction of leaf slots (~48% in
    # the paper; bulk fill 95% vs half-full right-deep leaves).
    assert result.data["sorted"]["savings"] > 0.30
    assert result.data["near-sorted"]["savings"] > 0.20
    # SA's average leaf fill approaches the 95% bulk-load target.
    assert result.data["sorted"]["sa_fill"] > 0.85
