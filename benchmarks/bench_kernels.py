"""Kernel backend bench (numpy-vectorized vs pure-Python hot paths).

Regenerates the numbers behind ``results/BENCH_kernels.json`` — the
artifact the CI kernel perf gate compares against. ``python -m repro
bench-kernels --json results/BENCH_kernels.json`` produces the committed
baseline; this pytest wrapper runs the same experiment at a
REPRO_SCALE-able size and sanity-checks the acceptance-critical speedups
whenever the numpy backend is importable.
"""

from repro import kernels
from repro.bench.experiments import kernels as kernels_exp

N = 50_000
METRIC_N = 20_000


def test_kernels(run_experiment):
    result = run_experiment(
        "kernels", kernels_exp.run, n=N, metric_n=METRIC_N, repeats=2
    )
    for gauge, value in result.throughputs.items():
        assert value > 0, gauge
    if not kernels.numpy_available():
        assert result.backends == ["python"]
        assert not result.speedups
        return
    assert result.backends == ["python", "numpy"]
    # The acceptance-critical ratios (wall-clock, so keep margins loose at
    # bench scale; the committed full-scale baseline documents the real ones).
    assert result.speedups["bloom_add_many"] > 2.0
    assert result.speedups["buffer_add_to_flush"] > 1.2
    assert result.speedups["hash_splitmix64"] > 1.0
