"""Fig. 15 — SWARE-buffer size vs insert/lookup performance."""

from repro.bench.experiments import fig15


def test_fig15_buffer_size_sweep(run_experiment):
    result = run_experiment("fig15_buffer_size", fig15.run, n=20_000)
    # Even the smallest buffer wins ingestion; the largest wins at least as
    # much; lookups stay within a modest overhead of the baseline.
    fractions = sorted(result.data)
    assert result.data[fractions[0]]["insert_speedup"] > 1.5
    assert (
        result.data[fractions[-1]]["insert_speedup"]
        >= result.data[fractions[0]]["insert_speedup"] * 0.95
    )
    for values in result.data.values():
        assert values["lookup_speedup"] > 0.75
