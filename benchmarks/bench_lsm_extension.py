"""Extension: LSM-trees and sortedness (§VI of the paper)."""

from repro.bench.experiments import lsm_sortedness


def test_lsm_sortedness_extension(run_experiment):
    result = run_experiment("lsm_extension", lsm_sortedness.run, n=16_000)
    # (i) Plain LSM pays the same write amplification regardless of
    # sortedness — the paper's complaint.
    plain = [result.data[(p, "LSM")] for p in ("sorted", "near-sorted", "scrambled")]
    assert max(plain) / min(plain) < 1.3
    # (ii) Skip-merge rescues fully sorted ingestion only.
    assert result.data[("sorted", "LSM+skip")] < result.data[("sorted", "LSM")] / 2
    assert result.data[("near-sorted", "LSM+skip")] > result.data[("sorted", "LSM+skip")] * 1.5
    # (iii) SWARE + skip-merge extends the benefit to near-sorted data.
    assert (
        result.data[("near-sorted", "SWARE(LSM+skip)")]
        < result.data[("near-sorted", "LSM")] / 2
    )
    # And degrades gracefully for scrambled data (no catastrophic blowup).
    assert result.data[("scrambled", "SWARE(LSM+skip)")] < result.data[("scrambled", "LSM")] * 1.6
