"""Fig. 14 — K×L speedup grids across read ratios and buffer sizes."""

from repro.bench.experiments import fig14


def test_fig14_kl_speedup_grid(run_experiment):
    result = run_experiment("fig14_kl_grid", fig14.run, n=8_000)
    panel_a = "(a) 10%R buffer=1%"
    panel_c = "(c) 90%R buffer=1%"
    panel_b = "(b) 50%R buffer=1%"
    panel_d = "(d) 50%R buffer=5%"
    # Fully sorted (K=0) is the peak of every panel and constant across L.
    assert result.data[(panel_a, 0.0, 0.01)] > result.data[(panel_a, 1.0, 0.50)]
    # More reads -> less benefit.
    assert result.data[(panel_a, 0.0, 0.01)] > result.data[(panel_c, 0.0, 0.01)]
    # A larger buffer helps the mid-grid.
    assert result.data[(panel_d, 0.10, 0.05)] >= result.data[(panel_b, 0.10, 0.05)] * 0.9
