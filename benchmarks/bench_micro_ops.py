"""Wall-clock micro-benchmarks (sanity companion to the simulated clock).

These time the actual Python implementation with pytest-benchmark. Absolute
numbers are interpreter-bound (DESIGN.md substitution #1); they exist to
confirm the structural savings also show up in real time where interpreter
overhead does not drown them (e.g. sorted ingestion skips per-entry Bloom
filter updates and tree descents entirely).
"""

from repro.bench.experiments import common
from repro.storage.costmodel import Meter
from repro.workloads.spec import value_for

N = 10_000


def _ingest(factory, keys):
    index = factory(Meter())
    insert = index.insert
    for key in keys:
        insert(key, value_for(key))
    return index


def test_baseline_btree_insert_sorted(benchmark):
    keys = common.keys_for(N, 0.0, 0.0)
    benchmark.pedantic(
        _ingest, args=(common.baseline_btree_factory(), keys), rounds=3, iterations=1
    )


def test_sa_btree_insert_sorted(benchmark):
    keys = common.keys_for(N, 0.0, 0.0)
    factory = common.sa_btree_factory(common.buffer_config(N, 0.01))
    benchmark.pedantic(_ingest, args=(factory, keys), rounds=3, iterations=1)


def test_baseline_btree_insert_near_sorted(benchmark):
    keys = common.keys_for(N, 0.10, 0.05)
    benchmark.pedantic(
        _ingest, args=(common.baseline_btree_factory(), keys), rounds=3, iterations=1
    )


def test_sa_btree_insert_near_sorted(benchmark):
    keys = common.keys_for(N, 0.10, 0.05)
    factory = common.sa_btree_factory(common.buffer_config(N, 0.01))
    benchmark.pedantic(_ingest, args=(factory, keys), rounds=3, iterations=1)


def test_baseline_btree_lookup(benchmark):
    keys = common.keys_for(N, 0.10, 0.05)
    index = _ingest(common.baseline_btree_factory(), keys)
    lookups = list(common.raw_spec(keys, n_lookups=2000).lookup_operations())

    def _lookups():
        get = index.get
        for _, key, _b in lookups:
            get(key)

    benchmark.pedantic(_lookups, rounds=3, iterations=1)


def test_sa_btree_lookup(benchmark):
    keys = common.keys_for(N, 0.10, 0.05)
    index = _ingest(common.sa_btree_factory(common.buffer_config(N, 0.01)), keys)
    lookups = list(common.raw_spec(keys, n_lookups=2000).lookup_operations())

    def _lookups():
        get = index.get
        for _, key, _b in lookups:
            get(key)

    benchmark.pedantic(_lookups, rounds=3, iterations=1)
