"""Fig. 17 — Bloom-filter ablation (naive / global-only / full)."""

from repro.bench.experiments import fig17


def test_fig17_bloom_filter_ablation(run_experiment):
    result = run_experiment("fig17_bloom", fig17.run, n=16_000)
    # (a) BFs add a small ingestion cost: full SA inserts cost no less than
    # the naive variant.
    for k in (0.10, 0.50, 1.00):
        assert (
            result.data[("SA full", k)]["insert_ns"]
            >= result.data[("naive SA", k)]["insert_ns"] * 0.98
        )
    # (b) BFs pay off on lookups once sortedness drops (an unsorted tail
    # exists to skip).
    k = 1.00
    assert (
        result.data[("SA full", k)]["lookup_ns"]
        <= result.data[("naive SA", k)]["lookup_ns"]
    )
