"""§V-D — Zonemaps-at-query-time ablation."""

from repro.bench.experiments import zonemap_ablation


def test_zonemap_ablation(run_experiment):
    result = run_experiment("zonemap_ablation", zonemap_ablation.run, n=16_000)
    # Skipping the read-path Zonemaps must cost, not help.
    assert result.data["penalty"] > 0.02
