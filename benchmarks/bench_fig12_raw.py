"""Fig. 12 — raw ingestion, lookup, mixed and range-scan performance."""

from repro.bench.experiments import fig12


def test_fig12_raw_performance(run_experiment):
    result = run_experiment("fig12_raw", fig12.run, n=20_000)
    # (a) SA wins ingestion whenever any sortedness exists.
    for k in (0.0, 0.02, 0.10, 0.20):
        assert result.insert_latency[k]["sa"] < result.insert_latency[k]["base"]
    # (b) lookups pay a bounded overhead with a full buffer.
    for k, values in result.lookup_latency.items():
        assert values["sa"] < values["base"] * 1.6
    # (c) mixed 50:50 still favors SA for sorted/near-sorted data.
    assert result.mixed_latency[0.0]["sa"] < result.mixed_latency[0.0]["base"]
    assert result.mixed_latency[0.10]["sa"] < result.mixed_latency[0.10]["base"]
    # (d) range scans stay competitive. The paper's smallest selectivity is
    # 50K entries; at reduced scale sub-1% scans touch a handful of entries
    # and the fixed buffer-merge overhead dominates, so the tight bound
    # applies from 1% up and a loose one below.
    for sel, values in result.scan_latency.items():
        bound = 1.25 if sel >= 0.02 else 2.5
        assert values["sa"] < values["base"] * bound, (sel, values)
    # §V-B tail latencies: SA stays close to the baseline at P99 for random
    # scans (the paper sees <=1% at 50K-entry scans; at our 200-entry scans
    # the fixed buffer-merge cost is a visibly larger share of the tail)
    # and wins on recently-inserted targets.
    random_p99 = result.scan_percentiles[("random", "sa")]["p99"]
    base_p99 = result.scan_percentiles[("random", "base")]["p99"]
    assert random_p99 < base_p99 * 1.25
    assert (
        result.scan_percentiles[("recent", "sa")]["mean"]
        < result.scan_percentiles[("recent", "base")]["mean"] * 1.05
    )
