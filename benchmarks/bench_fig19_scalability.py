"""Fig. 19 + Table II — scalability with data size."""

from repro.bench.experiments import fig19


def test_fig19_scalability(run_experiment):
    result = run_experiment("fig19_scalability", fig19.run)
    sizes = sorted(result.proportional)
    # (a) proportional K/L/buffer: SA wins at every size.
    for n in sizes:
        assert result.proportional[n]["speedup"] > 1.0
    # (b) fixed L and buffer: SA wins and the buffered fraction of the data
    # shrinks as N grows (Table II), as do pages scanned per query.
    for n in sizes:
        assert result.fixed_l[n]["speedup"] > 1.0
    fractions = [result.table2[n]["buffer_fraction"] for n in sizes]
    assert fractions == sorted(fractions, reverse=True)
    pages = [result.table2[n]["pages_scanned_per_query"] for n in sizes]
    assert pages[-1] <= pages[0]
