"""Table III — TPC-H receiptdate ingestion across buffer sizes/ratios."""

from repro.bench.experiments import table3


def test_table3_tpch(run_experiment):
    result = run_experiment("table3_tpch", table3.run, n=40_000)
    # The synthetic column reproduces the paper's phenomenon: very high K
    # with L an order of magnitude lower (paper: K=96.67%, L=0.1%; dbgen's
    # receipt = ship + U[1,30] rule yields slightly larger L at our density).
    assert result.measured_k > 0.5
    assert result.measured_l < 0.10
    assert result.measured_l < result.measured_k / 5
    # SA B+-tree wins at every cell for write-leaning mixes and stays close
    # to (or above) parity even at 90% reads.
    for (ratio, fraction), value in result.data.items():
        if ratio <= 0.5:
            assert value > 1.0, (ratio, fraction, value)
        else:
            assert value > 0.85, (ratio, fraction, value)
    # A larger buffer helps the write-heavy mix.
    fractions = sorted({f for _, f in result.data})
    assert result.data[(0.10, fractions[-1])] >= result.data[(0.10, fractions[0])]
