"""§V-D — buffer flush-threshold sweep (25% / 50% / 75%)."""

from repro.bench.experiments import flush_threshold


def test_flush_threshold_sweep(run_experiment):
    result = run_experiment("flush_threshold", flush_threshold.run, n=12_000)
    # All thresholds stay in a sane band; 50% should be competitive with
    # (within 10% of) the best mean, matching the paper's default choice.
    means = {
        f: sum(result.data[(f, label)] for label in
               ("sorted", "near-sorted", "less-sorted", "scrambled")) / 4
        for f in (0.25, 0.50, 0.75)
    }
    assert means[0.50] >= max(means.values()) * 0.9
