"""Fig. 21 — the high-L/low-K extreme (K=5%, L=95%)."""

from repro.bench.experiments import fig21


def test_fig21_high_l_low_k(run_experiment):
    result = run_experiment("fig21_high_l", fig21.run, n=16_000)
    # SA B+-tree wins the write-heavy mixes even at L=95%, and a larger
    # buffer captures more of the overlap.
    assert result.data[(0.10, 0.01)] > 1.0
    assert result.data[(0.10, 0.05)] >= result.data[(0.10, 0.01)] * 0.95
    for (ratio, fraction), value in result.data.items():
        assert value > 0.7, (ratio, fraction, value)
