"""The SWARE-buffer (§IV of the paper).

An in-memory buffer that intercepts every index insert, detects and exploits
arrival sortedness, and periodically *partially* flushes so the underlying
tree can ingest as much as possible through opportunistic bulk loading.

Layout (logical; see Fig. 8 of the paper)::

    [ main sorted section | query-sorted blocks ... | unsorted tail ]
      ^previous_boundary                              ^most recent data

* The **main sorted section** holds the entries retained (and re-sorted) by
  the previous flush; while the buffer has no blocks and no tail, in-order
  appends extend it directly (the paper's ``previous_boundary`` "may only
  move rightward as long as entries are inserted in fully sorted order").
* The first out-of-order insert starts the **unsorted tail**; every later
  insert lands there. The tail carries a global Bloom filter, per-page Bloom
  filters and per-page Zonemaps.
* When the tail grows past the query-sorting threshold, the next read query
  freezes it into a **query-sorted block** (§IV-C, inspired by cracking /
  adaptive merging).

``last_sorted_zone`` — the page-aligned prefix of the main section that does
not overlap any later buffer entry — is derived from a running minimum of
everything after the main section (the paper maintains it with the page
Zonemaps; a running min over appends is the same quantity at lower constant
cost, and the page Zonemaps still serve the read path).

Entries are 4-tuples ``(key, seq, value, is_tombstone)``; ``seq`` is a
buffer-wide arrival counter so recency survives re-sorting (sorting is by
``(key, seq)``, making every sort stable and the rightmost duplicate the
newest).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro import kernels
from repro.core.config import SWAREConfig
from repro.core.stats import SWAREStats
from repro.core.zonemap import PageZonemaps, Zonemap
from repro.filters.bloom import BloomFilter
from repro.filters.hashing import SharedHash
from repro.search.interpolation import interpolation_search
from repro.sortedness.klsort import kl_sort
from repro.sortedness.metrics import RunningSortednessEstimate
from repro.errors import KLSortCapacityError
from repro.obs import DEFAULT_SIZE_BUCKETS, Observability, current_obs
from repro.storage.costmodel import NULL_METER, Meter

#: Lookup outcomes.
MISS = 0
HIT = 1
TOMBSTONE = 2

Entry = Tuple[int, int, object, bool]  # (key, seq, value, is_tombstone)


@dataclass
class FlushBatch:
    """The outcome of one flush cycle, handed to the index wrapper.

    ``entries`` are sorted by (key, seq) and may contain duplicates and
    tombstones; the wrapper dedups (newest wins) and splits them into a
    bulk-loadable part and top-inserts.
    """

    entries: List[Entry]
    sorted_without_effort: bool  #: True when no sort was needed (cases 1-3)
    sort_algorithm: Optional[str] = None  #: "kl" / "stable" when a sort ran
    retained: int = 0


@dataclass
class _SortedBlock:
    """A query-sorted block: entries sorted by (key, seq) + a key column."""

    entries: List[Entry]
    keys: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.keys:
            self.keys = [entry[0] for entry in self.entries]


class SWAREBuffer:
    """See module docstring."""

    def __init__(
        self,
        config: Optional[SWAREConfig] = None,
        meter: Optional[Meter] = None,
        stats: Optional[SWAREStats] = None,
        obs: Optional[Observability] = None,
    ):
        self.config = config or SWAREConfig()
        self.meter = meter if meter is not None else NULL_METER
        self.stats = stats if stats is not None else SWAREStats()
        self.obs = obs if obs is not None else current_obs()
        cfg = self.config
        self._main: List[Entry] = []
        self._main_keys: List[int] = []
        self._blocks: List[_SortedBlock] = []
        self._tail: List[Entry] = []
        self._seq = 0
        # Running min over every entry *after* the main section; this is the
        # quantity the paper's Zonemap overlap test maintains for the
        # last_sorted_zone marker.
        self._min_after_main: Optional[int] = None
        self.zonemap = Zonemap()  # whole-buffer range
        self.page_zonemaps = PageZonemaps(cfg.page_size)
        self.global_bf: Optional[BloomFilter] = (
            BloomFilter(cfg.buffer_capacity, cfg.bits_per_entry, cfg.hash_family)
            if cfg.enable_global_bf
            else None
        )
        self._page_bfs: List[BloomFilter] = []
        # Set when the tail is known sorted (used by range queries to avoid
        # re-sorting, reset by any new tail append), plus the lazily built
        # key column of that sorted tail for searchsorted range probes.
        self._tail_sorted_cache: Optional[List[Entry]] = None
        self._tail_keys_cache = None
        self.kl_estimate = RunningSortednessEstimate()

    # ------------------------------------------------------------------
    # sizing
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._main) + sum(len(b.entries) for b in self._blocks) + len(self._tail)

    @property
    def capacity(self) -> int:
        return self.config.buffer_capacity

    @property
    def is_full(self) -> bool:
        return len(self) >= self.config.buffer_capacity

    @property
    def is_empty(self) -> bool:
        return len(self) == 0

    @property
    def sorted_section_size(self) -> int:
        """Size of the main sorted section (the ``previous_boundary``)."""
        return len(self._main)

    @property
    def tail_size(self) -> int:
        return len(self._tail)

    @property
    def n_blocks(self) -> int:
        return len(self._blocks)

    @property
    def last_sorted_zone(self) -> int:
        """Page-aligned non-overlapping prefix of the main section (entries)."""
        if not self._main:
            return 0
        if self._min_after_main is None:
            prefix = len(self._main)
        else:
            prefix = bisect_right(self._main_keys, self._min_after_main)
        page = self.config.page_size
        return (prefix // page) * page

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def add(self, key: int, value: object, tombstone: bool = False) -> None:
        """Append an entry (the caller checks :attr:`is_full` afterwards)."""
        self.meter.charge("buffer_append")
        self._seq += 1
        entry: Entry = (key, self._seq, value, tombstone)
        self.zonemap.update(key)
        self.kl_estimate.observe(key)

        in_order = (
            not self._blocks
            and not self._tail
            and (not self._main_keys or key >= self._main_keys[-1])
        )
        if in_order:
            self._main.append(entry)
            self._main_keys.append(key)
            return

        position = len(self._tail)
        self._tail.append(entry)
        self._tail_sorted_cache = None
        self._tail_keys_cache = None
        # The page-Zonemap update is upkeep already priced into
        # ``buffer_append`` (like the whole-buffer Zonemap above); charging a
        # ``zonemap_check`` here would double-bill relative to the in-order
        # path, which maintains the same aggregates for free.
        self.page_zonemaps.observe(position, key)
        if self._min_after_main is None or key < self._min_after_main:
            self._min_after_main = key
        cfg = self.config
        # One shared base hash feeds both filter levels (hash sharing).
        shared: Optional[SharedHash] = (
            SharedHash(key, cfg.hash_family)
            if self.global_bf is not None or cfg.enable_page_bf
            else None
        )
        if self.global_bf is not None:
            self.global_bf.add_shared(shared)
            self.meter.charge("bf_add")
        if cfg.enable_page_bf:
            page = position // cfg.page_size
            while len(self._page_bfs) <= page:
                self._page_bfs.append(
                    BloomFilter(
                        cfg.page_size,
                        cfg.bits_per_entry,
                        cfg.hash_family,
                        rotation=17,
                    )
                )
            self._page_bfs[page].add_shared(shared)
            self.meter.charge("bf_add")

    def add_many(self, pairs: Sequence[Tuple[int, object]]) -> None:
        """Append a chunk of ``(key, value)`` upserts in arrival order.

        Observably identical to calling :meth:`add` per pair — same entries,
        ``seq`` numbering, component layout, Zonemap/Bloom state and meter
        charges — but amortized: one sortedness check partitions the chunk
        into an in-order prefix (extends the main section directly) and a
        tail remainder, which pays a single ``_tail_sorted_cache``
        invalidation, per-page min/max Zonemap passes, one batch of shared
        base hashes feeding both Bloom levels, and word-level filter updates.

        The caller is responsible for capacity: like :meth:`add`, this does
        not flush — :class:`~repro.core.sware.SortednessAwareIndex.put_many`
        chunks its input by the remaining capacity so flush boundaries match
        the sequential path exactly.
        """
        n = len(pairs)
        if n == 0:
            return
        self.meter.charge("buffer_append", n)
        keys = [key for key, _value in pairs]
        observe = self.kl_estimate.observe
        for key in keys:
            observe(key)
        self.zonemap.update(min(keys))
        self.zonemap.update(max(keys))

        seq = self._seq
        split = 0
        if not self._blocks and not self._tail:
            # The longest prefix that continues the in-order run of the main
            # section; everything after it starts the tail.
            last = self._main_keys[-1] if self._main_keys else None
            split = kernels.nondecreasing_prefix_len(keys, last)
            if split:
                main = self._main
                for key, value in pairs[:split]:
                    seq += 1
                    main.append((key, seq, value, False))
                self._main_keys.extend(keys[:split])

        if split < n:
            rest_keys = keys[split:]
            start = len(self._tail)
            tail = self._tail
            for key, value in pairs[split:]:
                seq += 1
                tail.append((key, seq, value, False))
            self._tail_sorted_cache = None
            self._tail_keys_cache = None
            self.page_zonemaps.observe_many(start, rest_keys)
            lowest = min(rest_keys)
            if self._min_after_main is None or lowest < self._min_after_main:
                self._min_after_main = lowest
            cfg = self.config
            bases = (
                kernels.shared_bases(rest_keys, cfg.hash_family)
                if self.global_bf is not None or cfg.enable_page_bf
                else None
            )
            if self.global_bf is not None:
                self.global_bf.add_many(rest_keys, bases=bases)
                self.meter.charge("bf_add", len(rest_keys))
            if cfg.enable_page_bf:
                page_size = cfg.page_size
                idx = 0
                total = len(rest_keys)
                while idx < total:
                    position = start + idx
                    page = position // page_size
                    take = min(total - idx, (page + 1) * page_size - position)
                    while len(self._page_bfs) <= page:
                        self._page_bfs.append(
                            BloomFilter(
                                page_size,
                                cfg.bits_per_entry,
                                cfg.hash_family,
                                rotation=17,
                            )
                        )
                    self._page_bfs[page].add_many(
                        rest_keys[idx : idx + take], bases=bases[idx : idx + take]
                    )
                    self.meter.charge("bf_add", take)
                    idx += take
        self._seq = seq

    # ------------------------------------------------------------------
    # flushing
    # ------------------------------------------------------------------
    def prepare_flush(self) -> FlushBatch:
        """Run one flush cycle; returns the batch to push into the tree.

        Implements the §IV-A strategy: flush the non-overlapping sorted
        prefix when one exists (no sorting effort), otherwise sort the whole
        buffer and flush ``flush_fraction``. The retained remainder is always
        left fully sorted at the front of the buffer.
        """
        page = self.config.page_size
        total = len(self)
        target = int(self.config.buffer_capacity * self.config.flush_fraction)
        target = max(page, (target // page) * page)
        half = target  # paper language: "half the pages" at the default 50%

        fully_sorted = not self._blocks and not self._tail
        sort_algorithm: Optional[str] = None

        if fully_sorted:
            flush_n = min(half, len(self._main))
            flushed = self._main[:flush_n]
            retained_main = self._main[flush_n:]
            retained = self._merge_retained(retained_main)
            effortless = True
        else:
            prefix = self.last_sorted_zone
            if prefix > 0:
                flush_n = min(prefix, half)
                flushed = self._main[:flush_n]
                retained_main = self._main[flush_n:]
                retained = self._merge_retained(retained_main)
                effortless = True
            else:
                # No flushable prefix: sort everything, flush the fraction.
                merged, sort_algorithm = self._sort_everything()
                flush_n = min(half, len(merged))
                flushed = merged[:flush_n]
                retained = merged[flush_n:]
                effortless = False

        self.stats.flushes += 1
        if effortless:
            self.stats.flushes_without_sort += 1
        else:
            self.stats.flushes_with_sort += 1

        self._reset_after_flush(retained)
        return FlushBatch(
            entries=flushed,
            sorted_without_effort=effortless,
            sort_algorithm=sort_algorithm,
            retained=total - len(flushed),
        )

    def drain(self) -> FlushBatch:
        """Flush *everything* (used by ``flush_all`` and at shutdown)."""
        merged, sort_algorithm = self._sort_everything()
        effortless = sort_algorithm is None
        self._reset_after_flush([])
        return FlushBatch(
            entries=merged,
            sorted_without_effort=effortless,
            sort_algorithm=sort_algorithm,
            retained=0,
        )

    def _sort_tail(self) -> Tuple[List[Entry], Optional[str]]:
        """Sort the unsorted tail, choosing the algorithm per §IV-C."""
        if not self._tail:
            return [], None
        if self._tail_sorted_cache is not None:
            return self._tail_sorted_cache, None
        n = len(self._tail)
        cfg = self.config
        estimate = self.kl_estimate
        use_kl = (
            estimate.k_fraction < cfg.kl_k_threshold
            or estimate.l_fraction < cfg.kl_l_threshold
        )
        algorithm = "stable"
        if use_kl:
            capacity = max(16, int((cfg.kl_k_threshold + cfg.kl_l_threshold) * n) * 2)
            try:
                sorted_tail = kl_sort(self._tail, key=lambda e: (e[0], e[1]), capacity=capacity)
                algorithm = "kl"
                self.stats.kl_sorts += 1
                # O(n log(K+L)) comparisons.
                self.meter.charge(
                    "sort_comparison", n * max(1, (capacity).bit_length())
                )
            except KLSortCapacityError:
                sorted_tail = kernels.sort_tail_entries(self._tail)
                self.stats.stable_sorts += 1
                self.meter.charge("sort_comparison", n * max(1, n.bit_length()))
        else:
            sorted_tail = kernels.sort_tail_entries(self._tail)
            self.stats.stable_sorts += 1
            self.meter.charge("sort_comparison", n * max(1, n.bit_length()))
        self.stats.sorted_entries += n
        self._tail_sorted_cache = sorted_tail
        obs = self.obs
        if obs.enabled:
            obs.event("buffer.tail_sort", n=n, algorithm=algorithm)
        obs.observe_hist("buffer_sort_entries", n, buckets=DEFAULT_SIZE_BUCKETS)
        return sorted_tail, algorithm

    def _merge_streams(self, streams: List[List[Entry]]) -> List[Entry]:
        """Stable k-way merge of (key, seq)-sorted entry lists."""
        streams = [s for s in streams if s]
        if not streams:
            return []
        if len(streams) == 1:
            return list(streams[0])
        merged = kernels.merge_entry_streams(streams)
        self.meter.charge("merge_step", len(merged))
        return merged

    def _merge_retained(self, retained_main: List[Entry]) -> List[Entry]:
        """Sort-merge the retained main rest, the blocks, and the tail."""
        sorted_tail, _ = self._sort_tail()
        streams = [retained_main] + [b.entries for b in self._blocks] + [sorted_tail]
        return self._merge_streams(streams)

    def _sort_everything(self) -> Tuple[List[Entry], Optional[str]]:
        sorted_tail, algorithm = self._sort_tail()
        streams = [self._main] + [b.entries for b in self._blocks] + [sorted_tail]
        return self._merge_streams(streams), algorithm

    def _reset_after_flush(self, retained: List[Entry]) -> None:
        self._main = retained
        self._main_keys = [entry[0] for entry in retained]
        self._blocks = []
        self._tail = []
        self._tail_sorted_cache = None
        self._tail_keys_cache = None
        self._min_after_main = None
        self.page_zonemaps.reset()
        if self.global_bf is not None:
            self.global_bf.clear()
        self._page_bfs = []
        self.kl_estimate.reset()
        self.zonemap.reset()
        for entry in retained:
            self.zonemap.update(entry[0])

    # ------------------------------------------------------------------
    # query-driven sorting (§IV-C)
    # ------------------------------------------------------------------
    def should_query_sort(self) -> bool:
        threshold = self.config.query_sorting_threshold
        if threshold >= 1.0:
            return False
        return len(self._tail) >= max(1, int(threshold * self.config.buffer_capacity))

    def query_sort(self) -> None:
        """Freeze the unsorted tail into a new query-sorted block."""
        if not self._tail:
            return
        if self.obs.enabled:
            self.obs.event(
                "buffer.query_sort", tail=len(self._tail), blocks=len(self._blocks)
            )
        sorted_tail, _ = self._sort_tail()
        self._blocks.append(_SortedBlock(entries=sorted_tail))
        self.stats.query_sorts += 1
        self._tail = []
        self._tail_sorted_cache = None
        self._tail_keys_cache = None
        self.page_zonemaps.reset()
        if self.global_bf is not None:
            self.global_bf.clear()
        self._page_bfs = []
        # _min_after_main is unchanged: the same keys remain after main.

    # ------------------------------------------------------------------
    # point lookups (§IV-B, Fig. 6/7)
    # ------------------------------------------------------------------
    def lookup(self, key: int) -> Tuple[int, object]:
        """Search the buffer for ``key``; returns (state, value).

        State is :data:`HIT`, :data:`TOMBSTONE` or :data:`MISS`. The newest
        version wins, so the scan order is: unsorted tail (newest pages
        first), query-sorted blocks (newest first), main sorted section.
        """
        if self.config.enable_read_zonemaps:
            self.meter.charge("zonemap_check")
            if not self.zonemap.may_contain(key):
                self.stats.buffer_skips_by_zonemap += 1
                return MISS, None

        state, value = self._search_tail(key)
        if state != MISS:
            return state, value

        for block in reversed(self._blocks):
            idx = self._search_sorted(block.keys, key)
            if idx >= 0:
                entry = block.entries[idx]
                return (TOMBSTONE if entry[3] else HIT), entry[2]

        idx = self._search_sorted(self._main_keys, key)
        if idx >= 0:
            entry = self._main[idx]
            return (TOMBSTONE if entry[3] else HIT), entry[2]
        return MISS, None

    def _search_sorted(self, keys: List[int], key: int) -> int:
        if not keys:
            return -1
        steps: List[int] = []
        idx = interpolation_search(keys, key, steps=steps)
        # Even an immediate out-of-range rejection reads the component's
        # boundary keys, so a probe costs at least one step.
        self.meter.charge("interp_step", max(steps[0], 1) if steps else 1)
        return idx

    def _search_tail(self, key: int) -> Tuple[int, object]:
        """Scan the unsorted tail, gated by the BFs and page Zonemaps."""
        tail = self._tail
        if not tail:
            return MISS, None
        cfg = self.config
        shared: Optional[SharedHash] = None
        global_bf_approved = False
        if self.global_bf is not None:
            self.meter.charge("bf_probe")
            shared = SharedHash(key, cfg.hash_family)
            if not self.global_bf.may_contain_shared(shared):
                self.stats.global_bf_negatives += 1
                if self.obs.enabled:
                    self.obs.event("buffer.global_bf_skip", key=key)
                return MISS, None
            global_bf_approved = True

        page_size = cfg.page_size
        last_page = (len(tail) - 1) // page_size
        for page in range(last_page, -1, -1):
            if cfg.enable_read_zonemaps:
                self.meter.charge("zonemap_check")
                if not self.page_zonemaps.page_may_contain(page, key):
                    self.stats.zonemap_page_skips += 1
                    if self.obs.enabled:
                        self.obs.event("buffer.zonemap_page_skip", key=key, page=page)
                    continue
            page_bf_approved = False
            if cfg.enable_page_bf and page < len(self._page_bfs):
                self.meter.charge("bf_probe")
                if shared is None:
                    shared = SharedHash(key, cfg.hash_family)
                if not self._page_bfs[page].may_contain_shared(shared):
                    self.stats.page_bf_negatives += 1
                    continue
                page_bf_approved = True
            start = page * page_size
            stop = min(start + page_size, len(tail))
            self.stats.unsorted_pages_scanned += 1
            self.meter.charge("scan_entry", stop - start)
            for position in range(stop - 1, start - 1, -1):
                entry = tail[position]
                if entry[0] == key:
                    return (TOMBSTONE if entry[3] else HIT), entry[2]
            if page_bf_approved:
                # Page BF said "maybe" but the page scan found nothing.
                self.stats.page_bf_false_positives += 1
        if global_bf_approved:
            # The global BF approved the probe, yet no tail page held the
            # key: one observed false positive (the FPR numerator).
            self.stats.global_bf_false_positives += 1
        return MISS, None

    # ------------------------------------------------------------------
    # range scans (§IV-C "Supporting Range Queries")
    # ------------------------------------------------------------------
    def range_entries(self, lo: int, hi: int) -> List[Entry]:
        """All buffered entries with lo <= key <= hi, sorted by (key, seq).

        Sorts the tail first (cached until the next out-of-order insert, as
        the paper's dedicated flag prescribes) and merges the qualifying
        slices of every component.
        """
        self.meter.charge("zonemap_check")
        if self.is_empty or not self.zonemap.overlaps(lo, hi):
            return []
        sorted_tail, _ = self._sort_tail()
        streams: List[List[Entry]] = []
        for entries, keys in self._iter_sorted_components(sorted_tail):
            left, right = kernels.searchsorted_range(keys, lo, hi)
            if left < right:
                streams.append(entries[left:right])
            self.meter.charge("interp_step", 2)
        return self._merge_streams(streams)

    def _iter_sorted_components(self, sorted_tail: List[Entry]):
        yield self._main, self._main_keys
        for block in self._blocks:
            yield block.entries, block.keys
        if sorted_tail:
            if self._tail_keys_cache is None:
                self._tail_keys_cache = kernels.key_column(sorted_tail)
            yield sorted_tail, self._tail_keys_cache

    # ------------------------------------------------------------------
    # introspection / debugging
    # ------------------------------------------------------------------
    def all_entries(self) -> List[Entry]:
        """Every buffered entry in arrival-agnostic component order."""
        out = list(self._main)
        for block in self._blocks:
            out.extend(block.entries)
        out.extend(self._tail)
        return out

    def component_sizes(self) -> dict:
        return {
            "main": len(self._main),
            "blocks": [len(b.entries) for b in self._blocks],
            "tail": len(self._tail),
            "last_sorted_zone": self.last_sorted_zone,
        }

    def check_invariants(self) -> None:
        """Validate component ordering invariants (test helper)."""
        from repro.errors import InvariantViolation

        for name, entries in [("main", self._main)] + [
            (f"block{i}", b.entries) for i, b in enumerate(self._blocks)
        ]:
            for i in range(1, len(entries)):
                if (entries[i - 1][0], entries[i - 1][1]) > (entries[i][0], entries[i][1]):
                    raise InvariantViolation(f"{name} not sorted by (key, seq)")
        if self._main_keys != [entry[0] for entry in self._main]:
            raise InvariantViolation("main key column out of sync")
        for block in self._blocks:
            if block.keys != [entry[0] for entry in block.entries]:
                raise InvariantViolation("block key column out of sync")
        if len(self) > self.config.buffer_capacity:
            raise InvariantViolation("buffer above capacity")
