"""The sortedness-aware index: SWARE applied to a tree backend (§IV).

:class:`SortednessAwareIndex` wraps any tree satisfying the
:class:`TreeBackend` protocol (this repository ships a B+-tree and a
Bε-tree) with the SWARE-buffer:

* inserts are intercepted by the buffer; a full buffer triggers a flush
  cycle whose batch is split into an opportunistic **bulk load** (keys above
  the tree's maximum) and **top-inserts** through the root;
* point lookups follow Fig. 6's optimized read path — buffer Zonemap, then
  the unsorted tail (BF/Zonemap gated), query-sorted blocks and the sorted
  section (interpolation search), then the tree;
* reads trigger query-driven partial sorting of the tail (§IV-C);
* deletes become buffer tombstones when the key is within the buffer's
  range, applied to the tree at flush time (§IV-D).

Values must not be ``None`` — the library reserves ``None`` for "absent".
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from repro.core.buffer import HIT, TOMBSTONE, Entry, FlushBatch, SWAREBuffer
from repro.core.config import SWAREConfig
from repro.core.stats import SWAREStats
from repro.obs import DEFAULT_SIZE_BUCKETS, NULL_OBS, Observability, current_obs
from repro.storage.costmodel import Meter, NULL_METER
from repro.storage.wal import WriteAheadLog


@runtime_checkable
class TreeBackend(Protocol):
    """The tree interface SWARE requires (satisfied by BPlusTree and BeTree)."""

    meter: Meter

    def insert(self, key: int, value: object): ...

    def delete(self, key: int): ...

    def get(self, key: int) -> Optional[object]: ...

    def range_query(self, lo: int, hi: int) -> List[Tuple[int, object]]: ...

    def bulk_load_append(self, items): ...

    @property
    def max_key(self) -> Optional[int]: ...

    @property
    def min_key(self) -> Optional[int]: ...


class SortednessAwareIndex:
    """See module docstring."""

    def __init__(
        self,
        backend: TreeBackend,
        config: Optional[SWAREConfig] = None,
        meter: Optional[Meter] = None,
        obs: Optional[Observability] = None,
        wal: Optional[WriteAheadLog] = None,
    ):
        self.config = config or SWAREConfig()
        self.meter = meter if meter is not None else NULL_METER
        self.obs = obs if obs is not None else current_obs()
        #: Optional write-ahead log: every put/delete is appended (and,
        #: under the default policy, fsynced) *before* it enters the
        #: volatile buffer, making acknowledged writes crash-durable.
        self.wal = wal
        self.stats = SWAREStats()
        self.backend = backend
        if backend.meter is NULL_METER and self.meter is not NULL_METER:
            backend.meter = self.meter
        self.buffer = SWAREBuffer(
            self.config, meter=self.meter, stats=self.stats, obs=self.obs
        )
        if self.obs is not NULL_OBS:
            self.obs.register_collector("sware", self.stats.snapshot)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def insert(self, key: int, value: object) -> None:
        """Buffer an upsert; flushes a batch into the tree when full.

        The span roots a causal trace: a flush cycle triggered here (and
        every sort, routing decision and WAL append inside it) chains back
        to this put via ``parent_id``/``trace_id``.
        """
        if value is None:
            raise ValueError("None values are reserved for 'absent'")
        with self.obs.span("sware.put", key=key):
            if self.wal is not None:
                self.wal.append_put(key, value)
            self.stats.inserts += 1
            self.buffer.add(key, value)
            hub = self.obs.monitors
            if hub is not None:
                hub.observe_insert(key, self.buffer)
            if self.buffer.is_full:
                self._flush_cycle()

    def put_many(self, items: Sequence[Tuple[int, object]]) -> None:
        """Buffer a batch of upserts; observably identical to a loop of
        :meth:`insert` (same flush boundaries, stats, meter charges) but
        amortized through :meth:`SWAREBuffer.add_many`.

        The batch is chunked by the buffer's remaining capacity, so a flush
        cycle triggers exactly where the sequential loop would have filled
        the buffer.
        """
        n = len(items)
        for _key, value in items:
            if value is None:
                raise ValueError("None values are reserved for 'absent'")
        with self.obs.span("sware.put_many", n=n):
            if self.wal is not None:
                self.wal.append_puts(items)
            buffer = self.buffer
            hub = self.obs.monitors
            i = 0
            while i < n:
                space = buffer.capacity - len(buffer)
                if space <= 0:
                    self._flush_cycle()
                    continue
                chunk = items[i : i + space]
                self.stats.inserts += len(chunk)
                buffer.add_many(chunk)
                if hub is not None:
                    hub.observe_inserts([key for key, _value in chunk], buffer)
                i += len(chunk)
                if buffer.is_full:
                    self._flush_cycle()

    def delete(self, key: int) -> None:
        """Delete via a buffered tombstone or directly in the tree (§IV-D)."""
        with self.obs.span("sware.delete", key=key):
            if self.wal is not None:
                self.wal.append_delete(key)
            self.stats.deletes += 1
            if not self.buffer.is_empty and self.buffer.zonemap.may_contain(key):
                self.buffer.add(key, None, tombstone=True)
                self.stats.tombstones_buffered += 1
                if self.buffer.is_full:
                    self._flush_cycle()
                return
            with self.meter.bucket("top_insert"):
                self.backend.delete(key)

    def flush_all(self) -> None:
        """Drain the entire buffer into the tree (end-of-ingest helper)."""
        if self.buffer.is_empty:
            return
        with self.obs.span("sware.drain") as span:
            with self.meter.bucket("sort"):
                batch = self.buffer.drain()
            span.set(entries=len(batch.entries))
            self._apply_batch(batch)

    def checkpoint(self, store) -> int:
        """Atomically checkpoint through ``store`` and truncate the WAL.

        The ordering is the durability contract: the buffer drains into the
        tree, the tree is committed atomically (temp file + rename), and
        only then is the WAL reset — so at every instant, checkpoint + WAL
        tail together cover every acknowledged write. Returns the number of
        pages written.
        """
        with self.obs.span("sware.checkpoint") as span:
            pages = store.save_index(self)
            if self.wal is not None:
                self.wal.reset()
            span.set(pages=pages, epoch=store.last_epoch)
        return pages

    def _flush_cycle(self) -> None:
        hub = self.obs.monitors
        expected_fpr: Optional[float] = None
        if (
            hub is not None
            and self.buffer.global_bf is not None
            and self.buffer.tail_size
        ):
            # Sampled before prepare_flush resets the filter: the FPR of the
            # filter as the flushed epoch actually ran it.
            expected_fpr = self.buffer.global_bf.expected_fpr()
        with self.obs.span("sware.flush_cycle") as span:
            with self.meter.bucket("sort"):
                batch = self.buffer.prepare_flush()
            span.set(
                entries=len(batch.entries),
                effortless=batch.sorted_without_effort,
                sort_algorithm=batch.sort_algorithm,
                retained=batch.retained,
            )
            self._apply_batch(batch)
        if hub is not None:
            hub.observe_flush(
                entries=len(batch.entries),
                retained=batch.retained,
                effortless=batch.sorted_without_effort,
                expected_fpr=expected_fpr,
            )
        self.obs.observe_hist(
            "sware_flush_entries", len(batch.entries), buckets=DEFAULT_SIZE_BUCKETS
        )

    def _apply_batch(self, batch: FlushBatch) -> None:
        """Dedup a flush batch and route it to bulk load / top-inserts."""
        if not batch.entries:
            return
        # Entries arrive sorted by (key, seq): the last of each key run is
        # the newest version and the only one the tree needs to see.
        final: List[Entry] = []
        for entry in batch.entries:
            if final and final[-1][0] == entry[0]:
                final[-1] = entry
            else:
                final.append(entry)

        tree_max = self.backend.max_key
        if tree_max is None:
            cut = 0
        else:
            keys = [entry[0] for entry in final]
            cut = bisect_right(keys, tree_max)

        overlapping = final[:cut]
        beyond = final[cut:]

        if overlapping:
            with self.meter.bucket("top_insert"):
                for key, _seq, value, tombstone in overlapping:
                    if tombstone:
                        # Backends that report deletion (the B+-tree returns
                        # False for an absent key) let us split real deletions
                        # from no-ops; message-based backends (Bε-tree, LSM)
                        # return None and count as applied.
                        if self.backend.delete(key) is False:
                            self.stats.tombstones_noop += 1
                        else:
                            self.stats.tombstones_applied += 1
                    else:
                        self.backend.insert(key, value)
                        self.stats.top_inserted_entries += 1

        bulk_items = [(key, value) for key, _seq, value, tomb in beyond if not tomb]
        self.stats.tombstones_dropped += len(beyond) - len(bulk_items)
        if bulk_items:
            with self.meter.bucket("bulk_load"):
                self.backend.bulk_load_append(bulk_items)
            self.stats.bulk_loaded_entries += len(bulk_items)
        obs = self.obs
        if obs.enabled:
            obs.event(
                "sware.batch_routed",
                bulk=len(bulk_items),
                top=len(overlapping),
                tombstones_dropped=len(beyond) - len(bulk_items),
            )
        obs.observe_hist(
            "sware_bulk_load_entries", len(bulk_items), buckets=DEFAULT_SIZE_BUCKETS
        )
        obs.observe_hist(
            "sware_top_insert_entries", len(overlapping), buckets=DEFAULT_SIZE_BUCKETS
        )

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def _maybe_query_sort(self) -> None:
        """Fire the query-driven sort trigger (§IV-C) if the tail warrants.

        This is the *only* place the trigger fires and the ``sware_ops``
        sort charge is metered — every read entry point (single or batch)
        routes through here exactly once per call, so batch accounting
        matches a sequential loop (the loop's per-op re-check is a constant
        False after the first trigger empties the tail).
        """
        if self.buffer.should_query_sort():
            with self.meter.bucket("sware_ops"):
                self.buffer.query_sort()

    def get(self, key: int) -> Optional[object]:
        """Point lookup along the optimized read path (Fig. 6)."""
        self.stats.lookups += 1
        with self.obs.span("sware.get", key=key):
            self._maybe_query_sort()
            with self.meter.bucket("buffer_search"):
                state, value = self.buffer.lookup(key)
            if state == HIT:
                self.stats.buffer_hits += 1
                return value
            if state == TOMBSTONE:
                self.stats.buffer_tombstone_hits += 1
                return None
            with self.meter.bucket("tree_search"):
                self.meter.charge("zonemap_check")
                tree_min, tree_max = self.backend.min_key, self.backend.max_key
                if tree_min is None or key < tree_min or key > tree_max:
                    return None
                self.stats.tree_searches += 1
                return self.backend.get(key)

    def get_many(self, keys: Sequence[int]) -> List[Optional[object]]:
        """Batch point lookups along the same read path as :meth:`get`.

        Returns one value (or ``None``) per input key, in input order. The
        query-sort trigger is evaluated once — reads do not change the tail,
        so the per-op check of the sequential loop is a constant after the
        first lookup — and buffer misses are forwarded to the backend's
        ``get_many`` (one leaf descent per run of keys sharing a leaf on the
        B+-tree) when it has one.
        """
        if not keys:
            # A zero-key batch must be a no-op: a sequential loop of zero
            # gets never evaluates the trigger, so firing it here would
            # mutate the buffer and charge sware_ops with no reads at all.
            return []
        n = len(keys)
        self.stats.lookups += n
        with self.obs.span("sware.get_many", n=n):
            self._maybe_query_sort()
            results: List[Optional[object]] = [None] * n
            miss_positions: List[int] = []
            miss_keys: List[int] = []
            stats = self.stats
            lookup = self.buffer.lookup
            with self.meter.bucket("buffer_search"):
                for i, key in enumerate(keys):
                    state, value = lookup(key)
                    if state == HIT:
                        stats.buffer_hits += 1
                        results[i] = value
                    elif state == TOMBSTONE:
                        stats.buffer_tombstone_hits += 1
                    else:
                        miss_positions.append(i)
                        miss_keys.append(key)
            if miss_keys:
                with self.meter.bucket("tree_search"):
                    self.meter.charge("zonemap_check", len(miss_keys))
                    tree_min, tree_max = self.backend.min_key, self.backend.max_key
                    if tree_min is not None:
                        in_positions: List[int] = []
                        in_keys: List[int] = []
                        for i, key in zip(miss_positions, miss_keys):
                            if tree_min <= key <= tree_max:
                                in_positions.append(i)
                                in_keys.append(key)
                        stats.tree_searches += len(in_keys)
                        batch_get = getattr(self.backend, "get_many", None)
                        if batch_get is not None:
                            for i, value in zip(in_positions, batch_get(in_keys)):
                                results[i] = value
                        else:
                            get = self.backend.get
                            for i, key in zip(in_positions, in_keys):
                                results[i] = get(key)
            return results

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    def range_many(
        self, ranges: Sequence[Tuple[int, int]]
    ) -> List[List[Tuple[int, object]]]:
        """Batch range queries: one result list per ``(lo, hi)`` pair.

        The query-sort trigger fires at most once for the whole batch (reads
        leave the tail untouched, and an empty batch fires nothing), then
        each range follows the sequential :meth:`range_query` path minus its
        already-spent trigger check.
        """
        if not ranges:
            return []
        self._maybe_query_sort()
        out: List[List[Tuple[int, object]]] = []
        for lo, hi in ranges:
            self.stats.range_queries += 1
            with self.obs.span("sware.range_query", lo=lo, hi=hi):
                out.append(self._range_query_inner(lo, hi))
        return out

    def range_query(self, lo: int, hi: int) -> List[Tuple[int, object]]:
        """All live (key, value) in [lo, hi]; buffered versions win."""
        self.stats.range_queries += 1
        with self.obs.span("sware.range_query", lo=lo, hi=hi):
            self._maybe_query_sort()
            return self._range_query_inner(lo, hi)

    def _range_query_inner(self, lo: int, hi: int) -> List[Tuple[int, object]]:
        """Range scan body; the caller owns the query-sort trigger."""
        with self.meter.bucket("buffer_search"):
            buffered = self.buffer.range_entries(lo, hi)
        resolved: dict = {}
        for key, _seq, value, tombstone in buffered:
            # Sorted by (key, seq): the last write per key wins.
            resolved[key] = (value, tombstone)
        with self.meter.bucket("tree_search"):
            tree_items = self.backend.range_query(lo, hi)
        out: dict = {}
        for key, value in tree_items:
            if key not in resolved:
                out[key] = value
        for key, (value, tombstone) in resolved.items():
            if not tombstone:
                out[key] = value
        # Reconciling buffered versions against the tree scan costs one merge
        # step per buffered candidate (the tree entries were already charged
        # as scan_entry by the backend's range scan).
        self.meter.charge("merge_step", len(buffered))
        return sorted(out.items())

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def items(self) -> List[Tuple[int, object]]:
        """All live entries (test/debug helper; full range query).

        Scan bounds are the union of the buffer zonemap and the backend
        watermarks. Both are *supersets* of the live key range by contract:
        the zonemap resets only on a full drain and otherwise covers every
        buffered entry, and backend ``min_key``/``max_key`` never shrink on
        deletes (see ``BPlusTree.delete``). A stale bound therefore only
        widens the scan — it can never clip a live key. Pinned by
        ``tests/test_readpath_bugfixes.py`` against flush + delete cycles.
        """
        lows = [v for v in (self.buffer.zonemap.min_key, self.backend.min_key) if v is not None]
        highs = [v for v in (self.buffer.zonemap.max_key, self.backend.max_key) if v is not None]
        if not lows or not highs:
            # Bounds come in min/max pairs, so one side empty means the
            # other is too (no buffered entries and no backend watermark) —
            # guarded explicitly so a half-set source fails closed instead
            # of raising on max([]).
            return []
        return self.range_query(min(lows), max(highs))

    def describe(self) -> dict:
        """A structured status snapshot for reports and examples."""
        return {
            "buffer": self.buffer.component_sizes(),
            "buffer_fill": len(self.buffer) / self.buffer.capacity,
            "stats": self.stats.snapshot(),
        }
