"""Convenience constructors and the backend registry.

The evaluation compares a *baseline* B+-tree / Bε-tree (textbook 50:50
splits, no tail-leaf pointer) with their sortedness-aware counterparts
(SWARE buffer on top; 80:20 splits and 95% bulk-load fill underneath, per
§V "SWARE Tuning"). The SOSD-style cross-backend bench additionally pulls
in the LSM-tree and the model-based competitors from :mod:`repro.learned`;
:data:`BACKEND_NAMES` / :func:`backend_factory` give every harness one
canonical name → constructor mapping for all of them.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.betree.betree import BeTree, BeTreeConfig
from repro.btree.btree import BPlusTree, BPlusTreeConfig
from repro.core.config import SWAREConfig
from repro.core.sware import SortednessAwareIndex
from repro.learned import (
    CrackingIndex,
    CrackingIndexConfig,
    LearnedIndex,
    LearnedIndexConfig,
)
from repro.lsm import LSMConfig, LSMTree
from repro.storage.bufferpool import BufferPool
from repro.storage.costmodel import Meter


def make_baseline_btree(
    leaf_capacity: int = 64,
    internal_capacity: int = 64,
    meter: Optional[Meter] = None,
    pool: Optional[BufferPool] = None,
) -> BPlusTree:
    """The paper's baseline B+-tree: textbook 50:50 splits."""
    config = BPlusTreeConfig(
        leaf_capacity=leaf_capacity,
        internal_capacity=internal_capacity,
        split_factor=0.5,
        tail_leaf_optimization=False,
    )
    return BPlusTree(config, meter=meter, pool=pool)


def make_sa_btree(
    sware_config: Optional[SWAREConfig] = None,
    leaf_capacity: int = 64,
    internal_capacity: int = 64,
    split_factor: float = 0.8,
    bulk_fill_factor: float = 0.95,
    meter: Optional[Meter] = None,
    pool: Optional[BufferPool] = None,
) -> SortednessAwareIndex:
    """SA B+-tree: SWARE buffer over a B+-tree tuned per §V."""
    tree_config = BPlusTreeConfig(
        leaf_capacity=leaf_capacity,
        internal_capacity=internal_capacity,
        split_factor=split_factor,
        bulk_fill_factor=bulk_fill_factor,
        tail_leaf_optimization=True,
    )
    tree = BPlusTree(tree_config, meter=meter, pool=pool)
    return SortednessAwareIndex(tree, config=sware_config, meter=meter)


def make_baseline_betree(
    node_size: int = 64,
    leaf_capacity: int = 64,
    epsilon: float = 0.5,
    meter: Optional[Meter] = None,
    pool: Optional[BufferPool] = None,
) -> BeTree:
    """The paper's baseline Bε-tree with ε = 1/2."""
    config = BeTreeConfig(
        node_size=node_size,
        epsilon=epsilon,
        leaf_capacity=leaf_capacity,
        split_factor=0.5,
    )
    return BeTree(config, meter=meter, pool=pool)


def make_sa_betree(
    sware_config: Optional[SWAREConfig] = None,
    node_size: int = 64,
    leaf_capacity: int = 64,
    epsilon: float = 0.5,
    split_factor: float = 0.8,
    bulk_fill_factor: float = 0.95,
    meter: Optional[Meter] = None,
    pool: Optional[BufferPool] = None,
) -> SortednessAwareIndex:
    """SA Bε-tree: SWARE buffer over a Bε-tree (§V-G)."""
    tree_config = BeTreeConfig(
        node_size=node_size,
        epsilon=epsilon,
        leaf_capacity=leaf_capacity,
        split_factor=split_factor,
        bulk_fill_factor=bulk_fill_factor,
    )
    tree = BeTree(tree_config, meter=meter, pool=pool)
    return SortednessAwareIndex(tree, config=sware_config, meter=meter)


def make_lsm(
    config: Optional[LSMConfig] = None,
    meter: Optional[Meter] = None,
) -> LSMTree:
    """A plain (sortedness-oblivious) leveling LSM-tree."""
    return LSMTree(config or LSMConfig(), meter=meter)


def make_learned(
    config: Optional[LearnedIndexConfig] = None,
    meter: Optional[Meter] = None,
) -> LearnedIndex:
    """A PGM/FITing-tree style piecewise-linear learned index."""
    return LearnedIndex(config or LearnedIndexConfig(), meter=meter)


def make_cracking(
    config: Optional[CrackingIndexConfig] = None,
    meter: Optional[Meter] = None,
) -> CrackingIndex:
    """A database-cracking index (partitions refine on query)."""
    return CrackingIndex(config or CrackingIndexConfig(), meter=meter)


#: Canonical competitor names, in the order bench tables print them.
BACKEND_NAMES: Tuple[str, ...] = (
    "sa_btree",
    "btree",
    "betree",
    "lsm",
    "learned",
    "cracking",
)


def backend_factory(
    name: str,
    n: int,
    buffer_fraction: float = 0.01,
) -> Callable[[Meter], object]:
    """A ``factory(meter) -> index`` for any registered backend name.

    ``n`` sizes the workload-dependent knobs the way the paper's
    experiments do: the SWARE buffer holds ``buffer_fraction`` of the
    dataset and the LSM memtable holds ~1% of it. The returned callable
    matches the :data:`repro.bench.runner.IndexFactory` shape, so it plugs
    straight into ``run_phases``.
    """
    if name == "sa_btree":
        capacity = max(64, int(n * buffer_fraction))
        config = SWAREConfig(
            buffer_capacity=capacity,
            page_size=max(4, min(64, capacity // 8)),
        )
        return lambda meter: make_sa_btree(sware_config=config, meter=meter)
    if name == "btree":
        return lambda meter: make_baseline_btree(meter=meter)
    if name == "betree":
        return lambda meter: make_baseline_betree(meter=meter)
    if name == "lsm":
        config = LSMConfig(memtable_capacity=max(32, n // 100))
        return lambda meter: make_lsm(config=config, meter=meter)
    if name == "learned":
        return lambda meter: make_learned(meter=meter)
    if name == "cracking":
        return lambda meter: make_cracking(meter=meter)
    raise ValueError(
        f"unknown backend {name!r}; expected one of {BACKEND_NAMES}"
    )
