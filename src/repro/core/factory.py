"""Convenience constructors for the paper's four index configurations.

The evaluation compares a *baseline* B+-tree / Bε-tree (textbook 50:50
splits, no tail-leaf pointer) with their sortedness-aware counterparts
(SWARE buffer on top; 80:20 splits and 95% bulk-load fill underneath, per
§V "SWARE Tuning").
"""

from __future__ import annotations

from typing import Optional

from repro.betree.betree import BeTree, BeTreeConfig
from repro.btree.btree import BPlusTree, BPlusTreeConfig
from repro.core.config import SWAREConfig
from repro.core.sware import SortednessAwareIndex
from repro.storage.bufferpool import BufferPool
from repro.storage.costmodel import Meter


def make_baseline_btree(
    leaf_capacity: int = 64,
    internal_capacity: int = 64,
    meter: Optional[Meter] = None,
    pool: Optional[BufferPool] = None,
) -> BPlusTree:
    """The paper's baseline B+-tree: textbook 50:50 splits."""
    config = BPlusTreeConfig(
        leaf_capacity=leaf_capacity,
        internal_capacity=internal_capacity,
        split_factor=0.5,
        tail_leaf_optimization=False,
    )
    return BPlusTree(config, meter=meter, pool=pool)


def make_sa_btree(
    sware_config: Optional[SWAREConfig] = None,
    leaf_capacity: int = 64,
    internal_capacity: int = 64,
    split_factor: float = 0.8,
    bulk_fill_factor: float = 0.95,
    meter: Optional[Meter] = None,
    pool: Optional[BufferPool] = None,
) -> SortednessAwareIndex:
    """SA B+-tree: SWARE buffer over a B+-tree tuned per §V."""
    tree_config = BPlusTreeConfig(
        leaf_capacity=leaf_capacity,
        internal_capacity=internal_capacity,
        split_factor=split_factor,
        bulk_fill_factor=bulk_fill_factor,
        tail_leaf_optimization=True,
    )
    tree = BPlusTree(tree_config, meter=meter, pool=pool)
    return SortednessAwareIndex(tree, config=sware_config, meter=meter)


def make_baseline_betree(
    node_size: int = 64,
    leaf_capacity: int = 64,
    epsilon: float = 0.5,
    meter: Optional[Meter] = None,
    pool: Optional[BufferPool] = None,
) -> BeTree:
    """The paper's baseline Bε-tree with ε = 1/2."""
    config = BeTreeConfig(
        node_size=node_size,
        epsilon=epsilon,
        leaf_capacity=leaf_capacity,
        split_factor=0.5,
    )
    return BeTree(config, meter=meter, pool=pool)


def make_sa_betree(
    sware_config: Optional[SWAREConfig] = None,
    node_size: int = 64,
    leaf_capacity: int = 64,
    epsilon: float = 0.5,
    split_factor: float = 0.8,
    bulk_fill_factor: float = 0.95,
    meter: Optional[Meter] = None,
    pool: Optional[BufferPool] = None,
) -> SortednessAwareIndex:
    """SA Bε-tree: SWARE buffer over a Bε-tree (§V-G)."""
    tree_config = BeTreeConfig(
        node_size=node_size,
        epsilon=epsilon,
        leaf_capacity=leaf_capacity,
        split_factor=split_factor,
        bulk_fill_factor=bulk_fill_factor,
    )
    tree = BeTree(tree_config, meter=meter, pool=pool)
    return SortednessAwareIndex(tree, config=sware_config, meter=meter)
