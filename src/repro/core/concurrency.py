"""The SWARE-buffer concurrency-control protocol (§IV-D), simulated.

The paper sketches how a multi-threaded SA B+-tree serializes access to the
SWARE-buffer:

* every insert *instantaneously* takes the buffer-wide lock to check
  whether it will trigger a flush;
* if no flush triggers, the buffer-wide lock is released and the worker
  locks only the page it appends to (lock-crabbing) plus that page's
  metadata (the page-wise lock protects the page Zonemap/BF; the global BF
  and ``last_sorted_zone`` ride along);
* if a flush triggers, the buffer-wide **exclusive** lock is held until the
  flush completes;
* queries take shared locks; query-driven sorting upgrades the reader to an
  exclusive lock (as concurrent adaptive indexing requires).

CPython threads would serialize the actual work anyway (DESIGN.md
substitution #6), so this module implements the *protocol* over a virtual
lock manager: schedules of worker steps are executed deterministically and
every invariant the paper relies on is checkable — writers never share a
page, a flush excludes everyone, an upgrade waits for other readers to
leave. The test suite drives interleavings through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ReproError

SHARED = "S"
EXCLUSIVE = "X"

#: The whole-buffer lock resource name; pages are ``page:<index>``.
BUFFER = "buffer"


class LockConflict(ReproError):
    """A lock request that must wait (the simulator surfaces it instead of
    blocking, so tests can assert *when* waiting is required)."""


@dataclass
class _Lock:
    mode: Optional[str] = None
    holders: Set[str] = field(default_factory=set)


class LockManager:
    """A table of named S/X locks with upgrade support.

    ``acquire`` either grants the lock or raises :class:`LockConflict`;
    there is no blocking because the caller owns the schedule.
    """

    def __init__(self) -> None:
        self._locks: Dict[str, _Lock] = {}
        self.trace: List[Tuple[str, str, str, str]] = []  # (event, worker, resource, mode)

    def _lock(self, resource: str) -> _Lock:
        return self._locks.setdefault(resource, _Lock())

    def acquire(self, worker: str, resource: str, mode: str) -> None:
        lock = self._lock(resource)
        if lock.mode is None or not lock.holders:
            lock.mode = mode
            lock.holders = {worker}
        elif worker in lock.holders and len(lock.holders) == 1:
            # Re-entrant / upgrade by the sole holder.
            if mode == EXCLUSIVE:
                lock.mode = EXCLUSIVE
        elif lock.mode == SHARED and mode == SHARED:
            lock.holders.add(worker)
        elif worker in lock.holders and mode == SHARED:
            pass  # already covered by a stronger or equal hold
        else:
            raise LockConflict(
                f"{worker} cannot take {mode} on {resource!r}: held {lock.mode} "
                f"by {sorted(lock.holders)}"
            )
        self.trace.append(("acquire", worker, resource, mode))

    def release(self, worker: str, resource: str) -> None:
        lock = self._locks.get(resource)
        if lock is None or worker not in lock.holders:
            raise ReproError(f"{worker} does not hold {resource!r}")
        lock.holders.discard(worker)
        if not lock.holders:
            lock.mode = None
        self.trace.append(("release", worker, resource, lock.mode or "-"))

    def release_all(self, worker: str) -> None:
        for resource, lock in self._locks.items():
            if worker in lock.holders:
                self.release(worker, resource)

    def holders(self, resource: str) -> Set[str]:
        lock = self._locks.get(resource)
        return set(lock.holders) if lock else set()

    def mode(self, resource: str) -> Optional[str]:
        lock = self._locks.get(resource)
        return lock.mode if lock and lock.holders else None


class SWARELockProtocol:
    """Drives the §IV-D locking discipline over a :class:`LockManager`.

    The protocol object is deliberately decoupled from the actual
    :class:`~repro.core.buffer.SWAREBuffer`: it models who may touch what
    and when, parameterized by the buffer geometry.
    """

    def __init__(self, n_pages: int):
        if n_pages < 1:
            raise ValueError("n_pages must be >= 1")
        self.n_pages = n_pages
        self.locks = LockManager()
        self._readers: Set[str] = set()

    # -- write path ------------------------------------------------------
    def begin_insert(self, worker: str, triggers_flush: bool, page: int) -> str:
        """The insert prologue; returns "append" or "flush".

        The buffer-wide lock is taken instantaneously for the flush check;
        on the append path it is released immediately and replaced by the
        page lock (which also protects that page's metadata).
        """
        if not 0 <= page < self.n_pages:
            raise ValueError(f"page {page} out of range")
        if triggers_flush:
            # A flush excludes *everything*, including appenders that
            # already passed their own flush check and hold only a page
            # lock — otherwise check_invariants' "no page locked during a
            # flush" guarantee could never hold.
            for other in range(self.n_pages):
                holders = self.locks.holders(f"page:{other}")
                if holders and holders != {worker}:
                    raise LockConflict(
                        f"{worker} cannot start a flush: page {other} is "
                        f"held by {sorted(holders)}"
                    )
            self.locks.acquire(worker, BUFFER, EXCLUSIVE)
            return "flush"  # buffer-wide X held until finish_flush
        self.locks.acquire(worker, BUFFER, EXCLUSIVE)
        self.locks.release(worker, BUFFER)
        self.locks.acquire(worker, f"page:{page}", EXCLUSIVE)
        return "append"

    def finish_append(self, worker: str, page: int) -> None:
        self.locks.release(worker, f"page:{page}")

    def finish_flush(self, worker: str) -> None:
        self.locks.release(worker, BUFFER)

    # -- read path -------------------------------------------------------
    def begin_query(self, worker: str) -> None:
        self.locks.acquire(worker, BUFFER, SHARED)
        self._readers.add(worker)

    def upgrade_for_query_sort(self, worker: str) -> None:
        """Query-driven sorting upgrades the reader to exclusive.

        The sort rewrites the unsorted tail, so it is flush-class: in-flight
        appenders holding page locks must drain first (they always finish —
        an appender never waits while holding its page — so refusing here
        cannot deadlock).
        """
        if worker not in self._readers:
            raise ReproError(f"{worker} is not an active reader")
        for page in range(self.n_pages):
            holders = self.locks.holders(f"page:{page}")
            if holders and holders != {worker}:
                raise LockConflict(
                    f"{worker} cannot upgrade for query sort: page {page} "
                    f"is held by {sorted(holders)}"
                )
        self.locks.acquire(worker, BUFFER, EXCLUSIVE)

    def finish_query(self, worker: str) -> None:
        self._readers.discard(worker)
        self.locks.release(worker, BUFFER)

    # -- invariants --------------------------------------------------------
    def check_invariants(self) -> None:
        """No two writers share a page; a flush excludes everything."""
        buffer_mode = self.locks.mode(BUFFER)
        buffer_holders = self.locks.holders(BUFFER)
        if buffer_mode == EXCLUSIVE and len(buffer_holders) > 1:
            raise ReproError("buffer X lock shared by multiple workers")
        for page in range(self.n_pages):
            holders = self.locks.holders(f"page:{page}")
            if len(holders) > 1:
                raise ReproError(f"page {page} exclusively held by {holders}")
            if holders and buffer_mode == EXCLUSIVE and holders != buffer_holders:
                raise ReproError(
                    "a page is locked while another worker flushes the buffer"
                )
