"""Configuration advisor: the paper's §V findings as executable guidance.

The evaluation section is effectively a tuning guide — Fig. 14 is described
as "a guideline for applicability of the SA B+-tree design". This module
encodes those findings:

* the SWARE buffer should scale with L (§V-D: a larger buffer captures more
  displacement; even a buffer ≪ L helps);
* flush 50% per cycle (§V-D sweep);
* split at 80:20 for (near-)sorted arrivals, 50:50 for scrambled (Table I);
* query-driven sorting at 10% of the buffer when the workload has reads
  (Fig. 16);
* in memory, scrambled data or a read share above ~99% favours the plain
  B+-tree (Fig. 10: "the worst-case guarantees of a classical B+-tree are
  sufficient"; §V-B: "if a mixed workload is read-dominated (writes < 1%),
  the incurred read overhead outweighs the benefits");
* on disk, SA B+-tree wins regardless of sortedness (Fig. 18).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.config import SWAREConfig
from repro.sortedness.metrics import measure_sortedness


@dataclass
class Recommendation:
    """The advisor's output: which index, how to tune it, and why."""

    use_sware: bool
    buffer_fraction: float
    flush_fraction: float
    split_factor: float
    query_sorting_threshold: float
    rationale: List[str] = field(default_factory=list)

    def sware_config(self, n_entries: int, page_size: int = 64) -> SWAREConfig:
        """Materialize a SWAREConfig for a dataset of ``n_entries``."""
        capacity = max(16, int(n_entries * self.buffer_fraction))
        if capacity < 2 * page_size:
            page_size = max(4, capacity // 2)
        capacity = max(2 * page_size, (capacity // page_size) * page_size)
        return SWAREConfig(
            buffer_capacity=capacity,
            page_size=page_size,
            flush_fraction=self.flush_fraction,
            query_sorting_threshold=self.query_sorting_threshold,
        )

    def build(self, n_entries: int, meter=None):
        """Construct the recommended index, ready for ingestion."""
        from repro.core.factory import make_baseline_btree, make_sa_btree

        if not self.use_sware:
            return make_baseline_btree(meter=meter)
        return make_sa_btree(
            self.sware_config(n_entries),
            split_factor=self.split_factor,
            meter=meter,
        )


def recommend(
    k_fraction: float,
    l_fraction: float,
    read_fraction: float = 0.5,
    on_disk: bool = False,
) -> Recommendation:
    """Recommend an index + tuning for a workload's measured sortedness."""
    if not 0.0 <= k_fraction <= 1.0 or not 0.0 <= l_fraction <= 1.0:
        raise ValueError("k_fraction and l_fraction must be within [0, 1]")
    if not 0.0 <= read_fraction <= 1.0:
        raise ValueError("read_fraction must be within [0, 1]")

    rationale: List[str] = []
    scrambled = k_fraction >= 0.85 and l_fraction >= 0.40

    use_sware = True
    if on_disk:
        rationale.append(
            "on disk SA B+-tree outperforms the baseline for any sortedness "
            "and read ratio (Fig. 18)"
        )
    elif read_fraction > 0.99:
        use_sware = False
        rationale.append(
            "read share > 99%: buffer overhead outweighs ingestion benefits (§V-B)"
        )
    elif scrambled:
        use_sware = False
        rationale.append(
            "data is effectively scrambled: the classical B+-tree's "
            "worst-case guarantees are sufficient in memory (§V-A)"
        )
    else:
        rationale.append(
            f"sortedness (K={k_fraction:.0%}, L={l_fraction:.0%}) is exploitable "
            "by opportunistic bulk loading (Fig. 10/14)"
        )

    # Buffer scales with L; even a buffer well below L pays off (§V-D/F).
    buffer_fraction = min(0.05, max(0.005, l_fraction / 4))
    if l_fraction > 0.25:
        rationale.append(
            "large displacement (L): sizing the buffer at the 5% cap to "
            "capture overlap (Fig. 21)"
        )

    split_factor = 0.5 if scrambled else 0.8
    if not scrambled:
        rationale.append("80:20 splits minimize leaf splits for near-sorted data (Table I)")
    else:
        rationale.append("textbook 50:50 splits are safest for scrambled data (Table I)")

    query_sorting_threshold = 0.10 if read_fraction > 0.0 else 1.0
    if read_fraction == 0.0:
        rationale.append("write-only workload: query-driven sorting never triggers")

    return Recommendation(
        use_sware=use_sware,
        buffer_fraction=buffer_fraction,
        flush_fraction=0.5,
        split_factor=split_factor,
        query_sorting_threshold=query_sorting_threshold,
        rationale=rationale,
    )


def recommend_for_sample(
    sample_keys: Sequence[int],
    read_fraction: float = 0.5,
    on_disk: bool = False,
    max_sample: Optional[int] = 10_000,
) -> Recommendation:
    """Measure a key sample's (K,L) and recommend accordingly."""
    if not sample_keys:
        raise ValueError("sample_keys must be non-empty")
    sample = list(sample_keys[:max_sample]) if max_sample else list(sample_keys)
    report = measure_sortedness(sample)
    recommendation = recommend(
        report.k_fraction, report.l_fraction, read_fraction, on_disk
    )
    recommendation.rationale.insert(
        0,
        f"measured sample: K={report.k_fraction:.1%}, L={report.l_fraction:.1%} "
        f"({report.degree()})",
    )
    return recommendation
