"""Blocking reader–writer locks for the operational §IV-D front-end.

:mod:`repro.core.concurrency` simulates the SWARE lock protocol over a
*virtual* lock manager that raises instead of waiting, so deterministic
tests own the schedule. This module is its operational sibling: the same
S/X compatibility matrix and sole-holder upgrade rule, but built on
``threading.Condition`` so real threads block until their request is
grantable.

Two pieces:

* :class:`RWLock` — one named shared/exclusive lock. Grants follow the
  virtual :class:`~repro.core.concurrency.LockManager` exactly: S requests
  share, X excludes, the *sole* holder may upgrade S→X in place, and
  re-acquiring an already-covered mode is a no-op. Waits are bounded by a
  timeout; exceeding it raises :class:`~repro.errors.LockTimeout` (the
  deadlock-surfacing strategy — an upgrade field of two readers each
  waiting for the other can only end this way).
* :class:`BlockingLockManager` — a table of named :class:`RWLock`\\ s with
  the same worker/resource API shape as the virtual manager, plus
  contention accounting: acquisition/wait/timeout/upgrade counters and a
  wait-time histogram published through :mod:`repro.obs`.

Workers are identified by arbitrary hashable tokens (the concurrent index
front-end uses ``threading.get_ident()``).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Hashable, Optional, Set

from repro.errors import LockTimeout, ReproError
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS_NS,
    NULL_OBS,
    Observability,
    current_obs,
)

SHARED = "S"
EXCLUSIVE = "X"

#: Default ceiling on any single blocking acquisition, in seconds. Long
#: enough that contention never trips it, short enough that a genuine
#: deadlock surfaces quickly in tests and benchmarks.
DEFAULT_TIMEOUT_S = 10.0


class RWLock:
    """A blocking shared/exclusive lock with sole-holder upgrade.

    The grant rules mirror the virtual lock manager:

    * free → granted in the requested mode;
    * held S, request S → granted (readers share);
    * sole holder, request X → upgraded in place;
    * holder re-requesting a covered mode → no-op;
    * anything else waits until the holders change, or until ``timeout``
      seconds elapse (:class:`~repro.errors.LockTimeout`).

    Holds are not counted: releasing a re-entrantly acquired lock releases
    it outright, matching the virtual manager's semantics.
    """

    __slots__ = ("name", "_cond", "_mode", "_holders")

    def __init__(self, name: str = ""):
        self.name = name
        self._cond = threading.Condition()
        self._mode: Optional[str] = None
        self._holders: Set[Hashable] = set()

    def _grantable(self, worker: Hashable, mode: str) -> bool:
        if not self._holders:
            return True
        if self._holders == {worker}:
            return True  # re-entry or sole-holder upgrade
        if worker in self._holders and mode == SHARED:
            return True  # already covered by an equal or stronger hold
        if self._mode == SHARED and mode == SHARED:
            return True
        return False

    def acquire(
        self, worker: Hashable, mode: str, timeout: float = DEFAULT_TIMEOUT_S
    ) -> float:
        """Block until granted; returns the wait in nanoseconds.

        Raises :class:`~repro.errors.LockTimeout` when ``timeout`` seconds
        pass without the request becoming grantable.
        """
        if mode not in (SHARED, EXCLUSIVE):
            raise ReproError(f"unknown lock mode {mode!r}")
        with self._cond:
            if self._grantable(worker, mode):
                self._grant(worker, mode)
                return 0.0
            start = time.perf_counter_ns()
            deadline = time.monotonic() + timeout
            while not self._grantable(worker, mode):
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._cond.wait(remaining):
                    raise LockTimeout(
                        f"{worker!r} timed out after {timeout:.1f}s waiting for "
                        f"{mode} on {self.name or 'lock'!r} (held {self._mode} "
                        f"by {len(self._holders)} worker(s))"
                    )
            self._grant(worker, mode)
            return float(time.perf_counter_ns() - start)

    def _grant(self, worker: Hashable, mode: str) -> None:
        if worker in self._holders and mode == SHARED:
            return  # keep the existing (possibly exclusive) hold
        if mode == EXCLUSIVE or not self._holders:
            self._mode = mode
        self._holders.add(worker)

    def release(self, worker: Hashable) -> None:
        with self._cond:
            if worker not in self._holders:
                raise ReproError(f"{worker!r} does not hold {self.name or 'lock'!r}")
            self._holders.discard(worker)
            if not self._holders:
                self._mode = None
            self._cond.notify_all()

    @property
    def mode(self) -> Optional[str]:
        with self._cond:
            return self._mode if self._holders else None

    def holders(self) -> Set[Hashable]:
        with self._cond:
            return set(self._holders)


class BlockingLockManager:
    """A table of named :class:`RWLock`\\ s with contention accounting.

    API shape matches the virtual :class:`~repro.core.concurrency.LockManager`
    (``acquire``/``release``/``release_all``/``holders``/``mode``) so the
    §IV-D discipline reads identically against either manager; the
    difference is that conflicting requests *wait* here instead of raising.

    Accounting: every acquisition bumps ``acquires``; an acquisition that
    had to wait bumps ``waits`` and records its wait into the
    ``lock_wait_ns`` histogram of the attached observability (plus a
    per-manager total); timeouts and sole-holder upgrades are counted too.
    ``snapshot()`` exposes the counters as a collector for
    :class:`~repro.obs.MetricsRegistry`.
    """

    def __init__(self, obs: Optional[Observability] = None):
        self.obs = obs if obs is not None else current_obs()
        self._locks: Dict[str, RWLock] = {}
        self._table_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self.acquires = 0
        self.waits = 0
        self.wait_ns = 0.0
        self.timeouts = 0
        self.upgrades = 0

    def _lock(self, resource: str) -> RWLock:
        with self._table_lock:
            lock = self._locks.get(resource)
            if lock is None:
                lock = self._locks[resource] = RWLock(resource)
            return lock

    def acquire(
        self,
        worker: Hashable,
        resource: str,
        mode: str,
        timeout: float = DEFAULT_TIMEOUT_S,
    ) -> None:
        lock = self._lock(resource)
        upgrade = (
            mode == EXCLUSIVE and lock.mode == SHARED and worker in lock.holders()
        )
        try:
            waited_ns = lock.acquire(worker, mode, timeout=timeout)
        except LockTimeout:
            with self._stats_lock:
                self.timeouts += 1
            raise
        with self._stats_lock:
            self.acquires += 1
            if upgrade:
                self.upgrades += 1
            if waited_ns:
                self.waits += 1
                self.wait_ns += waited_ns
        if waited_ns and self.obs is not NULL_OBS:
            self.obs.observe_hist(
                "lock_wait_ns", waited_ns, buckets=DEFAULT_LATENCY_BUCKETS_NS
            )

    def release(self, worker: Hashable, resource: str) -> None:
        self._lock(resource).release(worker)

    def release_all(self, worker: Hashable) -> None:
        with self._table_lock:
            locks = list(self._locks.values())
        for lock in locks:
            if worker in lock.holders():
                lock.release(worker)

    def holders(self, resource: str) -> Set[Hashable]:
        with self._table_lock:
            lock = self._locks.get(resource)
        return lock.holders() if lock is not None else set()

    def mode(self, resource: str) -> Optional[str]:
        with self._table_lock:
            lock = self._locks.get(resource)
        return lock.mode if lock is not None else None

    def snapshot(self) -> Dict[str, float]:
        """Contention counters (registered as an obs collector)."""
        with self._stats_lock:
            return {
                "acquires": float(self.acquires),
                "waits": float(self.waits),
                "wait_ns": float(self.wait_ns),
                "timeouts": float(self.timeouts),
                "upgrades": float(self.upgrades),
            }
