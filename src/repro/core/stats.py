"""Operation statistics for a sortedness-aware index.

These counters back most of the paper's analysis figures: Fig. 11 (top
inserts vs bulk loads), Fig. 13 (latency breakdown via meter buckets),
Fig. 17 (BF ablation), Table I (split counts, via the tree's own counters),
and Table II (buffer pages scanned per query).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class SWAREStats:
    """Counters maintained by :class:`~repro.core.sware.SortednessAwareIndex`."""

    inserts: int = 0
    deletes: int = 0
    lookups: int = 0
    range_queries: int = 0

    # Ingestion path.
    flushes: int = 0
    flushes_without_sort: int = 0
    flushes_with_sort: int = 0
    bulk_loaded_entries: int = 0
    top_inserted_entries: int = 0
    tombstones_buffered: int = 0
    tombstones_applied: int = 0
    tombstones_noop: int = 0
    tombstones_dropped: int = 0
    kl_sorts: int = 0
    stable_sorts: int = 0
    sorted_entries: int = 0

    # Read path.
    buffer_hits: int = 0
    buffer_tombstone_hits: int = 0
    tree_searches: int = 0
    buffer_skips_by_zonemap: int = 0
    query_sorts: int = 0
    unsorted_pages_scanned: int = 0
    global_bf_negatives: int = 0
    page_bf_negatives: int = 0
    # Probes the filter approved but the scan missed: the numerator of the
    # observed false-positive rate (negatives are the true-negative column —
    # Bloom filters have no false negatives).
    global_bf_false_positives: int = 0
    page_bf_false_positives: int = 0
    zonemap_page_skips: int = 0

    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def ingested_entries(self) -> int:
        """Entries that have reached the underlying tree."""
        return self.bulk_loaded_entries + self.top_inserted_entries

    @property
    def bulk_load_fraction(self) -> float:
        total = self.ingested_entries
        return self.bulk_loaded_entries / total if total else 0.0

    @property
    def pages_scanned_per_lookup(self) -> float:
        """Table II's 'pages scanned per query' metric."""
        return self.unsorted_pages_scanned / self.lookups if self.lookups else 0.0

    def snapshot(self) -> Dict[str, float]:
        """A flat dict of every counter (for reports and tests)."""
        fields = {
            name: getattr(self, name)
            for name in self.__dataclass_fields__
            if name != "extra"
        }
        fields.update(self.extra)
        fields["ingested_entries"] = self.ingested_entries
        fields["bulk_load_fraction"] = self.bulk_load_fraction
        fields["pages_scanned_per_lookup"] = self.pages_scanned_per_lookup
        # Which kernel backend produced these numbers; a string, so the obs
        # gauge collector (numeric-only) skips it while JSON reports keep it.
        from repro import kernels

        fields["kernel_backend"] = kernels.active_backend()
        return fields
