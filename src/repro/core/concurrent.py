"""A thread-safe front-end for the sortedness-aware index (§IV-D).

:class:`ConcurrentSortednessAwareIndex` wraps a
:class:`~repro.core.sware.SortednessAwareIndex` and enforces the paper's
concurrency-control discipline with *blocking* locks
(:class:`~repro.core.locks.BlockingLockManager`):

* every write takes the buffer-wide lock **exclusively but instantaneously**
  to decide whether it triggers a flush;
* a non-flushing write releases the buffer-wide lock and appends under a
  **page-granular** lock (the page is derived from the entry's logical
  slot, reserving the slot under the buffer-wide lock so concurrent flush
  predictions stay exact);
* a flushing write keeps the buffer-wide exclusive lock, first draining
  in-flight appenders by sweeping every page lock, and holds all of it
  across the flush cycle;
* reads take the buffer-wide lock **shared**; when the unsorted tail has
  grown past the query-sorting threshold, the reader upgrades S→X (legal
  for the sole reader; an upgrade field of several readers is a deadlock,
  surfaced by a short timeout and resolved by releasing and re-acquiring
  exclusively).

Two realities of CPython shape the implementation (DESIGN.md §8):

* The protocol locks provide *logical* isolation; a short internal latch
  (`threading.Lock`) protects the *physical* Python structures, the role
  latches play under page locks in a real system. Every actual touch of
  the wrapped index happens under the latch, so readers see quiesced
  state even while protocol-concurrent appends are in flight.
* The wrapped index's own query-sort trigger is disabled
  (``query_sorting_threshold`` is forced to 1.0) and re-implemented here,
  because firing it inside a read would mutate the buffer under a shared
  lock; the front-end owns the S→X upgrade instead.

Lock contention is observable: the lock manager's acquisition / wait /
timeout / upgrade counters register as an ``locks`` obs collector, waits
feed the ``lock_wait_ns`` histogram, and upgrade fallbacks / append
retries are published by the ``concurrent`` collector.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import SWAREConfig
from repro.core.locks import (
    DEFAULT_TIMEOUT_S,
    EXCLUSIVE,
    SHARED,
    BlockingLockManager,
)
from repro.core.sware import SortednessAwareIndex, TreeBackend
from repro.errors import LockTimeout
from repro.obs import NULL_OBS, Observability, current_obs
from repro.storage.costmodel import Meter
from repro.storage.wal import WriteAheadLog

#: The whole-buffer lock resource (same name the virtual protocol uses).
BUFFER = "buffer"

#: How long an S→X upgrade may wait before it is presumed deadlocked
#: (two readers upgrading wait for each other forever) and falls back to
#: release-and-reacquire. Deliberately much shorter than the general lock
#: timeout: the fallback is always safe, merely unfair.
DEFAULT_UPGRADE_TIMEOUT_S = 0.1


class ConcurrentSortednessAwareIndex:
    """See module docstring."""

    def __init__(
        self,
        backend: TreeBackend,
        config: Optional[SWAREConfig] = None,
        meter: Optional[Meter] = None,
        obs: Optional[Observability] = None,
        lock_timeout: float = DEFAULT_TIMEOUT_S,
        upgrade_timeout: float = DEFAULT_UPGRADE_TIMEOUT_S,
        wal: Optional[WriteAheadLog] = None,
    ):
        self.config = config or SWAREConfig()
        self.lock_timeout = lock_timeout
        self.upgrade_timeout = upgrade_timeout
        #: The WAL lives on the wrapper, not the inner index: the inner
        #: write path is bypassed by the page-granular append fast path, so
        #: the wrapper logs each op under the latch at its apply point —
        #: WAL order therefore matches the physical serialization order
        #: exactly, which is what recovery replays.
        self.wal = wal
        obs = obs if obs is not None else current_obs()
        self.obs = obs
        # The inner index must never query-sort on its own (that would
        # mutate the buffer under a shared lock); the front-end triggers
        # the sort itself after an S→X upgrade.
        self.inner = SortednessAwareIndex(
            backend,
            config=self.config.with_(query_sorting_threshold=1.0),
            meter=meter,
            obs=obs,
        )
        self.locks = BlockingLockManager(obs=obs)
        self._latch = threading.Lock()
        #: Append slots handed out under the buffer-wide lock but not yet
        #: materialized; flush predictions include them so a concurrent
        #: burst of appends can never overfill the buffer.
        self._reserved = 0
        self.upgrade_fallbacks = 0
        self.append_retries = 0
        threshold = self.config.query_sorting_threshold
        self._query_sort_trigger: Optional[int] = (
            None
            if threshold >= 1.0
            else max(1, int(threshold * self.config.buffer_capacity))
        )
        if obs is not NULL_OBS:
            obs.register_collector("locks", self.locks.snapshot)
            obs.register_collector("concurrent", self._collector_snapshot)
        if obs.monitors is not None:
            # Contention counters flow into health evaluation alongside the
            # streaming monitors (the lock_contention / lock_timeouts rules).
            obs.monitors.attach_locks(self.locks)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def stats(self):
        return self.inner.stats

    @property
    def backend(self):
        return self.inner.backend

    @property
    def buffer(self):
        return self.inner.buffer

    @property
    def meter(self):
        return self.inner.meter

    def _collector_snapshot(self) -> Dict[str, float]:
        return {
            "upgrade_fallbacks": float(self.upgrade_fallbacks),
            "append_retries": float(self.append_retries),
        }

    def _page_resources(self) -> List[str]:
        return [f"page:{page}" for page in range(self.config.n_pages)]

    def _sweep_pages(self, worker: int) -> List[str]:
        """Drain in-flight appenders: acquire every page lock, in order.

        Called while holding the buffer-wide exclusive lock, so no new
        appender can reserve a slot; existing ones either finish first or
        block until the flush completes. Never called under the latch
        (an appender holding a page lock may be waiting for the latch).
        """
        held: List[str] = []
        try:
            for resource in self._page_resources():
                self.locks.acquire(
                    worker, resource, EXCLUSIVE, timeout=self.lock_timeout
                )
                held.append(resource)
        except LockTimeout:
            self._release(worker, held)
            raise
        return held

    def _release(self, worker: int, resources: List[str]) -> None:
        for resource in resources:
            self.locks.release(worker, resource)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def insert(self, key: int, value: object) -> None:
        """Thread-safe upsert following the §IV-D write discipline."""
        if value is None:
            raise ValueError("None values are reserved for 'absent'")
        self._write(key, value, tombstone=False)

    def delete(self, key: int) -> None:
        """Thread-safe delete: buffered tombstone or direct tree delete."""
        self._write(key, None, tombstone=True)

    def _write(self, key: int, value: object, tombstone: bool) -> None:
        # The span carries the tracer's per-thread id, so interleaved
        # writers render as separate rows in the Perfetto view; lock waits
        # and the flush cycle nest under it causally.
        with self.obs.span("concurrent.write", key=key, tombstone=tombstone):
            self._write_inner(key, value, tombstone)

    def _write_inner(self, key: int, value: object, tombstone: bool) -> None:
        worker = threading.get_ident()
        locks = self.locks
        inner = self.inner
        buffer = inner.buffer
        capacity = self.config.buffer_capacity
        page_size = self.config.page_size
        n_pages = self.config.n_pages
        while True:
            # (1) Instantaneous buffer-wide X: route the op and decide
            # whether it triggers a flush.
            locks.acquire(worker, BUFFER, EXCLUSIVE, timeout=self.lock_timeout)
            flush = False
            page: Optional[int] = None
            try:
                with self._latch:
                    if tombstone and (
                        buffer.is_empty or not buffer.zonemap.may_contain(key)
                    ):
                        # Direct tree delete; the buffer-wide lock doubles
                        # as the tree lock (readers search the tree under
                        # S, flushes mutate it under X).
                        if self.wal is not None:
                            self.wal.append_delete(key)
                        inner.delete(key)
                        return
                    if len(buffer) + self._reserved + 1 >= capacity:
                        flush = True
                    else:
                        slot = len(buffer) + self._reserved
                        page = min(slot // page_size, n_pages - 1)
                        self._reserved += 1
                if flush:
                    # (2a) Flush path: keep buffer-wide X, drain in-flight
                    # appenders, then add + flush under everything.
                    held = self._sweep_pages(worker)
                    try:
                        with self._latch:
                            if self.wal is not None:
                                if tombstone:
                                    self.wal.append_delete(key)
                                else:
                                    self.wal.append_put(key, value)
                            if tombstone:
                                inner.delete(key)
                            else:
                                inner.insert(key, value)
                    finally:
                        self._release(worker, held)
                    return
            finally:
                locks.release(worker, BUFFER)
            # (2b) Append path: buffer-wide lock already released; the
            # page lock (protecting that page's Zonemap/BF metadata too)
            # covers the materialization.
            resource = f"page:{page}"
            locks.acquire(worker, resource, EXCLUSIVE, timeout=self.lock_timeout)
            try:
                with self._latch:
                    self._reserved -= 1
                    if buffer.is_full:
                        # A flush ran between the check and this append
                        # and refilled, or predictions drifted; retry the
                        # whole write so the flush check runs again.
                        retry = True
                    else:
                        retry = False
                        if self.wal is not None:
                            if tombstone:
                                self.wal.append_delete(key)
                            else:
                                self.wal.append_put(key, value)
                        if tombstone:
                            inner.stats.deletes += 1
                            buffer.add(key, None, tombstone=True)
                            inner.stats.tombstones_buffered += 1
                        else:
                            inner.stats.inserts += 1
                            buffer.add(key, value)
                        # The fast path bypasses inner.insert, so the
                        # monitor feed happens here (still under the latch).
                        hub = self.obs.monitors
                        if hub is not None:
                            hub.observe_insert(key, buffer)
            finally:
                locks.release(worker, resource)
            if not retry:
                return
            self.append_retries += 1

    def put_many(self, items: Sequence[Tuple[int, object]]) -> None:
        """Batch upsert: buffer-wide X per capacity-sized chunk.

        Readers and single-key writers can interleave between chunks; the
        page-lock sweep runs only for chunks that can fill the buffer.
        """
        for _key, value in items:
            if value is None:
                raise ValueError("None values are reserved for 'absent'")
        worker = threading.get_ident()
        locks = self.locks
        inner = self.inner
        buffer = inner.buffer
        capacity = self.config.buffer_capacity
        i, n = 0, len(items)
        while i < n:
            locks.acquire(worker, BUFFER, EXCLUSIVE, timeout=self.lock_timeout)
            try:
                with self._latch:
                    space = capacity - len(buffer) - self._reserved
                if space <= 0 or n - i >= space:
                    # The chunk may fill the buffer: drain appenders so
                    # the flush inside ``put_many`` excludes everyone.
                    held = self._sweep_pages(worker)
                    try:
                        with self._latch:
                            if space <= 0:
                                inner._flush_cycle()
                            else:
                                if self.wal is not None:
                                    self.wal.append_puts(items[i : i + space])
                                inner.put_many(items[i : i + space])
                                i += space
                    finally:
                        self._release(worker, held)
                else:
                    # Strictly below capacity even if every reserved
                    # append lands: no flush possible, no sweep needed.
                    with self._latch:
                        if self.wal is not None:
                            self.wal.append_puts(items[i:n])
                        inner.put_many(items[i:n])
                        i = n
            finally:
                locks.release(worker, BUFFER)

    def flush_all(self) -> None:
        """Drain the buffer into the tree under buffer-wide X."""
        worker = threading.get_ident()
        self.locks.acquire(worker, BUFFER, EXCLUSIVE, timeout=self.lock_timeout)
        try:
            held = self._sweep_pages(worker)
            try:
                with self._latch:
                    self.inner.flush_all()
            finally:
                self._release(worker, held)
        finally:
            self.locks.release(worker, BUFFER)

    def checkpoint(self, store) -> int:
        """Atomic checkpoint + WAL truncation under buffer-wide X.

        The page-lock sweep drains in-flight appenders first, so the saved
        tree and the truncated WAL are a consistent cut: every op either
        made it into the checkpoint or will be re-logged after it.
        """
        worker = threading.get_ident()
        self.locks.acquire(worker, BUFFER, EXCLUSIVE, timeout=self.lock_timeout)
        try:
            held = self._sweep_pages(worker)
            try:
                with self._latch:
                    pages = store.save_index(self.inner)
                    if self.wal is not None:
                        self.wal.reset()
                    return pages
            finally:
                self._release(worker, held)
        finally:
            self.locks.release(worker, BUFFER)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def _should_query_sort(self) -> bool:
        trigger = self._query_sort_trigger
        return trigger is not None and self.inner.buffer.tail_size >= trigger

    def _begin_read(self, worker: int) -> None:
        """Take buffer-wide S; upgrade to X and query-sort if triggered."""
        locks = self.locks
        locks.acquire(worker, BUFFER, SHARED, timeout=self.lock_timeout)
        if not self._should_query_sort():
            return
        try:
            locks.acquire(worker, BUFFER, EXCLUSIVE, timeout=self.upgrade_timeout)
        except LockTimeout:
            # Upgrade field: several readers each waiting for the others
            # to leave. Back off and re-enter exclusively; the trigger is
            # re-checked because whoever won the race sorted already. A
            # timeout on the re-acquire propagates with nothing held.
            self.upgrade_fallbacks += 1
            locks.release(worker, BUFFER)
            locks.acquire(worker, BUFFER, EXCLUSIVE, timeout=self.lock_timeout)
        try:
            if self._should_query_sort():
                # Query sorting is flush-class — it rewrites the tail — so
                # in-flight appenders (page holders that passed their flush
                # check before this reader took S) must drain first.
                held = self._sweep_pages(worker)
                try:
                    with self._latch:
                        if self._should_query_sort():
                            with self.inner.meter.bucket("sware_ops"):
                                self.inner.buffer.query_sort()
                finally:
                    self._release(worker, held)
            # The read proceeds under X; downgrading buys nothing for the
            # microseconds the latched read takes.
        except BaseException:
            locks.release(worker, BUFFER)
            raise

    def get(self, key: int) -> Optional[object]:
        worker = threading.get_ident()
        with self.obs.span("concurrent.read", key=key):
            self._begin_read(worker)
            try:
                with self._latch:
                    return self.inner.get(key)
            finally:
                self.locks.release(worker, BUFFER)

    def get_many(self, keys: Sequence[int]) -> List[Optional[object]]:
        worker = threading.get_ident()
        with self.obs.span("concurrent.read_many", n=len(keys)):
            self._begin_read(worker)
            try:
                with self._latch:
                    return self.inner.get_many(keys)
            finally:
                self.locks.release(worker, BUFFER)

    def range_query(self, lo: int, hi: int) -> List[Tuple[int, object]]:
        worker = threading.get_ident()
        self._begin_read(worker)
        try:
            with self._latch:
                return self.inner.range_query(lo, hi)
        finally:
            self.locks.release(worker, BUFFER)

    def range_many(
        self, ranges: Sequence[Tuple[int, int]]
    ) -> List[List[Tuple[int, object]]]:
        worker = threading.get_ident()
        self._begin_read(worker)
        try:
            with self._latch:
                return [self.inner.range_query(lo, hi) for lo, hi in ranges]
        finally:
            self.locks.release(worker, BUFFER)

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def items(self) -> List[Tuple[int, object]]:
        worker = threading.get_ident()
        self._begin_read(worker)
        try:
            with self._latch:
                return self.inner.items()
        finally:
            self.locks.release(worker, BUFFER)

    def describe(self) -> dict:
        with self._latch:
            doc = self.inner.describe()
        doc["locks"] = self.locks.snapshot()
        doc["locks"].update(self._collector_snapshot())
        return doc

    def check_invariants(self) -> None:
        """Structural invariants of the wrapped index (quiesced check)."""
        with self._latch:
            self.inner.buffer.check_invariants()
            check = getattr(self.inner.backend, "check_invariants", None)
            if check is not None:
                check()
