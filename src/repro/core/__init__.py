"""The SWARE meta-design: buffer, wrapper, configuration, statistics."""

from repro.core.advisor import Recommendation, recommend, recommend_for_sample
from repro.core.buffer import HIT, MISS, TOMBSTONE, FlushBatch, SWAREBuffer
from repro.core.concurrency import LockManager, SWARELockProtocol
from repro.core.concurrent import ConcurrentSortednessAwareIndex
from repro.core.config import SWAREConfig
from repro.core.locks import BlockingLockManager, RWLock
from repro.core.factory import (
    BACKEND_NAMES,
    backend_factory,
    make_baseline_betree,
    make_baseline_btree,
    make_cracking,
    make_learned,
    make_lsm,
    make_sa_betree,
    make_sa_btree,
)
from repro.core.stats import SWAREStats
from repro.core.sware import SortednessAwareIndex, TreeBackend
from repro.core.zonemap import PageZonemaps, Zonemap

__all__ = [
    "Recommendation",
    "recommend",
    "recommend_for_sample",
    "LockManager",
    "SWARELockProtocol",
    "BlockingLockManager",
    "RWLock",
    "ConcurrentSortednessAwareIndex",
    "HIT",
    "MISS",
    "TOMBSTONE",
    "FlushBatch",
    "SWAREBuffer",
    "SWAREConfig",
    "SWAREStats",
    "SortednessAwareIndex",
    "TreeBackend",
    "PageZonemaps",
    "Zonemap",
    "BACKEND_NAMES",
    "backend_factory",
    "make_baseline_betree",
    "make_baseline_btree",
    "make_cracking",
    "make_learned",
    "make_lsm",
    "make_sa_betree",
    "make_sa_btree",
]
