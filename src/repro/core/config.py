"""Configuration for the SWARE meta-design.

Defaults follow the paper's §V "Default Setup" and "SWARE Tuning", scaled
per DESIGN.md: the SWARE-buffer flushes 50% when saturated, query-driven
sorting triggers at 10% of the buffer, Bloom filters get 10 bits per entry
at two levels (global + per page), and the (K,L)-adaptive sort is chosen
when the estimated K < 20% or L < 5% of the buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError


@dataclass(frozen=True)
class SWAREConfig:
    """Tuning knobs of the SWARE-buffer (§IV-C).

    Attributes
    ----------
    buffer_capacity:
        Buffer size in entries. The paper's default (40 MB = 5M entries) is
        1% of the 500M-entry workload; experiments here size it as a
        fraction of the data in the same way.
    page_size:
        Entries per buffer page — the granularity of Zonemaps, per-page
        Bloom filters and flush alignment.
    flush_fraction:
        Portion of the buffer flushed per cycle (paper default 50%).
    query_sorting_threshold:
        Unsorted-tail size (as a fraction of capacity) at which the next
        read query freezes the tail into a query-sorted block; 1.0 disables
        query-driven sorting (the paper's "w/o Q-S" configuration).
    bits_per_entry:
        Bloom-filter budget for both filter levels.
    enable_global_bf / enable_page_bf:
        Ablation switches for Fig. 17 (naive SA has both off; "Global BF"
        keeps only the global filter).
    enable_read_zonemaps:
        Ablation switch for the §V-D Zonemap experiment: when off, point
        lookups scan unsorted pages without consulting page Zonemaps.
    hash_family:
        ``"splitmix64"`` (default) or ``"murmur3"``.
    kl_k_threshold / kl_l_threshold:
        Estimated-sortedness cutoffs below which the flush-time sort uses
        the (K,L)-adaptive algorithm rather than a general stable sort.
    """

    buffer_capacity: int = 4096
    page_size: int = 64
    flush_fraction: float = 0.5
    query_sorting_threshold: float = 0.10
    bits_per_entry: float = 10.0
    enable_global_bf: bool = True
    enable_page_bf: bool = True
    enable_read_zonemaps: bool = True
    hash_family: str = "splitmix64"
    kl_k_threshold: float = 0.20
    kl_l_threshold: float = 0.05

    def __post_init__(self) -> None:
        if self.buffer_capacity < 2:
            raise ConfigError("buffer_capacity must be >= 2")
        if self.page_size < 1:
            raise ConfigError("page_size must be >= 1")
        if self.page_size > self.buffer_capacity:
            raise ConfigError("page_size cannot exceed buffer_capacity")
        if not 0.05 <= self.flush_fraction <= 0.95:
            raise ConfigError("flush_fraction must be within [0.05, 0.95]")
        if not 0.0 < self.query_sorting_threshold <= 1.0:
            raise ConfigError("query_sorting_threshold must be in (0, 1]")
        if self.bits_per_entry <= 0:
            raise ConfigError("bits_per_entry must be positive")
        if self.hash_family not in ("splitmix64", "murmur3"):
            raise ConfigError(f"unknown hash_family {self.hash_family!r}")
        if not 0.0 <= self.kl_k_threshold <= 1.0:
            raise ConfigError("kl_k_threshold must be within [0, 1]")
        if not 0.0 <= self.kl_l_threshold <= 1.0:
            raise ConfigError("kl_l_threshold must be within [0, 1]")

    @property
    def n_pages(self) -> int:
        """Number of whole pages in the buffer."""
        return max(1, self.buffer_capacity // self.page_size)

    def with_(self, **changes) -> "SWAREConfig":
        """A copy with the given fields replaced (convenience for sweeps)."""
        return replace(self, **changes)
