"""Deterministic schedule exploration for the §IV-D lock discipline.

The blocking front-end (:mod:`repro.core.concurrent`) runs real threads,
which makes interesting interleavings rare and unreproducible. This module
replays *seeded* interleavings deterministically: each worker is a small
state machine that advances through the lock-protocol phases of its next
operation (acquire → materialize → release), a seeded scheduler picks
which worker steps next, and every lock acquisition goes through the
*virtual* :class:`~repro.core.concurrency.SWARELockProtocol` — a conflict
blocks the worker (its phase is retried later with fresh state) exactly
where a real thread would wait.

The materialize phase applies the operation to a **real**
:class:`~repro.core.sware.SortednessAwareIndex`, so a schedule exercises
the same structure mutations the threads would perform, in the order the
lock protocol admits them. Three families of checks run:

* **protocol invariants** — ``SWARELockProtocol.check_invariants`` after
  every step (no shared page writers, flush excludes everything);
* **structural invariants** — buffer and backend ``check_invariants``
  after every materialization;
* **linearizability** — each operation commits at its materialize step
  while its locks are held; a sequential oracle (a plain dict) replays the
  commit order, every read is compared against the oracle at its commit
  point, and the final drained index must equal the oracle exactly.

Reader upgrades follow the front-end's discipline: the query-sort trigger
is owned by the harness, an upgrade that keeps conflicting falls back to
releasing the shared lock and re-acquiring exclusively (the timeout path
of the blocking front-end, made deterministic as a retry budget).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.btree.btree import BPlusTree, BPlusTreeConfig
from repro.core.concurrency import (
    BUFFER,
    EXCLUSIVE,
    LockConflict,
    SWARELockProtocol,
)
from repro.core.config import SWAREConfig
from repro.core.sware import SortednessAwareIndex
from repro.errors import ReproError

#: Failed upgrade attempts before a reader falls back to release + X.
UPGRADE_RETRY_BUDGET = 3

#: Consecutive blocked scheduler picks before the schedule is declared
#: deadlocked (a protocol bug — this many retries always make progress).
_DEADLOCK_PATIENCE_FACTOR = 64

Op = Tuple  # ("insert", key, value) | ("delete", key) | ("get", key) | ("range", lo, hi)


class ScheduleViolation(ReproError, AssertionError):
    """A schedule produced a non-linearizable result or stuck state."""


@dataclass
class ScheduleStats:
    """What one seeded schedule did (returned by :func:`run_schedule`)."""

    seed: int
    steps: int = 0
    commits: int = 0
    conflicts: int = 0
    flushes: int = 0
    upgrades: int = 0
    upgrade_fallbacks: int = 0
    reads_checked: int = 0


@dataclass
class _Worker:
    name: str
    program: List[Op]
    idx: int = 0
    phase: str = "idle"
    mode: Optional[str] = None  # "append" | "flush" | "direct"
    page: int = 0
    upgrade_failures: int = 0
    holds_fallback_x: bool = False

    @property
    def done(self) -> bool:
        return self.phase == "idle" and self.idx >= len(self.program)

    @property
    def op(self) -> Op:
        return self.program[self.idx]


def generate_programs(
    seed: int,
    n_workers: int = 3,
    ops_per_worker: int = 12,
    key_space: int = 64,
) -> List[List[Op]]:
    """Seeded mixed-op programs (inserts, lookups, ranges, deletes)."""
    rng = random.Random(seed)
    programs: List[List[Op]] = []
    for worker in range(n_workers):
        program: List[Op] = []
        for _ in range(ops_per_worker):
            roll = rng.random()
            key = rng.randrange(key_space)
            if roll < 0.55:
                program.append(("insert", key, key * 10 + worker + 1))
            elif roll < 0.80:
                program.append(("get", key))
            elif roll < 0.90:
                lo = rng.randrange(key_space)
                program.append(("range", lo, lo + rng.randrange(1, key_space // 4)))
            else:
                program.append(("delete", key))
        programs.append(program)
    return programs


class ScheduleExplorer:
    """Executes one seeded interleaving; see module docstring."""

    def __init__(
        self,
        seed: int,
        programs: Optional[List[List[Op]]] = None,
        config: Optional[SWAREConfig] = None,
        n_workers: int = 3,
        ops_per_worker: int = 12,
        key_space: int = 64,
    ):
        self.seed = seed
        self.rng = random.Random(seed ^ 0x5EED)
        self.config = config or SWAREConfig(
            buffer_capacity=16, page_size=4, query_sorting_threshold=0.25
        )
        if programs is None:
            programs = generate_programs(
                seed, n_workers=n_workers, ops_per_worker=ops_per_worker,
                key_space=key_space,
            )
        self.workers = [
            _Worker(name=f"w{i}", program=program)
            for i, program in enumerate(programs)
        ]
        self.protocol = SWARELockProtocol(n_pages=self.config.n_pages)
        # Query sorting is triggered by the harness (after an upgrade),
        # mirroring the blocking front-end; the inner index never fires
        # its own trigger under a shared lock.
        tree = BPlusTree(BPlusTreeConfig(leaf_capacity=16, internal_capacity=16))
        self.index = SortednessAwareIndex(
            tree, config=self.config.with_(query_sorting_threshold=1.0)
        )
        threshold = self.config.query_sorting_threshold
        self._query_sort_trigger: Optional[int] = (
            None
            if threshold >= 1.0
            else max(1, int(threshold * self.config.buffer_capacity))
        )
        self.oracle: Dict[int, object] = {}
        self.stats = ScheduleStats(seed=seed)

    # -- oracle ----------------------------------------------------------
    def _commit_write(self, op: Op) -> None:
        kind = op[0]
        if kind == "insert":
            self.oracle[op[1]] = op[2]
        else:
            self.oracle.pop(op[1], None)
        self.stats.commits += 1

    def _commit_read(self, op: Op, result: object) -> None:
        kind = op[0]
        if kind == "get":
            expected = self.oracle.get(op[1])
            if result != expected:
                raise ScheduleViolation(
                    f"seed {self.seed}: get({op[1]}) returned {result!r}, "
                    f"oracle has {expected!r}"
                )
        else:
            lo, hi = op[1], op[2]
            expected_items = [
                (key, self.oracle[key])
                for key in sorted(self.oracle)
                if lo <= key <= hi
            ]
            if result != expected_items:
                raise ScheduleViolation(
                    f"seed {self.seed}: range({lo}, {hi}) returned {result!r}, "
                    f"oracle has {expected_items!r}"
                )
        self.stats.reads_checked += 1
        self.stats.commits += 1

    # -- one scheduler step ---------------------------------------------
    def _should_query_sort(self) -> bool:
        trigger = self._query_sort_trigger
        return trigger is not None and self.index.buffer.tail_size >= trigger

    def _pages_held_by_others(self, worker: str) -> bool:
        for page in range(self.config.n_pages):
            holders = self.protocol.locks.holders(f"page:{page}")
            if holders and holders != {worker}:
                return True
        return False

    def _step(self, w: _Worker) -> bool:
        """Advance ``w`` one phase; returns False when it blocked."""
        if w.phase == "idle":
            return self._step_begin(w)
        if w.phase == "write_apply":
            return self._step_write_apply(w)
        if w.phase == "read_locked":
            return self._step_read_locked(w)
        if w.phase == "read_reacquire_x":
            return self._step_read_reacquire(w)
        if w.phase == "read_apply":
            return self._step_read_apply(w)
        raise ReproError(f"unknown phase {w.phase!r}")  # pragma: no cover

    def _step_begin(self, w: _Worker) -> bool:
        op = w.op
        kind = op[0]
        buffer = self.index.buffer
        if kind in ("insert", "delete"):
            tombstone = kind == "delete"
            if tombstone and (
                buffer.is_empty or not buffer.zonemap.may_contain(op[1])
            ):
                # Direct tree delete: flush-class exclusion (the
                # buffer-wide lock doubles as the tree lock).
                try:
                    self.protocol.begin_insert(w.name, triggers_flush=True, page=0)
                except LockConflict:
                    return False
                w.mode = "direct"
            else:
                triggers = len(buffer) + 1 >= self.config.buffer_capacity
                page = min(
                    len(buffer) // self.config.page_size, self.config.n_pages - 1
                )
                try:
                    w.mode = self.protocol.begin_insert(
                        w.name, triggers_flush=triggers, page=page
                    )
                except LockConflict:
                    return False
                w.page = page
            w.phase = "write_apply"
            return True
        # read op
        try:
            self.protocol.begin_query(w.name)
        except LockConflict:
            return False
        w.phase = "read_locked"
        return True

    def _step_write_apply(self, w: _Worker) -> bool:
        op = w.op
        kind = op[0]
        inner = self.index
        if w.mode == "append":
            if kind == "delete":
                inner.stats.deletes += 1
                inner.buffer.add(op[1], None, tombstone=True)
                inner.stats.tombstones_buffered += 1
            else:
                inner.stats.inserts += 1
                inner.buffer.add(op[1], op[2])
            self.protocol.finish_append(w.name, w.page)
        else:  # "flush" or "direct"
            flushes_before = inner.stats.flushes
            if kind == "delete":
                inner.delete(op[1])
            else:
                inner.insert(op[1], op[2])
            self.stats.flushes += inner.stats.flushes - flushes_before
            self.protocol.finish_flush(w.name)
        self._commit_write(op)
        self._check_structure()
        w.mode = None
        w.phase = "idle"
        w.idx += 1
        return True

    def _step_read_locked(self, w: _Worker) -> bool:
        if not self._should_query_sort():
            w.phase = "read_apply"
            return True
        # Query sorting is flush-class: wait for in-flight appenders to
        # drain (they always finish, so blocking here cannot deadlock and
        # does not count against the upgrade budget).
        if self._pages_held_by_others(w.name):
            return False
        try:
            self.protocol.upgrade_for_query_sort(w.name)
        except LockConflict:
            w.upgrade_failures += 1
            if w.upgrade_failures >= UPGRADE_RETRY_BUDGET:
                # Deterministic stand-in for the blocking front-end's
                # upgrade timeout: release S, re-enter exclusively.
                self.protocol.finish_query(w.name)
                w.phase = "read_reacquire_x"
                self.stats.upgrade_fallbacks += 1
                return True  # releasing a lock is progress
            return False
        self.stats.upgrades += 1
        w.phase = "read_apply"
        return True

    def _step_read_reacquire(self, w: _Worker) -> bool:
        if self._pages_held_by_others(w.name):
            return False  # exclusivity here is flush-class too
        try:
            self.protocol.locks.acquire(w.name, BUFFER, EXCLUSIVE)
        except LockConflict:
            return False
        w.holds_fallback_x = True
        w.phase = "read_apply"
        return True

    def _step_read_apply(self, w: _Worker) -> bool:
        op = w.op
        inner = self.index
        exclusive = self.protocol.locks.mode(BUFFER) == EXCLUSIVE
        if exclusive and self._should_query_sort():
            inner.buffer.query_sort()
        if op[0] == "get":
            result = inner.get(op[1])
        else:
            result = inner.range_query(op[1], op[2])
        self._commit_read(op, result)
        self._check_structure()
        if w.holds_fallback_x:
            self.protocol.locks.release(w.name, BUFFER)
            w.holds_fallback_x = False
        else:
            self.protocol.finish_query(w.name)
        w.upgrade_failures = 0
        w.phase = "idle"
        w.idx += 1
        return True

    def _check_structure(self) -> None:
        self.index.buffer.check_invariants()
        self.index.backend.check_invariants()

    # -- the schedule loop ----------------------------------------------
    def run(self) -> ScheduleStats:
        patience = _DEADLOCK_PATIENCE_FACTOR * max(1, len(self.workers))
        blocked_streak = 0
        while True:
            runnable = [w for w in self.workers if not w.done]
            if not runnable:
                break
            worker = self.rng.choice(runnable)
            progressed = self._step(worker)
            self.stats.steps += 1
            self.protocol.check_invariants()
            if progressed:
                blocked_streak = 0
            else:
                self.stats.conflicts += 1
                blocked_streak += 1
                if blocked_streak > patience:
                    raise ScheduleViolation(
                        f"seed {self.seed}: no worker progressed in "
                        f"{blocked_streak} consecutive steps (deadlock)"
                    )
        self._final_checks()
        return self.stats

    def _final_checks(self) -> None:
        # Every lock must be back in the free state.
        if self.protocol.locks.mode(BUFFER) is not None:
            raise ScheduleViolation(f"seed {self.seed}: buffer lock leaked")
        for page in range(self.config.n_pages):
            if self.protocol.locks.mode(f"page:{page}") is not None:
                raise ScheduleViolation(
                    f"seed {self.seed}: page {page} lock leaked"
                )
        # Drain and compare the full final state against the oracle.
        self.index.flush_all()
        self._check_structure()
        expected = sorted(self.oracle.items())
        actual = self.index.items()
        if actual != expected:
            raise ScheduleViolation(
                f"seed {self.seed}: final state diverged from the oracle "
                f"({len(actual)} vs {len(expected)} entries)"
            )


def run_schedule(
    seed: int,
    programs: Optional[List[List[Op]]] = None,
    config: Optional[SWAREConfig] = None,
    **kwargs,
) -> ScheduleStats:
    """Run one seeded interleaving; raises :class:`ScheduleViolation`,
    :class:`~repro.errors.InvariantViolation` or
    :class:`~repro.core.concurrency.LockConflict` on any violation."""
    return ScheduleExplorer(seed, programs=programs, config=config, **kwargs).run()


@dataclass
class ExplorationReport:
    """Aggregate of :func:`explore` (all schedules passed if it exists)."""

    n_schedules: int
    stats: List[ScheduleStats] = field(default_factory=list)

    @property
    def total_commits(self) -> int:
        return sum(s.commits for s in self.stats)

    @property
    def total_conflicts(self) -> int:
        return sum(s.conflicts for s in self.stats)

    @property
    def total_upgrades(self) -> int:
        return sum(s.upgrades for s in self.stats)

    @property
    def total_fallbacks(self) -> int:
        return sum(s.upgrade_fallbacks for s in self.stats)

    @property
    def total_flushes(self) -> int:
        return sum(s.flushes for s in self.stats)


def explore(
    n_schedules: int = 1000,
    base_seed: int = 0,
    config: Optional[SWAREConfig] = None,
    **kwargs,
) -> ExplorationReport:
    """Replay ``n_schedules`` seeded interleavings; raises on the first
    violation, otherwise returns the aggregate report."""
    report = ExplorationReport(n_schedules=n_schedules)
    for offset in range(n_schedules):
        report.stats.append(
            run_schedule(base_seed + offset, config=config, **kwargs)
        )
    return report
