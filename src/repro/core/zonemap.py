"""Zonemaps (small materialized aggregates [Moerkotte 1998]).

The SWARE-buffer keeps min/max Zonemaps at three granularities (§IV-A/B):

* one per buffer page of the unsorted section, used to (i) maintain the
  ``last_sorted_zone`` overlap test on every insert and (ii) skip page scans
  during point lookups;
* one for the whole buffer, so queries outside the buffered key range skip
  the buffer entirely;
* one for the tree (served by the tree's own min/max bookkeeping).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


class Zonemap:
    """A single min/max range that can absorb keys and answer overlap tests."""

    __slots__ = ("min_key", "max_key")

    def __init__(self) -> None:
        self.min_key: Optional[int] = None
        self.max_key: Optional[int] = None

    def update(self, key: int) -> None:
        if self.min_key is None or key < self.min_key:
            self.min_key = key
        if self.max_key is None or key > self.max_key:
            self.max_key = key

    def may_contain(self, key: int) -> bool:
        """False ⇒ the key is definitely outside this zone."""
        if self.min_key is None:
            return False
        return self.min_key <= key <= self.max_key

    def overlaps(self, lo: int, hi: int) -> bool:
        """Does [lo, hi] intersect this zone?"""
        if self.min_key is None:
            return False
        return not (hi < self.min_key or lo > self.max_key)

    def reset(self) -> None:
        self.min_key = None
        self.max_key = None

    @property
    def is_empty(self) -> bool:
        return self.min_key is None

    def as_tuple(self) -> Tuple[Optional[int], Optional[int]]:
        return (self.min_key, self.max_key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Zonemap[{self.min_key}, {self.max_key}]"


class PageZonemaps:
    """Per-page min/max maps over a dense append-only region.

    Page ``i`` covers positions ``[i * page_size, (i+1) * page_size)`` of
    the unsorted section. Appends update the map of the page the position
    falls in; the whole set resets when the section is frozen into a sorted
    block or flushed.
    """

    __slots__ = ("page_size", "_zones")

    def __init__(self, page_size: int):
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        self.page_size = page_size
        self._zones: List[Zonemap] = []

    def observe(self, position: int, key: int) -> None:
        """Record that ``key`` was appended at ``position``."""
        page = position // self.page_size
        while len(self._zones) <= page:
            self._zones.append(Zonemap())
        self._zones[page].update(key)

    def observe_many(self, start: int, keys: Sequence[int]) -> None:
        """Record a contiguous append of ``keys`` beginning at ``start``.

        Equivalent to calling :meth:`observe` position by position, but each
        page absorbs its slice through one min/max pass.
        """
        page_size = self.page_size
        zones = self._zones
        idx = 0
        n = len(keys)
        position = start
        while idx < n:
            page = position // page_size
            take = min(n - idx, (page + 1) * page_size - position)
            while len(zones) <= page:
                zones.append(Zonemap())
            zone = zones[page]
            chunk = keys[idx : idx + take]
            lo = min(chunk)
            hi = max(chunk)
            if zone.min_key is None or lo < zone.min_key:
                zone.min_key = lo
            if zone.max_key is None or hi > zone.max_key:
                zone.max_key = hi
            idx += take
            position += take

    def page_may_contain(self, page: int, key: int) -> bool:
        if page >= len(self._zones):
            return False
        return self._zones[page].may_contain(key)

    def page_overlaps(self, page: int, lo: int, hi: int) -> bool:
        if page >= len(self._zones):
            return False
        return self._zones[page].overlaps(lo, hi)

    @property
    def n_pages(self) -> int:
        return len(self._zones)

    def reset(self) -> None:
        self._zones.clear()
