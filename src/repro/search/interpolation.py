"""Search algorithms over sorted key sequences.

The SWARE read path uses interpolation search on the sorted section(s) of
the buffer (§IV-B): expected O(log log n) steps on near-uniform keys, which
the paper calls "a notable upgrade from binary search". For adversarial key
distributions the paper suggests falling back to binary or exponential
search; :func:`interpolation_search` therefore bounds the number of
interpolation steps and degrades to binary search if it has not converged.

All functions operate on a random-access sequence ``keys`` (anything
supporting ``__len__``/``__getitem__``) restricted to ``[lo, hi)`` and return
the index of the **rightmost** occurrence of ``target`` (the most recent
version, given that buffer entries are stably sorted by (key, arrival)), or
``-1`` when absent. Each also reports how many probe steps it took via an
optional mutable ``steps`` list, which the cost model uses.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, Optional, Sequence

#: Interpolation steps allowed before degrading to binary search. log log n
#: for any realistic n is < 6; a skewed distribution shows up as exceeding
#: this budget.
MAX_INTERPOLATION_STEPS = 16


def binary_search_rightmost(
    keys: Sequence[int],
    target: int,
    lo: int = 0,
    hi: Optional[int] = None,
    steps: Optional[List[int]] = None,
) -> int:
    """Index of the rightmost ``target`` in ``keys[lo:hi]``, or -1."""
    if hi is None:
        hi = len(keys)
    n_steps = 0
    left, right = lo, hi
    while left < right:
        n_steps += 1
        mid = (left + right) // 2
        if keys[mid] <= target:
            left = mid + 1
        else:
            right = mid
    if steps is not None:
        steps.append(n_steps)
    idx = left - 1
    if idx >= lo and keys[idx] == target:
        return idx
    return -1


def interpolation_search(
    keys: Sequence[int],
    target: int,
    lo: int = 0,
    hi: Optional[int] = None,
    steps: Optional[List[int]] = None,
) -> int:
    """Rightmost index of ``target`` in sorted ``keys[lo:hi]``, or -1.

    Runs interpolation probes while the value distribution cooperates and
    falls back to binary search after :data:`MAX_INTERPOLATION_STEPS`.
    """
    if hi is None:
        hi = len(keys)
    left, right = lo, hi - 1
    n_steps = 0
    while left <= right:
        lo_key = keys[left]
        hi_key = keys[right]
        if target < lo_key or target > hi_key:
            if steps is not None:
                steps.append(n_steps)
            return -1
        if lo_key == hi_key:
            # Constant run; every slot equals target (since target is within
            # [lo_key, hi_key]). Rightmost occurrence is ``right``.
            if steps is not None:
                steps.append(n_steps)
            return right
        n_steps += 1
        if n_steps > MAX_INTERPOLATION_STEPS:
            result = binary_search_rightmost(keys, target, left, right + 1, steps=None)
            if steps is not None:
                steps.append(n_steps)
            return result
        # Interpolate the probe position; bias towards the right end so that
        # with duplicates we converge on the rightmost occurrence.
        pos = left + (target - lo_key) * (right - left) // (hi_key - lo_key)
        pos = min(max(pos, left), right)
        probe = keys[pos]
        if probe <= target:
            # Check whether pos is already the rightmost occurrence.
            if probe == target and (pos == right or keys[pos + 1] > target):
                if steps is not None:
                    steps.append(n_steps)
                return pos
            left = pos + 1
        else:
            right = pos - 1
    if steps is not None:
        steps.append(n_steps)
    # left > right: the window is empty and every probe ruled the target
    # out, so it is absent (a probe equal to the target would have returned
    # its rightmost occurrence before shrinking the window past it).
    return -1


def exponential_search_rightmost(
    keys: Sequence[int],
    target: int,
    lo: int = 0,
    hi: Optional[int] = None,
    steps: Optional[List[int]] = None,
) -> int:
    """Unbounded (galloping) search from the left edge; rightmost match.

    Useful when the target is expected near the beginning of the range
    (e.g. range-scan resumption); O(log d) where d is the match distance.
    """
    if hi is None:
        hi = len(keys)
    if lo >= hi:
        if steps is not None:
            steps.append(0)
        return -1
    n_steps = 0
    bound = 1
    while lo + bound < hi and keys[lo + bound] <= target:
        bound *= 2
        n_steps += 1
    left = lo + bound // 2
    right = min(lo + bound + 1, hi)
    result = binary_search_rightmost(keys, target, left, right, steps=None)
    if steps is not None:
        steps.append(n_steps)
    return result


def lower_bound(keys: Sequence[int], target: int, lo: int = 0, hi: Optional[int] = None) -> int:
    """First index whose key is >= target (plain bisect_left wrapper)."""
    if hi is None:
        hi = len(keys)
    return bisect_left(keys, target, lo, hi)


def upper_bound(keys: Sequence[int], target: int, lo: int = 0, hi: Optional[int] = None) -> int:
    """First index whose key is > target (plain bisect_right wrapper)."""
    if hi is None:
        hi = len(keys)
    return bisect_right(keys, target, lo, hi)
