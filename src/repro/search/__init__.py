"""Sorted-sequence search algorithms (interpolation, binary, exponential)."""

from repro.search.interpolation import (
    MAX_INTERPOLATION_STEPS,
    binary_search_rightmost,
    exponential_search_rightmost,
    interpolation_search,
    lower_bound,
    upper_bound,
)

__all__ = [
    "MAX_INTERPOLATION_STEPS",
    "binary_search_rightmost",
    "exponential_search_rightmost",
    "interpolation_search",
    "lower_bound",
    "upper_bound",
]
