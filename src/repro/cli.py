"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``
    Emit a (K,L)-near sorted key collection, one key per line.
``measure``
    Measure the (K,L)-sortedness of a key file (or stdin).
``demo``
    Ingest a generated workload into the SA B+-tree and the baseline
    B+-tree and report the simulated speedup and ingestion statistics.
``experiment``
    Run one of the paper's experiments by name (fig09 … fig21, table1,
    table3, flush_threshold, zonemap_ablation, space, lsm_sortedness) and
    print its report.
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import List, Optional

EXPERIMENTS = [
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "table1",
    "table3",
    "flush_threshold",
    "zonemap_ablation",
    "space",
    "lsm_sortedness",
]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SWARE: sortedness-aware indexing (ICDE 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="emit a (K,L)-near sorted key collection")
    gen.add_argument("--n", type=int, default=10_000)
    gen.add_argument("--k", type=float, default=0.10, help="K fraction in [0,1]")
    gen.add_argument("--l", type=float, default=0.05, help="L fraction in [0,1]")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--scrambled", action="store_true", help="uniform shuffle instead")
    gen.add_argument("--out", type=str, default="-", help="output file (default stdout)")

    meas = sub.add_parser("measure", help="measure sortedness of a key file")
    meas.add_argument("path", nargs="?", default="-", help="file of keys (default stdin)")

    demo = sub.add_parser("demo", help="compare SA B+-tree vs B+-tree on a workload")
    demo.add_argument("--n", type=int, default=20_000)
    demo.add_argument("--k", type=float, default=0.10)
    demo.add_argument("--l", type=float, default=0.05)
    demo.add_argument("--read-fraction", type=float, default=0.5)
    demo.add_argument("--buffer-fraction", type=float, default=0.01)
    demo.add_argument("--seed", type=int, default=7)

    exp = sub.add_parser("experiment", help="run a paper experiment by name")
    exp.add_argument("name", choices=EXPERIMENTS)
    exp.add_argument("--n", type=int, default=None, help="override workload size")

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.sortedness.generator import generate_kl_keys, scrambled_keys

    if args.scrambled:
        keys = scrambled_keys(args.n, seed=args.seed)
    else:
        keys = generate_kl_keys(args.n, args.k, args.l, seed=args.seed)
    text = "\n".join(str(key) for key in keys) + "\n"
    if args.out == "-":
        sys.stdout.write(text)
    else:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {args.n} keys to {args.out}", file=sys.stderr)
    return 0


def _read_keys(path: str) -> List[int]:
    if path == "-":
        lines = sys.stdin.read().split()
    else:
        with open(path) as handle:
            lines = handle.read().split()
    return [int(token) for token in lines]


def _cmd_measure(args: argparse.Namespace) -> int:
    from repro.sortedness.metrics import measure_sortedness

    keys = _read_keys(args.path)
    if not keys:
        print("no keys to measure", file=sys.stderr)
        return 1
    report = measure_sortedness(keys)
    print(f"n           : {report.n}")
    print(f"K           : {report.k} ({report.k_fraction:.2%})")
    print(f"L           : {report.l} ({report.l_fraction:.2%})")
    print(f"inversions  : {report.inversions}")
    print(f"degree      : {report.degree()}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.bench.experiments import common
    from repro.bench.runner import run_phases, speedup

    keys = common.keys_for(args.n, args.k, args.l, seed=args.seed)
    ops = common.mixed_ops(keys, args.read_fraction, seed=args.seed)
    base = run_phases(common.baseline_btree_factory(), [("mixed", ops)], label="B+")
    sa = run_phases(
        common.sa_btree_factory(common.buffer_config(args.n, args.buffer_fraction)),
        [("mixed", ops)],
        label="SA",
    )
    print(
        f"workload: n={args.n}, K={args.k:.0%}, L={args.l:.0%}, "
        f"{args.read_fraction:.0%} reads, buffer={args.buffer_fraction:.1%}"
    )
    print(f"B+-tree    : {base.sim_ns / 1e6:9.2f} ms simulated")
    print(f"SA B+-tree : {sa.sim_ns / 1e6:9.2f} ms simulated")
    print(f"speedup    : {speedup(base, sa):.2f}x")
    stats = sa.sware_stats
    print(
        f"ingestion  : {stats['bulk_loaded_entries']:.0f} bulk-loaded, "
        f"{stats['top_inserted_entries']:.0f} top-inserted, "
        f"{stats['flushes']:.0f} flushes"
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    module = importlib.import_module(f"repro.bench.experiments.{args.name}")
    kwargs = {}
    if args.n is not None:
        kwargs["n"] = args.n
    result = module.run(**kwargs)
    print(result.report)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "generate": _cmd_generate,
        "measure": _cmd_measure,
        "demo": _cmd_demo,
        "experiment": _cmd_experiment,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
