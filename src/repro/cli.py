"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``
    Emit a (K,L)-near sorted key collection, one key per line.
``measure``
    Measure the (K,L)-sortedness of a key file (or stdin).
``demo``
    Ingest a generated workload into the SA B+-tree and the baseline
    B+-tree and report the simulated speedup and ingestion statistics.
``experiment``
    Run one of the paper's experiments by name (fig09 … fig21, table1,
    table3, flush_threshold, zonemap_ablation, space, lsm_sortedness) and
    print its report. With ``--json PATH`` the run is observed through
    ``repro.obs`` and a schema-valid ``BENCH_<name>.json`` telemetry
    artifact (per-phase sim/wall ns, counters, latency percentiles) is
    written to PATH and to the results directory.
``bench-batch``
    Run the batch-operation throughput bench (per-op replay vs the batch
    entry points) and, with ``--json``, write its ``BENCH_batch_ops.json``
    telemetry artifact — the numbers the CI perf gate tracks.
``bench-concurrent``
    Run the thread-safe front-end under N threads of mixed put/get/range
    ops (invariants checked at exit) and, with ``--json``, write the
    ``BENCH_concurrent.json`` telemetry artifact.
``bench-kernels``
    Run every repro.kernels hot-path kernel under both backends (numpy
    vs pure Python) plus an end-to-end SA B+-tree batch workload, and,
    with ``--json``, write the ``BENCH_kernels.json`` telemetry artifact.
``bench-sosd``
    SOSD-style cross-backend benchmark: every registered backend
    (SA B+-tree, B+-tree, Bε-tree, LSM, learned, cracking) over every
    dataset family (books/osm/fb per sortedness regime, wiki/tpch natural
    streams, real SOSD binaries via ``REPRO_SOSD_DIR``), ranked by
    simulated I/O cost with measured per-dataset (K,L). With ``--json``
    it writes the ``BENCH_sosd.json`` telemetry artifact the CI
    sosd-smoke perf gate tracks.
``perf-gate``
    Compare the throughput gauges of two bench artifacts (committed
    baseline vs fresh run); exits non-zero on regressions beyond the
    tolerance.
``recover``
    Rebuild an index from a checkpoint file plus a write-ahead-log tail
    (crash restart), verify its invariants, and print the recovery report.
    With ``--sharded`` the argument is a sharded root directory instead:
    every shard is recovered from its own checkpoint + WAL and the
    per-shard reports are printed. ``--rebuild-threshold N`` routes WAL
    tails of N+ records through the offline rebuild fast path.
``rebuild``
    Offline index reconstruction: stream compressed key runs out of a
    checkpoint (+ optional WAL tail), k-way merge them while still
    delta-encoded, and bulk-load a fresh gapped B+-tree. ``--out`` writes
    the rebuilt tree as a new checkpoint (atomic tmp + rename).
``bench-rebuild``
    Measure checkpoint space amplification (v2 compressed vs v1 raw page
    format, per SOSD-like family) and rebuild-vs-replay recovery
    throughput at a long WAL tail; with ``--json`` writes the
    ``BENCH_rebuild.json`` artifact the CI rebuild-smoke perf gate tracks.
``bench-space``
    The space experiment with perf-gate plumbing: ``space_amp_*`` gauges
    and, with ``--json``, the ``BENCH_space.json`` telemetry artifact.
``serve``
    Boot the sharded asyncio index server (``repro.net``): N range
    partitions under one root, each with its own WAL + checkpoints,
    behind the length-prefixed binary protocol with group-commit write
    acknowledgement.
``bench-serve``
    Closed/open-loop load generator against a self-hosted (or remote)
    sharded server: N concurrent client connections, latency
    percentiles, ``serve_ops_per_s`` throughput gauge, scatter-gather
    results verified against a single-node oracle. With ``--json`` it
    writes the ``BENCH_serve.json`` telemetry artifact the CI
    serve-smoke perf gate tracks.
``stats``
    Run an instrumented workload (or load a ``--from`` artifact) and render
    the metrics registry in Prometheus text exposition format.
``trace``
    Run a small instrumented workload with event tracing enabled and print
    the structured event timeline (flushes, sorts, bulk loads, splits).
    With ``--perfetto PATH`` the causal span tree is also written as a
    Chrome trace-event JSON document loadable in https://ui.perfetto.dev.
``doctor``
    Run a seeded scenario (``healthy`` or ``drift``) under full monitoring
    — or load a saved ``BENCH_*.json`` artifact with ``--from`` — evaluate
    the streaming health rules, and print a findings report with
    severities and remediation hints keyed to the advisor's knobs.
``top``
    Run a monitored workload on a background thread and live-refresh a
    terminal dashboard of the monitor feeds (sortedness drift, buffer
    fill, flush routing, Bloom FPR, fsync latency, lock contention).
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import List, Optional

EXPERIMENTS = [
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "table1",
    "table3",
    "flush_threshold",
    "zonemap_ablation",
    "space",
    "lsm_sortedness",
    "batch_ops",
    "concurrent_ops",
    "kernels",
    "nodes",
    "sosd",
    "rebuild",
]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SWARE: sortedness-aware indexing (ICDE 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="emit a (K,L)-near sorted key collection")
    gen.add_argument("--n", type=int, default=10_000)
    gen.add_argument("--k", type=float, default=0.10, help="K fraction in [0,1]")
    gen.add_argument("--l", type=float, default=0.05, help="L fraction in [0,1]")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--scrambled", action="store_true", help="uniform shuffle instead")
    gen.add_argument("--out", type=str, default="-", help="output file (default stdout)")

    meas = sub.add_parser("measure", help="measure sortedness of a key file")
    meas.add_argument("path", nargs="?", default="-", help="file of keys (default stdin)")

    demo = sub.add_parser("demo", help="compare SA B+-tree vs B+-tree on a workload")
    demo.add_argument("--n", type=int, default=20_000)
    demo.add_argument("--k", type=float, default=0.10)
    demo.add_argument("--l", type=float, default=0.05)
    demo.add_argument("--read-fraction", type=float, default=0.5)
    demo.add_argument("--buffer-fraction", type=float, default=0.01)
    demo.add_argument("--seed", type=int, default=7)

    exp = sub.add_parser("experiment", help="run a paper experiment by name")
    exp.add_argument("name", choices=EXPERIMENTS)
    exp.add_argument("--n", type=int, default=None, help="override workload size")
    exp.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="PATH",
        help="observe the run and write the BENCH_<name>.json telemetry artifact",
    )
    exp.add_argument(
        "--profile",
        action="store_true",
        help="sample-profile the run and print the per-layer time table",
    )

    bench = sub.add_parser(
        "bench-batch", help="batch-operation throughput bench (perf-gate numbers)"
    )
    bench.add_argument("--n", type=int, default=None, help="override workload size")
    bench.add_argument("--batch", type=int, default=None, help="override batch size")
    bench.add_argument(
        "--repeats", type=int, default=None, help="best-of repeats per config"
    )
    bench.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="PATH",
        help="observe the run and write the BENCH_batch_ops.json telemetry artifact",
    )
    bench.add_argument(
        "--profile",
        action="store_true",
        help="sample-profile the run and print the per-layer time table",
    )

    conc = sub.add_parser(
        "bench-concurrent",
        help="thread-safe front-end under N threads of mixed ops",
    )
    conc.add_argument("--n", type=int, default=None, help="override workload size")
    conc.add_argument(
        "--threads",
        type=str,
        default=None,
        metavar="LIST",
        help="comma-separated thread counts (default 1,2,4)",
    )
    conc.add_argument(
        "--repeats", type=int, default=None, help="best-of repeats per config"
    )
    conc.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="PATH",
        help="observe the run and write the BENCH_concurrent.json telemetry artifact",
    )
    conc.add_argument(
        "--profile",
        action="store_true",
        help="sample-profile the run and print the per-layer time table",
    )

    kern = sub.add_parser(
        "bench-kernels",
        help="kernel backend bench: numpy vs python on every hot-path kernel",
    )
    kern.add_argument("--n", type=int, default=None, help="override workload size")
    kern.add_argument(
        "--metric-n", type=int, default=None, help="override metric workload size"
    )
    kern.add_argument(
        "--repeats", type=int, default=None, help="best-of repeats per config"
    )
    kern.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="PATH",
        help="observe the run and write the BENCH_kernels.json telemetry artifact",
    )
    kern.add_argument(
        "--profile",
        action="store_true",
        help="sample-profile the run and print the per-layer time table",
    )

    nodes = sub.add_parser(
        "bench-nodes",
        help="gapped-node micro-bench: intra-node search, batch descent, splits",
    )
    nodes.add_argument("--n", type=int, default=None, help="override workload size")
    nodes.add_argument("--batch", type=int, default=None, help="override batch size")
    nodes.add_argument(
        "--repeats", type=int, default=None, help="best-of repeats per config"
    )
    nodes.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="PATH",
        help="observe the run and write the BENCH_nodes.json telemetry artifact",
    )
    nodes.add_argument(
        "--profile",
        action="store_true",
        help="sample-profile the run and print the per-layer time table",
    )

    sosd = sub.add_parser(
        "bench-sosd",
        help="SOSD-style cross-backend bench: SWARE vs trees/learned/cracking",
    )
    sosd.add_argument("--n", type=int, default=None, help="override workload size")
    sosd.add_argument(
        "--lookups", type=int, default=None, help="point lookups per dataset"
    )
    sosd.add_argument(
        "--ranges", type=int, default=None, help="range scans per dataset"
    )
    sosd.add_argument(
        "--backends",
        type=str,
        default=None,
        metavar="LIST",
        help="comma-separated backend names (default: all registered)",
    )
    sosd.add_argument(
        "--regimes",
        type=str,
        default=None,
        metavar="LIST",
        help="comma-separated sortedness regimes for the set families "
        "(default near_sorted,scrambled)",
    )
    sosd.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="PATH",
        help="observe the run and write the BENCH_sosd.json telemetry artifact",
    )
    sosd.add_argument(
        "--profile",
        action="store_true",
        help="sample-profile the run and print the per-layer time table",
    )

    brebuild = sub.add_parser(
        "bench-rebuild",
        help="checkpoint compression + offline rebuild bench (perf-gate numbers)",
    )
    brebuild.add_argument("--n", type=int, default=None, help="checkpointed keys")
    brebuild.add_argument(
        "--tail", type=int, default=None, help="WAL tail records (default 100000)"
    )
    brebuild.add_argument(
        "--space-n", type=int, default=None, help="keys per family in the space sweep"
    )
    brebuild.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="PATH",
        help="observe the run and write the BENCH_rebuild.json telemetry artifact",
    )
    brebuild.add_argument(
        "--profile",
        action="store_true",
        help="sample-profile the run and print the per-layer time table",
    )

    bspace = sub.add_parser(
        "bench-space",
        help="space utilization bench (space_amp_* gauges, BENCH_space.json)",
    )
    bspace.add_argument("--n", type=int, default=None, help="override workload size")
    bspace.add_argument(
        "--buffer-fraction", type=float, default=None, help="SA buffer sizing"
    )
    bspace.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="PATH",
        help="observe the run and write the BENCH_space.json telemetry artifact",
    )
    bspace.add_argument(
        "--profile",
        action="store_true",
        help="sample-profile the run and print the per-layer time table",
    )

    gate = sub.add_parser(
        "perf-gate", help="compare throughput gauges of two bench artifacts"
    )
    gate.add_argument("baseline", help="committed baseline BENCH_*.json")
    gate.add_argument("current", help="freshly measured BENCH_*.json")
    gate.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="allowed slowdown factor (default 2.0)",
    )

    rec = sub.add_parser(
        "recover", help="rebuild an index from checkpoint + WAL after a crash"
    )
    rec.add_argument("checkpoint", help="checkpoint file written by CheckpointStore")
    rec.add_argument(
        "--wal", type=str, default=None, metavar="PATH", help="write-ahead log to replay"
    )
    rec.add_argument(
        "--slot-size", type=int, default=None, help="checkpoint slot size (default 4096)"
    )
    rec.add_argument(
        "--sharded",
        action="store_true",
        help="treat the argument as a sharded root directory (repro.net layout)",
    )
    rec.add_argument(
        "--rebuild-threshold",
        type=int,
        default=None,
        metavar="N",
        help="WAL tails of >= N records recover via the offline rebuild "
        "fast path (merge + bulk load) instead of per-op replay",
    )

    rebuild = sub.add_parser(
        "rebuild",
        help="offline index reconstruction: checkpoint + WAL tail -> fresh "
        "bulk-loaded tree (compressed-key merge)",
    )
    rebuild.add_argument("checkpoint", help="checkpoint file written by CheckpointStore")
    rebuild.add_argument(
        "--wal", type=str, default=None, metavar="PATH", help="WAL tail to merge in"
    )
    rebuild.add_argument(
        "--out",
        type=str,
        default=None,
        metavar="PATH",
        help="also write the rebuilt tree as a fresh checkpoint here "
        "(atomic tmp + rename)",
    )
    rebuild.add_argument(
        "--slot-size", type=int, default=None, help="checkpoint slot size (default 4096)"
    )
    rebuild.add_argument(
        "--no-compress",
        action="store_true",
        help="write --out in the v1 raw-key page format instead of v2",
    )

    serve = sub.add_parser(
        "serve", help="boot the sharded asyncio index server"
    )
    serve.add_argument("root", help="sharded root directory (created if absent)")
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7437)
    serve.add_argument("--shards", type=int, default=4)
    serve.add_argument(
        "--fsync",
        choices=["always", "batch", "never"],
        default="batch",
        help="WAL fsync policy; 'batch' enables group-commit acks (default)",
    )
    serve.add_argument(
        "--split-threshold",
        type=int,
        default=50_000,
        help="live entries per shard before it splits (0 disables)",
    )
    serve.add_argument(
        "--key-range",
        type=int,
        nargs=2,
        default=(0, 1 << 20),
        metavar=("LO", "HI"),
        help="expected key range seeding the initial shard boundaries",
    )

    bserve = sub.add_parser(
        "bench-serve",
        help="load-generate against the sharded server (perf-gate numbers)",
    )
    bserve.add_argument("--clients", type=int, default=4)
    bserve.add_argument("--ops", type=int, default=1000, help="ops per client")
    bserve.add_argument(
        "--arrival", choices=["closed", "open"], default="closed"
    )
    bserve.add_argument(
        "--open-rate", type=float, default=2000.0, help="per-client ops/s (open loop)"
    )
    bserve.add_argument("--shards", type=int, default=4)
    bserve.add_argument(
        "--split-threshold", type=int, default=0, help="0 = no splits mid-bench"
    )
    bserve.add_argument(
        "--fsync", choices=["always", "batch", "never"], default="batch"
    )
    bserve.add_argument("--key-space", type=int, default=50_000)
    bserve.add_argument("--seed", type=int, default=1234)
    bserve.add_argument(
        "--host",
        type=str,
        default=None,
        help="target an already-running server instead of self-hosting",
    )
    bserve.add_argument("--port", type=int, default=None)
    bserve.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the single-node oracle comparison",
    )
    bserve.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="PATH",
        help="write the BENCH_serve.json telemetry artifact",
    )

    stats = sub.add_parser(
        "stats", help="render observability metrics in Prometheus text format"
    )
    stats.add_argument("--n", type=int, default=20_000)
    stats.add_argument("--k", type=float, default=0.10)
    stats.add_argument("--l", type=float, default=0.05)
    stats.add_argument("--read-fraction", type=float, default=0.5)
    stats.add_argument("--seed", type=int, default=7)
    stats.add_argument(
        "--from",
        dest="from_json",
        type=str,
        default=None,
        metavar="PATH",
        help="render a saved BENCH_*.json artifact instead of running a workload",
    )
    stats.add_argument(
        "--human", action="store_true", help="histogram summary table instead"
    )

    trace = sub.add_parser("trace", help="print a structured event timeline")
    trace.add_argument("--n", type=int, default=5_000)
    trace.add_argument("--k", type=float, default=0.10)
    trace.add_argument("--l", type=float, default=0.05)
    trace.add_argument("--read-fraction", type=float, default=0.5)
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument("--limit", type=int, default=200, help="max events to print")
    trace.add_argument(
        "--perfetto",
        type=str,
        default=None,
        metavar="PATH",
        help="also write the causal trace as Chrome trace-event JSON "
        "(loadable in ui.perfetto.dev)",
    )

    doctor = sub.add_parser(
        "doctor", help="diagnose a run: evaluate health rules, print findings"
    )
    doctor.add_argument(
        "--from",
        dest="from_json",
        type=str,
        default=None,
        metavar="PATH",
        help="evaluate a saved BENCH_*.json artifact instead of running",
    )
    doctor.add_argument(
        "--scenario",
        choices=["healthy", "drift"],
        default="healthy",
        help="seeded workload to run and diagnose (default healthy)",
    )
    doctor.add_argument("--n", type=int, default=20_000)
    doctor.add_argument("--seed", type=int, default=7)
    doctor.add_argument("--read-fraction", type=float, default=0.3)
    doctor.add_argument(
        "--buffer-fraction",
        type=float,
        default=None,
        help="override the scenario's buffer sizing",
    )
    doctor.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="PATH",
        help="write the machine-readable findings report",
    )
    doctor.add_argument(
        "--bench",
        type=str,
        default=None,
        metavar="PATH",
        help="also write the scenario's full BENCH telemetry artifact",
    )
    doctor.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when any warning/critical finding fires",
    )

    top = sub.add_parser(
        "top", help="live terminal dashboard of the streaming monitor feeds"
    )
    top.add_argument(
        "--scenario",
        choices=["healthy", "drift"],
        default="drift",
        help="seeded workload to watch (default drift)",
    )
    top.add_argument("--n", type=int, default=20_000)
    top.add_argument("--seed", type=int, default=7)
    top.add_argument("--read-fraction", type=float, default=0.3)
    top.add_argument(
        "--interval", type=float, default=0.5, help="seconds between frames"
    )
    top.add_argument(
        "--frames", type=int, default=None, help="stop after N frames (default: run end)"
    )
    top.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of clearing the screen (logs, CI)",
    )

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.sortedness.generator import generate_kl_keys, scrambled_keys

    if args.scrambled:
        keys = scrambled_keys(args.n, seed=args.seed)
    else:
        keys = generate_kl_keys(args.n, args.k, args.l, seed=args.seed)
    text = "\n".join(str(key) for key in keys) + "\n"
    if args.out == "-":
        sys.stdout.write(text)
    else:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {args.n} keys to {args.out}", file=sys.stderr)
    return 0


def _read_keys(path: str) -> List[int]:
    if path == "-":
        lines = sys.stdin.read().split()
    else:
        with open(path) as handle:
            lines = handle.read().split()
    return [int(token) for token in lines]


def _cmd_measure(args: argparse.Namespace) -> int:
    from repro.sortedness.metrics import measure_sortedness

    keys = _read_keys(args.path)
    if not keys:
        print("no keys to measure", file=sys.stderr)
        return 1
    report = measure_sortedness(keys)
    print(f"n           : {report.n}")
    print(f"K           : {report.k} ({report.k_fraction:.2%})")
    print(f"L           : {report.l} ({report.l_fraction:.2%})")
    print(f"inversions  : {report.inversions}")
    print(f"degree      : {report.degree()}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.bench.experiments import common
    from repro.bench.runner import run_phases, speedup

    keys = common.keys_for(args.n, args.k, args.l, seed=args.seed)
    ops = common.mixed_ops(keys, args.read_fraction, seed=args.seed)
    base = run_phases(common.baseline_btree_factory(), [("mixed", ops)], label="B+")
    sa = run_phases(
        common.sa_btree_factory(common.buffer_config(args.n, args.buffer_fraction)),
        [("mixed", ops)],
        label="SA",
    )
    print(
        f"workload: n={args.n}, K={args.k:.0%}, L={args.l:.0%}, "
        f"{args.read_fraction:.0%} reads, buffer={args.buffer_fraction:.1%}"
    )
    print(f"B+-tree    : {base.sim_ns / 1e6:9.2f} ms simulated")
    print(f"SA B+-tree : {sa.sim_ns / 1e6:9.2f} ms simulated")
    print(f"speedup    : {speedup(base, sa):.2f}x")
    stats = sa.sware_stats
    print(
        f"ingestion  : {stats['bulk_loaded_entries']:.0f} bulk-loaded, "
        f"{stats['top_inserted_entries']:.0f} top-inserted, "
        f"{stats['flushes']:.0f} flushes"
    )
    return 0


def _run_experiment_with_telemetry(
    name: str,
    kwargs: dict,
    json_path: Optional[str],
    artifact_name: Optional[str] = None,
    profile: bool = False,
) -> int:
    """Run an experiment module, optionally writing its bench artifact.

    ``profile`` samples the run with the obs v2 profiler and prints the
    per-layer wall-time table; with ``--json`` the profile section also
    lands in the artifact.
    """
    module = importlib.import_module(f"repro.bench.experiments.{name}")
    if json_path is None and not profile:
        result = module.run(**kwargs)
        print(result.report)
        return 0

    from pathlib import Path

    from repro.bench.telemetry import (
        build_bench_artifact,
        save_bench_artifact,
        validate_bench_artifact,
    )
    from repro.obs import Observability, SamplingProfiler, observe

    obs = Observability(trace=True)
    if profile:
        obs.profiler = SamplingProfiler()
        obs.profiler.start()
    try:
        with observe(obs):
            result = module.run(**kwargs)
    finally:
        if obs.profiler is not None:
            obs.profiler.stop()
    print(result.report)
    if obs.profiler is not None:
        print("profile (sampled at %.0f Hz):" % obs.profiler.hz)
        print(obs.profiler.format_table())
    if obs.tracer.dropped:
        print(
            f"note: trace ring truncated — {obs.tracer.dropped} events dropped",
            file=sys.stderr,
        )
    if json_path is None:
        return 0
    # Experiments may carry structured metadata for the artifact (e.g. the
    # per-dataset measured (K,L) blocks of bench-sosd).
    extra = getattr(result, "artifact_extra", None)
    doc = build_bench_artifact(artifact_name or name, obs, extra=extra)
    errors = validate_bench_artifact(doc)
    if errors:  # pragma: no cover - a bug, not an input error
        for error in errors:
            print(f"invalid bench artifact: {error}", file=sys.stderr)
        return 1
    save_bench_artifact(doc, Path(json_path))
    default_path = save_bench_artifact(doc)
    print(f"wrote telemetry to {json_path} and {default_path}", file=sys.stderr)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    kwargs = {}
    if args.n is not None:
        kwargs["n"] = args.n
    return _run_experiment_with_telemetry(
        args.name, kwargs, args.json, profile=args.profile
    )


def _cmd_bench_batch(args: argparse.Namespace) -> int:
    kwargs = {}
    if args.n is not None:
        kwargs["n"] = args.n
    if args.batch is not None:
        kwargs["batch"] = args.batch
    if args.repeats is not None:
        kwargs["repeats"] = args.repeats
    return _run_experiment_with_telemetry(
        "batch_ops", kwargs, args.json, profile=args.profile
    )


def _cmd_bench_concurrent(args: argparse.Namespace) -> int:
    kwargs = {}
    if args.n is not None:
        kwargs["n"] = args.n
    if args.threads is not None:
        kwargs["threads"] = tuple(
            int(token) for token in args.threads.split(",") if token
        )
    if args.repeats is not None:
        kwargs["repeats"] = args.repeats
    return _run_experiment_with_telemetry(
        "concurrent_ops",
        kwargs,
        args.json,
        artifact_name="concurrent",
        profile=args.profile,
    )


def _cmd_bench_kernels(args: argparse.Namespace) -> int:
    kwargs = {}
    if args.n is not None:
        kwargs["n"] = args.n
    if args.metric_n is not None:
        kwargs["metric_n"] = args.metric_n
    if args.repeats is not None:
        kwargs["repeats"] = args.repeats
    return _run_experiment_with_telemetry(
        "kernels", kwargs, args.json, profile=args.profile
    )


def _cmd_bench_nodes(args: argparse.Namespace) -> int:
    kwargs = {}
    if args.n is not None:
        kwargs["n"] = args.n
    if args.batch is not None:
        kwargs["batch"] = args.batch
    if args.repeats is not None:
        kwargs["repeats"] = args.repeats
    return _run_experiment_with_telemetry(
        "nodes", kwargs, args.json, profile=args.profile
    )


def _cmd_bench_sosd(args: argparse.Namespace) -> int:
    kwargs = {}
    if args.n is not None:
        kwargs["n"] = args.n
    if args.lookups is not None:
        kwargs["n_lookups"] = args.lookups
    if args.ranges is not None:
        kwargs["n_ranges"] = args.ranges
    if args.backends is not None:
        kwargs["backends"] = tuple(
            token.strip() for token in args.backends.split(",") if token.strip()
        )
    if args.regimes is not None:
        kwargs["regimes"] = tuple(
            token.strip() for token in args.regimes.split(",") if token.strip()
        )
    return _run_experiment_with_telemetry(
        "sosd", kwargs, args.json, profile=args.profile
    )


def _cmd_perf_gate(args: argparse.Namespace) -> int:
    import json

    from repro.bench.perfgate import compare_throughputs, format_gate_report

    docs = []
    for path in (args.baseline, args.current):
        try:
            with open(path) as handle:
                docs.append(json.load(handle))
        except OSError as exc:
            print(f"cannot read {path}: {exc.strerror}", file=sys.stderr)
            return 2
        except json.JSONDecodeError as exc:
            print(f"{path} is not valid JSON: {exc}", file=sys.stderr)
            return 2
    baseline, current = docs
    failures = compare_throughputs(baseline, current, tolerance=args.tolerance)
    print(format_gate_report(baseline, current, failures, args.tolerance))
    return 1 if failures else 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.storage.pagefile import DEFAULT_SLOT_SIZE, CheckpointStore

    if args.sharded:
        return _recover_sharded_root(args.checkpoint)
    slot_size = args.slot_size if args.slot_size is not None else DEFAULT_SLOT_SIZE
    store = CheckpointStore(args.checkpoint, slot_size=slot_size)
    try:
        index, report = store.recover(
            wal_path=args.wal, rebuild_threshold=args.rebuild_threshold
        )
    except ReproError as exc:
        print(f"recovery failed: {exc}", file=sys.stderr)
        return 1
    check = getattr(index.backend, "check_invariants", None)
    if check is not None:
        check()
    print(report.describe())
    return 0


def _cmd_rebuild(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.storage.pagefile import DEFAULT_SLOT_SIZE
    from repro.storage.rebuild import rebuild_index

    slot_size = args.slot_size if args.slot_size is not None else DEFAULT_SLOT_SIZE
    try:
        index, report = rebuild_index(
            args.checkpoint,
            args.wal,
            out_path=args.out,
            slot_size=slot_size,
            compress=not args.no_compress,
        )
    except ReproError as exc:
        print(f"rebuild failed: {exc}", file=sys.stderr)
        return 1
    check = getattr(index.backend, "check_invariants", None)
    if check is not None:
        check()
    print(report.describe())
    return 0


def _cmd_bench_rebuild(args: argparse.Namespace) -> int:
    kwargs = {}
    if args.n is not None:
        kwargs["n"] = args.n
    if args.tail is not None:
        kwargs["tail"] = args.tail
    if args.space_n is not None:
        kwargs["space_n"] = args.space_n
    return _run_experiment_with_telemetry(
        "rebuild", kwargs, args.json, profile=args.profile
    )


def _cmd_bench_space(args: argparse.Namespace) -> int:
    kwargs = {}
    if args.n is not None:
        kwargs["n"] = args.n
    if args.buffer_fraction is not None:
        kwargs["buffer_fraction"] = args.buffer_fraction
    return _run_experiment_with_telemetry(
        "space", kwargs, args.json, profile=args.profile
    )


def _recover_sharded_root(root: str) -> int:
    from repro.errors import ReproError
    from repro.net.sharded import recover_sharded

    try:
        index, reports = recover_sharded(root)
    except ReproError as exc:
        print(f"sharded recovery failed: {exc}", file=sys.stderr)
        return 1
    try:
        total = 0
        for shard_id in sorted(reports):
            report = reports[shard_id]
            print(f"--- shard {shard_id} ---")
            print(report.describe())
        for shard in index._shards:
            check = getattr(shard.index.backend, "check_invariants", None)
            if check is not None:
                check()
            total += index._shard_size(shard)
        print(f"recovered {len(reports)} shards, {total} live entries")
    finally:
        index.close()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import os

    from repro.core.config import SWAREConfig
    from repro.errors import ReproError
    from repro.net.server import IndexServer
    from repro.net.sharded import (
        MANIFEST_NAME,
        ShardedConfig,
        ShardedSortednessAwareIndex,
        recover_sharded,
    )

    try:
        if os.path.exists(os.path.join(args.root, MANIFEST_NAME)):
            index, reports = recover_sharded(args.root)
            print(f"recovered {len(reports)} shards from {args.root}", file=sys.stderr)
        else:
            index = ShardedSortednessAwareIndex(
                args.root,
                config=ShardedConfig(
                    n_shards=args.shards,
                    split_threshold=args.split_threshold,
                    fsync_policy=args.fsync,
                    initial_key_range=tuple(args.key_range),
                    index_config=SWAREConfig(),
                ),
            )
    except ReproError as exc:
        print(f"cannot open {args.root}: {exc}", file=sys.stderr)
        return 1

    server = IndexServer(index, host=args.host, port=args.port)

    async def _serve() -> None:
        await server.start()
        print(
            f"serving {index.n_shards} shards on {server.host}:{server.port} "
            f"(fsync={index.config.fsync_policy})",
            file=sys.stderr,
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    import json

    from repro.net.loadgen import LoadGenConfig, run_load
    from repro.obs import Observability, observe

    cfg = LoadGenConfig(
        clients=args.clients,
        ops_per_client=args.ops,
        arrival=args.arrival,
        open_rate=args.open_rate,
        key_space=args.key_space,
        seed=args.seed,
        shards=args.shards,
        split_threshold=args.split_threshold,
        fsync_policy=args.fsync,
        verify=not args.no_verify,
    )
    obs = Observability(trace=True)
    with observe(obs):
        summary = run_load(cfg, obs=obs, host=args.host, port=args.port)

    print(
        f"{summary['arrival']} loop: {summary['clients']} clients x "
        f"{args.ops} ops -> {summary['total_ops']} ops in "
        f"{summary['wall_s']:.2f}s = {summary['ops_per_s']:.0f} ops/s "
        f"({summary['shards']} shards, {summary['splits']} splits, "
        f"fsync={summary['fsync_policy']})"
    )
    for kind, stats in sorted(summary["latency"].items()):
        if not stats["n"]:
            # The kind never fired this run; percentiles are null, not 0.
            print(f"  {kind:9s} n=     0  (no samples)")
            continue
        print(
            f"  {kind:9s} n={stats['n']:6.0f}  p50={stats['p50_ns'] / 1e6:7.2f}ms  "
            f"p95={stats['p95_ns'] / 1e6:7.2f}ms  p99={stats['p99_ns'] / 1e6:7.2f}ms"
        )
    if cfg.verify:
        print(f"oracle: {summary['oracle_checks']} scatter-gather checks passed")

    if args.json is not None:
        from repro.bench.telemetry import (
            build_bench_artifact,
            save_bench_artifact,
            validate_bench_artifact,
        )

        doc = build_bench_artifact("serve", obs, extra={"summary": summary})
        problems = validate_bench_artifact(doc)
        if problems:
            for problem in problems:
                print(f"artifact invalid: {problem}", file=sys.stderr)
            return 1
        path = save_bench_artifact(doc, args.json)
        with open(path) as handle:
            json.load(handle)  # sanity: what we wrote parses
        print(f"wrote {path}")
    return 0


def _run_observed_demo(args: argparse.Namespace, obs) -> None:
    """The `stats`/`trace` workload: one observed SA B+-tree mixed run."""
    from repro.bench.experiments import common
    from repro.bench.runner import run_phases
    from repro.obs import observe

    keys = common.keys_for(args.n, args.k, args.l, seed=args.seed)
    ops = common.mixed_ops(keys, args.read_fraction, seed=args.seed)
    with observe(obs):
        run_phases(
            common.sa_btree_factory(common.buffer_config(args.n, 0.01)),
            [("mixed", ops)],
            label="SA",
        )


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from repro.bench.report import format_histograms
    from repro.obs import Observability
    from repro.obs.export import snapshot_to_prometheus

    if args.from_json is not None:
        try:
            with open(args.from_json) as handle:
                doc = json.load(handle)
        except OSError as exc:
            print(f"cannot read {args.from_json}: {exc.strerror}", file=sys.stderr)
            return 1
        except json.JSONDecodeError as exc:
            print(f"{args.from_json} is not valid JSON: {exc}", file=sys.stderr)
            return 1
        snapshot = doc.get("metrics", doc)
    else:
        obs = Observability()
        _run_observed_demo(args, obs)
        snapshot = obs.registry.snapshot()
    if args.human:
        print(format_histograms(snapshot.get("histograms", {}), title="Histograms"))
    else:
        sys.stdout.write(snapshot_to_prometheus(snapshot))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs import Observability
    from repro.obs.export import render_trace, to_perfetto, validate_perfetto

    obs = Observability(trace=True)
    _run_observed_demo(args, obs)
    sys.stdout.write(render_trace(obs.tracer, limit=args.limit))
    if args.perfetto is not None:
        events = obs.tracer.events()
        doc = to_perfetto(events, tracer=obs.tracer)
        errors = validate_perfetto(doc)
        if errors:  # pragma: no cover - a bug, not an input error
            for error in errors:
                print(f"invalid perfetto trace: {error}", file=sys.stderr)
            return 1
        with open(args.perfetto, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            f"wrote {len(events)} events as Chrome trace-event JSON to "
            f"{args.perfetto} (open in ui.perfetto.dev)",
            file=sys.stderr,
        )
        if obs.tracer.dropped:
            print(
                f"warning: trace truncated — {obs.tracer.dropped} earlier "
                "events were dropped by the ring buffer; the exported tree "
                "covers only the retained window",
                file=sys.stderr,
            )
    return 0


def _cmd_doctor(args: argparse.Namespace) -> int:
    import json

    from repro.obs.doctor import (
        evaluate_artifact,
        evaluate_obs,
        format_report,
        report_document,
        run_scenario,
        split_findings,
    )

    if args.from_json is not None:
        try:
            with open(args.from_json) as handle:
                doc = json.load(handle)
        except OSError as exc:
            print(f"cannot read {args.from_json}: {exc.strerror}", file=sys.stderr)
            return 2
        except json.JSONDecodeError as exc:
            print(f"{args.from_json} is not valid JSON: {exc}", file=sys.stderr)
            return 2
        findings = evaluate_artifact(doc)
        source = args.from_json
    else:
        obs = run_scenario(
            args.scenario,
            n=args.n,
            seed=args.seed,
            read_fraction=args.read_fraction,
            buffer_fraction=args.buffer_fraction,
            trace=True,
        )
        # One collector poll serves both the evaluation and the optional
        # bench artifact below (poll=False reuses it).
        findings = evaluate_obs(obs)
        source = f"scenario:{args.scenario}"
        if args.bench is not None:
            from pathlib import Path

            from repro.bench.telemetry import (
                build_bench_artifact,
                save_bench_artifact,
                validate_bench_artifact,
            )

            doc = build_bench_artifact(f"doctor_{args.scenario}", obs, poll=False)
            errors = validate_bench_artifact(doc)
            if errors:  # pragma: no cover - a bug, not an input error
                for error in errors:
                    print(f"invalid bench artifact: {error}", file=sys.stderr)
                return 1
            save_bench_artifact(doc, Path(args.bench))
            print(f"wrote telemetry to {args.bench}", file=sys.stderr)
    sys.stdout.write(format_report(findings, source=source))
    if args.json is not None:
        with open(args.json, "w") as handle:
            json.dump(report_document(findings, source=source), handle, indent=2)
            handle.write("\n")
        print(f"wrote doctor report to {args.json}", file=sys.stderr)
    actionable, _notes = split_findings(findings)
    return 1 if (args.check and actionable) else 0


def _cmd_top(args: argparse.Namespace) -> int:
    import threading

    from repro.obs import Observability
    from repro.obs.doctor import run_scenario
    from repro.obs.top import live_loop

    obs = Observability(trace=True, monitors=True)
    done = threading.Event()
    failure: List[BaseException] = []

    def workload() -> None:
        try:
            run_scenario(
                args.scenario,
                n=args.n,
                seed=args.seed,
                read_fraction=args.read_fraction,
                obs=obs,
            )
        except BaseException as exc:  # surfaced after the loop stops
            failure.append(exc)
        finally:
            done.set()

    worker = threading.Thread(target=workload, name="repro-top-workload", daemon=True)
    worker.start()
    live_loop(
        obs,
        done,
        interval=args.interval,
        frames=args.frames,
        clear=not args.no_clear,
        title=f"repro top — scenario:{args.scenario} (n={args.n})",
    )
    worker.join()
    if failure:
        print(f"workload failed: {failure[0]!r}", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "generate": _cmd_generate,
        "measure": _cmd_measure,
        "demo": _cmd_demo,
        "experiment": _cmd_experiment,
        "bench-batch": _cmd_bench_batch,
        "bench-concurrent": _cmd_bench_concurrent,
        "bench-kernels": _cmd_bench_kernels,
        "bench-nodes": _cmd_bench_nodes,
        "bench-sosd": _cmd_bench_sosd,
        "bench-rebuild": _cmd_bench_rebuild,
        "bench-space": _cmd_bench_space,
        "perf-gate": _cmd_perf_gate,
        "recover": _cmd_recover,
        "rebuild": _cmd_rebuild,
        "serve": _cmd_serve,
        "bench-serve": _cmd_bench_serve,
        "stats": _cmd_stats,
        "trace": _cmd_trace,
        "doctor": _cmd_doctor,
        "top": _cmd_top,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
