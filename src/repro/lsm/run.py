"""Sorted runs — the on-disk unit of the LSM-tree substrate.

A run is an immutable sorted array of entries with a min/max Zonemap and a
Bloom filter, exactly the per-run metadata real LSM engines (RocksDB et
al.) attach to SSTables. Runs never overlap *within* a level of the leveled
variant; the tiering variant allows overlapping runs per tier.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, Optional, Tuple

from repro.core.zonemap import Zonemap
from repro.filters.bloom import BloomFilter

#: Entry = (key, seq, value, is_tombstone) — same shape as the SWARE buffer.
Entry = Tuple[int, int, object, bool]


class SortedRun:
    """An immutable sorted run with Zonemap + Bloom filter."""

    __slots__ = ("entries", "keys", "zonemap", "bloom", "run_id")

    _next_id = 0

    def __init__(self, entries: List[Entry], bits_per_entry: float = 10.0):
        if any(
            entries[i - 1][0] > entries[i][0] for i in range(1, len(entries))
        ):  # pragma: no cover - construction precondition
            raise ValueError("run entries must be sorted by key")
        self.entries = entries
        self.keys = [entry[0] for entry in entries]
        self.zonemap = Zonemap()
        self.bloom: Optional[BloomFilter] = None
        if entries:
            self.zonemap.update(entries[0][0])
            self.zonemap.update(entries[-1][0])
            self.bloom = BloomFilter(max(1, len(entries)), bits_per_entry)
            for key in self.keys:
                self.bloom.add(key)
        SortedRun._next_id += 1
        self.run_id = SortedRun._next_id

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def min_key(self) -> Optional[int]:
        return self.zonemap.min_key

    @property
    def max_key(self) -> Optional[int]:
        return self.zonemap.max_key

    def overlaps(self, other: "SortedRun") -> bool:
        if not self.entries or not other.entries:
            return False
        return self.zonemap.overlaps(other.min_key, other.max_key)

    def get(self, key: int) -> Optional[Entry]:
        """Newest entry for ``key`` in this run, or None."""
        if not self.entries or not self.zonemap.may_contain(key):
            return None
        if self.bloom is not None and not self.bloom.may_contain(key):
            return None
        idx = bisect_right(self.keys, key) - 1
        if idx >= 0 and self.keys[idx] == key:
            return self.entries[idx]
        return None

    def slice(self, lo: int, hi: int) -> List[Entry]:
        """Entries with lo <= key <= hi."""
        left = bisect_left(self.keys, lo)
        right = bisect_right(self.keys, hi)
        return self.entries[left:right]
