"""LSM-tree substrate with optional sortedness-aware (skip-merge)
compaction — the §VI extension of the reproduction."""

from repro.lsm.lsm import LEVELING, TIERING, LSMConfig, LSMTree
from repro.lsm.run import SortedRun

__all__ = ["LEVELING", "TIERING", "LSMConfig", "LSMTree", "SortedRun"]
