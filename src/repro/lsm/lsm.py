"""An LSM-tree substrate, with an optional sortedness-aware compaction.

§VI of the paper observes that "most LSM-designs are completely agnostic to
data sortedness and perform the same amount of merging and (re-)writing of
the data on disk even when the data arrive fully sorted", and that the LSM
design "can be optimized to better handle near-sorted data ingestion". This
module implements both sides of that observation as an extension of the
reproduction:

* a classical LSM-tree — memtable, sorted runs with Bloom filters and
  Zonemaps, leveling or tiering compaction with size ratio T;
* ``sortedness_aware=True`` adds *skip-merge* compaction: when the incoming
  run does not overlap the resident data (which is exactly what happens
  when ingestion is sorted or near-sorted), the run is installed by a
  trivial move — a metadata operation — instead of a full rewrite, so write
  amplification collapses toward 1 as sortedness rises.

The class satisfies the :class:`~repro.core.sware.TreeBackend` protocol, so
``SortednessAwareIndex`` can wrap an LSM-tree exactly as it wraps the
B+-tree and the Bε-tree (bulk loads become directly installed runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import merge as heap_merge
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import BulkLoadError, ConfigError
from repro.lsm.run import Entry, SortedRun
from repro.obs import DEFAULT_SIZE_BUCKETS, NULL_OBS, Observability, current_obs
from repro.storage.costmodel import NULL_METER, Meter

LEVELING = "leveling"
TIERING = "tiering"


@dataclass(frozen=True)
class LSMConfig:
    """Tuning knobs for :class:`LSMTree`."""

    memtable_capacity: int = 256
    size_ratio: int = 4
    policy: str = LEVELING
    bits_per_entry: float = 10.0
    sortedness_aware: bool = False

    def __post_init__(self) -> None:
        if self.memtable_capacity < 2:
            raise ConfigError("memtable_capacity must be >= 2")
        if self.size_ratio < 2:
            raise ConfigError("size_ratio must be >= 2")
        if self.policy not in (LEVELING, TIERING):
            raise ConfigError(f"unknown policy {self.policy!r}")
        if self.bits_per_entry <= 0:
            raise ConfigError("bits_per_entry must be positive")

    def level_capacity(self, level: int) -> int:
        """Entry budget of ``level`` (level 0 holds one memtable flush)."""
        return self.memtable_capacity * (self.size_ratio ** (level + 1))


class LSMTree:
    """See module docstring."""

    def __init__(
        self,
        config: Optional[LSMConfig] = None,
        meter: Optional[Meter] = None,
        obs: Optional[Observability] = None,
    ):
        self.config = config or LSMConfig()
        self.meter = meter if meter is not None else NULL_METER
        self.obs = obs if obs is not None else current_obs()
        self._memtable: Dict[int, Entry] = {}
        self._levels: List[List[SortedRun]] = []  # newest run first per level
        self._seq = 0
        self._max_key: Optional[int] = None
        self._min_key: Optional[int] = None
        # Statistics.
        self.flushes = 0
        self.merges = 0
        self.trivial_moves = 0
        self.entries_written = 0  # every entry (re-)written to a run
        self.inserts = 0
        if self.obs is not NULL_OBS:
            self.obs.register_collector("lsm", self._obs_snapshot)

    def _obs_snapshot(self) -> dict:
        return {
            "flushes": self.flushes,
            "merges": self.merges,
            "trivial_moves": self.trivial_moves,
            "entries_written": self.entries_written,
            "inserts": self.inserts,
            "n_runs": self.n_runs(),
            "write_amplification": self.write_amplification,
        }

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def insert(self, key: int, value: object) -> None:
        self._put(key, value, tombstone=False)
        self.inserts += 1
        if self._max_key is None or key > self._max_key:
            self._max_key = key
        if self._min_key is None or key < self._min_key:
            self._min_key = key

    def insert_many(self, items: List[Tuple[int, object]]) -> None:
        """Batch upsert into the memtable with hoisted hot-loop state.

        Flush boundaries match a sequential loop of :meth:`insert` exactly —
        the capacity check runs after every put (a dict upsert of an existing
        key does not grow the memtable, so chunk-level accounting would
        drift) — but the meter charge, stats and min/max watermark updates
        are amortized over the whole batch.
        """
        if not items:
            return
        n = len(items)
        self.meter.charge("buffer_append", n)
        memtable = self._memtable
        capacity = self.config.memtable_capacity
        seq = self._seq
        for key, value in items:
            seq += 1
            memtable[key] = (key, seq, value, False)
            if len(memtable) >= capacity:
                self._seq = seq
                self._flush_memtable()
                memtable = self._memtable
        self._seq = seq
        self.inserts += n
        first_key = min(key for key, _value in items)
        last_key = max(key for key, _value in items)
        if self._max_key is None or last_key > self._max_key:
            self._max_key = last_key
        if self._min_key is None or first_key < self._min_key:
            self._min_key = first_key

    def delete(self, key: int) -> None:
        self.meter.charge("tombstone")
        self._put(key, None, tombstone=True)

    def _put(self, key: int, value: object, tombstone: bool) -> None:
        self._seq += 1
        self.meter.charge("buffer_append")
        self._memtable[key] = (key, self._seq, value, tombstone)
        if len(self._memtable) >= self.config.memtable_capacity:
            self._flush_memtable()

    def _flush_memtable(self) -> None:
        self.flushes += 1
        entries = sorted(self._memtable.values(), key=lambda e: (e[0], e[1]))
        n = len(entries)
        self.meter.charge("sort_comparison", n * max(1, n.bit_length()))
        if self.obs.enabled:
            self.obs.event("lsm.memtable_flush", entries=n)
        self.obs.observe_hist("lsm_flush_entries", n, buckets=DEFAULT_SIZE_BUCKETS)
        self._memtable.clear()
        run = SortedRun(entries, self.config.bits_per_entry)
        self._charge_write(len(run))  # the flush itself writes the run once
        self._install_run(run, level=0)

    def _install_run(self, run: SortedRun, level: int) -> None:
        """Install an (already written) run at ``level``, compacting down.

        Write accounting: a run is charged where it *materializes* — at the
        memtable flush, at a merge, or at a bulk load. Installing an
        existing run without merging (trivial move, tier append) rewrites
        nothing and charges nothing; that asymmetry is the entire benefit
        of sortedness-aware skip-merge.
        """
        while len(self._levels) <= level:
            self._levels.append([])
        if not len(run):
            return
        resident = self._levels[level]

        if self.config.sortedness_aware and all(
            not run.overlaps(existing) for existing in resident
        ):
            # Skip-merge: the new run is disjoint from everything resident —
            # a metadata-only trivial move, no rewriting.
            self.trivial_moves += 1
            if self.obs.enabled:
                self.obs.event("lsm.trivial_move", level=level, entries=len(run))
            resident.insert(0, run)
        elif self.config.policy == LEVELING:
            if resident:
                merged = self._merge_runs([run] + resident)
                self.merges += 1
                self._levels[level] = [merged] if len(merged) else []
            else:
                self._levels[level] = [run] if len(run) else []
        else:  # tiering: runs accumulate, merge only on overflow
            resident.insert(0, run)

        self._maybe_cascade(level)

    def _charge_write(self, n_entries: int) -> None:
        self.entries_written += n_entries
        self.meter.charge("run_write", n_entries)

    def _level_size(self, level: int) -> int:
        return sum(len(run) for run in self._levels[level])

    def _maybe_cascade(self, level: int) -> None:
        while level < len(self._levels) and self._level_size(level) > self.config.level_capacity(level):
            runs = self._levels[level]
            self._levels[level] = []
            if self.config.sortedness_aware:
                # Move runs down one by one, oldest first, so each gets its
                # own skip-merge chance at the next level (and recency order
                # within that level is preserved).
                for run in reversed(runs):
                    self._install_run(run, level + 1)
            elif len(runs) > 1:
                self.merges += 1
                self._install_run(self._merge_runs(runs), level + 1)
            elif runs:
                self._install_run(runs[0], level + 1)
            level += 1

    def _merge_runs(self, runs: List[SortedRun]) -> SortedRun:
        """Sort-merge runs, newest first; newest version per key wins and
        tombstones compact away older versions (kept unless merging into
        the bottom is provable, so we conservatively keep tombstones)."""
        streams = [run.entries for run in runs if len(run)]
        if not streams:
            return SortedRun([])
        total = sum(len(stream) for stream in streams)
        self.meter.charge("merge_step", total)
        if self.obs.enabled:
            self.obs.event("lsm.merge", runs=len(streams), entries=total)
        merged_sorted = heap_merge(*streams, key=lambda e: (e[0], e[1]))
        deduped: List[Entry] = []
        for entry in merged_sorted:
            if deduped and deduped[-1][0] == entry[0]:
                deduped[-1] = entry  # later seq = newer
            else:
                deduped.append(entry)
        self._charge_write(len(deduped))  # the merge output is written once
        return SortedRun(deduped, self.config.bits_per_entry)

    # ------------------------------------------------------------------
    # bulk loading (used when SWARE wraps the LSM-tree)
    # ------------------------------------------------------------------
    def bulk_load_append(self, items: List[Tuple[int, object]]) -> None:
        """Install a sorted batch of keys > max_key as a run directly."""
        if not items:
            return
        previous = None
        for key, _ in items:
            if previous is not None and key <= previous:
                raise BulkLoadError("bulk batch must be strictly increasing")
            previous = key
        if self._max_key is not None and items[0][0] <= self._max_key:
            raise BulkLoadError(
                f"bulk batch starts at {items[0][0]} but tree max is {self._max_key}"
            )
        if self._memtable and any(key in self._memtable for key, _ in items):
            # The memtable can hold tombstones for keys beyond max_key
            # (deletes never raise the watermark). A bulk run bypasses the
            # memtable, so installing it would leave an older memtable entry
            # shadowing the newer run version on the point-lookup path, which
            # trusts the memtable as strictly newest. Flush first to keep
            # that invariant.
            self._flush_memtable()
        entries: List[Entry] = []
        for key, value in items:
            self._seq += 1
            entries.append((key, self._seq, value, False))
        self.meter.charge("bulk_entry", len(entries))
        run = SortedRun(entries, self.config.bits_per_entry)
        self._charge_write(len(run))
        self._install_run(run, level=0)
        self._max_key = items[-1][0]
        if self._min_key is None:
            self._min_key = items[0][0]

    # ------------------------------------------------------------------
    # full compaction (shared with the offline rebuild pipeline)
    # ------------------------------------------------------------------
    def compact(self, *, page_items: int = 512) -> dict:
        """Merge every run into one bottom-level run; returns merge stats.

        Routes through the same compressed-run k-way merge as ``repro
        rebuild`` (:mod:`repro.storage.compress`): each resident run
        becomes a delta-encoded :class:`~repro.storage.compress.CompressedRun`
        (priority = recency), runs that do not overlap pass through the
        merge still encoded, and only overlapping regions decode at the
        frontiers. Because this is a *full* compaction — the output is the
        new bottom of the tree — tombstones and shadowed versions drop out.
        """
        from repro.storage.compress import CompressedRun, merge_compressed_runs

        if self._memtable:
            self._flush_memtable()
        resident = list(self._iter_runs())  # newest first
        n_runs = len(resident)
        total_in = sum(len(run) for run in resident)
        if n_runs <= 1 and not any(e[3] for run in resident for e in run.entries):
            # Already one tombstone-free run (or empty): nothing to merge.
            return {
                "runs_in": n_runs,
                "entries_in": total_in,
                "entries_out": total_in,
                "merged": False,
            }
        compressed = [
            CompressedRun.from_items(
                ((e[0], (e[1], e[2]), e[3]) for e in run.entries),
                priority=n_runs - i,  # newest first ⇒ highest priority
                page_items=page_items,
            )
            for i, run in enumerate(resident)
        ]
        self.meter.charge("merge_step", total_in)
        merged = merge_compressed_runs(
            compressed, page_items=page_items, drop_tombstones=True
        )
        entries: List[Entry] = [
            (key, seq, value, False)
            for key, (seq, value), _tombstone in merged.items()
        ]
        self.merges += 1
        self._charge_write(len(entries))
        bottom = max(len(self._levels) - 1, 0)
        self._levels = [[] for _ in range(bottom)] + [
            [SortedRun(entries, self.config.bits_per_entry)] if entries else []
        ]
        if self.obs.enabled:
            self.obs.event(
                "lsm.compact",
                runs=n_runs,
                entries_in=total_in,
                entries_out=len(entries),
            )
        return {
            "runs_in": n_runs,
            "entries_in": total_in,
            "entries_out": len(entries),
            "merged": True,
        }

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def _iter_runs(self) -> Iterator[SortedRun]:
        """All runs, newest first (level order; within a level newest first)."""
        for level in self._levels:
            yield from level

    def get(self, key: int) -> Optional[object]:
        entry = self._memtable.get(key)
        if entry is not None:
            self.meter.charge("scan_entry")
            return None if entry[3] else entry[2]
        for run in self._iter_runs():
            self.meter.charge("zonemap_check")
            if not run.zonemap.may_contain(key):
                continue
            self.meter.charge("bf_probe")
            hit = run.get(key)
            if hit is not None:
                self.meter.charge("interp_step", max(1, len(run).bit_length()))
                return None if hit[3] else hit[2]
        return None

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    def range_query(self, lo: int, hi: int) -> List[Tuple[int, object]]:
        if lo > hi:
            return []
        resolved: Dict[int, Entry] = {}
        # Oldest first so newer versions overwrite.
        for run in reversed(list(self._iter_runs())):
            chunk = run.slice(lo, hi)
            self.meter.charge("scan_entry", len(chunk))
            for entry in chunk:
                existing = resolved.get(entry[0])
                if existing is None or entry[1] > existing[1]:
                    resolved[entry[0]] = entry
        for key, entry in self._memtable.items():
            if lo <= key <= hi:
                existing = resolved.get(key)
                if existing is None or entry[1] > existing[1]:
                    resolved[key] = entry
        return [
            (key, entry[2])
            for key, entry in sorted(resolved.items())
            if not entry[3]
        ]

    def iter_items(self) -> Iterator[Tuple[int, object]]:
        """All live entries (test helper, uncharged)."""
        meter, self.meter = self.meter, NULL_METER
        try:
            lo = self._min_key if self._min_key is not None else 0
            hi = self._max_key if self._max_key is not None else -1
            return iter(self.range_query(lo, hi))
        finally:
            self.meter = meter

    def __len__(self) -> int:
        return len(list(self.iter_items()))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def max_key(self) -> Optional[int]:
        return self._max_key

    @property
    def min_key(self) -> Optional[int]:
        return self._min_key

    @property
    def write_amplification(self) -> float:
        """Entries (re-)written to runs per ingested entry."""
        return self.entries_written / self.inserts if self.inserts else 0.0

    def level_sizes(self) -> List[int]:
        return [self._level_size(level) for level in range(len(self._levels))]

    def n_runs(self) -> int:
        return sum(len(level) for level in self._levels)

    def check_invariants(self) -> None:
        from repro.errors import InvariantViolation

        for depth, level in enumerate(self._levels):
            for run in level:
                for i in range(1, len(run.keys)):
                    if run.keys[i - 1] > run.keys[i]:
                        raise InvariantViolation(f"run at level {depth} unsorted")
            if self.config.policy == LEVELING and not self.config.sortedness_aware:
                if len(level) > 1:
                    raise InvariantViolation(
                        f"leveling keeps one run per level, found {len(level)}"
                    )
            # Within a level, runs must be pairwise disjoint under leveling
            # with skip-merge (that is the property skip-merge relies on).
            if self.config.policy == LEVELING:
                for i, a in enumerate(level):
                    for b in level[i + 1 :]:
                        if a.overlaps(b):
                            raise InvariantViolation("overlapping runs in a level")
