"""Bloom filters and the hash functions that feed them."""

from repro.filters.bloom import BloomFilter, optimal_num_probes
from repro.filters.hashing import SharedHash, murmur3_32, murmur3_64, rotate64, splitmix64

__all__ = [
    "BloomFilter",
    "optimal_num_probes",
    "SharedHash",
    "murmur3_32",
    "murmur3_64",
    "rotate64",
    "splitmix64",
]
