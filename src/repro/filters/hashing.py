"""Hash functions used by the Bloom filters.

The paper uses MurmurHash [Appleby 2011] combined with *hash sharing* and
*bit rotation* [Zhu et al., DAMON 2021] so that one expensive hash invocation
feeds every probe of a multi-hash Bloom filter. We implement:

* ``murmur3_32`` — a faithful MurmurHash3 x86 32-bit port (tested against the
  reference vectors), the paper's choice;
* ``splitmix64`` — a cheap high-quality 64-bit mixer used as the *default*
  family, because a per-key pure-Python murmur is roughly an order of
  magnitude slower without changing false-positive behaviour (documented as
  substitution #4 in DESIGN.md);
* :class:`SharedHash` — hash sharing: one 64-bit base hash is split into two
  32-bit halves ``(h1, h2)`` and the *i*-th Bloom probe is derived as
  ``h1 + i * h2`` (Kirsch–Mitzenmacher double hashing);
* ``rotate64`` — bit rotation used to derive a distinct per-page hash stream
  from the same shared base hash, so per-page filters do not need a second
  hash computation.
"""

from __future__ import annotations

from typing import Tuple

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF


def murmur3_32(data: bytes, seed: int = 0) -> int:
    """MurmurHash3 x86 32-bit of ``data`` with the given ``seed``.

    Returns an unsigned 32-bit integer. Matches the reference implementation
    (e.g. ``murmur3_32(b"hello", 0) == 0x248BFA47``).
    """
    c1 = 0xCC9E2D51
    c2 = 0x1B873593
    h = seed & _MASK32
    length = len(data)
    n_blocks = length // 4

    for i in range(n_blocks):
        k = int.from_bytes(data[4 * i : 4 * i + 4], "little")
        k = (k * c1) & _MASK32
        k = ((k << 15) | (k >> 17)) & _MASK32
        k = (k * c2) & _MASK32
        h ^= k
        h = ((h << 13) | (h >> 19)) & _MASK32
        h = (h * 5 + 0xE6546B64) & _MASK32

    # Tail bytes.
    tail = data[4 * n_blocks :]
    k = 0
    if len(tail) >= 3:
        k ^= tail[2] << 16
    if len(tail) >= 2:
        k ^= tail[1] << 8
    if len(tail) >= 1:
        k ^= tail[0]
        k = (k * c1) & _MASK32
        k = ((k << 15) | (k >> 17)) & _MASK32
        k = (k * c2) & _MASK32
        h ^= k

    # Finalization mix.
    h ^= length
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & _MASK32
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & _MASK32
    h ^= h >> 16
    return h


def murmur3_64(key: int, seed: int = 0) -> int:
    """A 64-bit hash of an integer key built from two murmur3_32 calls.

    The two halves use distinct seeds so they behave as independent hash
    functions for double hashing.
    """
    data = (key & _MASK64).to_bytes(8, "little", signed=False)
    lo = murmur3_32(data, seed)
    hi = murmur3_32(data, seed ^ 0x9E3779B9)
    return (hi << 32) | lo


def splitmix64(key: int, seed: int = 0) -> int:
    """SplitMix64 finalizer — a fast, well-mixed 64-bit integer hash."""
    z = (key + seed * 0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def rotate64(value: int, bits: int) -> int:
    """Rotate a 64-bit value left by ``bits`` (mod 64)."""
    bits &= 63
    if bits == 0:
        return value & _MASK64
    return ((value << bits) | (value >> (64 - bits))) & _MASK64


def shared_bases(keys, family: str = "splitmix64", seed: int = 0):
    """One 64-bit base hash per key — the batch form of hash sharing.

    The returned integers are exactly the bases :class:`SharedHash` would
    compute key by key, so batch and per-key Bloom paths set identical bits.
    The splitmix64 family is inlined (no per-key object construction), which
    is where batch ingestion recovers most of its hashing cost.
    """
    if family == "splitmix64":
        offset = (seed * 0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15) & _MASK64
        bases = []
        append = bases.append
        for key in keys:
            z = (key + offset) & _MASK64
            z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
            z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
            append(z ^ (z >> 31))
        return bases
    if family == "murmur3":
        return [murmur3_64(key, seed) for key in keys]
    raise ValueError(f"unknown hash family: {family!r}")


class SharedHash:
    """Hash sharing for multi-probe Bloom filters.

    One base-hash computation per key; every derived probe index is a cheap
    arithmetic combination of the two 32-bit halves, and rotated variants
    (for per-page filters) reuse the same base hash.
    """

    __slots__ = ("h1", "h2", "_base")

    def __init__(self, key: int, family: str = "splitmix64", seed: int = 0):
        if family == "murmur3":
            base = murmur3_64(key, seed)
        elif family == "splitmix64":
            base = splitmix64(key, seed)
        else:
            raise ValueError(f"unknown hash family: {family!r}")
        self._base = base
        self.h1 = base & _MASK32
        self.h2 = (base >> 32) | 1  # force odd so probes cycle all slots

    def probes(self, k: int, n_bits: int) -> Tuple[int, ...]:
        """The ``k`` bit positions for a filter with ``n_bits`` slots."""
        h1, h2 = self.h1, self.h2
        return tuple((h1 + i * h2) % n_bits for i in range(k))

    def rotated(self, rotation: int) -> "SharedHash":
        """Derive a new probe stream by bit-rotating the shared base hash."""
        clone = object.__new__(SharedHash)
        base = rotate64(self._base, rotation)
        clone._base = base
        clone.h1 = base & _MASK32
        clone.h2 = (base >> 32) | 1
        return clone
