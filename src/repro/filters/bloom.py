"""Bloom filters for the SWARE-buffer.

The SWARE-buffer maintains (i) one *global* Bloom filter over its unsorted
section and (ii) one small Bloom filter per buffer page (§IV-B of the paper).
Both are configured at 10 bits per entry of their covered capacity, which
gives roughly a 0.8% false-positive rate with the optimal number of probe
functions.

Filters here are sized once at construction (the paper pre-allocates them for
the buffer's capacity) and support ``clear()`` for reuse across flush cycles.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro import kernels
from repro.filters.hashing import SharedHash


def optimal_num_probes(bits_per_entry: float) -> int:
    """The FPR-optimal probe count ``k = bits_per_entry * ln 2``, at least 1."""
    return max(1, round(bits_per_entry * math.log(2)))


class BloomFilter:
    """A classic Bloom filter over integer keys.

    Parameters
    ----------
    capacity:
        Number of distinct entries the filter is provisioned for.
    bits_per_entry:
        Space budget; the paper uses 10.
    hash_family:
        ``"splitmix64"`` (default, fast) or ``"murmur3"`` (paper's choice).
    rotation:
        Bit-rotation applied to the shared base hash, used to give per-page
        filters an independent probe stream without a second hash call.
    """

    __slots__ = (
        "capacity",
        "bits_per_entry",
        "n_bits",
        "n_probes",
        "hash_family",
        "rotation",
        "_bits",
        "n_added",
        "probe_count",
    )

    def __init__(
        self,
        capacity: int,
        bits_per_entry: float = 10.0,
        hash_family: str = "splitmix64",
        rotation: int = 0,
        n_probes: Optional[int] = None,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if bits_per_entry <= 0:
            raise ValueError("bits_per_entry must be positive")
        self.capacity = capacity
        self.bits_per_entry = bits_per_entry
        self.n_bits = max(8, int(capacity * bits_per_entry))
        self.n_probes = n_probes if n_probes is not None else optimal_num_probes(bits_per_entry)
        self.hash_family = hash_family
        self.rotation = rotation
        # Padded to a whole number of 64-bit words so the numpy backend can
        # view the store as uint64 without copying; probe positions are all
        # < n_bits, so the padding bits are never set and the single-key
        # byte-path bit patterns are unchanged.
        self._bits = bytearray(((self.n_bits + 63) // 64) * 8)
        self.n_added = 0
        self.probe_count = 0

    def _positions(self, key: int):
        shared = SharedHash(key, self.hash_family)
        if self.rotation:
            shared = shared.rotated(self.rotation)
        return shared.probes(self.n_probes, self.n_bits)

    def add(self, key: int) -> None:
        """Insert ``key``; afterwards ``may_contain(key)`` is always True."""
        bits = self._bits
        for pos in self._positions(key):
            bits[pos >> 3] |= 1 << (pos & 7)
        self.n_added += 1

    def add_shared(self, shared: SharedHash) -> None:
        """Insert using a pre-computed shared hash (hash sharing)."""
        probe_source = shared.rotated(self.rotation) if self.rotation else shared
        bits = self._bits
        for pos in probe_source.probes(self.n_probes, self.n_bits):
            bits[pos >> 3] |= 1 << (pos & 7)
        self.n_added += 1

    def may_contain(self, key: int) -> bool:
        """False ⇒ definitely absent; True ⇒ probably present."""
        self.probe_count += 1
        bits = self._bits
        for pos in self._positions(key):
            if not bits[pos >> 3] & (1 << (pos & 7)):
                return False
        return True

    def add_many(self, keys: Sequence[int], bases: Optional[Sequence[int]] = None) -> None:
        """Batch insert with one hash pass and word-level bit setting.

        ``bases`` lets callers share one batch of base hashes across several
        filters (the batch form of ``add_shared``). Probe positions are the
        same Kirsch–Mitzenmacher sequence as :meth:`add`, so the resulting
        bit pattern is identical to adding the keys one by one. The bit
        setting itself is a kernel: word-accumulated on the python backend,
        ``np.bitwise_or.at`` over the uint64 view on the numpy backend.
        """
        if not keys:
            return
        if bases is None:
            bases = kernels.shared_bases(keys, self.hash_family)
        kernels.bloom_add_many(self._bits, bases, self.n_probes, self.n_bits, self.rotation)
        self.n_added += len(keys)

    def may_contain_many(
        self, keys: Sequence[int], bases: Optional[Sequence[int]] = None
    ) -> List[bool]:
        """Batch membership probes (one hash pass over the whole batch).

        ``probe_count`` accounting stays here, outside the kernels, so the
        counters agree with a :meth:`may_contain` loop over the same keys on
        either backend.
        """
        if not keys:
            return []
        if bases is None:
            bases = kernels.shared_bases(keys, self.hash_family)
        out = kernels.bloom_contains_many(
            self._bits, bases, self.n_probes, self.n_bits, self.rotation
        )
        self.probe_count += len(keys)
        return out

    def may_contain_shared(self, shared: SharedHash) -> bool:
        """Membership probe using a pre-computed shared hash."""
        self.probe_count += 1
        probe_source = shared.rotated(self.rotation) if self.rotation else shared
        bits = self._bits
        for pos in probe_source.probes(self.n_probes, self.n_bits):
            if not bits[pos >> 3] & (1 << (pos & 7)):
                return False
        return True

    def clear(self) -> None:
        """Reset to the empty filter (used after every buffer flush)."""
        self._bits = bytearray(len(self._bits))
        self.n_added = 0

    @property
    def saturation(self) -> float:
        """Fraction of bits set — a cheap health metric for tests and obs.

        Counted in bounded chunks (or vectorized) by the popcount kernel;
        the old implementation converted the whole bit array into a single
        bignum on every call, which obs hits once per flush cycle.
        """
        return kernels.popcount_bytes(self._bits) / self.n_bits

    def expected_fpr(self) -> float:
        """Theoretical false-positive rate at the current load."""
        if self.n_added == 0:
            return 0.0
        exponent = -self.n_probes * self.n_added / self.n_bits
        return (1.0 - math.exp(exponent)) ** self.n_probes

    def __contains__(self, key: int) -> bool:
        return self.may_contain(key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BloomFilter(capacity={self.capacity}, bits={self.n_bits}, "
            f"probes={self.n_probes}, added={self.n_added})"
        )
