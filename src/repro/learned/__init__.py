"""``repro.learned`` — model-based competitor indexes for the SOSD bench.

Two :class:`~repro.core.sware.TreeBackend`-compatible structures the paper's
evaluation positions SWARE against:

* :class:`~repro.learned.index.LearnedIndex` — a PGM/FITing-tree style
  piecewise-linear learned index: a sorted data layer plus an
  epsilon-bounded shrinking-cone segmentation (fitted through the
  :mod:`repro.kernels` dispatch, so numpy stays optional), dynamized with a
  sorted delta buffer that merges back on a size threshold;
* :class:`~repro.learned.cracking.CrackingIndex` — database cracking: an
  unsorted column that partitions itself a little more on every query, plus
  the same delta-buffer dynamization.

Both charge the shared :class:`~repro.storage.costmodel.Meter` for every
structural step (model probes, epsilon-window search steps, partition
passes, merges), so ``repro bench-sosd`` ranks them under the same cost
model as the trees. Neither supports page-image checkpointing — see
:class:`~repro.errors.CheckpointUnsupportedError`.
"""

from repro.learned.cracking import CrackingIndex, CrackingIndexConfig
from repro.learned.index import LearnedIndex, LearnedIndexConfig

__all__ = [
    "CrackingIndex",
    "CrackingIndexConfig",
    "LearnedIndex",
    "LearnedIndexConfig",
]
