"""Database cracking: an index that builds itself as a side effect of queries.

The classic adaptive-indexing design (Idreos et al., and the multi-core
follow-ups in PAPERS.md): data sits in one unsorted column, and every query
*cracks* the piece its bounds fall into — a two-way partition pass that
leaves the column a little more ordered and records the new boundary in the
cracker index (a sorted pivot -> position map). Query-heavy regions converge
toward sorted order; regions nobody queries never pay for sorting.

Updates use the same delta-overlay dynamization as
:class:`~repro.learned.index.LearnedIndex`: point inserts and tombstones
live in a sorted overlay that wins on reads and folds back into the column
on a size threshold. A fold rewrites the column and **resets the cracker
index** — adaptivity restarts, which is the textbook trade-off of cracking
under updates. Append-only bulk loads (the SWARE flush path) extend the
column in place and keep all pivots at or below the append point.

Meter charges model the algorithm: a partition pass charges one
``sort_comparison`` per element examined and ``entry_move`` per swapped
pair, range output sorting charges comparison-sort cost on the slice, folds
charge ``merge_step``/``bulk_entry``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import kernels
from repro.errors import BulkLoadError, ConfigError
from repro.obs import NULL_OBS, Observability, current_obs
from repro.storage.costmodel import NULL_METER, Meter

#: Delta-overlay marker for "deleted in the column".
_TOMBSTONE = object()
_MISSING = object()


@dataclass(frozen=True)
class CrackingIndexConfig:
    """Tuning knobs for :class:`CrackingIndex`.

    ``delta_capacity``/``merge_divisor`` shape the overlay-fold threshold
    exactly as in :class:`~repro.learned.index.LearnedIndexConfig`.
    """

    delta_capacity: int = 256
    merge_divisor: int = 16

    def __post_init__(self) -> None:
        if self.delta_capacity < 1:
            raise ConfigError("delta_capacity must be >= 1")
        if self.merge_divisor < 1:
            raise ConfigError("merge_divisor must be >= 1")


class CrackingIndex:
    """See module docstring."""

    def __init__(
        self,
        config: Optional[CrackingIndexConfig] = None,
        meter: Optional[Meter] = None,
        obs: Optional[Observability] = None,
    ):
        self.config = config or CrackingIndexConfig()
        self.meter = meter if meter is not None else NULL_METER
        self.obs = obs if obs is not None else current_obs()
        # The cracked column: unsorted unique keys + parallel values, plus
        # the membership set that stands in for a scan when deciding
        # presence (charged as a zonemap-class check).
        self._keys: List[int] = []
        self._vals: List[object] = []
        self._present: set = set()
        # Cracker index: sorted pivot values and their partition positions.
        # Invariant: keys[i] < pivot for i < position, keys[i] >= pivot
        # for i >= position.
        self._pivots: List[int] = []
        self._positions: List[int] = []
        # Sorted delta overlay (dict for O(1) hit checks, sorted key list
        # for range merges).
        self._delta: Dict[int, object] = {}
        self._dkeys: List[int] = []
        self._min_key: Optional[int] = None
        self._max_key: Optional[int] = None
        self.n_entries = 0
        self.cracks = 0
        self.folds = 0
        if self.obs is not NULL_OBS:
            self.obs.register_collector("cracking", self._obs_snapshot)

    def _obs_snapshot(self) -> dict:
        return {
            "n_entries": self.n_entries,
            "column_entries": len(self._keys),
            "delta_entries": len(self._dkeys),
            "pieces": len(self._pivots) + 1,
            "cracks": self.cracks,
            "folds": self.folds,
        }

    # ------------------------------------------------------------------
    # cracking core
    # ------------------------------------------------------------------
    def _crack(self, pivot: int) -> int:
        """Partition position of ``pivot``, cracking its piece if needed.

        After the call every column index >= the returned position holds a
        key >= ``pivot`` and every smaller index a key < ``pivot``; the
        boundary is memoized in the cracker index.
        """
        pivots, positions = self._pivots, self._positions
        at = bisect_left(pivots, pivot)
        if at < len(pivots) and pivots[at] == pivot:
            return positions[at]
        keys, vals = self._keys, self._vals
        plo = positions[at - 1] if at > 0 else 0
        phi = positions[at] if at < len(positions) else len(keys)
        a, b = plo, phi - 1
        swaps = 0
        while a <= b:
            if keys[a] < pivot:
                a += 1
            elif keys[b] >= pivot:
                b -= 1
            else:
                keys[a], keys[b] = keys[b], keys[a]
                vals[a], vals[b] = vals[b], vals[a]
                swaps += 1
                a += 1
                b -= 1
        self.meter.charge("sort_comparison", max(phi - plo, 0))
        if swaps:
            self.meter.charge("entry_move", 2 * swaps)
        pivots.insert(at, pivot)
        positions.insert(at, a)
        self.cracks += 1
        if self.obs.enabled:
            self.obs.event("cracking.crack", pivot=pivot, piece=phi - plo)
        return a

    def _fold_threshold(self) -> int:
        return max(
            self.config.delta_capacity, len(self._keys) // self.config.merge_divisor
        )

    def _fold(self) -> None:
        """Reconcile the delta overlay into the column; cracks reset."""
        keys, vals = self._keys, self._vals
        delta = self._delta
        new_keys: List[int] = []
        new_vals: List[object] = []
        for key, value in zip(keys, vals):
            d = delta.get(key, _MISSING)
            if d is _MISSING:
                new_keys.append(key)
                new_vals.append(value)
            elif d is not _TOMBSTONE:
                new_keys.append(key)
                new_vals.append(d)
        appended = 0
        present = self._present
        for key in self._dkeys:
            if key not in present:
                d = delta[key]
                if d is not _TOMBSTONE:
                    new_keys.append(key)
                    new_vals.append(d)
                    appended += 1
        self.meter.charge("merge_step", len(keys) + len(self._dkeys))
        self.meter.charge("bulk_entry", appended)
        self._keys, self._vals = new_keys, new_vals
        self._present = set(new_keys)
        self._pivots, self._positions = [], []
        self._delta, self._dkeys = {}, []
        self.folds += 1
        if self.obs.enabled:
            self.obs.event("cracking.fold", entries=len(new_keys))

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def insert(self, key: int, value: object) -> bool:
        """Insert or update; returns True if a new entry was created."""
        self.meter.charge("node_access")
        delta = self._delta
        prior = delta.get(key, _MISSING)
        if prior is not _MISSING:
            delta[key] = value
            created = prior is _TOMBSTONE
            if created:
                self.n_entries += 1
            self._bump_watermarks(key)
            return created
        delta[key] = value
        at = bisect_left(self._dkeys, key)
        self._dkeys.insert(at, key)
        self.meter.charge("entry_move", len(self._dkeys) - at)
        self.meter.charge("zonemap_check")
        created = key not in self._present
        if created:
            self.n_entries += 1
        self._bump_watermarks(key)
        if len(self._dkeys) > self._fold_threshold():
            self._fold()
        return created

    def insert_many(self, items: Sequence[Tuple[int, object]]) -> int:
        """Batch upsert, observationally a loop of :meth:`insert`; a batch
        that is strictly increasing and entirely above ``max_key``
        short-circuits into :meth:`bulk_load_append`."""
        if not items:
            return 0
        if (self._max_key is None or items[0][0] > self._max_key) and (
            kernels.keys_strictly_increasing(items)
        ):
            before = self.n_entries
            self.bulk_load_append(items)
            return self.n_entries - before
        created = 0
        for key, value in items:
            if self.insert(key, value):
                created += 1
        return created

    def delete(self, key: int) -> bool:
        """Remove ``key`` if present (tombstone over the cracked column)."""
        self.meter.charge("node_access")
        delta = self._delta
        prior = delta.get(key, _MISSING)
        if prior is not _MISSING:
            if prior is _TOMBSTONE:
                return False
            self.meter.charge("zonemap_check")
            if key in self._present:
                delta[key] = _TOMBSTONE
            else:
                del delta[key]
                at = bisect_left(self._dkeys, key)
                self._dkeys.pop(at)
                self.meter.charge("entry_move", len(self._dkeys) - at + 1)
            self.n_entries -= 1
            return True
        self.meter.charge("zonemap_check")
        if key not in self._present:
            return False
        delta[key] = _TOMBSTONE
        at = bisect_left(self._dkeys, key)
        self._dkeys.insert(at, key)
        self.meter.charge("entry_move", len(self._dkeys) - at)
        self.n_entries -= 1
        if len(self._dkeys) > self._fold_threshold():
            self._fold()
        return True

    def bulk_load_append(self, items: Sequence[Tuple[int, object]]) -> None:
        """Append a sorted batch of strictly increasing keys > max_key.

        Appending above every existing key (and every delta key — the
        watermark covers both) keeps all partition boundaries valid except
        pivots *above* the append point, which sit at the column's end and
        are dropped before the extend.
        """
        if not items:
            return
        if not kernels.keys_strictly_increasing(items):
            raise BulkLoadError("bulk batch must be strictly increasing")
        first = items[0][0]
        if self._max_key is not None and first <= self._max_key:
            raise BulkLoadError(
                f"bulk batch starts at {first} but index max is {self._max_key}"
            )
        while self._pivots and self._pivots[-1] > first:
            self._pivots.pop()
            self._positions.pop()
        for key, value in items:
            self._keys.append(key)
            self._vals.append(value)
            self._present.add(key)
        self.meter.charge("bulk_entry", len(items))
        self.n_entries += len(items)
        self._bump_watermarks(first)
        self._bump_watermarks(items[-1][0])

    def _bump_watermarks(self, key: int) -> None:
        if self._max_key is None or key > self._max_key:
            self._max_key = key
        if self._min_key is None or key < self._min_key:
            self._min_key = key

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, key: int) -> Optional[object]:
        """Point lookup; cracks around the key (lookups adapt the column
        exactly as ranges do in the cracking literature)."""
        self.meter.charge("node_access")
        prior = self._delta.get(key, _MISSING)
        if prior is not _MISSING:
            return None if prior is _TOMBSTONE else prior
        self.meter.charge("zonemap_check")
        if key not in self._present:
            return None
        p1 = self._crack(key)
        p2 = self._crack(key + 1)
        self.meter.charge("scan_entry", p2 - p1)
        keys = self._keys
        for i in range(p1, p2):
            if keys[i] == key:
                return self._vals[i]
        return None

    def get_many(self, keys: Sequence[int]) -> List[Optional[object]]:
        """Batch point lookups (sequential semantics, per-key cracking)."""
        return [self.get(key) for key in keys]

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    def range_query(self, lo: int, hi: int) -> List[Tuple[int, object]]:
        """All (key, value) with lo <= key <= hi, in key order.

        Cracks at both bounds, so the matching column region is exactly
        ``[crack(lo), crack(hi+1))``; the slice is sorted for output (the
        piece interior stays unsorted — cracking guarantees partitioning,
        not order) and merged with the delta overlay.
        """
        if lo > hi:
            return []
        main: List[Tuple[int, object]] = []
        if self._keys:
            p1 = self._crack(lo)
            p2 = self._crack(hi + 1)
            m = p2 - p1
            if m:
                keys, vals = self._keys, self._vals
                main = sorted(
                    (keys[i], vals[i]) for i in range(p1, p2)
                )
                self.meter.charge("scan_entry", m)
                self.meter.charge("sort_comparison", m * max(1, m.bit_length() - 1))
        dkeys = self._dkeys
        dlo = bisect_left(dkeys, lo)
        dhi = bisect_right(dkeys, hi)
        if dlo == dhi:
            return main
        delta = self._delta
        self.meter.charge("merge_step", dhi - dlo)
        out: List[Tuple[int, object]] = []
        i, j = 0, dlo
        n = len(main)
        while i < n and j < dhi:
            mkey = main[i][0]
            dkey = dkeys[j]
            if mkey < dkey:
                out.append(main[i])
                i += 1
            elif mkey > dkey:
                d = delta[dkey]
                if d is not _TOMBSTONE:
                    out.append((dkey, d))
                j += 1
            else:
                d = delta[dkey]
                if d is not _TOMBSTONE:
                    out.append((mkey, d))
                i += 1
                j += 1
        out.extend(main[i:])
        while j < dhi:
            d = delta[dkeys[j]]
            if d is not _TOMBSTONE:
                out.append((dkeys[j], d))
            j += 1
        return out

    def iter_items(self):
        """All entries in key order (test/debug helper)."""
        if self._min_key is None and not self._dkeys:
            return iter(())
        lo = self._min_key if self._min_key is not None else self._dkeys[0]
        hi = self._max_key if self._max_key is not None else self._dkeys[-1]
        return iter(self.range_query(lo, hi))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def max_key(self) -> Optional[int]:
        """High-watermark upper bound (never shrinks on deletes)."""
        return self._max_key

    @property
    def min_key(self) -> Optional[int]:
        """Low-watermark lower bound (never grows on deletes)."""
        return self._min_key

    def __len__(self) -> int:
        return self.n_entries

    def space_stats(self) -> dict:
        """Adaptive-indexing report: how cracked the column has become."""
        pieces = len(self._pivots) + 1
        n = len(self._keys)
        return {
            "entries": self.n_entries,
            "column_entries": n,
            "delta_entries": len(self._dkeys),
            "pieces": pieces,
            "avg_piece": (n / pieces) if pieces else 0.0,
            "cracks": self.cracks,
            "folds": self.folds,
        }

    def check_invariants(self) -> None:
        """Validate the cracker-index invariant over the whole column."""
        from repro.errors import InvariantViolation

        if len(self._keys) != len(self._vals):
            raise InvariantViolation("column key/value length mismatch")
        if len(set(self._keys)) != len(self._keys):
            raise InvariantViolation("column keys not unique")
        if self._present != set(self._keys):
            raise InvariantViolation("membership set out of sync with column")
        for i in range(1, len(self._pivots)):
            if self._pivots[i - 1] >= self._pivots[i]:
                raise InvariantViolation("pivots not strictly sorted")
            if self._positions[i - 1] > self._positions[i]:
                raise InvariantViolation("pivot positions not monotone")
        for pivot, position in zip(self._pivots, self._positions):
            for i, key in enumerate(self._keys):
                if i < position and key >= pivot:
                    raise InvariantViolation(
                        f"key {key} at {i} >= pivot {pivot} before position {position}"
                    )
                if i >= position and key < pivot:
                    raise InvariantViolation(
                        f"key {key} at {i} < pivot {pivot} at/after position {position}"
                    )
