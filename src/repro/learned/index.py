"""A PGM/FITing-tree style piecewise-linear learned index.

The structure follows the one-level dynamic PGM recipe the SOSD benchmark
popularised:

* **data layer** — one sorted key column with parallel values;
* **model layer** — an epsilon-bounded piecewise-linear approximation of the
  key -> position function, fitted with the greedy shrinking-cone algorithm
  (:func:`repro.kernels.pla_fit_segments`). A lookup picks its segment with
  one binary search over segment boundaries, predicts a position, and
  finishes with a bounded search inside the +/- epsilon window;
* **delta buffer** — inserts and tombstones land in a small sorted overlay
  (learned structures cannot absorb point inserts in place); when it
  outgrows its threshold the overlay merges into the data layer and the
  model is refitted.

Cost accounting mirrors the tree backends: the model probe charges one
``node_access`` (the segment table is one cache-resident node), every
binary-search halving charges ``interp_step``, merges charge ``merge_step``
and rebuild writes ``bulk_entry``, so ``repro bench-sosd`` compares SWARE
and the learned family under a single cost model. The kernels dispatch keeps
numpy optional: fits are bit-identical on both backends, and batch lookups
vectorize the predictions under numpy.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro import kernels
from repro.errors import BulkLoadError, ConfigError
from repro.obs import NULL_OBS, Observability, current_obs
from repro.storage.costmodel import NULL_METER, Meter

#: Delta-buffer marker for "deleted in the data layer".
_TOMBSTONE = object()
_MISSING = object()


@dataclass(frozen=True)
class LearnedIndexConfig:
    """Tuning knobs for :class:`LearnedIndex`.

    ``epsilon`` is the PLA error bound: larger values mean fewer segments
    but a wider final search window (the classic PGM space/latency dial).
    ``delta_capacity`` is the floor of the overlay-merge threshold; the
    effective threshold grows with the data layer (``max(delta_capacity,
    n / merge_divisor)``) so rebuild cost stays amortized O(1) per insert.
    """

    epsilon: int = 32
    delta_capacity: int = 256
    merge_divisor: int = 16

    def __post_init__(self) -> None:
        if self.epsilon < 1:
            raise ConfigError("epsilon must be >= 1")
        if self.delta_capacity < 1:
            raise ConfigError("delta_capacity must be >= 1")
        if self.merge_divisor < 1:
            raise ConfigError("merge_divisor must be >= 1")


class LearnedIndex:
    """See module docstring."""

    def __init__(
        self,
        config: Optional[LearnedIndexConfig] = None,
        meter: Optional[Meter] = None,
        obs: Optional[Observability] = None,
    ):
        self.config = config or LearnedIndexConfig()
        self.meter = meter if meter is not None else NULL_METER
        self.obs = obs if obs is not None else current_obs()
        self._keys: List[int] = []
        self._vals: List[object] = []
        # Model columns (parallel): segment first key, slope, start index.
        self._seg_first: List[int] = []
        self._seg_slope: List[float] = []
        self._seg_start: List[int] = []
        # Sorted delta overlay (parallel key/value lists; _TOMBSTONE values
        # mark deletions of data-layer keys).
        self._dkeys: List[int] = []
        self._dvals: List[object] = []
        self._min_key: Optional[int] = None
        self._max_key: Optional[int] = None
        self.n_entries = 0
        self.rebuilds = 0
        self.model_misses = 0
        if self.obs is not NULL_OBS:
            self.obs.register_collector("learned", self._obs_snapshot)

    def _obs_snapshot(self) -> dict:
        return {
            "n_entries": self.n_entries,
            "data_entries": len(self._keys),
            "delta_entries": len(self._dkeys),
            "segments": len(self._seg_first),
            "epsilon": self.config.epsilon,
            "rebuilds": self.rebuilds,
            "model_misses": self.model_misses,
        }

    # ------------------------------------------------------------------
    # model
    # ------------------------------------------------------------------
    def _fit(self) -> None:
        """Refit the whole model; charges one pass over the data layer."""
        first, slopes, starts = kernels.pla_fit_segments(
            self._keys, self.config.epsilon
        )
        self._seg_first = list(first)
        self._seg_slope = list(slopes)
        self._seg_start = list(starts)
        self.meter.charge("sort_comparison", len(self._keys))

    def _fold_threshold(self) -> int:
        return max(
            self.config.delta_capacity, len(self._keys) // self.config.merge_divisor
        )

    def _predict(self, key: int) -> Tuple[int, int]:
        """The epsilon window ``[wlo, whi)`` the model puts ``key`` in."""
        seg = bisect_right(self._seg_first, key) - 1
        if seg < 0:
            seg = 0
        start = self._seg_start[seg]
        pos = start + int(self._seg_slope[seg] * float(key - self._seg_first[seg]))
        n = len(self._keys)
        if pos < 0:
            pos = 0
        elif pos >= n:
            pos = n - 1
        # +/- epsilon covers fitted keys; one extra slot each side covers
        # queries that fall between fitted keys.
        eps = self.config.epsilon + 1
        wlo = pos - eps
        if wlo < 0:
            wlo = 0
        whi = pos + eps + 1
        if whi > n:
            whi = n
        return wlo, whi

    def _search_main(self, key: int) -> Tuple[int, bool]:
        """Data-layer insertion point for ``key`` and whether it is present.

        One ``node_access`` for the model probe, ``interp_step`` per halving
        of the epsilon window. A window miss (possible only for keys the
        model never fitted) falls back to a charged full binary search.
        """
        keys = self._keys
        n = len(keys)
        if n == 0:
            return 0, False
        self.meter.charge("node_access")
        wlo, whi = self._predict(key)
        self.meter.charge("interp_step", (whi - wlo).bit_length())
        pos = bisect_left(keys, key, wlo, whi)
        if (pos == wlo and wlo > 0 and keys[wlo - 1] >= key) or (
            pos == whi and whi < n and keys[whi] < key
        ):
            self.model_misses += 1
            self.meter.charge("interp_step", n.bit_length())
            pos = bisect_left(keys, key)
        return pos, pos < n and keys[pos] == key

    # ------------------------------------------------------------------
    # delta overlay
    # ------------------------------------------------------------------
    def _delta_pos(self, key: int) -> Tuple[int, bool]:
        dkeys = self._dkeys
        if dkeys:
            self.meter.charge("interp_step", len(dkeys).bit_length())
        pos = bisect_left(dkeys, key)
        return pos, pos < len(dkeys) and dkeys[pos] == key

    def _rebuild(self) -> None:
        """Merge the delta overlay into the data layer and refit the model."""
        keys, vals = self._keys, self._vals
        dkeys, dvals = self._dkeys, self._dvals
        merged_keys: List[int] = []
        merged_vals: List[object] = []
        i = j = 0
        n, d = len(keys), len(dkeys)
        while i < n and j < d:
            if keys[i] < dkeys[j]:
                merged_keys.append(keys[i])
                merged_vals.append(vals[i])
                i += 1
            elif keys[i] > dkeys[j]:
                if dvals[j] is not _TOMBSTONE:
                    merged_keys.append(dkeys[j])
                    merged_vals.append(dvals[j])
                j += 1
            else:
                if dvals[j] is not _TOMBSTONE:
                    merged_keys.append(keys[i])
                    merged_vals.append(dvals[j])
                i += 1
                j += 1
        while i < n:
            merged_keys.append(keys[i])
            merged_vals.append(vals[i])
            i += 1
        while j < d:
            if dvals[j] is not _TOMBSTONE:
                merged_keys.append(dkeys[j])
                merged_vals.append(dvals[j])
            j += 1
        self.meter.charge("merge_step", n + d)
        self.meter.charge("bulk_entry", len(merged_keys))
        self._keys, self._vals = merged_keys, merged_vals
        self._dkeys, self._dvals = [], []
        self._fit()
        self.rebuilds += 1
        if self.obs.enabled:
            self.obs.event(
                "learned.rebuild",
                entries=len(merged_keys),
                segments=len(self._seg_first),
            )

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def insert(self, key: int, value: object) -> bool:
        """Insert or update; returns True if a new entry was created."""
        dpos, dhit = self._delta_pos(key)
        if dhit:
            created = self._dvals[dpos] is _TOMBSTONE
            self._dvals[dpos] = value
            if created:
                self.n_entries += 1
            self._bump_watermarks(key)
            return created
        _pos, in_main = self._search_main(key)
        self._dkeys.insert(dpos, key)
        self._dvals.insert(dpos, value)
        self.meter.charge("entry_move", len(self._dkeys) - dpos)
        created = not in_main
        if created:
            self.n_entries += 1
        self._bump_watermarks(key)
        if len(self._dkeys) > self._fold_threshold():
            self._rebuild()
        return created

    def insert_many(self, items: Sequence[Tuple[int, object]]) -> int:
        """Batch upsert, observationally a loop of :meth:`insert`; a batch
        that is strictly increasing and entirely above ``max_key`` (the
        common case under sorted ingestion) short-circuits into
        :meth:`bulk_load_append`."""
        if not items:
            return 0
        if (self._max_key is None or items[0][0] > self._max_key) and (
            kernels.keys_strictly_increasing(items)
        ):
            before = self.n_entries
            self.bulk_load_append(items)
            return self.n_entries - before
        created = 0
        for key, value in items:
            if self.insert(key, value):
                created += 1
        return created

    def delete(self, key: int) -> bool:
        """Remove ``key`` if present (delta tombstone over the data layer)."""
        dpos, dhit = self._delta_pos(key)
        if dhit:
            if self._dvals[dpos] is _TOMBSTONE:
                return False
            _pos, in_main = self._search_main(key)
            if in_main:
                self._dvals[dpos] = _TOMBSTONE
            else:
                self._dkeys.pop(dpos)
                self._dvals.pop(dpos)
                self.meter.charge("entry_move", len(self._dkeys) - dpos + 1)
            self.n_entries -= 1
            return True
        _pos, in_main = self._search_main(key)
        if not in_main:
            return False
        self._dkeys.insert(dpos, key)
        self._dvals.insert(dpos, _TOMBSTONE)
        self.meter.charge("entry_move", len(self._dkeys) - dpos)
        self.n_entries -= 1
        if len(self._dkeys) > self._fold_threshold():
            self._rebuild()
        return True

    def bulk_load_append(self, items: Sequence[Tuple[int, object]]) -> None:
        """Append a sorted batch of strictly increasing keys > max_key.

        The data layer extends in place and the appended region is fitted
        as fresh segments — O(appended), no global refit.
        """
        if not items:
            return
        if not kernels.keys_strictly_increasing(items):
            raise BulkLoadError("bulk batch must be strictly increasing")
        if self._max_key is not None and items[0][0] <= self._max_key:
            raise BulkLoadError(
                f"bulk batch starts at {items[0][0]} but index max is {self._max_key}"
            )
        old_n = len(self._keys)
        appended = [key for key, _value in items]
        self._keys.extend(appended)
        self._vals.extend(value for _key, value in items)
        self.meter.charge("bulk_entry", len(items))
        first, slopes, starts = kernels.pla_fit_segments(appended, self.config.epsilon)
        self._seg_first.extend(first)
        self._seg_slope.extend(slopes)
        self._seg_start.extend(start + old_n for start in starts)
        self.meter.charge("sort_comparison", len(appended))
        self.n_entries += len(items)
        self._bump_watermarks(items[0][0])
        self._bump_watermarks(items[-1][0])

    def _bump_watermarks(self, key: int) -> None:
        if self._max_key is None or key > self._max_key:
            self._max_key = key
        if self._min_key is None or key < self._min_key:
            self._min_key = key

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, key: int) -> Optional[object]:
        """Point lookup; returns the value or None."""
        dpos, dhit = self._delta_pos(key)
        if dhit:
            value = self._dvals[dpos]
            return None if value is _TOMBSTONE else value
        pos, found = self._search_main(key)
        return self._vals[pos] if found else None

    def get_many(self, keys: Sequence[int]) -> List[Optional[object]]:
        """Batch point lookups, one value-or-``None`` per key in input order.

        Delta probes stay per-key; data-layer predictions for the misses run
        through one vectorized :func:`repro.kernels.pla_predict_many` call
        (the numpy backend resolves every segment and slope at once). The
        model table is touched — and charged — once per batch.
        """
        n = len(keys)
        if n == 0:
            return []
        results: List[Optional[object]] = [None] * n
        miss_positions: List[int] = []
        miss_keys: List[int] = []
        for i, key in enumerate(keys):
            dpos, dhit = self._delta_pos(key)
            if dhit:
                value = self._dvals[dpos]
                results[i] = None if value is _TOMBSTONE else value
            else:
                miss_positions.append(i)
                miss_keys.append(key)
        mkeys = self._keys
        mn = len(mkeys)
        if not miss_keys or mn == 0:
            return results
        self.meter.charge("node_access")
        preds = kernels.pla_predict_many(
            self._seg_first, self._seg_slope, self._seg_start, miss_keys
        )
        eps = self.config.epsilon + 1
        vals = self._vals
        for i, key, pos in zip(miss_positions, miss_keys, preds):
            if pos < 0:
                pos = 0
            elif pos >= mn:
                pos = mn - 1
            wlo = pos - eps
            if wlo < 0:
                wlo = 0
            whi = pos + eps + 1
            if whi > mn:
                whi = mn
            self.meter.charge("interp_step", (whi - wlo).bit_length())
            at = bisect_left(mkeys, key, wlo, whi)
            if (at == wlo and wlo > 0 and mkeys[wlo - 1] >= key) or (
                at == whi and whi < mn and mkeys[whi] < key
            ):
                self.model_misses += 1
                self.meter.charge("interp_step", mn.bit_length())
                at = bisect_left(mkeys, key)
            if at < mn and mkeys[at] == key:
                results[i] = vals[at]
        return results

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    def range_query(self, lo: int, hi: int) -> List[Tuple[int, object]]:
        """All (key, value) with lo <= key <= hi, in key order."""
        if lo > hi:
            return []
        keys, vals = self._keys, self._vals
        start, _found = self._search_main(lo) if keys else (0, False)
        dkeys, dvals = self._dkeys, self._dvals
        dlo = bisect_left(dkeys, lo)
        dhi = bisect_right(dkeys, hi)
        self.meter.charge("merge_step", dhi - dlo)
        out: List[Tuple[int, object]] = []
        i, j = start, dlo
        n = len(keys)
        scanned = 0
        while i < n and keys[i] <= hi and j < dhi:
            if keys[i] < dkeys[j]:
                out.append((keys[i], vals[i]))
                scanned += 1
                i += 1
            elif keys[i] > dkeys[j]:
                if dvals[j] is not _TOMBSTONE:
                    out.append((dkeys[j], dvals[j]))
                j += 1
            else:
                if dvals[j] is not _TOMBSTONE:
                    out.append((keys[i], dvals[j]))
                scanned += 1
                i += 1
                j += 1
        while i < n and keys[i] <= hi:
            out.append((keys[i], vals[i]))
            scanned += 1
            i += 1
        while j < dhi:
            if dvals[j] is not _TOMBSTONE:
                out.append((dkeys[j], dvals[j]))
            j += 1
        self.meter.charge("scan_entry", scanned)
        return out

    def iter_items(self):
        """All entries in key order (no cost charged: test/debug helper)."""
        if self._min_key is None:
            return iter(())
        return iter(self.range_query(self._min_key, self._max_key))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def max_key(self) -> Optional[int]:
        """High-watermark upper bound (never shrinks on deletes)."""
        return self._max_key

    @property
    def min_key(self) -> Optional[int]:
        """Low-watermark lower bound (never grows on deletes)."""
        return self._min_key

    def __len__(self) -> int:
        return self.n_entries

    def space_stats(self) -> dict:
        """Model/layout report: PGM's headline is index size vs the data."""
        n = len(self._keys)
        segments = len(self._seg_first)
        return {
            "entries": self.n_entries,
            "data_entries": n,
            "delta_entries": len(self._dkeys),
            "segments": segments,
            "epsilon": self.config.epsilon,
            "keys_per_segment": (n / segments) if segments else 0.0,
            "rebuilds": self.rebuilds,
            "model_misses": self.model_misses,
        }

    def check_invariants(self) -> None:
        """Validate structural invariants (used by the equivalence suite)."""
        from repro.errors import InvariantViolation

        keys = self._keys
        for i in range(1, len(keys)):
            if keys[i - 1] >= keys[i]:
                raise InvariantViolation("data layer not strictly sorted")
        dkeys = self._dkeys
        for i in range(1, len(dkeys)):
            if dkeys[i - 1] >= dkeys[i]:
                raise InvariantViolation("delta overlay not strictly sorted")
        if len(self._dkeys) != len(self._dvals):
            raise InvariantViolation("delta key/value column length mismatch")
        if self._seg_start and self._seg_start[0] != 0:
            raise InvariantViolation("first segment must start at 0")
        for i in range(1, len(self._seg_start)):
            if self._seg_start[i - 1] >= self._seg_start[i]:
                raise InvariantViolation("segment starts not increasing")
        # Every fitted key must be found through the model path.
        for i in range(0, len(keys), max(1, len(keys) // 64)):
            pos, found = self._search_main(keys[i])
            if not found or pos != i:
                raise InvariantViolation(
                    f"model lookup failed for fitted key {keys[i]} at {i}"
                )
