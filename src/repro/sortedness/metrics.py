"""Quantifying data sortedness with the (K,L) metric.

Following Ben-Moshe et al. [ICDT 2011], a collection is (K,L)-near sorted
when at most ``K`` elements are out of order and no out-of-order element is
displaced by more than ``L`` positions from where it belongs:

* ``K`` — the minimum number of elements whose removal leaves the sequence
  sorted; computed exactly as ``N`` minus the length of the longest
  non-decreasing subsequence (patience sorting, O(N log N)).
* ``L`` — the maximum positional displacement, computed against the stable
  sorted order of the collection.

We also expose the inversion count (the classic "how unsorted" measure used
by Mannila [1985] and the streaming literature the paper cites) because the
test suite uses it to cross-check the generator.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass
from typing import List, Sequence

from repro import kernels


@dataclass(frozen=True)
class SortednessReport:
    """Measured sortedness of a collection of ``n`` keys."""

    n: int
    k: int  #: number of out-of-order elements (exact, minimal)
    l: int  #: maximum positional displacement
    inversions: int

    @property
    def k_fraction(self) -> float:
        """K as a fraction of the collection size (the paper's K%)."""
        return self.k / self.n if self.n else 0.0

    @property
    def l_fraction(self) -> float:
        """L as a fraction of the collection size (the paper's L%)."""
        return self.l / self.n if self.n else 0.0

    @property
    def is_sorted(self) -> bool:
        """A collection is completely sorted iff K == 0 (equivalently L == 0)."""
        return self.k == 0

    def degree(self) -> str:
        """Qualitative degree per §II of the paper.

        Near-sorted: low K and L, or one high while the other is low.
        Less-sorted / scrambled: both high.
        """
        kf, lf = self.k_fraction, self.l_fraction
        if self.k == 0:
            return "sorted"
        if kf <= 0.25 or lf <= 0.10:
            return "near-sorted"
        if kf >= 0.9 and lf >= 0.4:
            return "scrambled"
        return "less-sorted"


# The metric implementations live in repro.kernels (python_kernels holds the
# reference algorithms, numpy_kernels the vectorized twins); these wrappers
# keep the documented public API stable while dispatching per backend.
def longest_nondecreasing_subsequence_length(keys: Sequence[int]) -> int:
    """Length of the longest non-decreasing subsequence (patience sorting)."""
    return kernels.longest_nondecreasing_subsequence_length(keys)


def count_out_of_order(keys: Sequence[int]) -> int:
    """Exact K: minimum removals that leave the sequence non-decreasing."""
    return kernels.count_out_of_order(keys)


def max_displacement(keys: Sequence[int]) -> int:
    """Exact L: max |i - sorted_position(i)| under a stable sort."""
    return kernels.max_displacement(keys)


def count_inversions(keys: Sequence[int]) -> int:
    """Number of pairs (i, j) with i < j and keys[i] > keys[j].

    Merge-count (python backend) or rank-permutation merge-count over whole
    levels (numpy backend), both O(N log N); duplicates do not count as
    inversions.
    """
    return kernels.count_inversions(keys)


def count_runs(keys: Sequence[int]) -> int:
    """Mannila's *Runs* measure: number of maximal non-decreasing runs.

    A sorted sequence is one run; a reversed sequence of n distinct keys is
    n runs. One of the classical presortedness measures the paper's §II
    cites alongside (K,L).
    """
    return kernels.count_runs(keys)


def exchange_distance(keys: Sequence[int]) -> int:
    """Mannila's *Exc* measure: minimum element exchanges to sort.

    Equals n minus the number of cycles of the permutation mapping current
    positions to (stable) sorted positions.
    """
    n = len(keys)
    order = sorted(range(n), key=lambda i: (keys[i], i))
    target = [0] * n
    for sorted_pos, original_pos in enumerate(order):
        target[original_pos] = sorted_pos
    seen = [False] * n
    cycles = 0
    for start in range(n):
        if seen[start]:
            continue
        cycles += 1
        position = start
        while not seen[position]:
            seen[position] = True
            position = target[position]
    return n - cycles


def normalized_inversions(keys: Sequence[int]) -> float:
    """Inversions as a fraction of the maximum possible n(n-1)/2."""
    n = len(keys)
    if n < 2:
        return 0.0
    return count_inversions(keys) / (n * (n - 1) / 2)


def measure_sortedness(keys: Sequence[int]) -> SortednessReport:
    """Full sortedness report (K, L, inversions) for a key collection."""
    return SortednessReport(
        n=len(keys),
        k=count_out_of_order(keys),
        l=max_displacement(keys),
        inversions=count_inversions(keys),
    )


class RunningSortednessEstimate:
    """Cheap online (K,L) estimate, as maintained by the SWARE-buffer.

    The buffer cannot afford exact K/L on every insert; it keeps the count of
    appends that broke the running maximum (an upper-ish proxy for K) and the
    largest distance between an out-of-order element's arrival position and
    the position of the first element it undercuts (a proxy for L). These
    estimates drive the sorting-algorithm choice at flush time (§IV-C).
    """

    __slots__ = ("n", "k_estimate", "l_estimate", "_prev_key", "_sorted_keys")

    def __init__(self) -> None:
        self.n = 0
        self.k_estimate = 0
        self.l_estimate = 0
        self._prev_key: int | None = None
        # Sample of keys seen, kept sorted to estimate displacement by rank.
        self._sorted_keys: List[int] = []

    def observe(self, key: int) -> None:
        """Record the next arriving key.

        A *descent* (key smaller than its predecessor) marks an out-of-order
        element; counting descents rather than drops below the running max
        keeps one early spike from branding everything after it as
        out-of-order.
        """
        self.n += 1
        descended = self._prev_key is not None and key < self._prev_key
        self._prev_key = key
        if descended:
            self.k_estimate += 1
            # The element belongs (roughly) at its rank in the keys seen so
            # far; displacement is how far back that is from its arrival.
            slot = bisect_right(self._sorted_keys, key)
            displacement = len(self._sorted_keys) - slot
            if displacement > self.l_estimate:
                self.l_estimate = displacement
        insort(self._sorted_keys, key)

    def reset(self) -> None:
        self.n = 0
        self.k_estimate = 0
        self.l_estimate = 0
        self._prev_key = None
        self._sorted_keys.clear()

    @property
    def k_fraction(self) -> float:
        return self.k_estimate / self.n if self.n else 0.0

    @property
    def l_fraction(self) -> float:
        return self.l_estimate / self.n if self.n else 0.0
