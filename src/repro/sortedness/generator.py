"""BoDS-style (K,L)-near sorted workload generation.

The paper evaluates against collections produced by the *Benchmark on Data
Sortedness* [Raman et al., TPCTC 2022], which takes target values of K (how
many elements are out of order) and L (how far they may travel, both as
fractions of N) and emits a data collection exhibiting that sortedness.

Our generator starts from the fully sorted key sequence and applies random
pairwise swaps: each swap displaces two elements, the swap distance is drawn
up to ``L·N`` (with at least one swap pinned at the maximum distance so the
measured L hits the target), and swapped positions are kept disjoint while
possible so the achieved K tracks the request closely. ``scrambled``
workloads are a uniform shuffle, exactly as in the paper's Fig. 9(f).

Every generated collection can be fed to
:func:`repro.sortedness.metrics.measure_sortedness` — the test-suite asserts
the achieved (K,L) lands near the request.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: The qualitative degrees of sortedness used across the paper's experiments,
#: mapped to (K-fraction, L-fraction). ``None`` marks the uniform shuffle.
NAMED_DEGREES: Dict[str, Optional[Tuple[float, float]]] = {
    "sorted": (0.0, 0.0),
    "near_sorted": (0.10, 0.05),
    "less_sorted": (1.00, 0.50),
    "scrambled": None,
}


@dataclass(frozen=True)
class GeneratedWorkload:
    """A generated key collection plus its generation parameters."""

    keys: List[int]
    k_fraction: float
    l_fraction: float
    seed: int
    label: str = ""

    @property
    def n(self) -> int:
        return len(self.keys)


def sorted_keys(n: int, start: int = 0, gap: int = 1) -> List[int]:
    """The fully sorted base collection: ``start, start+gap, ...``.

    A gap > 1 leaves key-space holes so that experiments can issue inserts
    or non-member lookups between existing keys.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if gap <= 0:
        raise ValueError("gap must be positive")
    return list(range(start, start + n * gap, gap))


def generate_kl_keys(
    n: int,
    k_fraction: float,
    l_fraction: float,
    seed: int = 0,
    start: int = 0,
    gap: int = 1,
) -> List[int]:
    """A (K,L)-near sorted permutation of the sorted base collection.

    ``k_fraction`` and ``l_fraction`` are the paper's K% and L% expressed in
    [0, 1]. ``k_fraction == 0`` or ``l_fraction == 0`` yields the fully
    sorted collection (a collection is completely sorted iff K=0 or L=0,
    §II).
    """
    if not 0.0 <= k_fraction <= 1.0:
        raise ValueError("k_fraction must be within [0, 1]")
    if not 0.0 <= l_fraction <= 1.0:
        raise ValueError("l_fraction must be within [0, 1]")
    keys = sorted_keys(n, start=start, gap=gap)
    if n < 2 or k_fraction == 0.0 or l_fraction == 0.0:
        return keys

    rng = random.Random(seed)
    max_distance = max(1, int(l_fraction * n))
    target_displaced = int(k_fraction * n)
    if target_displaced < 2:
        return keys

    displaced: set = set()
    n_displaced = 0
    attempts = 0
    max_attempts = 6 * n  # generous; disjointness gets hard near K=100%
    # Pin one swap at the maximum distance so measured L reaches the target.
    if max_distance < n:
        anchor = rng.randrange(0, n - max_distance)
        partner = anchor + max_distance
        keys[anchor], keys[partner] = keys[partner], keys[anchor]
        displaced.update((anchor, partner))
        n_displaced += 2

    while n_displaced < target_displaced and attempts < max_attempts:
        attempts += 1
        p = rng.randrange(n)
        if p in displaced:
            continue
        lo = max(0, p - max_distance)
        hi = min(n - 1, p + max_distance)
        q = rng.randint(lo, hi)
        if q == p or q in displaced:
            continue
        keys[p], keys[q] = keys[q], keys[p]
        displaced.update((p, q))
        n_displaced += 2
    return keys


def scrambled_keys(n: int, seed: int = 0, start: int = 0, gap: int = 1) -> List[int]:
    """A uniformly random permutation of the sorted base collection."""
    keys = sorted_keys(n, start=start, gap=gap)
    random.Random(seed).shuffle(keys)
    return keys


def generate_workload(
    n: int,
    degree: str = "near_sorted",
    seed: int = 0,
    start: int = 0,
    gap: int = 1,
) -> GeneratedWorkload:
    """Generate by qualitative degree name (see :data:`NAMED_DEGREES`)."""
    if degree not in NAMED_DEGREES:
        raise ValueError(
            f"unknown degree {degree!r}; expected one of {sorted(NAMED_DEGREES)}"
        )
    params = NAMED_DEGREES[degree]
    if params is None:
        return GeneratedWorkload(
            keys=scrambled_keys(n, seed=seed, start=start, gap=gap),
            k_fraction=1.0,
            l_fraction=1.0,
            seed=seed,
            label=degree,
        )
    k_fraction, l_fraction = params
    return GeneratedWorkload(
        keys=generate_kl_keys(n, k_fraction, l_fraction, seed=seed, start=start, gap=gap),
        k_fraction=k_fraction,
        l_fraction=l_fraction,
        seed=seed,
        label=degree,
    )


def workload_family(
    n: int,
    kl_grid: List[Tuple[float, float]],
    seed: int = 0,
    start: int = 0,
    gap: int = 1,
) -> List[GeneratedWorkload]:
    """A family of differently sorted collections over the same key set.

    This mirrors the paper's Fig. 9 family: one collection per (K%, L%)
    point, all permutations of the same base keys, so index contents are
    identical at the end of ingestion and only arrival order differs.
    """
    family = []
    for index, (k_fraction, l_fraction) in enumerate(kl_grid):
        keys = generate_kl_keys(
            n, k_fraction, l_fraction, seed=seed + index, start=start, gap=gap
        )
        family.append(
            GeneratedWorkload(
                keys=keys,
                k_fraction=k_fraction,
                l_fraction=l_fraction,
                seed=seed + index,
                label=f"K={k_fraction:.0%},L={l_fraction:.0%}",
            )
        )
    return family
