"""(K,L)-adaptive sorting [Ben-Moshe et al., ICDT 2011].

The algorithm sorts a (K,L)-near sorted collection in two sequential passes:

1. **Split pass** — scan the input once, greedily growing a non-decreasing
   *spine*; every element that undercuts the spine's tail is diverted to a
   side buffer of *outliers*. A one-step backtrack ejects a spine tail that
   itself turns out to be the anomaly (a lone spike would otherwise poison
   the spine and push everything after it into the side buffer).
2. **Merge pass** — sort the (small) side buffer and stably merge it with
   the spine.

For a (K,L)-input the side buffer holds O(K) elements, so the total work is
O(N + K log K) ⊆ O(N log(K+L)) with O(K + L) extra space, matching the
complexity quoted in §II of the paper. The side buffer is capacity-bounded;
overflowing it raises :class:`~repro.errors.KLSortCapacityError`, mirroring
the paper's observation that the algorithm "fails for significantly high
values of K or L" — callers (the SWARE-buffer) catch this and fall back to a
general stable sort.

Stability: ties are broken by arrival position, so duplicate keys keep their
relative order — a requirement the paper states explicitly (§IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.errors import KLSortCapacityError

T = TypeVar("T")


@dataclass
class KLSortStats:
    """Operation counts from one kl_sort invocation (used by the cost model
    and by the complexity tests)."""

    n: int = 0
    outliers: int = 0
    backtracks: int = 0
    comparisons: int = 0
    merge_steps: int = 0
    extra: dict = field(default_factory=dict)


def kl_sort(
    items: Sequence[T],
    key: Optional[Callable[[T], object]] = None,
    capacity: Optional[int] = None,
    stats: Optional[KLSortStats] = None,
) -> List[T]:
    """Return ``items`` stably sorted, exploiting near-sortedness.

    Parameters
    ----------
    items:
        The input sequence (not modified).
    key:
        Sort-key extractor; defaults to the identity.
    capacity:
        Maximum side-buffer size (the paper's O(K+L) memory bound). ``None``
        means unbounded. Exceeding it raises
        :class:`~repro.errors.KLSortCapacityError` *before* doing the merge
        work, so the caller's fallback pays nothing extra.
    stats:
        Optional mutable stats collector.
    """
    if key is None:
        key = lambda item: item  # noqa: E731 - tiny identity adapter
    if stats is None:
        stats = KLSortStats()
    stats.n = len(items)

    # --- Pass 1: split into a non-decreasing spine and an outlier buffer ---
    spine: List[Tuple[object, int, T]] = []  # (key, arrival, item)
    outliers: List[Tuple[object, int, T]] = []

    def divert(entry: Tuple[object, int, T]) -> None:
        outliers.append(entry)
        if capacity is not None and len(outliers) > capacity:
            raise KLSortCapacityError(
                f"(K,L)-sort side buffer exceeded capacity {capacity} "
                f"after {entry[1] + 1}/{stats.n} elements"
            )

    for arrival, item in enumerate(items):
        item_key = key(item)
        if not spine:
            spine.append((item_key, arrival, item))
            continue
        stats.comparisons += 1
        if item_key >= spine[-1][0]:
            spine.append((item_key, arrival, item))
            continue
        # One-step backtrack: if the spine's tail is the anomaly (the new
        # element still fits after the element *before* the tail — or the
        # tail is the only spine element), eject the tail instead of the
        # new element. This keeps a lone early spike from poisoning the
        # spine and diverting everything after it.
        stats.comparisons += 1
        if len(spine) == 1 or item_key >= spine[-2][0]:
            stats.backtracks += 1
            divert(spine.pop())
            spine.append((item_key, arrival, item))
        else:
            divert((item_key, arrival, item))

    stats.outliers = len(outliers)

    # --- Pass 2: sort the outliers and merge ---
    # (key, arrival) ordering makes the merge stable for duplicates.
    outliers.sort(key=lambda entry: (entry[0], entry[1]))

    if not outliers:
        return [item for _, _, item in spine]

    merged: List[T] = []
    i = j = 0
    n_spine, n_out = len(spine), len(outliers)
    while i < n_spine and j < n_out:
        stats.merge_steps += 1
        spine_entry = spine[i]
        out_entry = outliers[j]
        if (spine_entry[0], spine_entry[1]) <= (out_entry[0], out_entry[1]):
            merged.append(spine_entry[2])
            i += 1
        else:
            merged.append(out_entry[2])
            j += 1
    merged.extend(entry[2] for entry in spine[i:])
    merged.extend(entry[2] for entry in outliers[j:])
    return merged


def kl_sort_or_fallback(
    items: Sequence[T],
    key: Optional[Callable[[T], object]] = None,
    capacity: Optional[int] = None,
    stats: Optional[KLSortStats] = None,
) -> Tuple[List[T], str]:
    """kl_sort with automatic fallback to Python's stable sort.

    Returns ``(sorted_list, algorithm)`` where ``algorithm`` is ``"kl"`` or
    ``"stable"``. This is the exact decision the SWARE-buffer makes at flush
    time when its K/L estimates turned out to be wrong.
    """
    try:
        return kl_sort(items, key=key, capacity=capacity, stats=stats), "kl"
    except KLSortCapacityError:
        if key is None:
            return sorted(items), "stable"  # type: ignore[type-var]
        return sorted(items, key=key), "stable"
