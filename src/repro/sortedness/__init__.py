"""Data-sortedness tooling: the (K,L) metric, adaptive sorting, generators."""

from repro.sortedness.generator import (
    NAMED_DEGREES,
    GeneratedWorkload,
    generate_kl_keys,
    generate_workload,
    scrambled_keys,
    sorted_keys,
    workload_family,
)
from repro.sortedness.klsort import KLSortStats, kl_sort, kl_sort_or_fallback
from repro.sortedness.metrics import (
    RunningSortednessEstimate,
    SortednessReport,
    count_inversions,
    count_out_of_order,
    count_runs,
    exchange_distance,
    longest_nondecreasing_subsequence_length,
    max_displacement,
    measure_sortedness,
    normalized_inversions,
)

__all__ = [
    "NAMED_DEGREES",
    "GeneratedWorkload",
    "generate_kl_keys",
    "generate_workload",
    "scrambled_keys",
    "sorted_keys",
    "workload_family",
    "KLSortStats",
    "kl_sort",
    "kl_sort_or_fallback",
    "RunningSortednessEstimate",
    "SortednessReport",
    "count_inversions",
    "count_out_of_order",
    "count_runs",
    "exchange_distance",
    "longest_nondecreasing_subsequence_length",
    "max_displacement",
    "measure_sortedness",
    "normalized_inversions",
]
