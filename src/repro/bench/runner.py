"""Workload execution and measurement.

A *run* builds a fresh index through a factory, executes one or more phases
of operations, and records per-phase simulated nanoseconds (from the shared
:class:`~repro.storage.Meter` under a :class:`~repro.storage.CostModel`) and
wall time. Speedups reported by the experiments are ratios of simulated
latency — see DESIGN.md substitution #1.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from itertools import groupby, islice
from operator import itemgetter
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.sware import SortednessAwareIndex
from repro.obs import NULL_OBS, Observability, current_obs
from repro.obs import observe as obs_observe
from repro.storage.costmodel import CostModel, Meter
from repro.workloads.spec import DELETE, INSERT, LOOKUP, RANGE, Operation

#: Histogram metric per op code, recorded when a run is observed.
OP_HISTOGRAMS = {
    INSERT: "op_insert_latency_ns",
    LOOKUP: "op_lookup_latency_ns",
    RANGE: "op_range_latency_ns",
    DELETE: "op_delete_latency_ns",
}

#: A factory receives the run's meter and returns a ready index
#: (a raw tree or a SortednessAwareIndex).
IndexFactory = Callable[[Meter], object]


@dataclass
class PhaseResult:
    """Measurements for one named phase of a run."""

    name: str
    n_ops: int
    sim_ns: float
    wall_ns: float

    @property
    def sim_ns_per_op(self) -> float:
        return self.sim_ns / self.n_ops if self.n_ops else 0.0


@dataclass
class RunResult:
    """Measurements and statistics for one complete run."""

    label: str
    phases: List[PhaseResult] = field(default_factory=list)
    bucket_sim_ns: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, float] = field(default_factory=dict)
    sware_stats: Dict[str, float] = field(default_factory=dict)
    index_stats: Dict[str, float] = field(default_factory=dict)

    @property
    def sim_ns(self) -> float:
        return sum(phase.sim_ns for phase in self.phases)

    @property
    def wall_ns(self) -> float:
        return sum(phase.wall_ns for phase in self.phases)

    @property
    def n_ops(self) -> int:
        return sum(phase.n_ops for phase in self.phases)

    @property
    def sim_ns_per_op(self) -> float:
        return self.sim_ns / self.n_ops if self.n_ops else 0.0

    def phase(self, name: str) -> PhaseResult:
        for phase in self.phases:
            if phase.name == name:
                return phase
        raise KeyError(name)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form, the unit of the bench telemetry artifact."""
        return {
            "label": self.label,
            "phases": [
                {
                    "name": phase.name,
                    "n_ops": phase.n_ops,
                    "sim_ns": phase.sim_ns,
                    "wall_ns": phase.wall_ns,
                    "sim_ns_per_op": phase.sim_ns_per_op,
                }
                for phase in self.phases
            ],
            "bucket_sim_ns": dict(self.bucket_sim_ns),
            "counts": dict(self.counts),
            "sware_stats": dict(self.sware_stats),
            "index_stats": dict(self.index_stats),
        }


def execute_operations(index, operations: Iterable[Operation]) -> int:
    """Dispatch an operation stream against an index; returns op count."""
    n = 0
    insert = index.insert
    get = index.get
    range_query = index.range_query
    delete = index.delete
    for op, a, b in operations:
        if op == INSERT:
            insert(a, b)
        elif op == LOOKUP:
            get(a)
        elif op == RANGE:
            range_query(a, b)
        elif op == DELETE:
            delete(a)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown operation code {op}")
        n += 1
    return n


def execute_operations_batched(
    index, operations: Iterable[Operation], batch_size: int
) -> int:
    """Replay the stream through the index's batch entry points.

    Maximal runs of consecutive INSERT (resp. LOOKUP) operations are grouped
    into chunks of at most ``batch_size`` and dispatched through
    ``put_many``/``insert_many`` (resp. ``get_many``); RANGE and DELETE
    flush any pending chunk and replay per-op, preserving stream order. The
    batch entry points are observationally equivalent to per-op replay by
    contract (same flush boundaries, stats, and results), so this changes
    only constant factors, never outcomes.

    Indexes without batch entry points fall back to
    :func:`execute_operations` transparently.
    """
    if batch_size <= 1:
        return execute_operations(index, operations)
    put_many = getattr(index, "put_many", None) or getattr(index, "insert_many", None)
    get_many = getattr(index, "get_many", None)
    if put_many is None and get_many is None:
        return execute_operations(index, operations)

    n = 0
    for op, group in groupby(operations, key=itemgetter(0)):
        if op == INSERT and put_many is not None:
            while True:
                chunk = [(a, b) for _op, a, b in islice(group, batch_size)]
                if not chunk:
                    break
                put_many(chunk)
                n += len(chunk)
        elif op == LOOKUP and get_many is not None:
            while True:
                chunk = [a for _op, a, _b in islice(group, batch_size)]
                if not chunk:
                    break
                get_many(chunk)
                n += len(chunk)
        else:
            for _op, a, b in group:
                if op == INSERT:
                    index.insert(a, b)
                elif op == LOOKUP:
                    index.get(a)
                elif op == RANGE:
                    index.range_query(a, b)
                elif op == DELETE:
                    index.delete(a)
                else:  # pragma: no cover - defensive
                    raise ValueError(f"unknown operation code {op}")
                n += 1
    return n


def execute_operations_observed(
    index, operations: Iterable[Operation], obs: Observability
) -> int:
    """Like :func:`execute_operations`, but times every op into per-kind
    latency histograms on ``obs`` (the Fig. 13-style distributions the bench
    artifact reports as p50/p95/p99)."""
    n = 0
    clock = time.perf_counter_ns
    histograms = {
        op: obs.registry.histogram(name) for op, name in OP_HISTOGRAMS.items()
    }
    dispatch = {
        INSERT: index.insert,
        LOOKUP: index.get,
        RANGE: index.range_query,
        DELETE: index.delete,
    }
    for op, a, b in operations:
        fn = dispatch.get(op)
        if fn is None:  # pragma: no cover - defensive
            raise ValueError(f"unknown operation code {op}")
        start = clock()
        if op == INSERT or op == RANGE:
            fn(a, b)
        else:
            fn(a)
        histograms[op].observe(clock() - start)
        n += 1
    return n


def run_phases(
    factory: IndexFactory,
    phases: List[Tuple[str, Iterable[Operation]]],
    cost_model: Optional[CostModel] = None,
    label: str = "",
    flush_after: Optional[str] = None,
    obs: Optional[Observability] = None,
    batch_size: Optional[int] = None,
) -> RunResult:
    """Build an index and run the phases, measuring each.

    ``flush_after`` names a phase after which ``flush_all()`` is invoked on
    a SWARE index (its cost lands in that phase, mirroring the paper's
    "drain before read-only measurement" setups where used).

    ``batch_size`` switches execution to
    :func:`execute_operations_batched` (the opt-in ``--batch N`` mode);
    the default ``None`` keeps per-op replay so the paper's figure
    reproductions are unaffected. Batched phases skip the per-op latency
    histograms — per-op timing inside a batch call is meaningless.

    When an :class:`Observability` is supplied (or installed via
    ``repro.obs.observe``), every op is additionally timed into per-kind
    latency histograms, the run's :class:`Meter` registers as a collector,
    and the serialized result is recorded for the bench JSON artifact.
    """
    model = cost_model or CostModel()
    meter = Meter()
    obs = obs if obs is not None else current_obs()
    observed = obs is not NULL_OBS
    # Components constructed by the factory pick their obs up from the
    # active context, so an explicitly passed obs must be installed too.
    ctx = obs_observe(obs) if observed else nullcontext()
    with ctx:
        index = factory(meter)
        result = RunResult(label=label)
        if observed:
            obs.register_collector(f"meter_{label}" if label else "meter", meter.snapshot)

        for name, operations in phases:
            before = meter.nanos(model)
            start = time.perf_counter_ns()
            with obs.span("run.phase", label=label, phase=name):
                if batch_size:
                    n_ops = execute_operations_batched(index, operations, batch_size)
                elif observed:
                    n_ops = execute_operations_observed(index, operations, obs)
                else:
                    n_ops = execute_operations(index, operations)
                if flush_after == name and isinstance(index, SortednessAwareIndex):
                    index.flush_all()
            wall = time.perf_counter_ns() - start
            sim = meter.nanos(model) - before
            result.phases.append(PhaseResult(name=name, n_ops=n_ops, sim_ns=sim, wall_ns=wall))

    result.bucket_sim_ns = meter.bucket_nanos(model)
    result.counts = meter.snapshot()
    if isinstance(index, SortednessAwareIndex):
        result.sware_stats = index.stats.snapshot()
        tree = index.backend
    else:
        tree = index
    for attr in (
        "leaf_splits",
        "internal_splits",
        "leaf_fissions",
        "leaf_count",
        "internal_count",
        "height",
        "top_inserts",
        "fastpath_inserts",
        "bulk_loaded_entries",
        "buffer_flushes",
        "messages_moved",
    ):
        value = getattr(tree, attr, None)
        if value is not None:
            result.index_stats[attr] = value
    space = getattr(tree, "space_stats", None)
    if callable(space):
        result.index_stats.update({f"space_{k}": v for k, v in space().items()})
    if observed:
        obs.record_run(result.to_dict())
    return result


def speedup(baseline: RunResult, candidate: RunResult) -> float:
    """How much faster ``candidate`` is than ``baseline`` (sim time ratio)."""
    if candidate.sim_ns == 0:
        return float("inf")
    return baseline.sim_ns / candidate.sim_ns


def phase_speedup(baseline: RunResult, candidate: RunResult, phase: str) -> float:
    base = baseline.phase(phase).sim_ns
    cand = candidate.phase(phase).sim_ns
    return base / cand if cand else float("inf")
