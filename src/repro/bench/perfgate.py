"""Perf-regression gate over ``repro-bench/v1`` telemetry artifacts.

The gate compares throughput gauges (any metric ending in
:data:`THROUGHPUT_SUFFIX`) between a committed baseline artifact and a
freshly measured one. A gauge fails when the current value drops below
``baseline / tolerance`` — with the default 2x tolerance the gate is
deliberately insensitive to machine jitter and only trips on structural
regressions (a batch path silently falling back to the per-op loop, an
accidentally quadratic rewrite). Missing gauges fail too: a renamed or
dropped metric would otherwise un-gate itself.

Used by ``python -m repro perf-gate`` and the CI perf-smoke job.
"""

from __future__ import annotations

from typing import Dict, List

THROUGHPUT_SUFFIX = "_ops_per_s"


def kernel_backend_of(doc: object) -> object:
    """The ``meta.kernel_backend`` stamp of an artifact, or None if absent."""
    if not isinstance(doc, dict):
        return None
    meta = doc.get("meta")
    return meta.get("kernel_backend") if isinstance(meta, dict) else None


def extract_throughputs(doc: object) -> Dict[str, float]:
    """All throughput gauges of a bench artifact (may be empty)."""
    if not isinstance(doc, dict):
        return {}
    metrics = doc.get("metrics")
    gauges = metrics.get("gauges") if isinstance(metrics, dict) else None
    if not isinstance(gauges, dict):
        return {}
    return {
        name: float(value)
        for name, value in gauges.items()
        if name.endswith(THROUGHPUT_SUFFIX) and isinstance(value, (int, float))
    }


def compare_throughputs(
    baseline: object, current: object, tolerance: float = 2.0
) -> List[str]:
    """Gate ``current`` against ``baseline``; returns failures (empty = pass).

    ``tolerance`` is the allowed slowdown factor: current throughput must be
    at least ``baseline / tolerance`` for every baseline gauge.
    """
    if tolerance < 1.0:
        raise ValueError(f"tolerance must be >= 1.0, got {tolerance}")
    failures: List[str] = []
    base_backend = kernel_backend_of(baseline)
    cur_backend = kernel_backend_of(current)
    if (
        base_backend is not None
        and cur_backend is not None
        and base_backend != cur_backend
    ):
        # A cross-backend comparison measures the backends, not the change
        # under test; refuse instead of silently passing or failing.
        failures.append(
            f"kernel backend mismatch: baseline measured on {base_backend!r}, "
            f"current on {cur_backend!r} — regenerate the baseline with the "
            "same backend (REPRO_KERNELS)"
        )
        return failures
    base = extract_throughputs(baseline)
    cur = extract_throughputs(current)
    if not base:
        failures.append(f"baseline artifact has no *{THROUGHPUT_SUFFIX} gauges")
        return failures
    for name, base_value in sorted(base.items()):
        cur_value = cur.get(name)
        if cur_value is None:
            failures.append(f"{name}: missing from current artifact")
        elif base_value > 0 and cur_value < base_value / tolerance:
            failures.append(
                f"{name}: {cur_value:,.0f} ops/s vs baseline {base_value:,.0f} "
                f"(more than {tolerance:.1f}x slower)"
            )
    return failures


def format_gate_report(
    baseline: object, current: object, failures: List[str], tolerance: float
) -> str:
    """Human-readable side-by-side of every gated gauge."""
    base = extract_throughputs(baseline)
    cur = extract_throughputs(current)
    lines = [f"perf gate (tolerance {tolerance:.1f}x, {len(base)} gauges)"]
    for name in sorted(base):
        base_value = base[name]
        cur_value = cur.get(name)
        if cur_value is None:
            lines.append(f"  {name}: MISSING (baseline {base_value:,.0f} ops/s)")
            continue
        ratio = cur_value / base_value if base_value else float("inf")
        verdict = "ok" if ratio >= 1.0 / tolerance else "FAIL"
        lines.append(
            f"  {name}: {cur_value:,.0f} vs {base_value:,.0f} ops/s "
            f"({ratio:.2f}x) {verdict}"
        )
    # Failures that are not per-gauge rows (backend mismatch, empty
    # baseline) would otherwise only surface as a bare count.
    for failure in failures:
        if failure.split(":")[0] not in base:
            lines.append(f"  {failure}")
    lines.append("PASS" if not failures else f"FAIL ({len(failures)} regression(s))")
    return "\n".join(lines)
