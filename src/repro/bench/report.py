"""Plain-text report formatting for the experiment harness.

All figures and tables of the paper are regenerated as ASCII tables/grids
(the offline environment has no plotting stack); each benchmark prints its
report and also writes it under ``results/`` so EXPERIMENTS.md can cite it.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple


def results_dir() -> Path:
    """Directory reports are written to (override with REPRO_RESULTS)."""
    path = Path(os.environ.get("REPRO_RESULTS", "results"))
    path.mkdir(parents=True, exist_ok=True)
    return path


def save_report(name: str, text: str) -> Path:
    path = results_dir() / f"{name}.txt"
    path.write_text(text)
    return path


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """A fixed-width table with right-aligned numeric-ish columns."""
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        rendered.append(
            [f"{cell:.2f}" if isinstance(cell, float) else str(cell) for cell in row]
        )
    widths = [max(len(r[i]) for r in rendered) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(rendered[0], widths)))
    lines.append(sep)
    for row in rendered[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def format_matrix(
    row_keys: Sequence[object],
    col_keys: Sequence[object],
    value: Callable[[object, object], float],
    title: Optional[str] = None,
    row_header: str = "",
    fmt: str = "{:6.2f}",
) -> str:
    """A heat-map style grid (rows × cols), e.g. the Fig. 14 K×L speedups."""
    headers = [row_header] + [str(c) for c in col_keys]
    rows = []
    for r in row_keys:
        rows.append([str(r)] + [fmt.format(value(r, c)).strip() for c in col_keys])
    return format_table(headers, rows, title=title)


def ascii_scatter(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 14,
    title: Optional[str] = None,
) -> str:
    """A coarse character scatter plot (used for the Fig. 9 workloads)."""
    if not xs:
        return "(empty)\n"
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1
    y_span = (y_hi - y_lo) or 1
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = min(width - 1, int((x - x_lo) / x_span * (width - 1)))
        row = min(height - 1, int((y - y_lo) / y_span * (height - 1)))
        grid[height - 1 - row][col] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.append("+" + "-" * width + "+")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    return "\n".join(lines) + "\n"


def format_histograms(
    histograms: Dict[str, dict],
    title: Optional[str] = None,
) -> str:
    """Latency/size distribution table from a registry snapshot's
    ``histograms`` section (count, mean, p50/p95/p99)."""
    rows: List[Sequence[object]] = []
    for name in sorted(histograms):
        data = histograms[name]
        rows.append(
            [
                name,
                int(data["count"]),
                float(data.get("mean", 0.0)),
                float(data["p50"]),
                float(data["p95"]),
                float(data["p99"]),
            ]
        )
    return format_table(
        ["histogram", "count", "mean", "p50", "p95", "p99"], rows, title=title
    )


def format_breakdown(
    title: str,
    buckets: Dict[str, float],
    order: Optional[Sequence[str]] = None,
) -> str:
    """Percentage breakdown of simulated time across meter buckets."""
    total = sum(buckets.values()) or 1.0
    names = list(order) if order else sorted(buckets, key=buckets.get, reverse=True)
    rows: List[Tuple[str, str, str]] = []
    for name in names:
        value = buckets.get(name, 0.0)
        rows.append((name, f"{value / 1e6:10.2f}", f"{100 * value / total:5.1f}%"))
    return format_table(["component", "sim ms", "share"], rows, title=title)
