"""Machine-readable bench telemetry: the ``BENCH_<experiment>.json`` artifact.

Every observed experiment run serializes into one JSON document so the perf
trajectory is diffable across PRs (the role SOSD's uniform measurement
harness plays for learned indexes). The artifact bundles:

* ``runs`` — per-run phases (name, n_ops, sim_ns, wall_ns), meter bucket
  breakdowns, raw counters, and SWARE/tree statistics;
* ``metrics`` — the full :class:`~repro.obs.MetricsRegistry` snapshot,
  including per-op latency histograms with p50/p95/p99;
* ``trace`` — ring-buffer accounting (events recorded/dropped, plus the
  ``truncated`` headline flag when events were lost);
* ``monitors`` — the streaming monitor hub's snapshot (sortedness drift
  windows, saturation, Bloom FPR samples, fsync/lock feeds), present when
  the run carried monitors — the input ``repro doctor`` evaluates;
* ``profile`` — the sampling profiler's per-layer table and collapsed
  stacks, present when the run was profiled.

The schema is validated by hand (:func:`validate_bench_artifact`) — the
offline environment has no ``jsonschema`` — and the validator doubles as
the CI smoke check for ``repro experiment fig13 --json``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro import kernels
from repro.bench.report import results_dir
from repro.obs import Observability

SCHEMA = "repro-bench/v1"

_PHASE_FIELDS = ("name", "n_ops", "sim_ns", "wall_ns")
_HISTOGRAM_FIELDS = ("buckets", "counts", "sum", "count", "p50", "p95", "p99")


def bench_meta() -> Dict[str, object]:
    """The environment stamp every artifact carries in its ``meta`` block.

    Perf-gate comparisons refuse to cross kernel backends (a numpy run
    "regressing" against a python baseline, or vice versa, is a measurement
    artifact, not a perf change), so the backend has to travel with the
    numbers.
    """
    info = kernels.backend_info()
    return {
        "kernel_backend": info["kernel_backend"],
        "numpy_version": info["numpy_version"],
        "python_version": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
    }


def build_bench_artifact(
    experiment: str,
    obs: Observability,
    extra: Optional[Dict[str, object]] = None,
    poll: bool = True,
) -> Dict[str, object]:
    """Assemble the artifact from everything ``obs`` recorded.

    ``poll=False`` reuses the collector values of the registry's previous
    snapshot (see :meth:`~repro.obs.MetricsRegistry.snapshot`): a CLI run
    that has already rendered ``repro stats`` from the same registry emits
    an artifact that *agrees* with what was printed, and stateful
    collectors are charged exactly once per export cycle.
    """
    tracer = obs.tracer
    doc: Dict[str, object] = {
        "schema": SCHEMA,
        "experiment": experiment,
        "created_unix": time.time(),
        "repro_scale": float(os.environ.get("REPRO_SCALE", "1.0")),
        "meta": bench_meta(),
        "runs": list(obs.runs),
        "metrics": obs.registry.snapshot(poll=poll),
        "trace": tracer.snapshot()
        if tracer is not None
        else {"recorded": 0, "dropped": 0, "capacity": 0, "truncated": False},
    }
    if obs.monitors is not None:
        doc["monitors"] = obs.monitors.snapshot()
    if obs.profiler is not None:
        doc["profile"] = obs.profiler.snapshot()
    if extra:
        doc.update(extra)
    return doc


def validate_bench_artifact(doc: object) -> List[str]:
    """Schema check; returns a list of problems (empty means valid)."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["artifact is not a JSON object"]
    if doc.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}, got {doc.get('schema')!r}")
    if not isinstance(doc.get("experiment"), str) or not doc.get("experiment"):
        errors.append("experiment must be a non-empty string")

    # ``meta`` is validated only when present: pre-kernel-layer artifacts
    # (and hand-trimmed fixtures in the obs tests) legitimately omit it.
    meta = doc.get("meta")
    if meta is not None:
        if not isinstance(meta, dict):
            errors.append("meta must be an object")
        else:
            if meta.get("kernel_backend") not in ("python", "numpy"):
                errors.append(
                    "meta.kernel_backend must be 'python' or 'numpy', "
                    f"got {meta.get('kernel_backend')!r}"
                )
            if not isinstance(meta.get("python_version"), str):
                errors.append("meta.python_version must be a string")

    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        errors.append("runs must be a non-empty list")
        runs = []
    for i, run in enumerate(runs):
        if not isinstance(run, dict):
            errors.append(f"runs[{i}] is not an object")
            continue
        phases = run.get("phases")
        if not isinstance(phases, list) or not phases:
            errors.append(f"runs[{i}].phases must be a non-empty list")
            continue
        for j, phase in enumerate(phases):
            for key in _PHASE_FIELDS:
                if key not in phase:
                    errors.append(f"runs[{i}].phases[{j}] missing {key!r}")
        for key in ("bucket_sim_ns", "counts"):
            if not isinstance(run.get(key), dict):
                errors.append(f"runs[{i}].{key} must be an object")

    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        errors.append("metrics must be an object")
    else:
        for section in ("counters", "gauges", "histograms"):
            if not isinstance(metrics.get(section), dict):
                errors.append(f"metrics.{section} must be an object")
        for name, hist in (metrics.get("histograms") or {}).items():
            if not isinstance(hist, dict):
                errors.append(f"metrics.histograms[{name!r}] is not an object")
                continue
            for key in _HISTOGRAM_FIELDS:
                if key not in hist:
                    errors.append(f"metrics.histograms[{name!r}] missing {key!r}")
            buckets = hist.get("buckets")
            counts = hist.get("counts")
            if (
                isinstance(buckets, list)
                and isinstance(counts, list)
                and len(counts) != len(buckets) + 1
            ):
                errors.append(
                    f"metrics.histograms[{name!r}]: counts must have "
                    "len(buckets) + 1 entries (+Inf bucket)"
                )

    trace = doc.get("trace")
    if not isinstance(trace, dict) or not all(
        isinstance(trace.get(key), (int, float)) for key in ("recorded", "dropped")
    ):
        errors.append("trace must be an object with numeric recorded/dropped")

    # Optional obs v2 sections: validated only when present.
    monitors = doc.get("monitors")
    if monitors is not None:
        if not isinstance(monitors, dict):
            errors.append("monitors must be an object")
        else:
            sortedness = monitors.get("sortedness")
            if not isinstance(sortedness, dict) or not isinstance(
                sortedness.get("windows"), list
            ):
                errors.append("monitors.sortedness.windows must be a list")
            else:
                for i, window in enumerate(sortedness["windows"]):
                    if not isinstance(window, dict) or not all(
                        isinstance(window.get(key), (int, float))
                        for key in ("n", "k_fraction", "l_fraction")
                    ):
                        errors.append(
                            f"monitors.sortedness.windows[{i}] must carry "
                            "numeric n/k_fraction/l_fraction"
                        )
            for section in ("saturation", "bloom"):
                if not isinstance(monitors.get(section), dict):
                    errors.append(f"monitors.{section} must be an object")

    profile = doc.get("profile")
    if profile is not None:
        if not isinstance(profile, dict):
            errors.append("profile must be an object")
        else:
            if not isinstance(profile.get("layers"), dict):
                errors.append("profile.layers must be an object")
            else:
                for layer, row in profile["layers"].items():
                    if not isinstance(row, dict) or not all(
                        isinstance(row.get(key), (int, float))
                        for key in ("samples", "fraction")
                    ):
                        errors.append(
                            f"profile.layers[{layer!r}] must carry numeric "
                            "samples/fraction"
                        )
            if not isinstance(profile.get("collapsed"), list):
                errors.append("profile.collapsed must be a list")
            if not isinstance(profile.get("hz"), (int, float)):
                errors.append("profile.hz must be numeric")
    return errors


def save_bench_artifact(doc: Dict[str, object], path: Optional[Path] = None) -> Path:
    """Write the artifact (default: ``results/BENCH_<experiment>.json``)."""
    if path is None:
        path = results_dir() / f"BENCH_{doc['experiment']}.json"
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path
