"""Gapped-node micro-bench: intra-node search, batch descent, split counts.

Not a paper figure — this measures what the gapped (BS-tree direction)
node layout buys over the classic list-packed layout, at three levels:

* **intra-node search** — the branchless ``node_search_left`` kernel over a
  sentinel-padded store vs a plain ``bisect_left`` on a Python list, both
  per-key and batched (``leaf_find_positions`` over a whole key column,
  which is where ``searchsorted`` amortizes its call overhead).
* **batch descent** — full-tree ``insert_many``/``get_many`` against the
  per-key API loop on the same gapped tree.
* **split counts** — ingesting each (K,L) sortedness preset batched into a
  classic vs a gapped tree and comparing structural reorganizations
  (classic leaf splits vs gapped splits + fissions). Near-sorted runs land
  in the gap slots and bulk-rebuild overflowing leaves, so the gapped
  layout reorganizes far less often.

Wall-clock throughputs are published as ``nodes_*_ops_per_s`` gauges
flowing into ``results/BENCH_nodes.json`` where ``repro perf-gate`` tracks
them against a committed python-backend baseline; the split-count ratios
are published as ``nodes_split_reduction_<preset>_x`` gauges which the CI
smoke asserts directly (near-sorted must stay >= 5x).
"""

from __future__ import annotations

import random
import time
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List

from repro import kernels
from repro.bench.experiments import common
from repro.bench.report import format_table
from repro.bench.runner import PhaseResult, RunResult
from repro.btree.btree import BPlusTree, BPlusTreeConfig
from repro.obs import current_obs
from repro.workloads.spec import value_for

#: (label, K fraction, L fraction) presets for the split-count sweep.
KL_GRID = [
    ("sorted", 0.0, 0.0),
    ("near_sorted", 0.10, 0.05),
    ("less_sorted", 1.00, 0.50),
]


@dataclass
class NodesResult:
    report: str
    #: gauge name -> operations per second (wall clock)
    throughputs: Dict[str, float]
    #: preset -> {"classic_splits": ..., "gapped_splits": ...,
    #:            "gapped_fissions": ..., "reduction_x": ...}
    splits: Dict[str, Dict[str, float]] = field(default_factory=dict)
    runs: List[RunResult] = field(default_factory=list)


def _ops_per_s(n_ops: int, wall_ns: float) -> float:
    return n_ops / wall_ns * 1e9 if wall_ns else 0.0


def _best_wall(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in nanoseconds."""
    clock = time.perf_counter_ns
    best = None
    for _ in range(max(1, repeats)):
        start = clock()
        fn()
        wall = clock() - start
        if best is None or wall < best:
            best = wall
    return float(best)


def _tree(layout: str) -> BPlusTree:
    return BPlusTree(
        BPlusTreeConfig(
            leaf_capacity=common.LEAF_CAPACITY,
            internal_capacity=common.INTERNAL_CAPACITY,
            node_layout=layout,
        )
    )


def run(
    n: int = 50_000,
    batch: int = 4096,
    k_fraction: float = 0.10,
    l_fraction: float = 0.05,
    repeats: int = 3,
    seed: int = 7,
) -> NodesResult:
    n = common.scaled(n)
    obs = current_obs()
    throughputs: Dict[str, float] = {}
    rows: List[list] = []

    # -- intra-node search: one leaf-sized store, many probes -------------
    cap = common.LEAF_CAPACITY
    node_keys = [2 * i for i in range(cap)]
    store = kernels.gapped_key_store(node_keys, cap + 1)
    rng = random.Random(seed)
    probes = [rng.randrange(0, 2 * cap + 2) for _ in range(n)]
    probe_col = kernels.key_array(sorted(probes))

    def scalar_gapped() -> None:
        search = kernels.node_search_left
        for key in probes:
            search(store, cap, key)

    def scalar_bisect() -> None:
        for key in probes:
            bisect_left(node_keys, key)

    def batch_gapped() -> None:
        find = kernels.leaf_find_positions
        for i in range(0, n, batch):
            find(store, cap, probe_col, i, min(i + batch, n))

    search_run = RunResult(label="node_search")
    for name, fn in (
        ("search_scalar_gapped", scalar_gapped),
        ("search_scalar_bisect", scalar_bisect),
        ("search_batch_gapped", batch_gapped),
    ):
        wall = _best_wall(fn, repeats)
        gauge = f"nodes_{name}_ops_per_s"
        throughputs[gauge] = _ops_per_s(n, wall)
        search_run.phases.append(
            PhaseResult(name=name, n_ops=n, sim_ns=0.0, wall_ns=wall)
        )
        rows.append(["search", name, f"{n:,}", f"{wall / 1e6:.1f}",
                     f"{throughputs[gauge] / 1e3:.0f}"])

    # -- batch descent vs per-key API on a full gapped tree ---------------
    keys = common.keys_for(n, k_fraction, l_fraction, seed=seed)
    items = [(key, value_for(key)) for key in keys]
    lookup_keys = list(keys)
    random.Random(seed + 101).shuffle(lookup_keys)

    def perop_insert() -> None:
        tree = _tree("gapped")
        insert = tree.insert
        for key, value in items:
            insert(key, value)

    def batched_insert() -> None:
        tree = _tree("gapped")
        insert_many = tree.insert_many
        for i in range(0, len(items), batch):
            insert_many(items[i : i + batch])

    loaded = _tree("gapped")
    for i in range(0, len(items), batch):
        loaded.insert_many(items[i : i + batch])

    def perop_lookup() -> None:
        get = loaded.get
        for key in lookup_keys:
            get(key)

    def batched_lookup() -> None:
        get_many = loaded.get_many
        for i in range(0, len(lookup_keys), batch):
            get_many(lookup_keys[i : i + batch])

    descent_run = RunResult(label="batch_descent")
    for name, fn in (
        ("perop_insert", perop_insert),
        ("batched_insert", batched_insert),
        ("perop_lookup", perop_lookup),
        ("batched_lookup", batched_lookup),
    ):
        wall = _best_wall(fn, repeats)
        gauge = f"nodes_{name}_ops_per_s"
        throughputs[gauge] = _ops_per_s(n, wall)
        descent_run.phases.append(
            PhaseResult(name=name, n_ops=n, sim_ns=0.0, wall_ns=wall)
        )
        rows.append(["descent", name, f"{n:,}", f"{wall / 1e6:.1f}",
                     f"{throughputs[gauge] / 1e3:.0f}"])

    # -- split counts per (K,L) preset: classic vs gapped ------------------
    splits: Dict[str, Dict[str, float]] = {}
    split_rows: List[list] = []
    for label, k_frac, l_frac in KL_GRID:
        preset_keys = common.keys_for(n, k_frac, l_frac, seed=seed)
        preset_items = [(key, value_for(key)) for key in preset_keys]
        counts = {}
        for layout in ("classic", "gapped"):
            tree = _tree(layout)
            for i in range(0, len(preset_items), batch):
                tree.insert_many(preset_items[i : i + batch])
            counts[layout] = (tree.leaf_splits, getattr(tree, "leaf_fissions", 0))
        classic_splits = counts["classic"][0]
        gapped_reorgs = counts["gapped"][0] + counts["gapped"][1]
        # Add-one smoothing so an all-zero preset (sorted data bulk-loads
        # without any splits on either layout) reads 1.0x, not 0.0x.
        reduction = (classic_splits + 1) / (gapped_reorgs + 1)
        splits[label] = {
            "classic_splits": classic_splits,
            "gapped_splits": counts["gapped"][0],
            "gapped_fissions": counts["gapped"][1],
            "reduction_x": reduction,
        }
        obs.gauge(f"nodes_split_reduction_{label}_x", reduction)
        split_rows.append(
            [label, classic_splits, counts["gapped"][0], counts["gapped"][1],
             f"{reduction:.1f}x"]
        )

    runs = [search_run, descent_run]
    for run_result in runs:
        obs.record_run(run_result.to_dict())
    for gauge, value in throughputs.items():
        obs.gauge(gauge, value)

    table = format_table(["section", "config", "ops", "wall ms", "kops/s"], rows)
    split_table = format_table(
        ["preset", "classic splits", "gapped splits", "gapped fissions", "reduction"],
        split_rows,
        title="Structural reorganizations per batched ingest",
    )
    report = "\n".join(
        [
            f"Gapped-node micro-bench (n={n:,}, batch={batch}, "
            f"leaf capacity {cap}, backend {kernels.active_backend()})",
            "",
            table,
            "",
            split_table,
        ]
    )
    return NodesResult(
        report=report, throughputs=throughputs, splits=splits, runs=runs
    )
