"""Ablations of the individual §III design elements.

The paper argues the SWARE elements "when combined appropriately, lead to a
better performance improvement than any one of them would do alone". These
ablations isolate each one:

* **tail-leaf pointer** — O(1) vs O(log N) node accesses for in-order
  inserts into the raw B+-tree (Fig. 3a);
* **interpolation vs binary search** — probe steps on the buffer's sorted
  section (§IV-B's "notable upgrade");
* **(K,L)-adaptive sort vs stable sort** — comparisons when sorting a
  near-sorted buffer (§IV-C's algorithm choice);
* **partial vs full flushing** — top-inserts caused by flushing everything
  (and therefore pushing entries that overlap future arrivals into the
  tree) vs retaining half the buffer (§IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.bench.experiments import common
from repro.bench.report import format_table
from repro.bench.runner import run_phases
from repro.btree.btree import BPlusTree, BPlusTreeConfig
from repro.search.interpolation import binary_search_rightmost, interpolation_search
from repro.sortedness.klsort import KLSortStats, kl_sort
from repro.storage.costmodel import Meter
from repro.workloads.spec import INSERT, value_for


@dataclass
class AblationResult:
    report: str
    data: Dict[str, Dict[str, float]]


def _tail_leaf_ablation(n: int) -> Dict[str, float]:
    results = {}
    for label, enabled in (("with tail pointer", True), ("without", False)):
        meter = Meter()
        tree = BPlusTree(
            BPlusTreeConfig(tail_leaf_optimization=enabled), meter=meter
        )
        for key in range(n):
            tree.insert(key, key)
        results[label] = meter["node_access"] / n
    return results


def _search_ablation(n: int) -> Dict[str, float]:
    keys = list(range(0, 4 * n, 4))
    import random

    rng = random.Random(11)
    targets = [keys[rng.randrange(len(keys))] for _ in range(2000)]
    results = {}
    for label, search in (
        ("interpolation", interpolation_search),
        ("binary", binary_search_rightmost),
    ):
        steps: list = []
        for target in targets:
            search(keys, target, steps=steps)
        results[label] = sum(steps) / len(steps)
    return results


def _sort_ablation(n: int) -> Dict[str, float]:
    near = common.keys_for(n, 0.05, 0.02, seed=11)
    stats = KLSortStats()
    kl_sort(list(near), stats=stats)
    # A general stable sort does ~n log2 n comparisons on this input.
    stable_comparisons = n * max(1, n.bit_length())
    kl_comparisons = stats.comparisons + stats.merge_steps + max(
        1, stats.outliers
    ) * max(1, stats.outliers.bit_length())
    return {
        "(K,L)-adaptive (est. comparisons)": kl_comparisons,
        "stable sort (est. comparisons)": stable_comparisons,
    }


def _flush_ablation(n: int) -> Dict[str, float]:
    keys = common.keys_for(n, 0.10, 0.05, seed=11)
    ingest = [(INSERT, key, value_for(key)) for key in keys]
    results = {}
    for label, fraction in (("partial flush (50%)", 0.5), ("full flush (95%)", 0.95)):
        run = run_phases(
            common.sa_btree_factory(
                common.buffer_config(n, 0.01, page_size=8, flush_fraction=fraction)
            ),
            [("ingest", ingest)],
            flush_after="ingest",
        )
        results[label] = run.sware_stats["top_inserted_entries"]
    return results


def run(n: int = 12_000) -> AblationResult:
    n = common.scaled(n)
    data = {
        "tail-leaf node accesses/insert (sorted)": _tail_leaf_ablation(n),
        "search probe steps (uniform keys)": _search_ablation(min(n, 20_000)),
        "sort work, near-sorted buffer": _sort_ablation(min(n, 8_000)),
        "top-inserts (K=10%, L=5%)": _flush_ablation(n),
    }
    sections = []
    for title, values in data.items():
        rows = [(name, f"{value:,.2f}") for name, value in values.items()]
        sections.append(format_table(["variant", "value"], rows, title=title))
    return AblationResult(report="\n".join(sections), data=data)
