"""Fig. 13 — latency breakdown of SA B+-tree operations.

(a) ingestion time split into bulk-load / sort / top-insert (+ buffer
    upkeep) for sorted, near-sorted and less-sorted workloads: top-insert
    time escalates as sortedness decreases;
(b) query time split into buffer search / SWARE ops / tree search: tree
    search dominates (~80-99%) regardless of sortedness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.bench.experiments import common
from repro.bench.report import format_table
from repro.bench.runner import run_phases
from repro.workloads.spec import INSERT, value_for

PRESETS = [
    ("sorted", 0.0, 0.0),
    ("near-sorted", 0.10, 0.05),
    ("less-sorted", 1.00, 0.50),
]

INGEST_BUCKETS = ["bulk_load", "sort", "top_insert", "other"]
QUERY_BUCKETS = ["buffer_search", "sware_ops", "tree_search", "other"]


@dataclass
class Fig13Result:
    report: str
    ingest_breakdown: Dict[str, Dict[str, float]]
    query_breakdown: Dict[str, Dict[str, float]]


def _split_buckets(run, phase_names, bucket_names) -> Dict[str, float]:
    total = sum(run.phase(p).sim_ns for p in phase_names)
    buckets = {name: run.bucket_sim_ns.get(name, 0.0) for name in bucket_names if name != "other"}
    accounted = sum(buckets.values())
    buckets["other"] = max(0.0, total - accounted)
    return buckets


def run(
    n: int = 20_000,
    buffer_fraction: float = 0.01,
    n_lookups: int = 4000,
    seed: int = 7,
) -> Fig13Result:
    n = common.scaled(n)
    ingest_breakdown: Dict[str, Dict[str, float]] = {}
    query_breakdown: Dict[str, Dict[str, float]] = {}

    for label, k_fraction, l_fraction in PRESETS:
        keys = common.keys_for(n, k_fraction, l_fraction, seed=seed)
        ingest = [(INSERT, key, value_for(key)) for key in keys]
        lookups = list(common.raw_spec(keys, n_lookups=n_lookups, seed=seed).lookup_operations())
        result = run_phases(
            common.sa_btree_factory(common.buffer_config(n, buffer_fraction)),
            [("ingest", ingest), ("queries", lookups)],
            label=f"SA {label}",
        )
        # Bucket charges accumulate over the whole run; ingest buckets only
        # fire during ingestion and query buckets only during queries, so
        # attributing them per phase is exact.
        ingest_breakdown[label] = _split_buckets(result, ["ingest"], INGEST_BUCKETS)
        query_breakdown[label] = _split_buckets(result, ["queries"], QUERY_BUCKETS)

    def table(title, breakdown, buckets):
        headers = ["sortedness"] + buckets + ["total (sim ms)"]
        rows = []
        for label, values in breakdown.items():
            total = sum(values.values()) or 1.0
            rows.append(
                [label]
                + [f"{100 * values.get(b, 0.0) / total:.1f}%" for b in buckets]
                + [f"{total / 1e6:.2f}"]
            )
        return format_table(headers, rows, title=title)

    report = "\n".join(
        [
            table("Fig. 13a — SA B+-tree ingestion breakdown", ingest_breakdown, INGEST_BUCKETS),
            table("Fig. 13b — SA B+-tree query breakdown", query_breakdown, QUERY_BUCKETS),
        ]
    )
    return Fig13Result(
        report=report,
        ingest_breakdown=ingest_breakdown,
        query_breakdown=query_breakdown,
    )
