"""SOSD-style cross-backend benchmark: SWARE vs trees, learned, cracking.

SOSD's core finding was that index rankings flip between synthetic-uniform
and real key distributions. This experiment brings that methodology to the
sortedness question: every registered backend
(:data:`repro.core.factory.BACKEND_NAMES` — SA B+-tree, B+-tree, Bε-tree,
LSM-tree, learned index, cracking index) ingests every
:mod:`repro.workloads.sosd` dataset family (books/osm/fb under explicit
sortedness regimes; wiki/tpch in their natural near-sorted arrival; real
SOSD binaries when ``REPRO_SOSD_DIR`` is set), then serves point lookups
and range scans.

Rankings use simulated I/O cost (the shared :class:`~repro.storage.costmodel.
Meter`/:class:`~repro.storage.costmodel.CostModel`), which is
machine-independent and is what the paper argues about; wall-clock
throughput is published as ``sosd_*_ops_per_s`` gauges so the CI perf gate
tracks regressions. Each dataset's **measured** (K,L) rides into the bench
artifact via ``artifact_extra`` — consumers never have to trust a generator
parameter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.experiments import common
from repro.bench.report import format_table
from repro.bench.runner import RunResult, run_phases
from repro.core.factory import BACKEND_NAMES, backend_factory
from repro.obs import current_obs
from repro.storage.costmodel import CostModel
from repro.workloads.sosd import SOSDDataset, default_benchmark_datasets
from repro.workloads.spec import INSERT, LOOKUP, RANGE, value_for


@dataclass
class SOSDResult:
    report: str
    #: (dataset name, backend) -> total simulated ns
    sim_ns: Dict[Tuple[str, str], float]
    #: dataset name -> backends, cheapest simulated cost first
    rankings: Dict[str, List[str]]
    #: gauge name -> wall-clock operations per second
    throughputs: Dict[str, float]
    datasets: List[SOSDDataset] = field(default_factory=list)
    runs: List[RunResult] = field(default_factory=list)
    #: merged into the bench artifact (per-dataset measured K/L)
    artifact_extra: Dict[str, object] = field(default_factory=dict)


def _tag(name: str) -> str:
    """A gauge-safe dataset tag (``books/near_sorted`` → ``books_near_sorted``)."""
    return name.replace("/", "_").replace(":", "_").replace("-", "_")


def _phases(dataset: SOSDDataset, n_lookups: int, n_ranges: int, seed: int):
    """Ingest-then-read phases for one dataset (shared across backends)."""
    rng = random.Random(seed * 31 + dataset.n)
    keys = list(dataset.keys)
    ingest = [(INSERT, key, value_for(key)) for key in keys]
    lookups = [
        (LOOKUP, rng.choice(keys), 0) for _ in range(min(n_lookups, len(keys)))
    ]
    ordered = sorted(keys)
    span = max(1, len(ordered) // 1000)  # ~0.1% of the keys per scan
    ranges = []
    for _ in range(n_ranges):
        lo = rng.randrange(len(ordered) - span) if len(ordered) > span else 0
        hi = min(len(ordered) - 1, lo + span)
        ranges.append((RANGE, ordered[lo], ordered[hi]))
    return [("ingest", ingest), ("lookup", lookups), ("range", ranges)]


def run(
    n: int = 30_000,
    buffer_fraction: float = 0.01,
    seed: int = 7,
    n_lookups: Optional[int] = None,
    n_ranges: Optional[int] = None,
    backends: Optional[Sequence[str]] = None,
    regimes: Sequence[str] = ("near_sorted", "scrambled"),
) -> SOSDResult:
    n = common.scaled(n)
    n_lookups = n_lookups if n_lookups is not None else max(500, n // 10)
    n_ranges = n_ranges if n_ranges is not None else max(50, n // 200)
    backends = tuple(backends) if backends else BACKEND_NAMES
    datasets = default_benchmark_datasets(n, seed=seed, regimes=regimes)
    model = common.DEFAULT_COST_MODEL or CostModel()
    obs = current_obs()

    sim_ns: Dict[Tuple[str, str], float] = {}
    throughputs: Dict[str, float] = {}
    rankings: Dict[str, List[str]] = {}
    runs: List[RunResult] = []
    dataset_rows = []
    rank_rows = []
    for dataset in datasets:
        phases = _phases(dataset, n_lookups, n_ranges, seed)
        n_ops = sum(len(ops) for _, ops in phases)
        dataset_rows.append(
            [
                dataset.name,
                f"{dataset.n:,}",
                f"{dataset.k_fraction:.2%}",
                f"{dataset.l_fraction:.2%}",
                dataset.source,
            ]
        )
        for backend in backends:
            factory = backend_factory(backend, n, buffer_fraction)
            label = f"{_tag(dataset.name)}:{backend}"
            result = run_phases(
                factory,
                [(name, iter(ops)) for name, ops in phases],
                cost_model=model,
                label=label,
                flush_after="ingest",
            )
            # run_phases records the run with the active obs itself.
            runs.append(result)
            sim_ns[(dataset.name, backend)] = result.sim_ns
            gauge = f"sosd_{_tag(dataset.name)}_{backend}_total_ops_per_s"
            throughputs[gauge] = (
                n_ops / result.wall_ns * 1e9 if result.wall_ns else 0.0
            )
        ranked = sorted(backends, key=lambda b: sim_ns[(dataset.name, b)])
        rankings[dataset.name] = list(ranked)
        best = sim_ns[(dataset.name, ranked[0])] or 1.0
        rank_rows.append(
            [dataset.name]
            + [
                f"{b} ({sim_ns[(dataset.name, b)] / best:.2f}x)"
                for b in ranked[:3]
            ]
        )

    for gauge, value in throughputs.items():
        obs.gauge(gauge, value)

    dataset_table = format_table(
        ["dataset", "n", "K (measured)", "L (measured)", "source"],
        dataset_rows,
        title="SOSD dataset families (K,L measured on the arrival stream)",
    )
    rank_table = format_table(
        ["dataset", "1st (sim cost)", "2nd", "3rd"],
        rank_rows,
        title=(
            "Backend ranking by simulated I/O cost "
            "(ingest + lookups + ranges; relative to winner)"
        ),
    )
    report = "\n\n".join(
        [
            f"SOSD cross-backend bench (n={n:,}, lookups={n_lookups:,}, "
            f"ranges={n_ranges:,}, backends={', '.join(backends)})",
            dataset_table,
            rank_table,
        ]
    )
    artifact_extra = {
        "sosd": {
            "datasets": [dataset.meta() for dataset in datasets],
            "rankings": {name: list(r) for name, r in rankings.items()},
            "backends": list(backends),
        }
    }
    return SOSDResult(
        report=report,
        sim_ns=sim_ns,
        rankings=rankings,
        throughputs=throughputs,
        datasets=datasets,
        runs=runs,
        artifact_extra=artifact_extra,
    )
