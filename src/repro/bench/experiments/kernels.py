"""Kernel-layer throughput: numpy-vectorized vs pure-Python backends.

Not a paper figure — this measures the dispatch layer of
:mod:`repro.kernels` on the library's hot paths, running the *same* code
under both backends (``use_backend``): batch hashing, Bloom ``add_many`` /
``may_contain_many``, the SWARE-buffer add→flush cycle, the sortedness
metrics, and an end-to-end SA B+-tree ``put_many``/``get_many`` workload.
Like ``batch_ops``, the interesting number is wall-clock: both backends are
bit-identical in results (see ``tests/test_kernels_equivalence.py``), so the
ratio isolates what vectorization buys.

Throughputs are published as ``kernels_<component>_<backend>_<phase>_ops_per_s``
gauges plus ``kernels_<component>_<phase>_speedup_x`` ratios, flowing into
``results/BENCH_kernels.json`` where the CI perf gate tracks them. When
numpy is not importable only the python gauges are emitted.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List

from repro import kernels
from repro.bench.experiments import common
from repro.bench.report import format_table
from repro.bench.runner import PhaseResult, RunResult
from repro.core.buffer import SWAREBuffer
from repro.filters.bloom import BloomFilter
from repro.obs import current_obs
from repro.sortedness import metrics
from repro.storage.costmodel import Meter
from repro.workloads.spec import value_for


@dataclass
class KernelsResult:
    report: str
    #: gauge name -> operations per second (wall clock)
    throughputs: Dict[str, float]
    #: "<component>_<phase>" -> numpy/python speedup
    speedups: Dict[str, float]
    backends: List[str] = field(default_factory=list)
    runs: List[RunResult] = field(default_factory=list)


def _ops_per_s(n_ops: int, wall_ns: float) -> float:
    return n_ops / wall_ns * 1e9 if wall_ns else 0.0


def _timed(result: RunResult, name: str, n_ops: int, fn) -> None:
    start = time.perf_counter_ns()
    fn()
    result.phases.append(
        PhaseResult(
            name=name, n_ops=n_ops, sim_ns=0.0, wall_ns=time.perf_counter_ns() - start
        )
    )


def _measure_hash(keys, label: str) -> RunResult:
    result = RunResult(label=label)
    n = len(keys)
    _timed(result, "splitmix64", n, lambda: kernels.shared_bases(keys, "splitmix64"))
    _timed(result, "murmur3", n, lambda: kernels.shared_bases(keys, "murmur3"))
    return result


def _measure_bloom(keys, probe_keys, label: str) -> RunResult:
    result = RunResult(label=label)
    bf = BloomFilter(len(keys))
    _timed(result, "add_many", len(keys), lambda: bf.add_many(keys))
    _timed(
        result,
        "contains_many",
        len(probe_keys),
        lambda: bf.may_contain_many(probe_keys),
    )
    _timed(result, "saturation", 1, lambda: bf.saturation)
    result.counts = {
        "n_added": bf.n_added,
        "probe_count": bf.probe_count,
        "saturation": bf.saturation,
    }
    return result


def _measure_buffer(pairs, config, label: str) -> RunResult:
    """The ingestion cycle the acceptance criteria gate: add_many → flush."""
    result = RunResult(label=label)
    buf = SWAREBuffer(config)

    def work() -> None:
        i = 0
        total = len(pairs)
        while i < total:
            room = max(1, buf.capacity - len(buf))
            chunk = pairs[i : i + room]
            buf.add_many(chunk)
            i += len(chunk)
            if buf.is_full:
                buf.prepare_flush()
        buf.drain()

    _timed(result, "add_to_flush", len(pairs), work)
    result.sware_stats = buf.stats.snapshot()
    return result


def _measure_metrics(keys, label: str) -> RunResult:
    result = RunResult(label=label)
    n = len(keys)
    _timed(result, "inversions", n, lambda: metrics.count_inversions(keys))
    _timed(result, "displacement", n, lambda: metrics.max_displacement(keys))
    _timed(result, "runs", n, lambda: metrics.count_runs(keys))
    _timed(result, "out_of_order", n, lambda: metrics.count_out_of_order(keys))
    return result


def _measure_sa_btree(items, lookup_keys, batch: int, factory, label: str) -> RunResult:
    result = RunResult(label=label)
    index = factory(Meter())

    def puts() -> None:
        put_many = index.put_many
        for i in range(0, len(items), batch):
            put_many(items[i : i + batch])

    def gets() -> None:
        get_many = index.get_many
        for i in range(0, len(lookup_keys), batch):
            get_many(lookup_keys[i : i + batch])

    _timed(result, "put_many", len(items), puts)
    _timed(result, "get_many", len(lookup_keys), gets)
    result.sware_stats = index.stats.snapshot()
    return result


def run(
    n: int = 100_000,
    metric_n: int = 50_000,
    batch: int = 8192,
    k_fraction: float = 0.10,
    l_fraction: float = 0.05,
    buffer_fraction: float = 0.01,
    repeats: int = 3,
    seed: int = 7,
) -> KernelsResult:
    n = common.scaled(n)
    metric_n = common.scaled(metric_n)
    keys = list(common.keys_for(n, k_fraction, l_fraction, seed=seed))
    probe_keys = list(keys)
    random.Random(seed + 31).shuffle(probe_keys)
    metric_keys = list(common.keys_for(metric_n, k_fraction, l_fraction, seed=seed + 1))
    items = [(key, value_for(key)) for key in keys]
    lookup_keys = list(keys)
    random.Random(seed + 101).shuffle(lookup_keys)
    buffer_cfg = common.buffer_config(n, buffer_fraction)
    sa_factory = common.sa_btree_factory(buffer_cfg)

    components = [
        ("hash", lambda label: _measure_hash(keys, label)),
        ("bloom", lambda label: _measure_bloom(keys, probe_keys, label)),
        ("buffer", lambda label: _measure_buffer(items, buffer_cfg, label)),
        ("metrics", lambda label: _measure_metrics(metric_keys, label)),
        (
            "sa_btree",
            lambda label: _measure_sa_btree(items, lookup_keys, batch, sa_factory, label),
        ),
    ]

    backends = ["python"]
    if kernels.numpy_available():
        backends.append("numpy")

    obs = current_obs()
    throughputs: Dict[str, float] = {}
    speedups: Dict[str, float] = {}
    runs: List[RunResult] = []
    rows = []
    # Per-phase best of ``repeats`` identical runs (same rationale as
    # batch_ops: throughput is a property of the code, the slow samples
    # measure machine noise).
    best: Dict[str, Dict[str, float]] = {}
    for component, measure in components:
        for backend in backends:
            label = f"{component}_{backend}"
            with kernels.use_backend(backend):
                samples = [measure(label) for _ in range(max(1, repeats))]
            result = min(samples, key=lambda r: r.wall_ns)
            runs.append(result)
            obs.record_run(result.to_dict())
            best[label] = {
                phase.name: min(s.phase(phase.name).wall_ns for s in samples)
                for phase in result.phases
            }
            for phase in result.phases:
                wall = best[label][phase.name]
                gauge = f"kernels_{label}_{phase.name}_ops_per_s"
                throughputs[gauge] = _ops_per_s(phase.n_ops, wall)
                rows.append(
                    [
                        component,
                        phase.name,
                        backend,
                        f"{phase.n_ops:,}",
                        f"{wall / 1e6:.1f}",
                        f"{throughputs[gauge] / 1e3:.0f}",
                    ]
                )
        if "numpy" in backends:
            python_walls = best[f"{component}_python"]
            numpy_walls = best[f"{component}_numpy"]
            for phase_name, python_wall in python_walls.items():
                numpy_wall = numpy_walls[phase_name]
                ratio = python_wall / numpy_wall if numpy_wall else float("inf")
                speedups[f"{component}_{phase_name}"] = ratio

    for gauge, value in throughputs.items():
        obs.gauge(gauge, value)
    for name, value in speedups.items():
        obs.gauge(f"kernels_{name}_speedup_x", value)

    table = format_table(
        ["component", "phase", "backend", "ops", "wall ms", "kops/s"], rows
    )
    lines = [
        f"Kernel backend throughput (n={n:,}, metric_n={metric_n:,}, "
        f"K={k_fraction:.0%}, L={l_fraction:.0%}; backends: {', '.join(backends)})",
        "",
        table,
        "",
    ]
    if "numpy" in backends:
        for name, value in sorted(speedups.items()):
            lines.append(f"{name}: numpy is {value:.2f}x python")
    else:
        lines.append("numpy unavailable: python backend only, no speedup ratios")
    report = "\n".join(lines)
    return KernelsResult(
        report=report,
        throughputs=throughputs,
        speedups=speedups,
        backends=backends,
        runs=runs,
    )
