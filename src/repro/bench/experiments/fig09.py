"""Fig. 9 — the family of differently sorted ingestion workloads.

Generates the six collections of the paper's figure (sorted, (10,10),
(20,10), (50,25), (100,50), scrambled), measures the *achieved* (K,L) with
the exact metric, and renders a coarse ASCII position/value scatter for each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bench.report import ascii_scatter, format_table
from repro.sortedness.generator import generate_kl_keys, scrambled_keys, sorted_keys
from repro.sortedness.metrics import measure_sortedness

#: The (K%, L%) grid of the paper's Fig. 9 (None = uniform shuffle).
FIG9_GRID: List[Tuple[str, Optional[float], Optional[float]]] = [
    ("(a) sorted", 0.0, 0.0),
    ("(b) K=10%, L=10%", 0.10, 0.10),
    ("(c) K=20%, L=10%", 0.20, 0.10),
    ("(d) K=50%, L=25%", 0.50, 0.25),
    ("(e) K=100%, L=50%", 1.00, 0.50),
    ("(f) scrambled", None, None),
]


@dataclass
class Fig9Result:
    report: str
    data: Dict[str, dict]


def run(n: int = 2000, seed: int = 7, with_plots: bool = True) -> Fig9Result:
    sections: List[str] = []
    rows = []
    data: Dict[str, dict] = {}
    for label, k_fraction, l_fraction in FIG9_GRID:
        if k_fraction is None:
            keys = scrambled_keys(n, seed=seed)
            target = ("uniform", "uniform")
        elif k_fraction == 0.0:
            keys = sorted_keys(n)
            target = ("0%", "0%")
        else:
            keys = generate_kl_keys(n, k_fraction, l_fraction, seed=seed)
            target = (f"{k_fraction:.0%}", f"{l_fraction:.0%}")
        report = measure_sortedness(keys)
        rows.append(
            (
                label,
                target[0],
                target[1],
                f"{report.k_fraction:.1%}",
                f"{report.l_fraction:.1%}",
                report.degree(),
            )
        )
        data[label] = {
            "target_k": k_fraction,
            "target_l": l_fraction,
            "measured_k": report.k_fraction,
            "measured_l": report.l_fraction,
            "inversions": report.inversions,
        }
        if with_plots:
            sections.append(
                ascii_scatter(
                    list(range(n)), list(keys), width=56, height=10, title=label
                )
            )
    table = format_table(
        ["collection", "target K", "target L", "measured K", "measured L", "degree"],
        rows,
        title="Fig. 9 — workload family: target vs measured sortedness",
    )
    return Fig9Result(report=table + "\n" + "\n".join(sections), data=data)
