"""Fig. 11 — top-inserts vs bulk loads in the SA B+-tree as K grows.

Ingest (K, L=5%)-sorted data through the SA B+-tree and report how many
entries reached the tree through opportunistic bulk loading vs top-inserts.
Paper shape: fully sorted data is 100% bulk loaded; near-sorted only ~4%
top-inserts; at K=100% almost everything is top-inserted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.bench.experiments import common
from repro.bench.report import format_table
from repro.bench.runner import run_phases
from repro.workloads.spec import INSERT, value_for

K_SWEEP = [0.0, 0.02, 0.10, 0.20, 0.50, 1.00]


@dataclass
class Fig11Result:
    report: str
    #: k_fraction -> {"top_inserts": ..., "bulk_loaded": ...}
    data: Dict[float, Dict[str, float]]


def run(
    n: int = 20_000,
    l_fraction: float = 0.05,
    buffer_fraction: float = 0.01,
    seed: int = 7,
) -> Fig11Result:
    n = common.scaled(n)
    data: Dict[float, Dict[str, float]] = {}
    rows: List[tuple] = []
    for k_fraction in K_SWEEP:
        keys = common.keys_for(n, k_fraction, l_fraction, seed=seed)
        ops = [(INSERT, key, value_for(key)) for key in keys]
        result = run_phases(
            common.sa_btree_factory(common.buffer_config(n, buffer_fraction)),
            [("ingest", ops)],
            label=f"SA K={k_fraction:.0%}",
            flush_after="ingest",
        )
        stats = result.sware_stats
        top = stats["top_inserted_entries"]
        bulk = stats["bulk_loaded_entries"]
        data[k_fraction] = {"top_inserts": top, "bulk_loaded": bulk}
        total = top + bulk
        rows.append(
            (
                f"{k_fraction:.0%}",
                int(top),
                int(bulk),
                f"{top / total:.1%}" if total else "-",
            )
        )
    report = format_table(
        ["K", "top-inserts", "bulk-loaded", "top-insert share"],
        rows,
        title=f"Fig. 11 — ingestion routing in SA B+-tree (n={n}, L={l_fraction:.0%})",
    )
    return Fig11Result(report=report, data=data)
