"""Fig. 12 — raw insert / lookup / mixed / range-scan performance.

(a) insert latency vs K (L = 5%): SA B+-tree wins whenever any sortedness
    exists; (b) point-lookup latency: SA pays a small (~5-26%) overhead with
    a full buffer; (c) mixed 50:50 latency per op: benefits outweigh the
    overhead; (d) range scans across selectivities: competitive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.bench.experiments import common
from repro.bench.report import format_table
from repro.bench.runner import run_phases
from repro.workloads.spec import INSERT, value_for

K_SWEEP = [0.0, 0.02, 0.10, 0.20, 0.50, 1.00]
SELECTIVITIES = [0.0001, 0.0005, 0.001, 0.005, 0.01, 0.02, 0.05, 0.10]


@dataclass
class Fig12Result:
    report: str
    insert_latency: Dict[float, Dict[str, float]]  # k -> {sa, base} sim ns/op
    lookup_latency: Dict[float, Dict[str, float]]
    mixed_latency: Dict[float, Dict[str, float]]
    scan_latency: Dict[float, Dict[str, float]]  # selectivity -> {sa, base}
    #: (workload, index) -> {"mean", "p95", "p99"} sim ns per scan
    scan_percentiles: Dict[tuple, Dict[str, float]] = None


def _percentile(values, fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def _scan_distribution(factory, ingest, scans) -> Dict[str, float]:
    """Per-scan simulated latencies (the §V-B P95/P99 analysis)."""
    from repro.bench.experiments.common import DEFAULT_COST_MODEL
    from repro.storage.costmodel import Meter

    meter = Meter()
    index = factory(meter)
    for op, key, value in ingest:
        index.insert(key, value)
    latencies = []
    for _op, lo, hi in scans:
        before = meter.nanos(DEFAULT_COST_MODEL)
        index.range_query(lo, hi)
        latencies.append(meter.nanos(DEFAULT_COST_MODEL) - before)
    return {
        "mean": sum(latencies) / len(latencies),
        "p95": _percentile(latencies, 0.95),
        "p99": _percentile(latencies, 0.99),
    }


def _ingest_ops(keys) -> list:
    return [(INSERT, key, value_for(key)) for key in keys]


def run(
    n: int = 20_000,
    l_fraction: float = 0.05,
    buffer_fraction: float = 0.01,
    n_lookups: Optional[int] = None,
    n_ranges: int = 30,
    seed: int = 7,
) -> Fig12Result:
    n = common.scaled(n)
    n_lookups = n_lookups if n_lookups is not None else max(2000, n // 10)

    insert_latency: Dict[float, Dict[str, float]] = {}
    lookup_latency: Dict[float, Dict[str, float]] = {}
    mixed_latency: Dict[float, Dict[str, float]] = {}
    rows_a, rows_b, rows_c, rows_d = [], [], [], []

    for k_fraction in K_SWEEP:
        keys = common.keys_for(n, k_fraction, l_fraction, seed=seed)
        ingest = _ingest_ops(keys)
        spec = common.raw_spec(keys, n_lookups=n_lookups, seed=seed)
        lookups = list(spec.lookup_operations())
        # (a)+(b): ingest then lookups; the buffer stays full for worst-case
        # lookup latency, exactly as in the paper's setup.
        base = run_phases(
            common.baseline_btree_factory(),
            [("ingest", ingest), ("lookups", lookups)],
            label=f"B+ K={k_fraction:.0%}",
        )
        sa = run_phases(
            common.sa_btree_factory(common.buffer_config(n, buffer_fraction)),
            [("ingest", ingest), ("lookups", lookups)],
            label=f"SA K={k_fraction:.0%}",
        )
        insert_latency[k_fraction] = {
            "sa": sa.phase("ingest").sim_ns_per_op,
            "base": base.phase("ingest").sim_ns_per_op,
        }
        lookup_latency[k_fraction] = {
            "sa": sa.phase("lookups").sim_ns_per_op,
            "base": base.phase("lookups").sim_ns_per_op,
        }
        # (c): 50:50 mixed workload.
        ops = common.mixed_ops(keys, 0.5, seed=seed)
        base_mixed = run_phases(
            common.baseline_btree_factory(), [("mixed", ops)], label="B+ mixed"
        )
        sa_mixed = run_phases(
            common.sa_btree_factory(common.buffer_config(n, buffer_fraction)),
            [("mixed", ops)],
            label="SA mixed",
        )
        mixed_latency[k_fraction] = {
            "sa": sa_mixed.sim_ns_per_op,
            "base": base_mixed.sim_ns_per_op,
        }
        rows_a.append(
            (
                f"{k_fraction:.0%}",
                insert_latency[k_fraction]["base"] / 1e3,
                insert_latency[k_fraction]["sa"] / 1e3,
            )
        )
        rows_b.append(
            (
                f"{k_fraction:.0%}",
                lookup_latency[k_fraction]["base"] / 1e3,
                lookup_latency[k_fraction]["sa"] / 1e3,
            )
        )
        rows_c.append(
            (
                f"{k_fraction:.0%}",
                mixed_latency[k_fraction]["base"] / 1e3,
                mixed_latency[k_fraction]["sa"] / 1e3,
            )
        )

    # (d): range scans over a near-sorted ingest, full buffer.
    scan_latency: Dict[float, Dict[str, float]] = {}
    keys = common.keys_for(n, 0.10, l_fraction, seed=seed)
    ingest = _ingest_ops(keys)
    for selectivity in SELECTIVITIES:
        from repro.workloads.spec import RawWorkloadSpec

        spec = RawWorkloadSpec(
            keys=tuple(keys),
            n_ranges=n_ranges,
            range_selectivity=selectivity,
            seed=seed,
        )
        ranges = list(spec.range_operations())
        base = run_phases(
            common.baseline_btree_factory(),
            [("ingest", ingest), ("scans", ranges)],
            label="B+ scans",
        )
        sa = run_phases(
            common.sa_btree_factory(common.buffer_config(n, buffer_fraction)),
            [("ingest", ingest), ("scans", ranges)],
            label="SA scans",
        )
        scan_latency[selectivity] = {
            "sa": sa.phase("scans").sim_ns_per_op,
            "base": base.phase("scans").sim_ns_per_op,
        }
        rows_d.append(
            (
                f"{selectivity:.2%}",
                scan_latency[selectivity]["base"] / 1e3,
                scan_latency[selectivity]["sa"] / 1e3,
            )
        )

    # (e): §V-B's tail-latency analysis — random scans and scans targeting
    # the most recently inserted data, mean/P95/P99.
    scan_percentiles: Dict[tuple, Dict[str, float]] = {}
    rows_e = []
    import random as _random

    rng = _random.Random(seed + 5)
    domain_hi = max(keys)
    width = max(1, int(domain_hi * 0.01))
    random_scans = [
        (0, lo, lo + width)
        for lo in (rng.randint(0, domain_hi - width) for _ in range(40))
    ]
    recent_lo = domain_hi - max(2 * width, int(domain_hi * 0.05))
    recent_scans = [
        (0, lo, lo + width)
        for lo in (rng.randint(recent_lo, domain_hi - width) for _ in range(40))
    ]
    for workload, scans in (("random", random_scans), ("recent", recent_scans)):
        for index_name, factory in (
            ("base", common.baseline_btree_factory()),
            ("sa", common.sa_btree_factory(common.buffer_config(n, buffer_fraction))),
        ):
            scan_percentiles[(workload, index_name)] = _scan_distribution(
                factory, ingest, scans
            )
        base_d = scan_percentiles[(workload, "base")]
        sa_d = scan_percentiles[(workload, "sa")]
        rows_e.append(
            [
                workload,
                base_d["mean"] / 1e3,
                sa_d["mean"] / 1e3,
                base_d["p95"] / 1e3,
                sa_d["p95"] / 1e3,
                base_d["p99"] / 1e3,
                sa_d["p99"] / 1e3,
            ]
        )

    report = "\n".join(
        [
            format_table(
                ["K", "B+-tree (µs/insert)", "SA B+-tree (µs/insert)"],
                rows_a,
                title=f"Fig. 12a — insert latency (n={n}, L={l_fraction:.0%})",
            ),
            format_table(
                ["K", "B+-tree (µs/lookup)", "SA B+-tree (µs/lookup)"],
                rows_b,
                title="Fig. 12b — point lookup latency (full buffer)",
            ),
            format_table(
                ["K", "B+-tree (µs/op)", "SA B+-tree (µs/op)"],
                rows_c,
                title="Fig. 12c — mixed 50:50 latency per operation",
            ),
            format_table(
                ["selectivity", "B+-tree (µs/scan)", "SA B+-tree (µs/scan)"],
                rows_d,
                title="Fig. 12d — range scan latency (near-sorted ingest)",
            ),
            format_table(
                [
                    "scan target",
                    "B+ mean",
                    "SA mean",
                    "B+ P95",
                    "SA P95",
                    "B+ P99",
                    "SA P99",
                ],
                rows_e,
                title="§V-B — range-scan tail latencies (µs, 1% selectivity)",
            ),
        ]
    )
    return Fig12Result(
        report=report,
        insert_latency=insert_latency,
        lookup_latency=lookup_latency,
        mixed_latency=mixed_latency,
        scan_latency=scan_latency,
        scan_percentiles=scan_percentiles,
    )
