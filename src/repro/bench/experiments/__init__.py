"""One module per paper figure/table; each exposes a ``run(...)`` function
returning a result object with a ``report`` (plain text) and structured
``data``. The ``benchmarks/`` pytest modules drive these under
pytest-benchmark."""
