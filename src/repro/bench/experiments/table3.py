"""Table III — TPC-H receiptdate ingestion (§V-H).

Keys arrive in shipdate-sorted order while the index is on receiptdate —
the synthetic column reproduces dbgen's implicit clustering (high K, tiny
L). Buffer sizes sweep 0.05%–1% of the data across read ratios; the index
is preloaded to 80% before the mixed phase. Paper shape: SA B+-tree wins at
every cell (1.14×–5.3×), benefits growing with buffer size and shrinking
with the read share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.bench.experiments import common
from repro.bench.report import format_table
from repro.bench.runner import RunResult, run_phases, speedup
from repro.sortedness.metrics import measure_sortedness
from repro.workloads.tpch import receiptdate_keys

BUFFER_FRACTIONS = [0.0005, 0.001, 0.0025, 0.005, 0.01]
RATIOS = [0.10, 0.25, 0.50, 0.75, 0.90]


@dataclass
class Table3Result:
    report: str
    #: (read_fraction, buffer_fraction) -> speedup
    data: Dict[Tuple[float, float], float]
    measured_k: float
    measured_l: float


def run(n: int = 40_000, seed: int = 7, measure_sample: int = 6_000) -> Table3Result:
    n = common.scaled(n)
    keys = receiptdate_keys(n, seed=seed)
    sample = measure_sortedness(keys[:measure_sample])

    data: Dict[Tuple[float, float], float] = {}
    base_cache: Dict[float, RunResult] = {}
    rows: List[list] = []
    for ratio in RATIOS:
        ops = common.mixed_ops(keys, ratio, seed=seed)
        base = base_cache.get(ratio)
        if base is None:
            base = run_phases(
                common.baseline_btree_factory(), [("mixed", ops)], label="B+"
            )
            base_cache[ratio] = base
        row = [f"{int(ratio * 100)}% : {int((1 - ratio) * 100)}%"]
        for fraction in BUFFER_FRACTIONS:
            sa = run_phases(
                common.sa_btree_factory(common.buffer_config(n, fraction)),
                [("mixed", ops)],
                label=f"SA buf={fraction:.2%}",
            )
            data[(ratio, fraction)] = speedup(base, sa)
            row.append(data[(ratio, fraction)])
        rows.append(row)

    report = format_table(
        ["reads : writes"] + [f"buf={f:.2%}" for f in BUFFER_FRACTIONS],
        rows,
        title=(
            f"Table III — TPC-H receiptdate speedups (n={n}; measured sample "
            f"K={sample.k_fraction:.1%}, L={sample.l_fraction:.2%}; "
            f"paper: K=96.67%, L=0.1%)"
        ),
    )
    return Table3Result(
        report=report,
        data=data,
        measured_k=sample.k_fraction,
        measured_l=sample.l_fraction,
    )
