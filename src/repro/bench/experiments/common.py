"""Shared plumbing for the per-figure experiment modules.

Scaling: the paper ingests 500M entries with a buffer of 1% of the data;
every experiment here keeps the paper's *ratios* (buffer %, K%, L%, read
fractions) and shrinks N. ``REPRO_SCALE`` multiplies every default size
(e.g. ``REPRO_SCALE=4 pytest benchmarks/`` runs 4× larger workloads).
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Callable, List, Optional, Sequence, Tuple

from repro.betree.betree import BeTree, BeTreeConfig
from repro.btree.btree import BPlusTree, BPlusTreeConfig
from repro.core.config import SWAREConfig
from repro.core.sware import SortednessAwareIndex
from repro.sortedness.generator import generate_kl_keys, scrambled_keys, sorted_keys
from repro.storage.bufferpool import BufferPool
from repro.storage.costmodel import CostModel, Meter
from repro.workloads.spec import MixedWorkloadSpec, RawWorkloadSpec

SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))

#: Leaf/internal capacities used across all experiments (DESIGN.md §6).
LEAF_CAPACITY = 64
INTERNAL_CAPACITY = 64
PAGE_SIZE = 64

#: The qualitative sortedness presets of Fig. 10/18/20:
#: (label, k_fraction, l_fraction); None marks the uniform shuffle.
SORTEDNESS_PRESETS: List[Tuple[str, Optional[float], Optional[float]]] = [
    ("sorted", 0.0, 0.0),
    ("near-sorted", 0.10, 0.05),
    ("less-sorted", 1.00, 0.50),
    ("scrambled", None, None),
]

#: The paper's read:write ratios (read fraction of the interleaved phase).
READ_WRITE_RATIOS: List[float] = [0.10, 0.25, 0.40, 0.50, 0.60, 0.75, 0.90]


def scaled(n: int) -> int:
    """Scale a base workload size by REPRO_SCALE (min 1000)."""
    return max(1000, int(n * SCALE))


@lru_cache(maxsize=128)
def keys_for(
    n: int,
    k_fraction: Optional[float],
    l_fraction: Optional[float],
    seed: int = 7,
) -> Tuple[int, ...]:
    """Cached (K,L) key collections ((None, None) = scrambled)."""
    if k_fraction is None:
        return tuple(scrambled_keys(n, seed=seed))
    if k_fraction == 0.0 or l_fraction == 0.0:
        return tuple(sorted_keys(n))
    return tuple(generate_kl_keys(n, k_fraction, l_fraction, seed=seed))


def buffer_config(
    n: int,
    buffer_fraction: float = 0.01,
    page_size: int = PAGE_SIZE,
    **overrides,
) -> SWAREConfig:
    """A SWAREConfig whose buffer is ``buffer_fraction`` of the data size.

    The capacity is page-aligned and at least two pages; tiny buffers
    (Table III sweeps down to 0.05%) shrink the page size as needed.
    """
    capacity = max(8, int(n * buffer_fraction))
    if capacity < 2 * page_size:
        page_size = max(4, capacity // 2)
    capacity = max(2 * page_size, (capacity // page_size) * page_size)
    return SWAREConfig(buffer_capacity=capacity, page_size=page_size, **overrides)


def sa_btree_factory(
    sware_config: SWAREConfig,
    split_factor: float = 0.8,
    bulk_fill_factor: float = 0.95,
    pool_capacity: Optional[int] = None,
) -> Callable[[Meter], SortednessAwareIndex]:
    def factory(meter: Meter) -> SortednessAwareIndex:
        pool = BufferPool(pool_capacity, meter=meter) if pool_capacity else None
        tree = BPlusTree(
            BPlusTreeConfig(
                leaf_capacity=LEAF_CAPACITY,
                internal_capacity=INTERNAL_CAPACITY,
                split_factor=split_factor,
                bulk_fill_factor=bulk_fill_factor,
                tail_leaf_optimization=True,
            ),
            meter=meter,
            pool=pool,
        )
        return SortednessAwareIndex(tree, config=sware_config, meter=meter)

    return factory


def baseline_btree_factory(
    pool_capacity: Optional[int] = None,
) -> Callable[[Meter], BPlusTree]:
    def factory(meter: Meter) -> BPlusTree:
        pool = BufferPool(pool_capacity, meter=meter) if pool_capacity else None
        return BPlusTree(
            BPlusTreeConfig(
                leaf_capacity=LEAF_CAPACITY,
                internal_capacity=INTERNAL_CAPACITY,
                split_factor=0.5,
                tail_leaf_optimization=False,
            ),
            meter=meter,
            pool=pool,
        )

    return factory


def sa_betree_factory(
    sware_config: SWAREConfig,
    split_factor: float = 0.8,
) -> Callable[[Meter], SortednessAwareIndex]:
    def factory(meter: Meter) -> SortednessAwareIndex:
        tree = BeTree(
            BeTreeConfig(
                node_size=64,
                epsilon=0.5,
                leaf_capacity=LEAF_CAPACITY,
                split_factor=split_factor,
            ),
            meter=meter,
        )
        return SortednessAwareIndex(tree, config=sware_config, meter=meter)

    return factory


def baseline_betree_factory() -> Callable[[Meter], BeTree]:
    def factory(meter: Meter) -> BeTree:
        return BeTree(
            BeTreeConfig(node_size=64, epsilon=0.5, leaf_capacity=LEAF_CAPACITY),
            meter=meter,
        )

    return factory


def ondisk_pool_capacity(n: int) -> int:
    """A bufferpool holding roughly the internal nodes only (§V-E: ~1%).

    Sized with slack so the internal levels of *either* index fit (an
    80:20-split tree has a few more internals); leaves always spill.
    """
    leaves = max(1, (2 * n) // LEAF_CAPACITY)  # ~50% average fill
    internals = max(1, leaves // INTERNAL_CAPACITY)
    return max(24, 3 * internals + 16)


def topup_ops(
    n: int,
    k_fraction: Optional[float],
    l_fraction: Optional[float],
    count: int,
    seed: int = 7,
) -> list:
    """Extra inserts continuing the stream above the existing key domain.

    Used to leave the SWARE-buffer (nearly) full before a read-only phase —
    the paper "ensures the buffer is full before executing any query" for
    worst-case lookup numbers, whereas a generated stream can happen to end
    exactly on a flush boundary.
    """
    from repro.workloads.spec import INSERT, value_for

    if k_fraction is None:
        keys = scrambled_keys(count, seed=seed + 991, start=n)
    elif k_fraction == 0.0 or l_fraction == 0.0:
        keys = sorted_keys(count, start=n)
    else:
        keys = generate_kl_keys(count, k_fraction, l_fraction, seed=seed + 991, start=n)
    return [(INSERT, key, value_for(key)) for key in keys]


def mixed_ops(
    keys: Sequence[int],
    read_fraction: float,
    seed: int = 11,
    max_reads: Optional[int] = None,
) -> list:
    """Materialized mixed-workload operations (preload 80% + interleave)."""
    if max_reads is None:
        # Keep read-heavy runs bounded: at most 3x the data size.
        max_reads = 3 * len(keys)
    spec = MixedWorkloadSpec(
        keys=tuple(keys), read_fraction=read_fraction, seed=seed, max_reads=max_reads
    )
    return spec.materialize()


def raw_spec(keys: Sequence[int], n_lookups: int = 0, seed: int = 13) -> RawWorkloadSpec:
    return RawWorkloadSpec(keys=tuple(keys), n_lookups=n_lookups, seed=seed)


DEFAULT_COST_MODEL = CostModel()
