"""Fig. 19 + Table II — scalability with data size.

(a) K and L proportional (5%) to N, buffer 1% of N: both indexes stay
    roughly flat (stepwise with tree height) and SA keeps a constant-factor
    lead;
(b) L and the buffer size *fixed* while N grows: SA's per-op latency
    *drops* with N because a shrinking fraction of the data lives in the
    buffer, so fewer queries touch it — quantified by Table II's
    entries-in-buffer % and unsorted pages scanned per query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.bench.experiments import common
from repro.bench.report import format_table
from repro.bench.runner import run_phases, speedup
from repro.core.config import SWAREConfig

SIZES = [2_000, 4_000, 8_000, 16_000, 32_000]


@dataclass
class Fig19Result:
    report: str
    proportional: Dict[int, Dict[str, float]]  # n -> latency/op (sa, base)
    fixed_l: Dict[int, Dict[str, float]]
    table2: Dict[int, Dict[str, float]]


def run(
    read_fraction: float = 0.5,
    fixed_l_entries: int = 1_000,
    fixed_buffer_entries: int = 512,
    seed: int = 7,
) -> Fig19Result:
    sizes = [common.scaled(s) for s in SIZES]
    proportional: Dict[int, Dict[str, float]] = {}
    fixed_l: Dict[int, Dict[str, float]] = {}
    table2: Dict[int, Dict[str, float]] = {}
    rows_a: List[list] = []
    rows_b: List[list] = []
    rows_t2: List[list] = []

    for n in sizes:
        # (a) K, L proportional; buffer 1% of data.
        keys = common.keys_for(n, 0.05, 0.05, seed=seed)
        ops = common.mixed_ops(keys, read_fraction, seed=seed)
        base = run_phases(common.baseline_btree_factory(), [("mixed", ops)], label="B+")
        sa = run_phases(
            common.sa_btree_factory(common.buffer_config(n, 0.01)),
            [("mixed", ops)],
            label="SA",
        )
        proportional[n] = {
            "sa": sa.sim_ns_per_op,
            "base": base.sim_ns_per_op,
            "speedup": speedup(base, sa),
        }
        rows_a.append(
            [n, base.sim_ns_per_op / 1e3, sa.sim_ns_per_op / 1e3, speedup(base, sa)]
        )

        # (b) fixed L and fixed buffer size.
        l_fraction = min(0.95, fixed_l_entries / n)
        keys_fixed = common.keys_for(n, 0.05, round(l_fraction, 6), seed=seed)
        ops_fixed = common.mixed_ops(keys_fixed, read_fraction, seed=seed)
        base_f = run_phases(
            common.baseline_btree_factory(), [("mixed", ops_fixed)], label="B+"
        )
        config = SWAREConfig(
            buffer_capacity=fixed_buffer_entries,
            page_size=min(common.PAGE_SIZE, fixed_buffer_entries // 2),
        )
        sa_f = run_phases(
            common.sa_btree_factory(config), [("mixed", ops_fixed)], label="SA"
        )
        fixed_l[n] = {
            "sa": sa_f.sim_ns_per_op,
            "base": base_f.sim_ns_per_op,
            "speedup": speedup(base_f, sa_f),
        }
        rows_b.append(
            [n, base_f.sim_ns_per_op / 1e3, sa_f.sim_ns_per_op / 1e3, speedup(base_f, sa_f)]
        )

        lookups = sa_f.sware_stats.get("lookups", 0) or 1
        pages_per_query = sa_f.sware_stats.get("unsorted_pages_scanned", 0) / lookups
        table2[n] = {
            "buffer_fraction": fixed_buffer_entries / n,
            "pages_scanned_per_query": pages_per_query,
        }
        rows_t2.append(
            [n, f"{fixed_buffer_entries / n:.2%}", f"{pages_per_query:.4f}"]
        )

    report = "\n".join(
        [
            format_table(
                ["entries", "B+-tree (µs/op)", "SA B+-tree (µs/op)", "speedup"],
                rows_a,
                title="Fig. 19a — scalability, K=L=5% of data, buffer=1%",
            ),
            format_table(
                ["entries", "B+-tree (µs/op)", "SA B+-tree (µs/op)", "speedup"],
                rows_b,
                title=f"Fig. 19b — scalability, fixed L={fixed_l_entries} entries, "
                f"fixed buffer={fixed_buffer_entries} entries",
            ),
            format_table(
                ["entries", "% entries in buffer", "unsorted pages scanned/query"],
                rows_t2,
                title="Table II — buffer footprint shrinks relative to data",
            ),
        ]
    )
    return Fig19Result(
        report=report, proportional=proportional, fixed_l=fixed_l, table2=table2
    )
