"""Concurrent front-end throughput: N threads of mixed put/get/range.

Not a paper figure — this measures the repo's own thread-safe front-end
(:class:`~repro.core.concurrent.ConcurrentSortednessAwareIndex`) under a
mixed workload, in wall-clock time. CPython's GIL serializes the actual
work, so the interesting numbers are not parallel speedups but:

* the **locking overhead** — the single-threaded concurrent front-end vs
  the plain :class:`~repro.core.sware.SortednessAwareIndex` on the same
  workload;
* the **contention profile** — lock acquisitions, waits, wait time,
  upgrades and fallbacks at each thread count (from the lock manager's
  counters), plus proof that a multi-threaded run finishes with intact
  invariants.

Throughputs are published as ``concurrent_ops_*_ops_per_s`` gauges so they
flow into ``BENCH_concurrent.json`` and the CI perf gate; the contention
counters ride along as plain gauges (informational, not gated).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.experiments import common
from repro.bench.report import format_table
from repro.bench.runner import PhaseResult, RunResult
from repro.btree.btree import BPlusTree
from repro.core.concurrent import ConcurrentSortednessAwareIndex
from repro.core.config import SWAREConfig
from repro.core.sware import SortednessAwareIndex
from repro.obs import current_obs
from repro.workloads.spec import value_for

Op = Tuple  # ("put", key, value) | ("get", key) | ("range", lo, hi)


@dataclass
class ConcurrentOpsResult:
    report: str
    #: gauge name -> operations per second (wall clock)
    throughputs: Dict[str, float]
    #: thread count -> lock-manager counter snapshot
    contention: Dict[int, Dict[str, float]]
    runs: List[RunResult] = field(default_factory=list)


def _ops_per_s(n_ops: int, wall_ns: float) -> float:
    return n_ops / wall_ns * 1e9 if wall_ns else 0.0


def build_programs(
    keys: Sequence[int],
    n_threads: int,
    read_fraction: float,
    seed: int,
) -> List[List[Op]]:
    """Deterministic per-thread op lists over a shared key population.

    Every key is inserted exactly once (by some thread); reads are split
    between point lookups and short range scans and drawn from the full
    population, so threads contend on the same buffer and tree regions.
    """
    rng = random.Random(seed)
    n = len(keys)
    programs: List[List[Op]] = [[] for _ in range(n_threads)]
    for i, key in enumerate(keys):
        programs[i % n_threads].append(("put", key, value_for(key)))
    n_reads = int(n * read_fraction / max(1, 1 - read_fraction))
    span = max(1, n // 100)
    for i in range(n_reads):
        owner = i % n_threads
        if rng.random() < 0.75:
            programs[owner].append(("get", rng.choice(keys)))
        else:
            lo = rng.choice(keys)
            programs[owner].append(("range", lo, lo + span))
    for program in programs:
        rng.shuffle(program)
    return programs


def _run_program(index, program: Sequence[Op], failures: List[str]) -> None:
    try:
        for op in program:
            if op[0] == "put":
                index.insert(op[1], op[2])
            elif op[0] == "get":
                index.get(op[1])
            else:
                index.range_query(op[1], op[2])
    except Exception as exc:  # surfaced by the caller, never swallowed
        failures.append(repr(exc))


def _measure(
    programs: List[List[Op]],
    config: SWAREConfig,
    label: str,
    concurrent: bool,
) -> Tuple[RunResult, Optional[Dict[str, float]]]:
    if concurrent:
        index = ConcurrentSortednessAwareIndex(BPlusTree(), config=config)
    else:
        index = SortednessAwareIndex(BPlusTree(), config=config)
    n_ops = sum(len(program) for program in programs)
    failures: List[str] = []
    clock = time.perf_counter_ns

    if len(programs) == 1:
        start = clock()
        _run_program(index, programs[0], failures)
        wall = clock() - start
    else:
        threads = [
            threading.Thread(target=_run_program, args=(index, program, failures))
            for program in programs
        ]
        start = clock()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = clock() - start

    if failures:
        raise RuntimeError(f"{label}: worker failed: {failures[0]}")
    index.flush_all()
    check = getattr(index, "check_invariants", None)
    if check is not None:
        check()
    index.backend.check_invariants()

    result = RunResult(label=label)
    result.phases.append(
        PhaseResult(name="mixed", n_ops=n_ops, sim_ns=0.0, wall_ns=float(wall))
    )
    result.sware_stats = index.stats.snapshot()
    contention = index.locks.snapshot() if concurrent else None
    if contention is not None:
        contention["upgrade_fallbacks"] = float(index.upgrade_fallbacks)
        contention["append_retries"] = float(index.append_retries)
    return result, contention


def _split(programs: List[List[Op]], n_threads: int) -> List[List[Op]]:
    """Redistribute the flat op stream over ``n_threads`` workers."""
    flat = [op for program in programs for op in program]
    return [flat[i::n_threads] for i in range(n_threads)]


def run(
    n: int = 50_000,
    threads: Sequence[int] = (1, 2, 4),
    read_fraction: float = 0.4,
    k_fraction: float = 0.10,
    l_fraction: float = 0.05,
    buffer_fraction: float = 0.01,
    repeats: int = 3,
    seed: int = 7,
) -> ConcurrentOpsResult:
    n = common.scaled(n)
    keys = common.keys_for(n, k_fraction, l_fraction, seed=seed)
    config = common.buffer_config(n, buffer_fraction)
    base_programs = build_programs(keys, max(threads), read_fraction, seed=seed + 1)

    obs = current_obs()
    throughputs: Dict[str, float] = {}
    contention: Dict[int, Dict[str, float]] = {}
    runs: List[RunResult] = []
    rows = []

    configs: List[Tuple[str, List[List[Op]], bool]] = [
        ("serial", _split(base_programs, 1), False)
    ]
    for count in threads:
        configs.append((f"t{count}", _split(base_programs, count), True))

    # Best of ``repeats`` identical runs: throughput is a property of the
    # code; slow samples measure scheduler noise.
    for label, programs, concurrent in configs:
        samples = [
            _measure(programs, config, label, concurrent)
            for _ in range(max(1, repeats))
        ]
        result, locks = min(samples, key=lambda sample: sample[0].wall_ns)
        runs.append(result)
        obs.record_run(result.to_dict())
        phase = result.phases[0]
        gauge = f"concurrent_ops_{label}_mixed_ops_per_s"
        throughputs[gauge] = _ops_per_s(phase.n_ops, phase.wall_ns)
        row = [
            label,
            str(len(programs)),
            f"{phase.n_ops:,}",
            f"{phase.wall_ns / 1e6:.1f}",
            f"{throughputs[gauge] / 1e3:.0f}",
        ]
        if locks is not None:
            count = len(programs)
            contention[count] = locks
            for name, value in locks.items():
                obs.gauge(f"concurrent_ops_{label}_lock_{name}", value)
            row.append(
                f"{locks['waits']:.0f}w/{locks['upgrades']:.0f}u"
                f"/{locks['upgrade_fallbacks']:.0f}f"
            )
        else:
            row.append("-")
        rows.append(row)

    for gauge, value in throughputs.items():
        obs.gauge(gauge, value)

    serial = throughputs["concurrent_ops_serial_mixed_ops_per_s"]
    single = throughputs.get("concurrent_ops_t1_mixed_ops_per_s", 0.0)
    overhead = serial / single if single else float("inf")

    table = format_table(
        ["config", "threads", "ops", "wall ms", "kops/s", "waits/upg/fb"], rows
    )
    lines = [
        f"Concurrent front-end throughput (n={n:,}, reads={read_fraction:.0%}, "
        f"K={k_fraction:.0%}, L={l_fraction:.0%})",
        "",
        table,
        "",
        f"locking overhead (serial / t1): {overhead:.2f}x",
        "invariants checked after every run (buffer, backend, final drain)",
    ]
    report = "\n".join(lines)
    return ConcurrentOpsResult(
        report=report, throughputs=throughputs, contention=contention, runs=runs
    )
