"""§V-D (text) — tuning the buffer flush threshold.

The paper varies the per-cycle flush proportion over 25% / 50% / 75% on
mixed workloads and finds 50% best overall (speedups up to 4.3× vs 4.0× and
4.2× for the neighbours, with 75% even dipping below 1× at the low end).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.bench.experiments import common
from repro.bench.report import format_table
from repro.bench.runner import RunResult, run_phases, speedup

FLUSH_FRACTIONS = [0.25, 0.50, 0.75]
PRESETS = [
    ("sorted", 0.0, 0.0),
    ("near-sorted", 0.10, 0.05),
    ("less-sorted", 1.00, 0.50),
    ("scrambled", None, None),
]


@dataclass
class FlushThresholdResult:
    report: str
    #: (flush_fraction, preset) -> speedup
    data: Dict[Tuple[float, str], float]
    best: float

    def range_for(self, fraction: float) -> Tuple[float, float]:
        values = [v for (f, _), v in self.data.items() if f == fraction]
        return (min(values), max(values))


def run(
    n: int = 12_000,
    buffer_fraction: float = 0.01,
    read_fraction: float = 0.5,
    seed: int = 7,
) -> FlushThresholdResult:
    n = common.scaled(n)
    data: Dict[Tuple[float, str], float] = {}
    base_cache: Dict[str, RunResult] = {}
    rows: List[list] = []
    for fraction in FLUSH_FRACTIONS:
        row = [f"{fraction:.0%}"]
        for label, k_fraction, l_fraction in PRESETS:
            keys = common.keys_for(n, k_fraction, l_fraction, seed=seed)
            ops = common.mixed_ops(keys, read_fraction, seed=seed)
            base = base_cache.get(label)
            if base is None:
                base = run_phases(
                    common.baseline_btree_factory(), [("mixed", ops)], label="B+"
                )
                base_cache[label] = base
            # Small pages so the flush target is not rounded to one page —
            # at reduced buffer sizes a 64-entry page would alias all three
            # thresholds to the same page-aligned flush amount.
            sa = run_phases(
                common.sa_btree_factory(
                    common.buffer_config(
                        n, buffer_fraction, page_size=8, flush_fraction=fraction
                    )
                ),
                [("mixed", ops)],
                label=f"SA flush={fraction:.0%}",
            )
            data[(fraction, label)] = speedup(base, sa)
            row.append(data[(fraction, label)])
        rows.append(row)

    means = {
        fraction: sum(data[(fraction, label)] for label, _, _ in PRESETS) / len(PRESETS)
        for fraction in FLUSH_FRACTIONS
    }
    best = max(means, key=means.get)
    report = format_table(
        ["flush threshold"] + [label for label, _, _ in PRESETS],
        rows,
        title=f"§V-D — flush threshold sweep (n={n}, 50:50 mixed; best mean: {best:.0%})",
    )
    return FlushThresholdResult(report=report, data=data, best=best)
