"""§V-D (text) — Zonemaps at query time.

The paper observes that skipping the Zonemaps during lookups reduces
performance by ~35%. The dominant effect is the *whole-buffer* Zonemap of
the optimized read path (Fig. 6): a near-sorted stream keeps the buffer's
key range narrow, so most uniform lookups fall outside it and the Zonemap
lets them skip the buffer (global BF probe, component boundary checks)
entirely. Disabling ``enable_read_zonemaps`` removes that gate *and* the
per-page Zonemaps of the unsorted section.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.bench.experiments import common
from repro.bench.report import format_table
from repro.bench.runner import run_phases
from repro.workloads.spec import INSERT, value_for


@dataclass
class ZonemapAblationResult:
    report: str
    #: {"with": ns/lookup, "without": ns/lookup, "penalty": fraction}
    data: Dict[str, float]


def run(
    n: int = 16_000,
    k_fraction: float = 0.20,
    l_fraction: float = 0.10,
    buffer_fraction: float = 0.05,
    n_lookups: int = 5_000,
    seed: int = 7,
) -> ZonemapAblationResult:
    n = common.scaled(n)
    keys = common.keys_for(n, k_fraction, l_fraction, seed=seed)
    ingest = [(INSERT, key, value_for(key)) for key in keys]
    lookups = list(
        common.raw_spec(keys, n_lookups=n_lookups, seed=seed).lookup_operations()
    )
    phases = [("ingest", ingest), ("lookups", lookups)]

    results: Dict[str, float] = {}
    for label, enabled in (("with", True), ("without", False)):
        config = common.buffer_config(
            n,
            buffer_fraction,
            enable_read_zonemaps=enabled,
            query_sorting_threshold=1.0,
        )
        run_result = run_phases(
            common.sa_btree_factory(config), phases, label=f"zonemaps {label}"
        )
        results[label] = run_result.phase("lookups").sim_ns_per_op

    penalty = results["without"] / results["with"] - 1.0
    report = format_table(
        ["configuration", "lookup latency (µs/op)"],
        [
            ("Zonemaps at query time", results["with"] / 1e3),
            ("no Zonemaps at query time", results["without"] / 1e3),
            ("penalty", f"{penalty:.1%}"),
        ],
        title=f"§V-D — read-path Zonemap ablation (n={n}, K={k_fraction:.0%}, L={l_fraction:.0%})",
    )
    return ZonemapAblationResult(
        report=report,
        data={"with": results["with"], "without": results["without"], "penalty": penalty},
    )
