"""Fig. 16 — tuning query-driven sorting.

Mixed 50:50 workloads with the query-sorting threshold at 1%, 5%, 10%, 25%
and disabled, across a K sweep. Paper shape: 10% gives the best speedup
(~25% better than without); too-frequent sorting (1%) or too-rare (25%)
helps less.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.bench.experiments import common
from repro.bench.report import format_matrix
from repro.bench.runner import RunResult, run_phases, speedup

K_SWEEP = [0.0, 0.02, 0.10, 0.20, 1.00]
THRESHOLDS = [0.01, 0.05, 0.10, 0.25, 1.00]  # 1.00 disables query sorting


@dataclass
class Fig16Result:
    report: str
    #: (threshold, k) -> speedup over the baseline B+-tree
    data: Dict[Tuple[float, float], float]


def run(
    n: int = 12_000,
    l_fraction: float = 0.05,
    buffer_fraction: float = 0.05,
    page_size: int = 8,
    read_fraction: float = 0.5,
    seed: int = 7,
) -> Fig16Result:
    # Geometry note: query-driven sorting pays off through cheaper scans of
    # the unsorted section, so the buffer must span many pages for the
    # threshold to matter (the paper's 5M-entry buffer has ~9.7k pages); at
    # reduced scale we use a 5% buffer with small pages.
    n = common.scaled(n)
    data: Dict[Tuple[float, float], float] = {}
    base_cache: Dict[float, RunResult] = {}
    for k_fraction in K_SWEEP:
        keys = common.keys_for(n, k_fraction, l_fraction, seed=seed)
        ops = common.mixed_ops(keys, read_fraction, seed=seed)
        base = run_phases(common.baseline_btree_factory(), [("mixed", ops)], label="B+")
        base_cache[k_fraction] = base
        for threshold in THRESHOLDS:
            config = common.buffer_config(
                n,
                buffer_fraction,
                page_size=page_size,
                query_sorting_threshold=threshold,
            )
            sa = run_phases(
                common.sa_btree_factory(config), [("mixed", ops)], label="SA"
            )
            data[(threshold, k_fraction)] = speedup(base, sa)

    row_map = {("w/o Q-S" if t >= 1.0 else f"Q-S={t:.0%}"): t for t in THRESHOLDS}
    col_map = {f"K={k:.0%}": k for k in K_SWEEP}
    report = format_matrix(
        list(row_map),
        list(col_map),
        lambda row, col: data[(row_map[row], col_map[col])],
        title=f"Fig. 16 — query-driven sorting threshold (n={n}, 50:50 mixed)",
        row_header="threshold",
    )
    return Fig16Result(report=report, data=data)
