"""Fig. 21 — the other extreme: K = 5%, L = 95%.

Few elements are out of order but they travel nearly the whole collection.
Paper shape: SA B+-tree still wins (≥13% with a 1% buffer); enlarging the
buffer to 2% / 5% captures more of the overlap and lifts the gain to ~71%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.bench.experiments import common
from repro.bench.report import format_table
from repro.bench.runner import RunResult, run_phases, speedup

BUFFER_FRACTIONS = [0.01, 0.02, 0.05]
RATIOS = [0.10, 0.25, 0.50, 0.75, 0.90]


@dataclass
class Fig21Result:
    report: str
    #: (read_fraction, buffer_fraction) -> speedup
    data: Dict[Tuple[float, float], float]


def run(n: int = 16_000, seed: int = 7) -> Fig21Result:
    n = common.scaled(n)
    keys = common.keys_for(n, 0.05, 0.95, seed=seed)
    data: Dict[Tuple[float, float], float] = {}
    rows: List[list] = []
    base_cache: Dict[float, RunResult] = {}
    for ratio in RATIOS:
        ops = common.mixed_ops(keys, ratio, seed=seed)
        base = base_cache.get(ratio)
        if base is None:
            base = run_phases(
                common.baseline_btree_factory(), [("mixed", ops)], label="B+"
            )
            base_cache[ratio] = base
        row = [f"{int(ratio * 100)}:{int((1 - ratio) * 100)}"]
        for fraction in BUFFER_FRACTIONS:
            sa = run_phases(
                common.sa_btree_factory(common.buffer_config(n, fraction)),
                [("mixed", ops)],
                label=f"SA buf={fraction:.0%}",
            )
            data[(ratio, fraction)] = speedup(base, sa)
            row.append(data[(ratio, fraction)])
        rows.append(row)
    report = format_table(
        ["read:write"] + [f"buffer={f:.0%}" for f in BUFFER_FRACTIONS],
        rows,
        title=f"Fig. 21 — high-L/low-K workload (n={n}, K=5%, L=95%)",
    )
    return Fig21Result(report=report, data=data)
