"""Fig. 18 — on-disk performance: SA B+-tree with a 1%-sized bufferpool.

Same grid as Fig. 10 but both indexes run over a bufferpool that only fits
the internal nodes, so leaf touches become simulated disk I/O. Paper shape:
SA B+-tree *always* outperforms the B+-tree on disk — even for scrambled
data and read-heavy mixes — because buffer sorting boosts locality and the
buffer-management CPU cost is negligible next to page I/O.

Scaling note: the on-disk locality benefit is governed by the *flush-batch
to leaf density* (flushed entries per leaf). The paper's 4 KB pages hold
~341 live entries, so its 1%-of-data buffer flushes ~1.7 entries per leaf;
with this library's 64-entry leaves a 1% buffer would flush only ~0.2
entries per leaf and sorting would destroy rather than create locality. We
therefore size the buffer at 4% of the data, which restores the paper's
density (~0.9 entries/leaf) at reduced scale — see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.bench.experiments import common
from repro.bench.experiments import fig10 as fig10_mod


@dataclass
class Fig18Result:
    report: str
    data: Dict[Tuple[str, float], float]


def run(n: int = 12_000, buffer_fraction: float = 0.04, seed: int = 7) -> Fig18Result:
    n = common.scaled(n)
    inner = fig10_mod.run(
        n=n,
        buffer_fraction=buffer_fraction,
        seed=seed,
        pool_capacity=common.ondisk_pool_capacity(n),
        title=(
            "Fig. 18 — SA B+-tree speedup on disk (bufferpool ≈ internal nodes; "
            "buffer sized to preserve the paper's flush-batch/leaf density)"
        ),
    )
    return Fig18Result(report=inner.report, data=inner.data)
