"""Fig. 17 — what the Bloom filters buy.

Three SA B+-tree configurations — *naive* (no BFs), *global BF only*, and
*full* (global + per-page) — against the B+-tree baseline, for a K sweep:
(a) insert latency: maintaining the filters adds a small ingestion cost;
(b) lookup latency: the filters pay off increasingly as sortedness drops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.bench.experiments import common
from repro.bench.report import format_table
from repro.bench.runner import run_phases
from repro.workloads.spec import INSERT, value_for

K_SWEEP = [0.0, 0.02, 0.10, 0.20, 0.50, 1.00]

VARIANTS = [
    ("naive SA", {"enable_global_bf": False, "enable_page_bf": False}),
    ("SA global BF", {"enable_global_bf": True, "enable_page_bf": False}),
    ("SA full", {"enable_global_bf": True, "enable_page_bf": True}),
]


@dataclass
class Fig17Result:
    report: str
    #: (variant, k) -> {"insert_ns": ..., "lookup_ns": ...}
    data: Dict[Tuple[str, float], Dict[str, float]]


def run(
    n: int = 16_000,
    l_fraction: float = 0.05,
    buffer_fraction: float = 0.05,
    page_size: int = 8,
    n_lookups: int = 4000,
    seed: int = 7,
) -> Fig17Result:
    # Geometry note: the filters gate page scans of the unsorted section,
    # so the buffer must span many pages for the ablation to discriminate
    # (see fig16); we use a 5% buffer with small pages at reduced scale.
    n = common.scaled(n)
    data: Dict[Tuple[str, float], Dict[str, float]] = {}
    rows_insert: List[list] = []
    rows_lookup: List[list] = []
    # Query sorting is disabled here so lookups actually exercise the
    # unsorted section (the paper notes Q-S otherwise bounds BF benefit).
    for k_fraction in K_SWEEP:
        # Ingest a stream that ends mid-flush-cycle so the buffer's unsorted
        # section is populated at query time (the paper "ensures the buffer
        # is full before executing any query"); a round count would end
        # exactly on a flush and leave the tail empty.
        n_eff = n + int(n * buffer_fraction * 0.45)
        keys = common.keys_for(n_eff, k_fraction, l_fraction, seed=seed)
        ingest = [(INSERT, key, value_for(key)) for key in keys]
        lookups = list(
            common.raw_spec(keys, n_lookups=n_lookups, seed=seed).lookup_operations()
        )
        phases = [("ingest", ingest), ("lookups", lookups)]
        base = run_phases(common.baseline_btree_factory(), phases, label="B+")
        row_i = [f"{k_fraction:.0%}", base.phase("ingest").sim_ns_per_op / 1e3]
        row_l = [f"{k_fraction:.0%}", base.phase("lookups").sim_ns_per_op / 1e3]
        for label, flags in VARIANTS:
            config = common.buffer_config(
                n,
                buffer_fraction,
                page_size=page_size,
                query_sorting_threshold=1.0,
                **flags,
            )
            sa = run_phases(common.sa_btree_factory(config), phases, label=label)
            data[(label, k_fraction)] = {
                "insert_ns": sa.phase("ingest").sim_ns_per_op,
                "lookup_ns": sa.phase("lookups").sim_ns_per_op,
            }
            row_i.append(data[(label, k_fraction)]["insert_ns"] / 1e3)
            row_l.append(data[(label, k_fraction)]["lookup_ns"] / 1e3)
        rows_insert.append(row_i)
        rows_lookup.append(row_l)

    headers = ["K", "B+-tree"] + [label for label, _ in VARIANTS]
    report = "\n".join(
        [
            format_table(
                headers,
                rows_insert,
                title=f"Fig. 17a — insert latency (µs/op, n={n})",
            ),
            format_table(
                headers,
                rows_lookup,
                title="Fig. 17b — lookup latency (µs/op, full buffer, Q-S off)",
            ),
        ]
    )
    return Fig17Result(report=report, data=data)
