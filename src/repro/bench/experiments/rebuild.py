"""Checkpoint compression + offline rebuild bench (``repro bench-rebuild``).

Two questions, per the "compressed key sort and fast index reconstruction"
direction:

* **Space amplification** — how much smaller is a v2 (delta-compressed
  key columns) checkpoint than a v1 (raw) checkpoint of the same tree,
  per SOSD-like dataset family? Reported at two granularities: the
  on-disk file (slot-rounded, directory + footer included) and the raw
  page payload bytes. Gauges: ``rebuild_space_amp_<family>_file_x`` and
  ``rebuild_space_amp_<family>_payload_x`` (>1 = compression wins).

* **Rebuild throughput** — with a long WAL tail, how does the offline
  rebuild (stream compressed runs, k-way merge on encoded pages,
  ``bulk_load_append`` a fresh tree) compare against incremental
  recovery's per-op replay? Gauges: ``rebuild_bulk_ops_per_s``,
  ``rebuild_replay_ops_per_s``, ``rebuild_speedup_x``. Both paths are
  asserted to recover the *identical* item set before any number is
  reported.

The throughput gauges end in ``_ops_per_s`` so ``repro perf-gate`` tracks
them against the committed baselines (``results/BENCH_rebuild.json`` for
the python backend, ``results/BENCH_rebuild_numpy.json`` for numpy); the
space-amplification gauges are asserted directly by the CI rebuild-smoke
job.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List

from repro import kernels
from repro.bench.experiments import common
from repro.bench.report import format_table
from repro.bench.runner import PhaseResult, RunResult
from repro.btree.btree import BPlusTree
from repro.core.sware import SortednessAwareIndex
from repro.obs import current_obs
from repro.storage import CheckpointStore, WriteAheadLog, rebuild_index
from repro.storage.pages import serialize_btree
from repro.workloads import sosd
from repro.workloads.spec import value_for

#: Finer slots than the 4 KB default so compression wins are visible at
#: file granularity instead of vanishing into slot rounding.
BENCH_SLOT_SIZE = 256

#: (family label, key generator) — the SOSD-like families of PR 9.
FAMILIES = [
    ("books", sosd.books_like_keys),
    ("fb", sosd.fb_like_keys),
    ("wiki", sosd.wiki_timestamp_keys),
    ("tpch", sosd.tpch_receiptdate_stream),
]


@dataclass
class RebuildResult:
    report: str
    #: family -> {"file_x": ..., "payload_x": ..., raw/compressed bytes}
    space: Dict[str, Dict[str, float]]
    #: gauge name -> value (throughputs and speedup)
    throughputs: Dict[str, float]
    runs: List[RunResult] = field(default_factory=list)
    artifact_extra: Dict[str, object] = field(default_factory=dict)


def _build_index(keys: List[int], wal=None) -> SortednessAwareIndex:
    index = SortednessAwareIndex(BPlusTree(), wal=wal)
    insert = index.insert
    for key in keys:
        insert(key, value_for(key))
    return index


def _payload_bytes(tree, compress: bool) -> int:
    blob = serialize_btree(tree, compress=compress)
    return sum(len(page) for page in blob["pages"].values())


def run(
    n: int = 50_000,
    tail: int = 100_000,
    space_n: int = 30_000,
    seed: int = 7,
) -> RebuildResult:
    n = common.scaled(n)
    tail = common.scaled(tail)
    space_n = common.scaled(space_n)
    obs = current_obs()
    space: Dict[str, Dict[str, float]] = {}
    throughputs: Dict[str, float] = {}
    space_rows: List[list] = []
    clock = time.perf_counter_ns

    with tempfile.TemporaryDirectory(prefix="repro-bench-rebuild-") as tmpdir:
        # -- phase A: checkpoint space amplification per family ------------
        space_run = RunResult(label="space_amp")
        for family, generator in FAMILIES:
            keys = generator(space_n, seed=seed)
            index = _build_index(keys)
            index.flush_all()
            tree = index.backend
            raw_payload = _payload_bytes(tree, compress=False)
            compressed_payload = _payload_bytes(tree, compress=True)
            v1_path = os.path.join(tmpdir, f"{family}-v1.db")
            v2_path = os.path.join(tmpdir, f"{family}-v2.db")
            start = clock()
            CheckpointStore(v1_path, BENCH_SLOT_SIZE, compress=False).save_btree(tree)
            CheckpointStore(v2_path, BENCH_SLOT_SIZE, compress=True).save_btree(tree)
            wall = clock() - start
            raw_file = os.path.getsize(v1_path)
            compressed_file = os.path.getsize(v2_path)
            file_x = raw_file / compressed_file if compressed_file else 0.0
            payload_x = (
                raw_payload / compressed_payload if compressed_payload else 0.0
            )
            space[family] = {
                "raw_file_bytes": raw_file,
                "compressed_file_bytes": compressed_file,
                "raw_payload_bytes": raw_payload,
                "compressed_payload_bytes": compressed_payload,
                "file_x": file_x,
                "payload_x": payload_x,
            }
            obs.gauge(f"rebuild_space_amp_{family}_file_x", file_x)
            obs.gauge(f"rebuild_space_amp_{family}_payload_x", payload_x)
            space_run.phases.append(
                PhaseResult(
                    name=f"space_{family}", n_ops=space_n, sim_ns=0.0,
                    wall_ns=float(wall),
                )
            )
            space_rows.append(
                [
                    family,
                    f"{raw_file:,}",
                    f"{compressed_file:,}",
                    f"{file_x:.2f}x",
                    f"{payload_x:.2f}x",
                ]
            )

        # -- phase B: rebuild vs replay recovery at a long WAL tail --------
        ckpt_path = os.path.join(tmpdir, "base.db")
        wal_path = os.path.join(tmpdir, "base.wal")
        base_keys = sosd.books_like_keys(n, seed=seed)
        wal = WriteAheadLog(wal_path)
        index = _build_index(base_keys, wal=wal)
        store = CheckpointStore(ckpt_path, BENCH_SLOT_SIZE, compress=True)
        store.save_index(index)
        wal.reset()
        # The tail interleaves updates of resident keys with fresh inserts,
        # the post-checkpoint traffic a long-running ingest accumulates.
        tail_keys = sosd.books_like_keys(tail, seed=seed + 1)
        for i, key in enumerate(tail_keys):
            if i % 3 == 0:
                index.insert(base_keys[i % n], value_for(key))
            else:
                index.insert(key, value_for(key))
        wal.sync()
        wal.close()
        expected = dict(index.items())
        total_ops = n + tail

        start = clock()
        replayed, _report = CheckpointStore(
            ckpt_path, BENCH_SLOT_SIZE
        ).recover(wal_path)
        replay_wall = clock() - start

        start = clock()
        rebuilt, rebuild_report = rebuild_index(
            ckpt_path, wal_path, slot_size=BENCH_SLOT_SIZE
        )
        rebuild_wall = clock() - start

        replay_items = dict(replayed.items())
        rebuilt_items = dict(rebuilt.items())
        if replay_items != expected or rebuilt_items != expected:
            raise AssertionError(
                "recovery equivalence violated: "
                f"expected {len(expected)} items, replay {len(replay_items)}, "
                f"rebuild {len(rebuilt_items)}"
            )

        replay_ops_s = total_ops / replay_wall * 1e9 if replay_wall else 0.0
        rebuild_ops_s = total_ops / rebuild_wall * 1e9 if rebuild_wall else 0.0
        speedup = replay_wall / rebuild_wall if rebuild_wall else 0.0
        throughputs["rebuild_bulk_ops_per_s"] = rebuild_ops_s
        throughputs["rebuild_replay_ops_per_s"] = replay_ops_s
        obs.gauge("rebuild_bulk_ops_per_s", rebuild_ops_s)
        obs.gauge("rebuild_replay_ops_per_s", replay_ops_s)
        obs.gauge("rebuild_speedup_x", speedup)

        recovery_run = RunResult(label="recovery")
        recovery_run.phases.append(
            PhaseResult(
                name="replay", n_ops=total_ops, sim_ns=0.0,
                wall_ns=float(replay_wall),
            )
        )
        recovery_run.phases.append(
            PhaseResult(
                name="rebuild", n_ops=total_ops, sim_ns=0.0,
                wall_ns=float(rebuild_wall),
            )
        )

    runs = [space_run, recovery_run]
    for run_result in runs:
        obs.record_run(run_result.to_dict())

    space_table = format_table(
        ["family", "v1 file B", "v2 file B", "file amp", "payload amp"],
        space_rows,
        title=f"Checkpoint space amplification ({space_n:,} keys/family, "
        f"slot {BENCH_SLOT_SIZE} B)",
    )
    recovery_table = format_table(
        ["path", "wall ms", "keys/s"],
        [
            ["WAL replay", f"{replay_wall / 1e6:.1f}", f"{replay_ops_s:,.0f}"],
            ["rebuild", f"{rebuild_wall / 1e6:.1f}", f"{rebuild_ops_s:,.0f}"],
        ],
        title=f"Recovery at a {tail:,}-record WAL tail over {n:,} checkpointed "
        f"keys (speedup {speedup:.1f}x)",
    )
    report = "\n".join(
        [
            f"Rebuild bench (backend {kernels.active_backend()})",
            "",
            space_table,
            "",
            recovery_table,
            "",
            rebuild_report.describe(),
        ]
    )
    extra = {
        "rebuild": {
            "space": space,
            "tail_records": tail,
            "base_keys": n,
            "speedup_x": speedup,
            "slot_size": BENCH_SLOT_SIZE,
            "entries": rebuild_report.entries,
        }
    }
    return RebuildResult(
        report=report,
        space=space,
        throughputs=throughputs,
        runs=runs,
        artifact_extra=extra,
    )
