"""Extension (§VI) — sortedness-(un)awareness of LSM-trees.

The paper's Related Work argues that (i) LSM-trees "perform the same amount
of merging and (re-)writing of the data on disk even when the data arrive
fully sorted", (ii) skip-merge/least-overlap compaction rescues *fully*
sorted ingestion "however, these benefits do not apply for nearly sorted
data", and (iii) "LSM can benefit from the SWARE meta-design to better
exploit variable sortedness".

This experiment demonstrates all three with the LSM substrate: write
amplification of a plain LSM-tree, an LSM-tree with skip-merge compaction,
and SWARE wrapped over each, across the sortedness presets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.bench.experiments import common
from repro.bench.report import format_table
from repro.core.config import SWAREConfig
from repro.core.sware import SortednessAwareIndex
from repro.lsm import LSMConfig, LSMTree
from repro.storage.costmodel import Meter

PRESETS = [
    ("sorted", 0.0, 0.0),
    ("near-sorted", 0.10, 0.05),
    ("less-sorted", 1.00, 0.50),
    ("scrambled", None, None),
]

VARIANTS = ["LSM", "LSM+skip", "SWARE(LSM)", "SWARE(LSM+skip)"]


@dataclass
class LSMSortednessResult:
    report: str
    #: (preset, variant) -> write amplification
    data: Dict[Tuple[str, str], float]


def _build(variant: str, n: int, buffer_fraction: float):
    aware = "skip" in variant
    lsm = LSMTree(
        LSMConfig(
            memtable_capacity=max(32, n // 100),
            size_ratio=4,
            sortedness_aware=aware,
        ),
        meter=Meter(),
    )
    if variant.startswith("SWARE"):
        capacity = max(64, int(n * buffer_fraction))
        config = SWAREConfig(
            buffer_capacity=capacity, page_size=max(4, min(64, capacity // 8))
        )
        return SortednessAwareIndex(lsm, config), lsm
    return lsm, lsm


def run(n: int = 16_000, buffer_fraction: float = 0.01, seed: int = 7) -> LSMSortednessResult:
    n = common.scaled(n)
    data: Dict[Tuple[str, str], float] = {}
    rows = []
    for label, k_fraction, l_fraction in PRESETS:
        keys = common.keys_for(n, k_fraction, l_fraction, seed=seed)
        row = [label]
        for variant in VARIANTS:
            index, lsm = _build(variant, n, buffer_fraction)
            for key in keys:
                index.insert(key, key)
            if isinstance(index, SortednessAwareIndex):
                index.flush_all()
            amplification = lsm.entries_written / n
            data[(label, variant)] = amplification
            row.append(amplification)
        rows.append(row)
    report = format_table(
        ["sortedness"] + VARIANTS,
        rows,
        title=(
            f"Extension §VI — LSM write amplification (n={n}; lower is better;\n"
            "skip = skip-merge compaction, SWARE = buffer wrapped on top)"
        ),
    )
    return LSMSortednessResult(report=report, data=data)
