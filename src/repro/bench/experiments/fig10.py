"""Fig. 10 — SA B+-tree vs B+-tree speedup over mixed workloads (in-memory).

For every read:write ratio (10:90 … 90:10) and sortedness preset (sorted /
near-sorted / less-sorted / scrambled), run the mixed workload on both
indexes and report the simulated-latency speedup. The paper's shape: large
speedups for sorted data on write-heavy mixes (8.8×), decaying toward 1.4×
at 90% reads; scrambled data ~20% *slower* than the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bench.experiments import common
from repro.bench.report import format_matrix
from repro.bench.runner import RunResult, run_phases, speedup


@dataclass
class Fig10Result:
    report: str
    #: (preset label, read_fraction) -> speedup over baseline
    data: Dict[Tuple[str, float], float]
    runs: Dict[Tuple[str, float, str], RunResult]


def run(
    n: int = 20_000,
    ratios: Optional[List[float]] = None,
    presets: Optional[List[Tuple[str, Optional[float], Optional[float]]]] = None,
    buffer_fraction: float = 0.01,
    seed: int = 7,
    pool_capacity: Optional[int] = None,
    title: str = "Fig. 10 — SA B+-tree speedup over B+-tree (mixed workloads)",
) -> Fig10Result:
    n = common.scaled(n)
    ratios = ratios if ratios is not None else common.READ_WRITE_RATIOS
    presets = presets if presets is not None else common.SORTEDNESS_PRESETS

    data: Dict[Tuple[str, float], float] = {}
    runs: Dict[Tuple[str, float, str], RunResult] = {}
    for label, k_fraction, l_fraction in presets:
        keys = common.keys_for(n, k_fraction, l_fraction, seed=seed)
        for ratio in ratios:
            ops = common.mixed_ops(keys, ratio, seed=seed)
            base = run_phases(
                common.baseline_btree_factory(pool_capacity=pool_capacity),
                [("mixed", ops)],
                label=f"B+ {label} r={ratio}",
            )
            sa = run_phases(
                common.sa_btree_factory(
                    common.buffer_config(n, buffer_fraction),
                    pool_capacity=pool_capacity,
                ),
                [("mixed", ops)],
                label=f"SA {label} r={ratio}",
            )
            data[(label, ratio)] = speedup(base, sa)
            runs[(label, ratio, "base")] = base
            runs[(label, ratio, "sa")] = sa

    col_ratio = {f"{int(r * 100)}:{int((1 - r) * 100)}": r for r in ratios}
    report = format_matrix(
        [label for label, _, _ in presets],
        list(col_ratio),
        lambda row, col: data[(row, col_ratio[col])],
        title=f"{title}\n(n={n}, buffer={buffer_fraction:.2%} of data; columns are read:write)",
        row_header="sortedness",
    )
    return Fig10Result(report=report, data=data, runs=runs)
