"""Space utilization — the intro's "up to 48% reduction" claim.

A baseline B+-tree ingesting (near-)sorted data leaves every leaf ~half
full (right-deep inserts, 50:50 splits). The SA B+-tree bulk loads at a 95%
fill with 80:20 splits, so it needs far fewer leaves. We ingest each
sortedness preset into both indexes and compare allocated leaf slots.

Occupancy is reported on two axes, which the gapped node layout makes
distinct: *logical* fill (live entries / logical leaf slots — the classic
``avg_leaf_fill``) and *physical* fill (live entries / allocated store
slots, which includes each gapped node's sentinel-padded gap slots). For
the classic layout the two coincide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.bench.experiments import common
from repro.bench.report import format_table
from repro.bench.runner import run_phases
from repro.obs import current_obs
from repro.workloads.spec import INSERT, value_for

PRESETS = [
    ("sorted", 0.0, 0.0),
    ("near-sorted", 0.10, 0.05),
    ("less-sorted", 1.00, 0.50),
    ("scrambled", None, None),
]


@dataclass
class SpaceResult:
    report: str
    #: preset -> {"sa_slots": ..., "base_slots": ..., "savings": fraction}
    data: Dict[str, Dict[str, float]]


def run(n: int = 20_000, buffer_fraction: float = 0.01, seed: int = 7) -> SpaceResult:
    n = common.scaled(n)
    data: Dict[str, Dict[str, float]] = {}
    rows: List[list] = []
    for label, k_fraction, l_fraction in PRESETS:
        keys = common.keys_for(n, k_fraction, l_fraction, seed=seed)
        ingest = [(INSERT, key, value_for(key)) for key in keys]
        base = run_phases(
            common.baseline_btree_factory(), [("ingest", ingest)], label="B+"
        )
        sa = run_phases(
            common.sa_btree_factory(common.buffer_config(n, buffer_fraction)),
            [("ingest", ingest)],
            label="SA",
            flush_after="ingest",
        )
        base_slots = base.index_stats["space_leaf_slots"]
        sa_slots = sa.index_stats["space_leaf_slots"]
        savings = 1.0 - sa_slots / base_slots
        data[label] = {
            "sa_slots": sa_slots,
            "base_slots": base_slots,
            "sa_fill": sa.index_stats["space_avg_leaf_fill"],
            "base_fill": base.index_stats["space_avg_leaf_fill"],
            "sa_logical_entries": sa.index_stats["space_logical_entries"],
            "sa_physical_slots": sa.index_stats["space_physical_slots"],
            "sa_gap_slots": sa.index_stats["space_gap_slots"],
            "sa_physical_fill": sa.index_stats["space_physical_fill"],
            "base_physical_fill": base.index_stats["space_physical_fill"],
            "savings": savings,
        }
        # Gauges for the BENCH_space.json artifact: space amplification of
        # the baseline relative to the SA tree (>1 = SA wins), per preset.
        # Not *_ops_per_s, so the perf gate ignores them; CI asserts the
        # near-sorted amplification directly.
        slug = label.replace("-", "_")
        obs = current_obs()
        obs.gauge(f"space_amp_{slug}_x", base_slots / sa_slots)
        obs.gauge(f"space_savings_{slug}_pct", savings * 100.0)
        rows.append(
            [
                label,
                int(base_slots),
                f"{data[label]['base_fill']:.0%}",
                int(sa_slots),
                f"{data[label]['sa_fill']:.0%}",
                f"{data[label]['sa_physical_fill']:.0%}",
                f"{savings:.1%}",
            ]
        )
    report = format_table(
        [
            "sortedness",
            "B+ leaf slots",
            "B+ fill",
            "SA leaf slots",
            "SA fill",
            "SA phys fill",
            "space saved",
        ],
        rows,
        title=f"Space utilization after ingesting {n} entries (paper: up to 48% saved)",
    )
    return SpaceResult(report=report, data=data)
