"""Fig. 14 — speedup grid across K, L, read ratio and buffer size.

Four K×L speedup matrices: (a) 10% reads, (b) 50% reads, (c) 90% reads at a
1% buffer, and (d) 50% reads at a 5% buffer. Paper shape: write-heavy mixes
with sorted data peak (9.2×); speedups decay with more reads and with both
K and L growing; a 5× larger buffer lifts the whole grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.bench.experiments import common
from repro.bench.report import format_matrix
from repro.bench.runner import RunResult, run_phases, speedup

K_GRID = [0.0, 0.02, 0.10, 0.20, 1.00]
L_GRID = [0.01, 0.05, 0.10, 0.50]

#: (panel label, read fraction, buffer fraction)
PANELS = [
    ("(a) 10%R buffer=1%", 0.10, 0.01),
    ("(b) 50%R buffer=1%", 0.50, 0.01),
    ("(c) 90%R buffer=1%", 0.90, 0.01),
    ("(d) 50%R buffer=5%", 0.50, 0.05),
]


@dataclass
class Fig14Result:
    report: str
    #: (panel, k, l) -> speedup
    data: Dict[Tuple[str, float, float], float]


def run(n: int = 8_000, seed: int = 7) -> Fig14Result:
    n = common.scaled(n)
    data: Dict[Tuple[str, float, float], float] = {}
    baseline_cache: Dict[Tuple[float, float, float], RunResult] = {}
    sections: List[str] = []

    for panel, read_fraction, buffer_fraction in PANELS:
        for l_fraction in L_GRID:
            for k_fraction in K_GRID:
                # K=0 or L=0 is fully sorted regardless of the other value.
                keys = common.keys_for(n, k_fraction, l_fraction, seed=seed)
                ops = common.mixed_ops(keys, read_fraction, seed=seed)
                cache_key = (k_fraction, l_fraction, read_fraction)
                base = baseline_cache.get(cache_key)
                if base is None:
                    base = run_phases(
                        common.baseline_btree_factory(), [("mixed", ops)], label="B+"
                    )
                    baseline_cache[cache_key] = base
                sa = run_phases(
                    common.sa_btree_factory(common.buffer_config(n, buffer_fraction)),
                    [("mixed", ops)],
                    label="SA",
                )
                data[(panel, k_fraction, l_fraction)] = speedup(base, sa)
        row_map = {f"L={l:.0%}": l for l in L_GRID}
        col_map = {f"K={k:.0%}": k for k in K_GRID}
        sections.append(
            format_matrix(
                list(row_map),
                list(col_map),
                lambda row, col, _p=panel: data[(_p, col_map[col], row_map[row])],
                title=f"Fig. 14 {panel} (n={n})",
                row_header="",
            )
        )
    return Fig14Result(report="\n".join(sections), data=data)
