"""Fig. 20 — SA Bε-tree vs Bε-tree, normalized speedups.

For every read:write ratio and sortedness degree (less / near / fully
sorted), both indexes' mixed-workload latency is normalized against the
Bε-tree ingesting *scrambled* data at that ratio. Paper shape: the Bε-tree
itself gains a little from sortedness (its internal buffers help), while the
SA Bε-tree amplifies it dramatically (up to 26× normalized at 10:90,
relative gains up to 7.8×).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.bench.experiments import common
from repro.bench.report import format_table
from repro.bench.runner import run_phases

DEGREES = [
    ("S", 0.0, 0.0),  # fully sorted
    ("N", 0.10, 0.05),  # near-sorted
    ("L", 1.00, 0.50),  # less sorted
]


@dataclass
class Fig20Result:
    report: str
    #: (read_fraction, degree, index) -> normalized speedup
    data: Dict[Tuple[float, str, str], float]


def run(
    n: int = 10_000,
    buffer_fraction: float = 0.01,
    ratios: List[float] = None,
    seed: int = 7,
) -> Fig20Result:
    n = common.scaled(n)
    ratios = ratios if ratios is not None else common.READ_WRITE_RATIOS
    data: Dict[Tuple[float, str, str], float] = {}
    rows: List[list] = []

    scrambled = common.keys_for(n, None, None, seed=seed)
    for ratio in ratios:
        ops_scrambled = common.mixed_ops(scrambled, ratio, seed=seed)
        reference = run_phases(
            common.baseline_betree_factory(),
            [("mixed", ops_scrambled)],
            label="Be scrambled",
        ).sim_ns
        row = [f"{int(ratio * 100)}:{int((1 - ratio) * 100)}"]
        for degree, k_fraction, l_fraction in DEGREES:
            keys = common.keys_for(n, k_fraction, l_fraction, seed=seed)
            ops = common.mixed_ops(keys, ratio, seed=seed)
            be = run_phases(
                common.baseline_betree_factory(), [("mixed", ops)], label="Be"
            )
            sa = run_phases(
                common.sa_betree_factory(common.buffer_config(n, buffer_fraction)),
                [("mixed", ops)],
                label="SA Be",
            )
            data[(ratio, degree, "betree")] = reference / be.sim_ns
            data[(ratio, degree, "sa_betree")] = reference / sa.sim_ns
            row.append(data[(ratio, degree, "sa_betree")])
            row.append(data[(ratio, degree, "betree")])
        rows.append(row)

    headers = ["read:write"]
    for degree, _, _ in DEGREES:
        headers.extend([f"SA Bε ({degree})", f"Bε ({degree})"])
    report = format_table(
        headers,
        rows,
        title=(
            f"Fig. 20 — normalized speedup vs Bε-tree on scrambled data "
            f"(n={n}; S=sorted, N=near, L=less)"
        ),
    )
    return Fig20Result(report=report, data=data)
