"""Fig. 15 — how the SWARE-buffer size affects inserts and lookups.

Ingest (K=10%, L=5%) data and then run lookups, for buffer sizes from 0.5%
to 5% of the data. Paper shape: ingestion speedup grows from ~5.7× to ~7×
with the buffer, while lookup latency degrades only mildly (~11% for a 10×
larger buffer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.bench.experiments import common
from repro.bench.report import format_table
from repro.bench.runner import phase_speedup, run_phases
from repro.workloads.spec import INSERT, value_for

BUFFER_FRACTIONS = [0.005, 0.01, 0.02, 0.05]


@dataclass
class Fig15Result:
    report: str
    #: buffer fraction -> {"insert_speedup": ..., "lookup_speedup": ...}
    data: Dict[float, Dict[str, float]]


def run(
    n: int = 20_000,
    k_fraction: float = 0.10,
    l_fraction: float = 0.05,
    n_lookups: int = 4000,
    seed: int = 7,
) -> Fig15Result:
    n = common.scaled(n)
    keys = common.keys_for(n, k_fraction, l_fraction, seed=seed)
    ingest = [(INSERT, key, value_for(key)) for key in keys]
    lookups = list(common.raw_spec(keys, n_lookups=n_lookups, seed=seed).lookup_operations())
    phases = [("ingest", ingest), ("lookups", lookups)]

    base = run_phases(common.baseline_btree_factory(), phases, label="B+")
    data: Dict[float, Dict[str, float]] = {}
    rows: List[tuple] = []
    for fraction in BUFFER_FRACTIONS:
        sa = run_phases(
            common.sa_btree_factory(common.buffer_config(n, fraction)),
            phases,
            label=f"SA buf={fraction:.1%}",
        )
        data[fraction] = {
            "insert_speedup": phase_speedup(base, sa, "ingest"),
            "lookup_speedup": phase_speedup(base, sa, "lookups"),
        }
        rows.append(
            (
                f"{fraction:.1%}",
                data[fraction]["insert_speedup"],
                data[fraction]["lookup_speedup"],
            )
        )
    report = format_table(
        ["buffer size (% of data)", "insert speedup", "lookup speedup"],
        rows,
        title=f"Fig. 15 — buffer size vs performance (n={n}, K={k_fraction:.0%}, L={l_fraction:.0%})",
    )
    return Fig15Result(report=report, data=data)
