"""Batch-operation throughput: per-op API loop vs first-class batch calls.

Not a paper figure — this measures the repo's own batch fast path
(``put_many``/``get_many``/``insert_many``) against the per-op loop on the
same workload, in *wall-clock* time. Batching amortizes interpreter
dispatch, hashing, and tree descents — not simulated I/O — so unlike the
figure experiments the interesting number here is real time.

Both modes call the index API directly (``index.insert(k, v)`` in a loop
vs ``index.insert_many(chunk)`` per chunk): no operation-stream dispatch
layer on either side, so the ratio isolates what the batch entry points
buy. Stream replay with batching is covered separately by
``run_phases(..., batch_size=N)``.

Measured configurations:

* ``btree`` — the raw in-memory B+-tree (``insert_many``/``get_many``
  against a per-key loop); this is the pair the CI perf gate tracks.
* ``sa_btree`` — the SWARE index over that B+-tree
  (``put_many``/``get_many``), where batching also amortizes per-key
  Bloom/zonemap upkeep in the buffer.

Both run insert-all then lookup-all phases. Throughputs are published as
``batch_ops_*_ops_per_s`` gauges so they flow into the
``BENCH_batch_ops.json`` telemetry artifact, where
:mod:`repro.bench.perfgate` compares them against a committed baseline.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List

from repro.bench.experiments import common
from repro.bench.report import format_table
from repro.bench.runner import PhaseResult, RunResult
from repro.core.sware import SortednessAwareIndex
from repro.obs import current_obs
from repro.storage.costmodel import CostModel, Meter
from repro.workloads.spec import value_for


@dataclass
class BatchOpsResult:
    report: str
    #: gauge name -> operations per second (wall clock)
    throughputs: Dict[str, float]
    #: config -> batched/per-op speedup (total over both phases)
    speedups: Dict[str, float]
    runs: List[RunResult] = field(default_factory=list)


def _ops_per_s(n_ops: int, wall_ns: float) -> float:
    return n_ops / wall_ns * 1e9 if wall_ns else 0.0


def _measure(factory, items, lookup_keys, batch, label, model) -> RunResult:
    """One full run (insert phase then lookup phase) at the API level."""
    meter = Meter()
    index = factory(meter)
    batched = batch is not None
    result = RunResult(label=label)
    clock = time.perf_counter_ns

    before = meter.nanos(model)
    start = clock()
    if batched:
        put_many = getattr(index, "put_many", None) or index.insert_many
        for i in range(0, len(items), batch):
            put_many(items[i : i + batch])
    else:
        insert = index.insert
        for key, value in items:
            insert(key, value)
    wall = clock() - start
    sim = meter.nanos(model) - before
    result.phases.append(
        PhaseResult(name="insert", n_ops=len(items), sim_ns=sim, wall_ns=wall)
    )

    before = meter.nanos(model)
    start = clock()
    if batched:
        get_many = index.get_many
        for i in range(0, len(lookup_keys), batch):
            get_many(lookup_keys[i : i + batch])
    else:
        get = index.get
        for key in lookup_keys:
            get(key)
    wall = clock() - start
    sim = meter.nanos(model) - before
    result.phases.append(
        PhaseResult(name="lookup", n_ops=len(lookup_keys), sim_ns=sim, wall_ns=wall)
    )

    result.bucket_sim_ns = meter.bucket_nanos(model)
    result.counts = meter.snapshot()
    if isinstance(index, SortednessAwareIndex):
        result.sware_stats = index.stats.snapshot()
    return result


def run(
    n: int = 100_000,
    batch: int = 8192,
    k_fraction: float = 0.10,
    l_fraction: float = 0.05,
    buffer_fraction: float = 0.01,
    repeats: int = 3,
    seed: int = 7,
) -> BatchOpsResult:
    n = common.scaled(n)
    keys = common.keys_for(n, k_fraction, l_fraction, seed=seed)
    items = [(key, value_for(key)) for key in keys]
    lookup_keys = list(keys)
    random.Random(seed + 101).shuffle(lookup_keys)
    model = CostModel()

    configs = [
        ("btree", common.baseline_btree_factory()),
        ("sa_btree", common.sa_btree_factory(common.buffer_config(n, buffer_fraction))),
    ]

    obs = current_obs()
    throughputs: Dict[str, float] = {}
    speedups: Dict[str, float] = {}
    runs: List[RunResult] = []
    rows = []
    # Per-phase best of ``repeats`` identical runs: throughput is a
    # property of the code, the slow samples measure whatever else the
    # machine was doing (this box may have a single core).
    best_walls: Dict[str, Dict[str, float]] = {}
    for name, factory in configs:
        for mode, batch_size in (("perop", None), ("batched", batch)):
            label = f"{name}_{mode}"
            samples = [
                _measure(factory, items, lookup_keys, batch_size, label, model)
                for _ in range(max(1, repeats))
            ]
            result = min(samples, key=lambda r: r.wall_ns)
            runs.append(result)
            obs.record_run(result.to_dict())
            best_walls[label] = {
                phase.name: min(s.phase(phase.name).wall_ns for s in samples)
                for phase in result.phases
            }
            for phase in result.phases:
                wall = best_walls[label][phase.name]
                gauge = f"batch_ops_{label}_{phase.name}_ops_per_s"
                throughputs[gauge] = _ops_per_s(phase.n_ops, wall)
                rows.append(
                    [
                        label,
                        phase.name,
                        f"{phase.n_ops:,}",
                        f"{wall / 1e6:.1f}",
                        f"{throughputs[gauge] / 1e3:.0f}",
                    ]
                )
            gauge = f"batch_ops_{label}_total_ops_per_s"
            throughputs[gauge] = _ops_per_s(
                result.n_ops, sum(best_walls[label].values())
            )
        perop_wall = sum(best_walls[f"{name}_perop"].values())
        batched_wall = sum(best_walls[f"{name}_batched"].values())
        speedups[name] = perop_wall / batched_wall if batched_wall else float("inf")

    for gauge, value in throughputs.items():
        obs.gauge(gauge, value)
    for name, value in speedups.items():
        obs.gauge(f"batch_ops_{name}_speedup_x", value)

    table = format_table(["config", "phase", "ops", "wall ms", "kops/s"], rows)
    lines = [
        f"Batch-operation throughput (n={n:,}, batch={batch}, "
        f"K={k_fraction:.0%}, L={l_fraction:.0%})",
        "",
        table,
        "",
    ]
    for name, value in speedups.items():
        lines.append(f"{name}: batched is {value:.2f}x the per-op loop")
    report = "\n".join(lines)
    return BatchOpsResult(
        report=report, throughputs=throughputs, speedups=speedups, runs=runs
    )
