"""Table I — leaf splits vs split ratio, normalized to 50:50.

The paper varies the split ratio of the *underlying tree index* while
ingesting data of varied sortedness and counts leaf splits. The mechanics:
near-sorted ingestion is right-deep, so a high split ratio (e.g. 90:10)
leaves the freshly created right node almost empty and it absorbs many
future in-order inserts before splitting again (fewer splits, ~1/ratio);
scrambled ingestion hits both halves uniformly, so a lopsided split leaves
the left node nearly full and it re-splits quickly (more splits). Paper
shape: 90:10 cuts near-sorted splits by ~22% but costs ~1.8× for scrambled
data; 80:20 is the overall sweet spot (and the SA default).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.bench.experiments import common
from repro.bench.report import format_table
from repro.bench.runner import run_phases
from repro.btree.btree import BPlusTree, BPlusTreeConfig
from repro.workloads.spec import INSERT, value_for

SPLIT_RATIOS = [0.5, 0.6, 0.7, 0.8, 0.9]
PRESETS = [
    ("K=2%, L=1%", 0.02, 0.01),
    ("K=20%, L=10%", 0.20, 0.10),
    ("K=100%, L=50%", 1.00, 0.50),
]


@dataclass
class Table1Result:
    report: str
    #: (split_ratio, preset label) -> normalized leaf splits
    data: Dict[Tuple[float, str], float]
    raw_splits: Dict[Tuple[float, str], int]


def _tree_factory(split_factor: float):
    def factory(meter):
        return BPlusTree(
            BPlusTreeConfig(
                leaf_capacity=common.LEAF_CAPACITY,
                internal_capacity=common.INTERNAL_CAPACITY,
                split_factor=split_factor,
                tail_leaf_optimization=True,
            ),
            meter=meter,
        )

    return factory


def run(n: int = 20_000, seed: int = 7) -> Table1Result:
    n = common.scaled(n)
    raw: Dict[Tuple[float, str], int] = {}
    for label, k_fraction, l_fraction in PRESETS:
        keys = common.keys_for(n, k_fraction, l_fraction, seed=seed)
        ingest = [(INSERT, key, value_for(key)) for key in keys]
        for ratio in SPLIT_RATIOS:
            result = run_phases(
                _tree_factory(ratio), [("ingest", ingest)], label=f"split={ratio}"
            )
            raw[(ratio, label)] = int(result.index_stats.get("leaf_splits", 0))

    data: Dict[Tuple[float, str], float] = {}
    rows: List[list] = []
    for ratio in SPLIT_RATIOS:
        row = [f"{int(ratio * 100)}:{int(100 - ratio * 100)}"]
        for label, _, _ in PRESETS:
            reference = raw[(0.5, label)] or 1
            normalized = raw[(ratio, label)] / reference
            data[(ratio, label)] = normalized
            row.append(normalized)
        rows.append(row)
    report = format_table(
        ["split ratio"] + [label for label, _, _ in PRESETS],
        rows,
        title=f"Table I — normalized leaf splits (n={n}; 1.00 = textbook 50:50)",
    )
    return Table1Result(report=report, data=data, raw_splits=raw)
