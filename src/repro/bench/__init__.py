"""Benchmark harness: runner, reports, and the per-figure experiments."""

from repro.bench.report import (
    ascii_scatter,
    format_breakdown,
    format_matrix,
    format_table,
    results_dir,
    save_report,
)
from repro.bench.runner import (
    PhaseResult,
    RunResult,
    execute_operations,
    phase_speedup,
    run_phases,
    speedup,
)

__all__ = [
    "ascii_scatter",
    "format_breakdown",
    "format_matrix",
    "format_table",
    "results_dir",
    "save_report",
    "PhaseResult",
    "RunResult",
    "execute_operations",
    "phase_speedup",
    "run_phases",
    "speedup",
]
