"""repro — SWARE: sortedness-aware indexing.

A from-scratch Python reproduction of *"Indexing for Near-Sorted Data"*
(Raman, Sarkar, Olma, Athanassoulis — ICDE 2023).

Quickstart::

    from repro import make_sa_btree, SWAREConfig
    from repro.sortedness import generate_kl_keys, measure_sortedness

    index = make_sa_btree(SWAREConfig(buffer_capacity=1024))
    for key in generate_kl_keys(100_000, k_fraction=0.10, l_fraction=0.05):
        index.insert(key, key * 2)
    index.flush_all()
    assert index.get(42) == 84

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.betree import BeTree, BeTreeConfig
from repro.btree import BPlusTree, BPlusTreeConfig
from repro.core import (
    ConcurrentSortednessAwareIndex,
    Recommendation,
    SWAREBuffer,
    SWAREConfig,
    SWAREStats,
    SortednessAwareIndex,
    TreeBackend,
    make_baseline_betree,
    make_baseline_btree,
    make_sa_betree,
    make_sa_btree,
    recommend,
    recommend_for_sample,
)
from repro.errors import (
    BulkLoadError,
    ConfigError,
    InvariantViolation,
    KLSortCapacityError,
    PinViolationError,
    ReproError,
    WALError,
)
from repro.lsm import LSMConfig, LSMTree
from repro.storage import (
    BufferPool,
    CheckpointStore,
    CostModel,
    Meter,
    RecoveryReport,
    WriteAheadLog,
    replay_wal,
)

__version__ = "1.0.0"

__all__ = [
    "BPlusTree",
    "BPlusTreeConfig",
    "BeTree",
    "BeTreeConfig",
    "SWAREBuffer",
    "SWAREConfig",
    "SWAREStats",
    "SortednessAwareIndex",
    "ConcurrentSortednessAwareIndex",
    "TreeBackend",
    "make_baseline_betree",
    "make_baseline_btree",
    "make_sa_betree",
    "make_sa_btree",
    "Recommendation",
    "recommend",
    "recommend_for_sample",
    "BulkLoadError",
    "ConfigError",
    "InvariantViolation",
    "KLSortCapacityError",
    "PinViolationError",
    "ReproError",
    "WALError",
    "LSMConfig",
    "LSMTree",
    "BufferPool",
    "CheckpointStore",
    "CostModel",
    "Meter",
    "RecoveryReport",
    "WriteAheadLog",
    "replay_wal",
    "__version__",
]
