"""Range-partitioned sharding over :class:`SortednessAwareIndex`.

:class:`ShardedSortednessAwareIndex` owns N shards under one root
directory. Each shard is a full single-node durability stack — SWARE
index + its own write-ahead log + its own epoch-checkpoint store::

    root/
      MANIFEST.json            # shard map: [lower_bound, dir, config] rows
      shard-0000/
        wal.log
        checkpoint.db
      shard-0001/
        ...

**Routing.** The shard map is a sorted list of lower bounds; shard *i*
owns keys in ``[lower_i, lower_{i+1})`` (the first shard's lower bound is
-inf, the last shard extends to +inf). Point ops bisect the map; range
queries scatter to every shard whose assigned range overlaps, *clamping*
each per-shard scan to the shard's assigned range. The clamp is the
scatter-gather merge rule: assigned ranges are disjoint, so concatenating
the per-shard results in shard order yields a globally sorted result, and
buffered-version-wins semantics hold because each per-shard scan is the
single-node SWARE range path. Stale out-of-range entries (left behind by
a shard split that crashed before cleanup) are unreachable by
construction — routing never sends a moved key back to its old shard and
the clamp keeps it out of scans.

Shard *configurations may diverge* (the Extend-dist direction: replicas
tuned per their local workload): every shard row carries its own
``SWAREConfig``, inherited on split but overridable per shard.

**Splits.** When a shard's live size crosses ``split_threshold``, it
splits at its median live key. Ordering makes the split crash-safe at
every step (the seeded crash harness in ``tests/test_sharded_crash.py``
walks the I/O boundaries):

1. flush the donor so its live set is entirely in the tree;
2. build the new shard (dir, WAL, index), move the upper half in through
   its WAL-logged write path, sync + checkpoint it;
3. commit the new manifest atomically (tmp + ``os.replace`` + dir fsync)
   — the new shard now owns its range;
4. only then delete the moved keys from the donor and checkpoint it.

A crash before (3) leaves the old manifest: the donor still owns and
holds everything. A crash after (3) leaves the moved keys owned by the
new shard; the donor's stale copies are unreachable (see the clamp).

**Group commit.** Mutations mark their shard dirty; :meth:`commit` fsyncs
every dirty WAL (a no-op under ``fsync_policy="always"``, where appends
sync inline). The server acks writes only after the covering commit — the
ack-after-fsync invariant the crash harness pins.
"""

from __future__ import annotations

import json
import os
from bisect import bisect_right
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import SWAREConfig
from repro.core.sware import SortednessAwareIndex
from repro.errors import ReproError
from repro.obs import NULL_OBS, Observability, current_obs
from repro.storage.pagefile import CheckpointStore, RecoveryReport
from repro.storage.wal import FSYNC_ALWAYS, FSYNC_POLICIES, WriteAheadLog, fsync_file

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_VERSION = 1
WAL_NAME = "wal.log"
CHECKPOINT_NAME = "checkpoint.db"


class ShardedIndexError(ReproError):
    """Structural problems with a sharded root (bad manifest, bad config)."""


@dataclass(frozen=True)
class ShardedConfig:
    """Layout and policy knobs for a sharded index.

    ``initial_key_range`` seeds the boundaries of the initial shard map
    (evenly spaced); routing still covers the full key space because the
    edge shards extend to ±inf. ``split_threshold`` is the live-entry
    count at which a shard splits (0 disables splitting).
    """

    n_shards: int = 4
    split_threshold: int = 50_000
    fsync_policy: str = FSYNC_ALWAYS
    initial_key_range: Tuple[int, int] = (0, 1 << 20)
    index_config: SWAREConfig = field(default_factory=SWAREConfig)

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ShardedIndexError("n_shards must be >= 1")
        if self.split_threshold < 0:
            raise ShardedIndexError("split_threshold must be >= 0")
        if self.fsync_policy not in FSYNC_POLICIES:
            raise ShardedIndexError(f"unknown fsync policy {self.fsync_policy!r}")
        lo, hi = self.initial_key_range
        if lo >= hi:
            raise ShardedIndexError("initial_key_range must be (lo, hi) with lo < hi")


class _Shard:
    """One shard: its id, assigned lower bound, and durability stack."""

    __slots__ = ("shard_id", "lower", "dir", "index", "wal", "store", "config")

    def __init__(self, shard_id, lower, directory, index, wal, store, config):
        self.shard_id = shard_id
        self.lower = lower  # None = -inf (the left edge shard)
        self.dir = directory
        self.index = index
        self.wal = wal
        self.store = store
        self.config = config


def _shard_dir_name(shard_id: int) -> str:
    return f"shard-{shard_id:04d}"


def _fsync_dir(path: str) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _clamp_items(
    items: List[Tuple[int, object]], lower: Optional[int], upper: Optional[int]
) -> List[Tuple[int, object]]:
    """Keep only the entries inside the half-open assigned range [lower, upper)."""
    return [
        (key, value)
        for key, value in items
        if (lower is None or key >= lower) and (upper is None or key < upper)
    ]


class ShardedSortednessAwareIndex:
    """See module docstring."""

    def __init__(
        self,
        root: str,
        config: Optional[ShardedConfig] = None,
        shard_configs: Optional[Sequence[SWAREConfig]] = None,
        backend_factory: Optional[Callable] = None,
        obs: Optional[Observability] = None,
        opener: Callable = open,
        replace: Optional[Callable] = None,
        _recovered_shards: Optional[List[_Shard]] = None,
        _next_shard_id: Optional[int] = None,
    ):
        self.root = root
        self.config = config or ShardedConfig()
        self.obs = obs if obs is not None else current_obs()
        # I/O indirection for the crash-injection harness (FaultyEnv).
        self._opener = opener
        self._replace = replace if replace is not None else os.replace
        if backend_factory is None:
            from repro.btree.btree import BPlusTree

            backend_factory = BPlusTree
        self._backend_factory = backend_factory
        self._dirty: set = set()  # shard ids with unsynced WAL appends
        self.splits = 0
        self.scatter_queries = 0
        if _recovered_shards is not None:
            self._shards = _recovered_shards
            self._next_shard_id = (
                _next_shard_id
                if _next_shard_id is not None
                else max(s.shard_id for s in _recovered_shards) + 1
            )
        else:
            os.makedirs(root, exist_ok=True)
            if os.path.exists(os.path.join(root, MANIFEST_NAME)):
                raise ShardedIndexError(
                    f"{root} already holds a sharded index; use recover_sharded()"
                )
            self._shards = self._create_initial_shards(shard_configs)
            self._next_shard_id = len(self._shards)
            self._write_manifest()
        if self.obs is not NULL_OBS:
            self.obs.register_collector("sharded", self._obs_snapshot)

    # ------------------------------------------------------------------
    # bootstrap / manifest
    # ------------------------------------------------------------------
    def _create_initial_shards(
        self, shard_configs: Optional[Sequence[SWAREConfig]]
    ) -> List[_Shard]:
        n = self.config.n_shards
        if shard_configs is not None and len(shard_configs) != n:
            raise ShardedIndexError(
                f"got {len(shard_configs)} shard configs for {n} shards"
            )
        lo, hi = self.config.initial_key_range
        span = hi - lo
        shards: List[_Shard] = []
        for i in range(n):
            # The left edge shard owns -inf; interior bounds split the
            # configured range evenly.
            lower = None if i == 0 else lo + (span * i) // n
            cfg = (
                shard_configs[i]
                if shard_configs is not None
                else self.config.index_config
            )
            shards.append(self._make_shard(i, lower, cfg))
        return shards

    def _make_shard(self, shard_id: int, lower: Optional[int], cfg: SWAREConfig) -> _Shard:
        directory = os.path.join(self.root, _shard_dir_name(shard_id))
        os.makedirs(directory, exist_ok=True)
        wal = WriteAheadLog(
            os.path.join(directory, WAL_NAME),
            fsync_policy=self.config.fsync_policy,
            opener=self._opener,
            obs=NULL_OBS,  # per-shard WALs would collide on the collector name
        )
        store = CheckpointStore(
            os.path.join(directory, CHECKPOINT_NAME),
            opener=self._opener,
            replace=self._replace,
        )
        index = SortednessAwareIndex(
            self._backend_factory(), config=cfg, wal=wal, obs=NULL_OBS
        )
        return _Shard(shard_id, lower, directory, index, wal, store, cfg)

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, MANIFEST_NAME)

    def _write_manifest(self) -> None:
        doc = {
            "version": MANIFEST_VERSION,
            "next_shard_id": self._next_shard_id,
            "fsync_policy": self.config.fsync_policy,
            "split_threshold": self.config.split_threshold,
            "shards": [
                {
                    "id": shard.shard_id,
                    "lower": shard.lower,
                    "dir": _shard_dir_name(shard.shard_id),
                    "config": asdict(shard.config),
                }
                for shard in self._shards
            ],
        }
        tmp = self.manifest_path + ".tmp"
        with self._opener(tmp, "w") as fobj:
            fobj.write(json.dumps(doc, indent=2, sort_keys=True))
            fsync_file(fobj)
        self._replace(tmp, self.manifest_path)
        _fsync_dir(self.root)

    def _obs_snapshot(self) -> dict:
        return {
            "n_shards": float(len(self._shards)),
            "splits": float(self.splits),
            "scatter_queries": float(self.scatter_queries),
            "dirty_shards": float(len(self._dirty)),
        }

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _route(self, key: int) -> _Shard:
        # self._shards is sorted by lower bound with shards[0].lower = -inf:
        # the owner is the right-most shard whose lower bound is <= key.
        bounds = [s.lower for s in self._shards[1:]]
        return self._shards[bisect_right(bounds, key)]

    def _assigned_range(self, position: int) -> Tuple[Optional[int], Optional[int]]:
        """(lower, upper) of the shard at ``position``; None = unbounded."""
        lower = self._shards[position].lower
        upper = (
            self._shards[position + 1].lower
            if position + 1 < len(self._shards)
            else None
        )
        return lower, upper

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def shard_map(self) -> List[Tuple[Optional[int], int]]:
        """The routing table: (lower_bound, shard_id) in shard order."""
        return [(s.lower, s.shard_id) for s in self._shards]

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def put(self, key: int, value: object) -> None:
        shard = self._route(key)
        shard.index.insert(key, value)
        self._dirty.add(shard.shard_id)
        self._maybe_split(shard)

    def put_many(self, items: Sequence[Tuple[int, object]]) -> None:
        """Route a batch by shard, preserving the arrival order per shard."""
        if not items:
            return
        per_shard: Dict[int, List[Tuple[int, object]]] = {}
        shards_by_id: Dict[int, _Shard] = {}
        for key, value in items:
            shard = self._route(key)
            per_shard.setdefault(shard.shard_id, []).append((key, value))
            shards_by_id[shard.shard_id] = shard
        for shard_id, chunk in per_shard.items():
            shard = shards_by_id[shard_id]
            shard.index.put_many(chunk)
            self._dirty.add(shard_id)
        for shard_id in list(per_shard):
            self._maybe_split(shards_by_id[shard_id])

    def delete(self, key: int) -> None:
        shard = self._route(key)
        shard.index.delete(key)
        self._dirty.add(shard.shard_id)

    def commit(self) -> int:
        """fsync every dirty shard WAL; returns the number synced.

        The durability point for acknowledgements under
        ``fsync_policy="batch"``: a write is ack-safe only after the commit
        that covers it. Under ``"always"`` appends sync inline, so this
        degenerates to clearing the dirty set.
        """
        dirty = self._dirty
        if not dirty:
            return 0
        synced = 0
        if self.config.fsync_policy != FSYNC_ALWAYS:
            by_id = {s.shard_id: s for s in self._shards}
            for shard_id in sorted(dirty):
                shard = by_id.get(shard_id)
                if shard is not None:
                    shard.wal.sync()
                    synced += 1
        dirty.clear()
        return synced

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, key: int) -> Optional[object]:
        return self._route(key).index.get(key)

    def get_many(self, keys: Sequence[int]) -> List[Optional[object]]:
        """Scatter point lookups by shard, gather in input order."""
        if not keys:
            return []
        per_shard: Dict[int, Tuple[_Shard, List[int], List[int]]] = {}
        for position, key in enumerate(keys):
            shard = self._route(key)
            entry = per_shard.get(shard.shard_id)
            if entry is None:
                entry = (shard, [], [])
                per_shard[shard.shard_id] = entry
            entry[1].append(position)
            entry[2].append(key)
        results: List[Optional[object]] = [None] * len(keys)
        for shard, positions, shard_keys in per_shard.values():
            for position, value in zip(positions, shard.index.get_many(shard_keys)):
                results[position] = value
        return results

    def range_query(self, lo: int, hi: int) -> List[Tuple[int, object]]:
        """Scatter-gather range scan (see module docstring for merge rules)."""
        if lo > hi:
            return []
        self.scatter_queries += 1
        out: List[Tuple[int, object]] = []
        with self.obs.span("sharded.range", lo=lo, hi=hi) as span:
            hit_shards = 0
            for position, shard in enumerate(self._shards):
                lower, upper = self._assigned_range(position)
                # Clamp to the assigned range: [max(lo, lower), min(hi, upper-1)].
                shard_lo = lo if lower is None else max(lo, lower)
                shard_hi = hi if upper is None else min(hi, upper - 1)
                if shard_lo > shard_hi:
                    continue
                hit_shards += 1
                with self.obs.span("sharded.shard_range", shard=shard.shard_id):
                    # Disjoint assigned ranges + in-shard buffered-version-
                    # wins => plain concatenation is the correct merge.
                    out.extend(shard.index.range_query(shard_lo, shard_hi))
            span.set(shards=hit_shards, results=len(out))
        return out

    def range_many(
        self, ranges: Sequence[Tuple[int, int]]
    ) -> List[List[Tuple[int, object]]]:
        return [self.range_query(lo, hi) for lo, hi in ranges]

    def items(self) -> List[Tuple[int, object]]:
        out: List[Tuple[int, object]] = []
        for position, shard in enumerate(self._shards):
            # Clamp each shard's view to its assigned range. A crash between
            # the split's manifest commit and the donor cleanup leaves the
            # donor holding stale copies of the moved keys after recovery;
            # routing and range_query already exclude them, and the full
            # enumeration must too or those keys are reported twice.
            lower, upper = self._assigned_range(position)
            out.extend(_clamp_items(shard.index.items(), lower, upper))
        return out

    # ------------------------------------------------------------------
    # splitting
    # ------------------------------------------------------------------
    def _shard_size(self, shard: _Shard) -> int:
        backend = shard.index.backend
        tree_entries = getattr(backend, "n_entries", None)
        if tree_entries is None:
            # Backends without an entry counter: count the merged live view
            # (already includes the buffer).
            return len(shard.index.items())
        return tree_entries + len(shard.index.buffer)

    def _maybe_split(self, shard: _Shard) -> None:
        threshold = self.config.split_threshold
        if threshold and self._shard_size(shard) >= threshold:
            self._split_shard(shard)

    def _split_shard(self, shard: _Shard) -> None:
        """Split ``shard`` at its median live key (crash-safe; see module
        docstring for the ordering argument)."""
        shard.index.flush_all()
        # Restrict to the shard's assigned range: stale out-of-range copies
        # (left by a crash-interrupted earlier split, see items()) must not
        # pull the median past the shard's upper bound — a boundary above it
        # would break the shard map's ordering invariant.
        position = next(
            i for i, s in enumerate(self._shards) if s.shard_id == shard.shard_id
        )
        lower, upper = self._assigned_range(position)
        live = _clamp_items(shard.index.items(), lower, upper)
        if len(live) < 2:
            return  # a one-entry shard cannot split; wait for more data
        median = live[len(live) // 2][0]
        if median == live[0][0]:
            return  # all live keys equal; no boundary to cut
        moved = [(key, value) for key, value in live if key >= median]
        with self.obs.span(
            "sharded.split", shard=shard.shard_id, at=median, moved=len(moved)
        ):
            new_shard = self._make_shard(self._next_shard_id, median, shard.config)
            self._next_shard_id += 1
            new_shard.index.put_many(moved)
            new_shard.wal.sync()
            new_shard.index.checkpoint(new_shard.store)
            # Commit the route change before touching the donor: from here
            # on the moved keys are owned (and durably held) by new_shard.
            self._shards.insert(position + 1, new_shard)
            self._write_manifest()
            self.splits += 1
            # Donor cleanup: the moved keys are unreachable already (routing
            # and the range clamp both exclude them); deleting them reclaims
            # space, and the checkpoint + WAL reset make the cleanup durable.
            for key, _value in moved:
                shard.index.delete(key)
            shard.index.checkpoint(shard.store)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def checkpoint_all(self) -> Dict[int, int]:
        """Checkpoint every shard (drain + save + WAL reset); pages per shard."""
        pages: Dict[int, int] = {}
        for shard in self._shards:
            pages[shard.shard_id] = shard.index.checkpoint(shard.store)
        self._dirty.clear()
        return pages

    def close(self) -> None:
        for shard in self._shards:
            shard.wal.close()

    def __enter__(self) -> "ShardedSortednessAwareIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def describe(self) -> dict:
        return {
            "root": self.root,
            "n_shards": len(self._shards),
            "splits": self.splits,
            "scatter_queries": self.scatter_queries,
            "fsync_policy": self.config.fsync_policy,
            "shards": [
                {
                    "id": shard.shard_id,
                    "lower": shard.lower,
                    "entries": self._shard_size(shard),
                    "buffer_fill": len(shard.index.buffer)
                    / shard.index.buffer.capacity,
                    "wal_records": shard.wal.records,
                }
                for shard in self._shards
            ],
        }


# ----------------------------------------------------------------------
# recovery
# ----------------------------------------------------------------------
def read_manifest(root: str) -> dict:
    path = os.path.join(root, MANIFEST_NAME)
    if not os.path.exists(path):
        raise ShardedIndexError(f"no {MANIFEST_NAME} under {root}")
    try:
        with open(path) as fobj:
            doc = json.load(fobj)
    except (OSError, ValueError) as exc:
        raise ShardedIndexError(f"unreadable manifest: {exc!r}") from exc
    if not isinstance(doc, dict) or doc.get("version") != MANIFEST_VERSION:
        raise ShardedIndexError(f"unsupported manifest {doc.get('version')!r}")
    if not isinstance(doc.get("shards"), list) or not doc["shards"]:
        raise ShardedIndexError("manifest lists no shards")
    return doc


def recover_sharded(
    root: str,
    backend_factory: Optional[Callable] = None,
    obs: Optional[Observability] = None,
) -> Tuple[ShardedSortednessAwareIndex, Dict[int, RecoveryReport]]:
    """Rebuild a sharded index from its root directory after a crash.

    Per shard: stale checkpoint temp cleanup, checkpoint load, WAL-tail
    replay (the single-node :meth:`CheckpointStore.recover` contract),
    then the WAL is reopened (truncating any torn tail) and re-attached so
    the shard resumes durable operation. Returns the index plus a
    per-shard-id :class:`RecoveryReport` map.
    """
    manifest = read_manifest(root)
    if backend_factory is None:
        from repro.btree.btree import BPlusTree

        backend_factory = BPlusTree
    rows = sorted(
        manifest["shards"],
        key=lambda row: (row["lower"] is not None, row["lower"] or 0),
    )
    if rows[0]["lower"] is not None:
        raise ShardedIndexError("manifest has no -inf edge shard")
    shards: List[_Shard] = []
    reports: Dict[int, RecoveryReport] = {}
    for row in rows:
        directory = os.path.join(root, row["dir"])
        try:
            cfg = SWAREConfig(**row["config"])
        except TypeError as exc:
            raise ShardedIndexError(
                f"shard {row['id']} config malformed: {exc}"
            ) from exc
        store = CheckpointStore(os.path.join(directory, CHECKPOINT_NAME))
        wal_path = os.path.join(directory, WAL_NAME)
        index, report = store.recover(
            wal_path=wal_path, config=cfg, backend_factory=backend_factory
        )
        wal = WriteAheadLog(
            wal_path,
            fsync_policy=manifest.get("fsync_policy", FSYNC_ALWAYS),
            obs=NULL_OBS,
        )
        index.wal = wal
        shards.append(_Shard(row["id"], row["lower"], directory, index, wal, store, cfg))
        reports[row["id"]] = report
    config = ShardedConfig(
        n_shards=len(shards),
        split_threshold=manifest.get("split_threshold", 0),
        fsync_policy=manifest.get("fsync_policy", FSYNC_ALWAYS),
    )
    sharded = ShardedSortednessAwareIndex(
        root,
        config=config,
        backend_factory=backend_factory,
        obs=obs,
        _recovered_shards=shards,
        _next_shard_id=manifest.get("next_shard_id"),
    )
    return sharded, reports
