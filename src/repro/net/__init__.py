"""``repro.net`` — the sharded network service layer.

The "millions of users" scenario made concrete: a range-partitioned
:class:`ShardedSortednessAwareIndex` (per-shard SWARE index + WAL + epoch
checkpoints under one root directory, zonemap-informed routing, shard
splits under write pressure) fronted by an asyncio server speaking a
length-prefixed binary protocol with request pipelining, group-commit
write acknowledgement, and scatter-gather range queries.

Modules
-------
``protocol``
    Frame format and opcode encode/decode (shared by server and client).
``sharded``
    The range-partitioned index, its on-disk layout and manifest, and
    sharded recovery.
``server``
    The asyncio front door (:class:`IndexServer`) with per-connection
    pipelining and a group-commit acknowledgement loop.
``client``
    Asyncio client library (:class:`IndexClient`) plus a blocking
    convenience wrapper (:class:`SyncIndexClient`).
``loadgen``
    Closed/open-loop load generator behind ``repro bench-serve``.
"""

from repro.net.client import IndexClient, SyncIndexClient
from repro.net.protocol import (
    OP_DEL,
    OP_GET,
    OP_GET_MANY,
    OP_PUT,
    OP_PUT_MANY,
    OP_RANGE,
    OP_STATS,
    ProtocolError,
)
from repro.net.server import IndexServer
from repro.net.sharded import (
    ShardedConfig,
    ShardedIndexError,
    ShardedSortednessAwareIndex,
    recover_sharded,
)

__all__ = [
    "IndexClient",
    "IndexServer",
    "ProtocolError",
    "ShardedConfig",
    "ShardedIndexError",
    "ShardedSortednessAwareIndex",
    "SyncIndexClient",
    "recover_sharded",
    "OP_PUT",
    "OP_GET",
    "OP_DEL",
    "OP_RANGE",
    "OP_PUT_MANY",
    "OP_GET_MANY",
    "OP_STATS",
]
