"""Client library for the sharded index server.

:class:`IndexClient` is the asyncio-native client. It pipelines freely: a
background receive loop matches responses to in-flight requests by
``request_id``, so many calls may be awaiting concurrently on one
connection (``asyncio.gather`` over a batch of puts is the intended
usage — the server's group commit will fold their fsyncs together).

:class:`SyncIndexClient` wraps it for blocking callers (the CLI, tests)
by driving a private event loop per call.

Server-side failures surface as :class:`ServerError`; transport-level
corruption as :class:`~repro.net.protocol.ProtocolError`; a connection
that dies with requests in flight fails those requests with
:class:`ConnectionError`.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.net import protocol as p


class ServerError(ReproError):
    """The server processed the frame but the operation failed."""


class IndexClient:
    """See module docstring. Construct via :meth:`connect`."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        self._inflight: Dict[int, asyncio.Future] = {}
        self._recv_task = asyncio.create_task(self._recv_loop())
        self._closed = False

    @classmethod
    async def connect(cls, host: str = "127.0.0.1", port: int = 0) -> "IndexClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    async def _recv_loop(self) -> None:
        error: Optional[BaseException] = None
        try:
            while True:
                frame = await p.read_frame(self._reader)
                if frame is None:
                    error = ConnectionError("server closed the connection")
                    break
                opcode, request_id, payload = frame
                future = self._inflight.pop(request_id, None)
                if future is None or future.done():
                    continue  # response to a caller that gave up
                if opcode == p.RESP_OK:
                    future.set_result(payload)
                elif opcode == p.RESP_ERR:
                    future.set_exception(ServerError(p.decode_error(payload)))
                else:
                    error = p.ProtocolError(f"unexpected response opcode {opcode}")
                    break
        except (p.ProtocolError, ConnectionError, OSError) as exc:
            error = exc
        except asyncio.CancelledError:
            error = ConnectionError("client closed")
        finally:
            # Whatever ended the loop fails every in-flight request: a
            # deferred group-commit ack that never arrives must not hang
            # its caller forever.
            error = error or ConnectionError("receive loop exited")
            for future in self._inflight.values():
                if not future.done():
                    future.set_exception(error)
            self._inflight.clear()

    async def _request(self, opcode: int, payload: bytes = b"") -> bytes:
        if self._closed:
            raise ConnectionError("client is closed")
        request_id = self._next_id
        self._next_id = (self._next_id + 1) & 0xFFFFFFFF
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[request_id] = future
        self._writer.write(p.encode_frame(opcode, request_id, payload))
        await self._writer.drain()
        return await future

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    async def put(self, key: int, value: object) -> None:
        await self._request(p.OP_PUT, p.encode_put(key, value))

    async def get(self, key: int) -> Optional[object]:
        return p.decode_result(await self._request(p.OP_GET, p.encode_key(key)))

    async def delete(self, key: int) -> None:
        await self._request(p.OP_DEL, p.encode_key(key))

    async def range_query(self, lo: int, hi: int) -> List[Tuple[int, object]]:
        return p.decode_result(await self._request(p.OP_RANGE, p.encode_range(lo, hi)))

    async def put_many(self, items: Sequence[Tuple[int, object]]) -> None:
        await self._request(p.OP_PUT_MANY, p.encode_put_many(items))

    async def get_many(self, keys: Sequence[int]) -> List[Optional[object]]:
        return p.decode_result(
            await self._request(p.OP_GET_MANY, p.encode_get_many(keys))
        )

    async def stats(self) -> dict:
        return p.decode_result(await self._request(p.OP_STATS))

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._recv_task.cancel()
        try:
            await self._recv_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "IndexClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()


class SyncIndexClient:
    """Blocking facade over :class:`IndexClient` (one private event loop)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self._loop = asyncio.new_event_loop()
        self._client = self._loop.run_until_complete(IndexClient.connect(host, port))

    def _run(self, coro):
        return self._loop.run_until_complete(coro)

    def put(self, key: int, value: object) -> None:
        self._run(self._client.put(key, value))

    def get(self, key: int) -> Optional[object]:
        return self._run(self._client.get(key))

    def delete(self, key: int) -> None:
        self._run(self._client.delete(key))

    def range_query(self, lo: int, hi: int) -> List[Tuple[int, object]]:
        return self._run(self._client.range_query(lo, hi))

    def put_many(self, items: Sequence[Tuple[int, object]]) -> None:
        self._run(self._client.put_many(items))

    def get_many(self, keys: Sequence[int]) -> List[Optional[object]]:
        return self._run(self._client.get_many(keys))

    def stats(self) -> dict:
        return self._run(self._client.stats())

    def close(self) -> None:
        try:
            self._run(self._client.close())
        finally:
            self._loop.close()

    def __enter__(self) -> "SyncIndexClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
