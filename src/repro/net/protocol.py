"""The length-prefixed binary wire protocol of the serving layer.

One frame per request/response, little-endian, mirroring the WAL's framing
discipline (:mod:`repro.storage.wal`) so a torn or corrupt frame is
detected structurally rather than by deserialization accident::

    magic       u16   0x5752 ("RW": repro wire)
    opcode      u8    request: OP_*; response: RESP_OK / RESP_ERR
    flags       u8    reserved
    request_id  u32   echoed verbatim in the response (pipelining tag)
    length      u32   payload length in bytes
    crc         u32   CRC32 over (opcode, flags, request_id, length, payload)
    payload     ...   opcode-specific, see below

Payload encodings (keys are signed 64-bit ints, values arbitrary pickled
objects — the same representation the WAL and checkpoints use):

========== ============================================================
opcode      payload
========== ============================================================
PUT         key s64 + pickle(value)
GET         key s64
DEL         key s64
RANGE       lo s64 + hi s64
PUT_MANY    count u32 + count * (key s64 + u32-length-prefixed pickle)
GET_MANY    count u32 + count * key s64
STATS       empty
RESP_OK     pickle(result) — op-specific result object
RESP_ERR    pickle(message string)
========== ============================================================

``decode_frame`` raises :class:`ProtocolError` on any structural problem
(bad magic, unknown opcode, CRC mismatch, short payload); the server turns
that into a connection close, never into a half-interpreted request.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import List, Optional, Sequence, Tuple

from repro.errors import ReproError

WIRE_MAGIC = 0x5752

OP_PUT = 1
OP_GET = 2
OP_DEL = 3
OP_RANGE = 4
OP_PUT_MANY = 5
OP_GET_MANY = 6
OP_STATS = 7

RESP_OK = 0x80
RESP_ERR = 0x81

REQUEST_OPS = (OP_PUT, OP_GET, OP_DEL, OP_RANGE, OP_PUT_MANY, OP_GET_MANY, OP_STATS)
#: Opcodes that mutate the index (their acks ride the group-commit path).
MUTATING_OPS = (OP_PUT, OP_DEL, OP_PUT_MANY)

HEADER = struct.Struct("<HBBIII")  # magic, opcode, flags, request_id, length, crc
_KEY = struct.Struct("<q")
_PAIR = struct.Struct("<qq")
_COUNT = struct.Struct("<I")

#: Refuse absurd frames before allocating for them (16 MiB of payload is
#: far beyond any batch the load generator or CLI produces).
MAX_PAYLOAD = 16 * 1024 * 1024


class ProtocolError(ReproError):
    """A structurally invalid frame (bad magic/opcode/CRC/payload shape)."""


def _crc(opcode: int, flags: int, request_id: int, payload: bytes) -> int:
    head = struct.pack("<BBII", opcode, flags, request_id, len(payload))
    return zlib.crc32(payload, zlib.crc32(head)) & 0xFFFFFFFF


def encode_frame(opcode: int, request_id: int, payload: bytes = b"") -> bytes:
    """One wire frame, ready to write."""
    crc = _crc(opcode, 0, request_id, payload)
    return HEADER.pack(WIRE_MAGIC, opcode, 0, request_id, len(payload), crc) + payload


def decode_header(raw: bytes) -> Tuple[int, int, int, int]:
    """Validated (opcode, request_id, length, crc) from header bytes."""
    if len(raw) < HEADER.size:
        raise ProtocolError("short frame header")
    magic, opcode, flags, request_id, length, crc = HEADER.unpack(raw)
    if magic != WIRE_MAGIC:
        raise ProtocolError(f"bad frame magic 0x{magic:04X}")
    if opcode not in REQUEST_OPS and opcode not in (RESP_OK, RESP_ERR):
        raise ProtocolError(f"unknown opcode {opcode}")
    if flags != 0:
        raise ProtocolError(f"unsupported flags 0x{flags:02X}")
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"frame payload of {length} bytes exceeds the cap")
    return opcode, request_id, length, crc


def check_payload(opcode: int, request_id: int, payload: bytes, crc: int) -> None:
    if _crc(opcode, 0, request_id, payload) != crc:
        raise ProtocolError("frame checksum mismatch")


# ----------------------------------------------------------------------
# request payload encode/decode
# ----------------------------------------------------------------------
def encode_put(key: int, value: object) -> bytes:
    return _KEY.pack(key) + pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def decode_put(payload: bytes) -> Tuple[int, object]:
    if len(payload) <= _KEY.size:
        raise ProtocolError("PUT payload too short")
    (key,) = _KEY.unpack_from(payload)
    try:
        value = pickle.loads(payload[_KEY.size :])
    except Exception as exc:  # noqa: BLE001 - corrupt pickle = corrupt frame
        raise ProtocolError(f"PUT value undecodable: {exc!r}") from exc
    return key, value


def encode_key(key: int) -> bytes:
    return _KEY.pack(key)


def decode_key(payload: bytes) -> int:
    if len(payload) != _KEY.size:
        raise ProtocolError("key payload must be exactly 8 bytes")
    return _KEY.unpack(payload)[0]


def encode_range(lo: int, hi: int) -> bytes:
    return _PAIR.pack(lo, hi)


def decode_range(payload: bytes) -> Tuple[int, int]:
    if len(payload) != _PAIR.size:
        raise ProtocolError("RANGE payload must be exactly 16 bytes")
    lo, hi = _PAIR.unpack(payload)
    return lo, hi


def encode_put_many(items: Sequence[Tuple[int, object]]) -> bytes:
    parts = [_COUNT.pack(len(items))]
    for key, value in items:
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        parts.append(_KEY.pack(key))
        parts.append(_COUNT.pack(len(blob)))
        parts.append(blob)
    return b"".join(parts)


def decode_put_many(payload: bytes) -> List[Tuple[int, object]]:
    if len(payload) < _COUNT.size:
        raise ProtocolError("PUT_MANY payload too short")
    (count,) = _COUNT.unpack_from(payload)
    items: List[Tuple[int, object]] = []
    offset = _COUNT.size
    for _ in range(count):
        if len(payload) < offset + _KEY.size + _COUNT.size:
            raise ProtocolError("PUT_MANY item truncated")
        (key,) = _KEY.unpack_from(payload, offset)
        offset += _KEY.size
        (blob_len,) = _COUNT.unpack_from(payload, offset)
        offset += _COUNT.size
        blob = payload[offset : offset + blob_len]
        if len(blob) < blob_len:
            raise ProtocolError("PUT_MANY value truncated")
        offset += blob_len
        try:
            items.append((key, pickle.loads(blob)))
        except Exception as exc:  # noqa: BLE001
            raise ProtocolError(f"PUT_MANY value undecodable: {exc!r}") from exc
    if offset != len(payload):
        raise ProtocolError("PUT_MANY payload has trailing bytes")
    return items


def encode_get_many(keys: Sequence[int]) -> bytes:
    return _COUNT.pack(len(keys)) + b"".join(_KEY.pack(key) for key in keys)


def decode_get_many(payload: bytes) -> List[int]:
    if len(payload) < _COUNT.size:
        raise ProtocolError("GET_MANY payload too short")
    (count,) = _COUNT.unpack_from(payload)
    if len(payload) != _COUNT.size + count * _KEY.size:
        raise ProtocolError("GET_MANY payload length mismatch")
    return [
        _KEY.unpack_from(payload, _COUNT.size + i * _KEY.size)[0] for i in range(count)
    ]


# ----------------------------------------------------------------------
# response payloads
# ----------------------------------------------------------------------
def encode_result(result: object) -> bytes:
    return pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)


def decode_result(payload: bytes) -> object:
    try:
        return pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001
        raise ProtocolError(f"response undecodable: {exc!r}") from exc


def encode_error(message: str) -> bytes:
    return pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)


def decode_error(payload: bytes) -> str:
    result = decode_result(payload)
    return result if isinstance(result, str) else repr(result)


async def read_frame(reader) -> Optional[Tuple[int, int, bytes]]:
    """Read one validated frame from an ``asyncio.StreamReader``.

    Returns ``(opcode, request_id, payload)``, or ``None`` on a clean EOF
    at a frame boundary. A torn frame (EOF mid-frame) or a structurally
    invalid one raises :class:`ProtocolError`.
    """
    import asyncio

    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header") from exc
    opcode, request_id, length, crc = decode_header(header)
    try:
        payload = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-payload") from exc
    check_payload(opcode, request_id, payload, crc)
    return opcode, request_id, payload
