"""Closed/open-loop load generator behind ``repro bench-serve``.

Boots a sharded server (or targets an already-running one), drives it
with N concurrent client connections over a mixed PUT/GET/RANGE/
PUT_MANY/GET_MANY workload, and reports latency percentiles (p50/p95/p99
from :mod:`repro.obs` histograms plus exact percentiles over the raw
samples), throughput gauges (``serve_ops_per_s`` — the perf-gate key),
and a ``repro-bench/v1`` run record.

**Arrival models.** ``closed`` is the classic closed loop: each client
issues its next operation when the previous one completes, so offered
load adapts to service rate. ``open`` fires operations on a fixed
schedule (``open_rate`` ops/s per client) *without* waiting for
completions, and measures latency from the *scheduled* send time — the
coordinated-omission-aware convention: a stalled server inflates the
tail instead of silently thinning the offered load.

**Correctness oracle.** Each client owns the keys congruent to its id
modulo the client count, so the final state is deterministic despite
concurrent interleavings. After the load drains, the generator replays
the expected state into a fresh *single-node* :class:`SortednessAwareIndex`
and compares the server's scatter-gather ``RANGE`` results (full range
plus sampled sub-ranges) and sampled ``GET_MANY`` results against it —
the acceptance check that sharding + the wire protocol are invisible to
clients.
"""

from __future__ import annotations

import asyncio
import os
import random
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.config import SWAREConfig
from repro.core.sware import SortednessAwareIndex
from repro.net.client import IndexClient
from repro.net.server import IndexServer
from repro.net.sharded import ShardedConfig, ShardedSortednessAwareIndex
from repro.obs import Observability, current_obs
from repro.storage.wal import FSYNC_BATCH

#: Latency buckets for the serve-path histograms (ns): 50us .. 500ms.
SERVE_LATENCY_BUCKETS_NS = (
    5e4, 1e5, 2.5e5, 5e5, 1e6, 2.5e6, 5e6, 1e7, 2.5e7, 5e7, 1e8, 5e8,
)

#: Operation mix: (kind, weight). Batch ops count as one request.
DEFAULT_MIX = (
    ("put", 0.45),
    ("get", 0.25),
    ("range", 0.10),
    ("put_many", 0.10),
    ("get_many", 0.10),
)


@dataclass(frozen=True)
class LoadGenConfig:
    clients: int = 4
    ops_per_client: int = 1000
    arrival: str = "closed"  # "closed" | "open"
    open_rate: float = 2000.0  # per-client target ops/s for the open loop
    key_space: int = 50_000
    batch_size: int = 16
    range_span: int = 500
    value_bytes: int = 16
    seed: int = 1234
    shards: int = 4
    split_threshold: int = 0  # 0 = no splitting during the bench
    fsync_policy: str = FSYNC_BATCH
    verify: bool = True

    def __post_init__(self) -> None:
        if self.arrival not in ("closed", "open"):
            raise ValueError(f"arrival must be closed|open, got {self.arrival!r}")
        if self.clients < 1 or self.ops_per_client < 1:
            raise ValueError("clients and ops_per_client must be >= 1")


class _ClientWorker:
    """One connection's workload: deterministic ops over its key partition."""

    def __init__(self, client_id: int, cfg: LoadGenConfig, oracle: Dict[int, object]):
        self.client_id = client_id
        self.cfg = cfg
        self.oracle = oracle  # shared; each client writes only its own keys
        self.rng = random.Random(cfg.seed * 1000 + client_id)
        self.latencies: Dict[str, List[int]] = {}
        self.pad = "x" * cfg.value_bytes

    def _own_key(self) -> int:
        """A key this client owns (id-congruent modulo the client count)."""
        cfg = self.cfg
        base = self.rng.randrange(0, cfg.key_space // cfg.clients)
        return base * cfg.clients + self.client_id

    def _op(self, step: int):
        """(kind, coroutine-factory, oracle-mutation) for one operation."""
        roll = self.rng.random()
        acc = 0.0
        for kind, weight in DEFAULT_MIX:
            acc += weight
            if roll < acc:
                break
        cfg = self.cfg
        if kind == "put":
            key = self._own_key()
            value = f"c{self.client_id}.{step}.{self.pad}"
            self.oracle[key] = value
            return kind, lambda c: c.put(key, value)
        if kind == "get":
            key = self._own_key()
            return kind, lambda c: c.get(key)
        if kind == "range":
            lo = self.rng.randrange(0, cfg.key_space)
            hi = lo + self.rng.randrange(1, cfg.range_span)
            return kind, lambda c: c.range_query(lo, hi)
        if kind == "put_many":
            items = []
            for j in range(cfg.batch_size):
                key = self._own_key()
                value = f"c{self.client_id}.{step}.{j}.{self.pad}"
                items.append((key, value))
                self.oracle[key] = value
            return kind, lambda c: c.put_many(items)
        keys = [self._own_key() for _ in range(cfg.batch_size)]
        return "get_many", lambda c: c.get_many(keys)

    def _record(self, kind: str, latency_ns: int, obs: Observability) -> None:
        self.latencies.setdefault(kind, []).append(latency_ns)
        obs.observe_hist(
            f"serve_{kind}_latency_ns", latency_ns, buckets=SERVE_LATENCY_BUCKETS_NS
        )

    async def run_closed(self, client: IndexClient, obs: Observability) -> None:
        for step in range(self.cfg.ops_per_client):
            kind, fire = self._op(step)
            start = time.perf_counter_ns()
            await fire(client)
            self._record(kind, time.perf_counter_ns() - start, obs)

    async def run_open(self, client: IndexClient, obs: Observability) -> None:
        interval = 1.0 / self.cfg.open_rate
        origin = time.perf_counter()
        pending: List[asyncio.Task] = []

        async def timed(kind: str, fire, scheduled_ns: int) -> None:
            await fire(client)
            self._record(kind, time.perf_counter_ns() - scheduled_ns, obs)

        for step in range(self.cfg.ops_per_client):
            target = origin + step * interval
            delay = target - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            kind, fire = self._op(step)
            # Latency clock starts at the *scheduled* instant, not send time.
            scheduled_ns = int(target * 1e9)
            now_ns = time.perf_counter_ns()
            pending.append(
                asyncio.create_task(timed(kind, fire, min(scheduled_ns, now_ns)))
            )
        await asyncio.gather(*pending)


def _percentile(sorted_samples: List[int], q: float) -> Optional[float]:
    """Nearest-rank percentile, or ``None`` for an empty bucket.

    ``None`` (JSON ``null``) is deliberate: a 0.0 latency for an op kind
    that never fired reads as "infinitely fast" to artifact consumers and
    to the perf gate. A single-sample bucket is legitimate — every
    percentile is that sample.
    """
    if not sorted_samples:
        return None
    position = min(len(sorted_samples) - 1, int(q * (len(sorted_samples) - 1) + 0.5))
    return float(sorted_samples[position])


async def _verify_against_single_node(
    client: IndexClient, oracle: Dict[int, object], cfg: LoadGenConfig
) -> int:
    """Compare the served view with a single-node index; returns checks run.

    Raises ``AssertionError`` on the first divergence — a bench whose
    results are wrong must not publish numbers.
    """
    single = SortednessAwareIndex(
        __import__("repro.btree.btree", fromlist=["BPlusTree"]).BPlusTree(),
        config=SWAREConfig(),
    )
    single.put_many(sorted(oracle.items()))
    checks = 0
    full = await client.range_query(-(1 << 62), 1 << 62)
    expect = single.range_query(-(1 << 62), 1 << 62)
    if full != expect:
        raise AssertionError(
            f"full scatter-gather diverged: {len(full)} vs {len(expect)} rows"
        )
    checks += 1
    rng = random.Random(cfg.seed)
    for _ in range(32):
        lo = rng.randrange(0, cfg.key_space)
        hi = lo + rng.randrange(1, cfg.range_span * 4)
        got = await client.range_query(lo, hi)
        want = single.range_query(lo, hi)
        if got != want:
            raise AssertionError(f"range [{lo},{hi}] diverged")
        checks += 1
    keys = [rng.randrange(0, cfg.key_space) for _ in range(256)]
    if await client.get_many(keys) != single.get_many(keys):
        raise AssertionError("get_many diverged")
    return checks + 1


async def _run_async(
    cfg: LoadGenConfig,
    obs: Observability,
    host: Optional[str],
    port: Optional[int],
    root: Optional[str],
) -> Dict[str, object]:
    server: Optional[IndexServer] = None
    tmp: Optional[tempfile.TemporaryDirectory] = None
    if host is None:
        # Self-hosted: boot a fresh sharded server on a loopback port.
        if root is None:
            tmp = tempfile.TemporaryDirectory(prefix="repro-serve-")
            root = os.path.join(tmp.name, "db")
        index = ShardedSortednessAwareIndex(
            root,
            config=ShardedConfig(
                n_shards=cfg.shards,
                split_threshold=cfg.split_threshold,
                fsync_policy=cfg.fsync_policy,
                initial_key_range=(0, cfg.key_space),
            ),
            obs=obs,
        )
        server = IndexServer(index, obs=obs)
        await server.start()
        host, port = server.host, server.port
    assert port is not None

    oracle: Dict[int, object] = {}
    workers = [_ClientWorker(i, cfg, oracle) for i in range(cfg.clients)]
    clients = [await IndexClient.connect(host, port) for _ in workers]
    wall_start = time.perf_counter_ns()
    try:
        with obs.span("loadgen.run", clients=cfg.clients, arrival=cfg.arrival):
            if cfg.arrival == "closed":
                await asyncio.gather(
                    *[w.run_closed(c, obs) for w, c in zip(workers, clients)]
                )
            else:
                await asyncio.gather(
                    *[w.run_open(c, obs) for w, c in zip(workers, clients)]
                )
        wall_ns = time.perf_counter_ns() - wall_start
        checks = 0
        if cfg.verify:
            checks = await _verify_against_single_node(clients[0], oracle, cfg)
        server_stats = await clients[0].stats()
    finally:
        for client in clients:
            await client.close()
        if server is not None:
            await server.stop()
        if tmp is not None:
            tmp.cleanup()

    # ---- aggregate -----------------------------------------------------
    merged: Dict[str, List[int]] = {}
    for worker in workers:
        for kind, samples in worker.latencies.items():
            merged.setdefault(kind, []).extend(samples)
    total_ops = sum(len(s) for s in merged.values())
    ops_per_s = total_ops / (wall_ns / 1e9) if wall_ns else 0.0
    obs.gauge("serve_ops_per_s", ops_per_s)

    phases = []
    kind_summary: Dict[str, Dict[str, object]] = {}
    # Enumerate the full op mix, not just the kinds that happened to fire:
    # a short run can miss a low-weight kind entirely, and a silently
    # absent bucket is indistinguishable from a forgotten one. Empty
    # buckets report explicit nulls and publish no latency gauges (a gauge
    # must never carry a fabricated 0 ns).
    all_kinds = sorted({kind for kind, _ in DEFAULT_MIX} | set(merged))
    for kind in all_kinds:
        samples = merged.get(kind, [])
        samples.sort()
        stats = {
            "n": len(samples),
            "p50_ns": _percentile(samples, 0.50),
            "p95_ns": _percentile(samples, 0.95),
            "p99_ns": _percentile(samples, 0.99),
            "mean_ns": sum(samples) / len(samples) if samples else None,
        }
        kind_summary[kind] = stats
        if not samples:
            continue
        obs.gauge(f"serve_{kind}_p50_ns", stats["p50_ns"])
        obs.gauge(f"serve_{kind}_p99_ns", stats["p99_ns"])
        phases.append(
            {
                "name": kind,
                "n_ops": len(samples),
                "sim_ns": float(sum(samples)),  # wall == sim over the wire
                "wall_ns": float(sum(samples)),
                "sim_ns_per_op": sum(samples) / len(samples),
            }
        )

    run = {
        "label": f"serve-{cfg.arrival}-{cfg.clients}c-{cfg.shards}s",
        "phases": phases,
        "bucket_sim_ns": {},
        "counts": {
            "clients": float(cfg.clients),
            "total_ops": float(total_ops),
            "oracle_checks": float(checks),
            "server_requests": float(server_stats["server"]["requests"]),
            "server_commits": float(server_stats["server"]["commits"]),
            "n_shards": float(server_stats["n_shards"]),
            "splits": float(server_stats["splits"]),
        },
        "sware_stats": {},
        "index_stats": {},
    }
    obs.record_run(run)
    return {
        "arrival": cfg.arrival,
        "clients": cfg.clients,
        "shards": server_stats["n_shards"],
        "splits": server_stats["splits"],
        "fsync_policy": cfg.fsync_policy,
        "total_ops": total_ops,
        "wall_s": wall_ns / 1e9,
        "ops_per_s": ops_per_s,
        "oracle_checks": checks,
        "latency": kind_summary,
        "server": server_stats["server"],
    }


def run_load(
    cfg: LoadGenConfig,
    obs: Optional[Observability] = None,
    host: Optional[str] = None,
    port: Optional[int] = None,
    root: Optional[str] = None,
) -> Dict[str, object]:
    """Run the load (self-hosting a server unless ``host`` is given)."""
    obs = obs if obs is not None else current_obs()
    return asyncio.run(_run_async(cfg, obs, host, port, root))
