"""The asyncio front door over a :class:`ShardedSortednessAwareIndex`.

One :class:`IndexServer` owns the sharded index and serves the binary
protocol of :mod:`repro.net.protocol` over TCP. Connections are handled
concurrently; within a connection requests are *pipelined* — the client
may send many frames without waiting, and responses are matched back by
``request_id``, not by order (write acks routinely overtake later reads
under group commit).

**Group commit / ack-after-fsync.** Mutating opcodes (``MUTATING_OPS``)
are applied to the index immediately, but under ``fsync_policy="batch"``
their OK responses are *parked* on a commit queue instead of being
written back. A background commit loop wakes every ``commit_interval``
seconds (or as soon as a mutation arrives), fsyncs every dirty shard WAL
via :meth:`ShardedSortednessAwareIndex.commit`, and only then releases
the parked acks. The client therefore never observes an acknowledgement
for a write that a crash could lose — the invariant the crash harness
(``tests/test_sharded_crash.py``) kills the server to check. Under
``fsync_policy="always"`` the WAL appends sync inline and acks are
written immediately; under ``"never"`` durability is explicitly waived
and acks are also immediate.

Protocol violations (bad magic, CRC mismatch, torn frame) close the
connection — a structurally corrupt stream cannot be re-synchronized.
Index-level errors (and malformed payloads that decode but fail) are
returned as ``RESP_ERR`` frames and the connection lives on.
"""

from __future__ import annotations

import asyncio
from typing import List, Optional, Tuple

from repro.net import protocol as p
from repro.net.sharded import ShardedSortednessAwareIndex
from repro.obs import Observability, current_obs
from repro.storage.wal import FSYNC_BATCH


class IndexServer:
    """See module docstring."""

    def __init__(
        self,
        index: ShardedSortednessAwareIndex,
        host: str = "127.0.0.1",
        port: int = 0,
        commit_interval: float = 0.002,
        obs: Optional[Observability] = None,
    ):
        self.index = index
        self.host = host
        self.port = port
        self.commit_interval = commit_interval
        self.obs = obs if obs is not None else current_obs()
        self._server: Optional[asyncio.AbstractServer] = None
        self._commit_task: Optional[asyncio.Task] = None
        #: Parked (writer, ack frame) pairs awaiting the next commit.
        self._parked: List[Tuple[asyncio.StreamWriter, bytes]] = []
        self._commit_wake: Optional[asyncio.Event] = None
        self._group_commit = index.config.fsync_policy == FSYNC_BATCH
        self.requests = 0
        self.errors = 0
        self.commits = 0
        self.connections = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._commit_wake = asyncio.Event()
        self._server = await asyncio.start_server(self._serve_conn, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        if self._group_commit:
            self._commit_task = asyncio.create_task(self._commit_loop())

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._commit_task is not None:
            self._commit_task.cancel()
            try:
                await self._commit_task
            except asyncio.CancelledError:
                pass
            self._commit_task = None
        await self._release_parked()  # final commit for anything in flight
        self.index.close()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    # group commit
    # ------------------------------------------------------------------
    async def _commit_loop(self) -> None:
        while True:
            await self._commit_wake.wait()
            self._commit_wake.clear()
            # Let a burst of pipelined mutations pile onto this cycle so
            # one fsync covers them all.
            await asyncio.sleep(self.commit_interval)
            await self._release_parked()

    async def _release_parked(self) -> None:
        if not self._parked and not self.index._dirty:
            return
        parked, self._parked = self._parked, []
        with self.obs.span("serve.commit", acks=len(parked)):
            self.index.commit()  # fsync every dirty shard WAL
        self.commits += 1
        for writer, frame in parked:
            if not writer.is_closing():
                writer.write(frame)
        for writer, _frame in parked:
            if not writer.is_closing():
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass  # client went away; its acks are moot

    def _ack(self, writer: asyncio.StreamWriter, opcode: int, frame: bytes) -> None:
        """Write a response now, or park it until the covering commit."""
        if self._group_commit and opcode in p.MUTATING_OPS:
            self._parked.append((writer, frame))
            self._commit_wake.set()
        else:
            writer.write(frame)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _serve_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        try:
            while True:
                try:
                    frame = await p.read_frame(reader)
                except p.ProtocolError:
                    self.errors += 1
                    break  # corrupt stream: cannot resync, drop the connection
                if frame is None:
                    break  # clean EOF
                opcode, request_id, payload = frame
                self.requests += 1
                try:
                    result = self._dispatch(opcode, payload)
                except p.ProtocolError:
                    self.errors += 1
                    break
                except Exception as exc:  # noqa: BLE001 - becomes a wire error
                    self.errors += 1
                    writer.write(
                        p.encode_frame(p.RESP_ERR, request_id, p.encode_error(repr(exc)))
                    )
                    await writer.drain()
                    continue
                self._ack(
                    writer,
                    opcode,
                    p.encode_frame(p.RESP_OK, request_id, p.encode_result(result)),
                )
                if reader.at_eof() or not self._group_commit:
                    await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            if not writer.is_closing():
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

    def _dispatch(self, opcode: int, payload: bytes) -> object:
        index = self.index
        if opcode == p.OP_PUT:
            key, value = p.decode_put(payload)
            index.put(key, value)
            return None
        if opcode == p.OP_GET:
            return index.get(p.decode_key(payload))
        if opcode == p.OP_DEL:
            index.delete(p.decode_key(payload))
            return None
        if opcode == p.OP_RANGE:
            lo, hi = p.decode_range(payload)
            return index.range_query(lo, hi)
        if opcode == p.OP_PUT_MANY:
            index.put_many(p.decode_put_many(payload))
            return None
        if opcode == p.OP_GET_MANY:
            return index.get_many(p.decode_get_many(payload))
        if opcode == p.OP_STATS:
            stats = index.describe()
            stats["server"] = {
                "requests": self.requests,
                "errors": self.errors,
                "commits": self.commits,
                "connections": self.connections,
                "group_commit": self._group_commit,
            }
            stats["shard_map"] = index.shard_map()
            return stats
        raise p.ProtocolError(f"opcode {opcode} is not a request")
