"""Bε-tree substrate (the paper's write-optimized baseline)."""

from repro.betree.betree import BeInternalNode, BeTree, BeTreeConfig
from repro.betree.messages import DELETE, PUT, Message

__all__ = ["BeInternalNode", "BeTree", "BeTreeConfig", "DELETE", "PUT", "Message"]
