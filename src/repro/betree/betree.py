"""An in-memory Bε-tree [Bender et al. 2015], the paper's second baseline.

An internal node of size ``B`` devotes ``B^ε`` slots to pivots and the rest
to a message buffer (ε = 1/2 by default, as in §V of the paper). Inserts and
deletes append a message to the root buffer in O(1); when a buffer
overflows, the batch of messages addressed to the child with the most
pending messages is moved one level down, amortizing the cost of writing
deep nodes across many messages. Queries must consult the buffers along
their root-to-leaf path, which is the read overhead the paper observes for
Bε-trees.

SWARE hooks mirror the B+-tree: configurable split factor, append-only bulk
loading that builds leaves directly and leaves the internal buffers empty
(§V-G: "SA Bε-tree opportunistically bulk loads when possible, leaving
internal node buffers empty"), and meter/bufferpool accounting.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.betree.messages import DELETE, PUT, Message
from repro.btree.node import InternalNode, LeafNode
from repro.errors import BulkLoadError, ConfigError, InvariantViolation
from repro.obs import DEFAULT_SIZE_BUCKETS, NULL_OBS, Observability, current_obs
from repro.storage.bufferpool import BufferPool, PageIdAllocator
from repro.storage.costmodel import NULL_METER, Meter


class BeInternalNode(InternalNode):
    """Internal node with a message buffer (arrival-ordered list)."""

    __slots__ = ("buffer",)

    def __init__(self, page_id: int):
        super().__init__(page_id)
        self.buffer: List[Message] = []


@dataclass(frozen=True)
class BeTreeConfig:
    """Tuning knobs for :class:`BeTree`.

    ``node_size`` is the paper's B (total slots per internal node); with
    ``epsilon`` = 1/2 a node of 64 slots keeps ceil(64^0.5) = 8 pivots and
    buffers 56 messages.
    """

    node_size: int = 64
    epsilon: float = 0.5
    leaf_capacity: int = 64
    split_factor: float = 0.5
    bulk_fill_factor: float = 0.95

    def __post_init__(self) -> None:
        if self.node_size < 4:
            raise ConfigError("node_size must be >= 4")
        if not 0.0 < self.epsilon <= 1.0:
            raise ConfigError("epsilon must be in (0, 1]")
        if self.leaf_capacity < 2:
            raise ConfigError("leaf_capacity must be >= 2")
        if not 0.1 <= self.split_factor <= 0.9:
            raise ConfigError("split_factor must be within [0.1, 0.9]")
        if not 0.1 <= self.bulk_fill_factor <= 1.0:
            raise ConfigError("bulk_fill_factor must be within [0.1, 1.0]")

    @property
    def max_pivots(self) -> int:
        """Number of pivot slots: ceil(B^ε), at least 2."""
        return max(2, math.ceil(self.node_size**self.epsilon))

    @property
    def buffer_capacity(self) -> int:
        """Message slots per internal node: B - B^ε."""
        return max(1, self.node_size - self.max_pivots)


class BeTree:
    """See module docstring."""

    def __init__(
        self,
        config: Optional[BeTreeConfig] = None,
        meter: Optional[Meter] = None,
        pool: Optional[BufferPool] = None,
        obs: Optional[Observability] = None,
    ):
        self.config = config or BeTreeConfig()
        self.meter = meter if meter is not None else NULL_METER
        self.obs = obs if obs is not None else current_obs()
        self.pool = pool
        self._pages = PageIdAllocator()
        self._root: Optional[object] = None
        self._head_leaf: Optional[LeafNode] = None
        self._tail_leaf: Optional[LeafNode] = None
        self._tail_path: List[BeInternalNode] = []
        self._seq = 0
        self._max_key: Optional[int] = None
        self._min_key: Optional[int] = None
        self.height = 0
        self.leaf_count = 0
        self.internal_count = 0
        self.leaf_splits = 0
        self.internal_splits = 0
        self.buffer_flushes = 0
        self.messages_moved = 0
        self.top_inserts = 0
        self.bulk_loaded_entries = 0
        if self.obs is not NULL_OBS:
            self.obs.register_collector("betree", self._obs_snapshot)

    def _obs_snapshot(self) -> dict:
        return {
            "height": self.height,
            "leaf_count": self.leaf_count,
            "internal_count": self.internal_count,
            "leaf_splits": self.leaf_splits,
            "internal_splits": self.internal_splits,
            "buffer_flushes": self.buffer_flushes,
            "messages_moved": self.messages_moved,
            "top_inserts": self.top_inserts,
            "bulk_loaded_entries": self.bulk_loaded_entries,
        }

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _touch(self, node, dirty: bool = False) -> None:
        self.meter.charge("node_access")
        if self.pool is not None:
            self.pool.access(node.page_id, dirty=dirty)

    def _new_leaf(self) -> LeafNode:
        leaf = LeafNode(self._pages.allocate())
        self.leaf_count += 1
        if self.pool is not None:
            self.pool.create(leaf.page_id)
        return leaf

    def _new_internal(self) -> BeInternalNode:
        node = BeInternalNode(self._pages.allocate())
        self.internal_count += 1
        if self.pool is not None:
            self.pool.create(node.page_id)
        return node

    def _ensure_root(self) -> None:
        if self._root is None:
            leaf = self._new_leaf()
            self._root = leaf
            self._head_leaf = leaf
            self._tail_leaf = leaf
            self._tail_path = []
            self.height = 1

    def _recompute_tail_path(self) -> None:
        node = self._root
        path: List[BeInternalNode] = []
        while node is not None and not node.is_leaf:
            path.append(node)
            node = node.children[-1]
        self._tail_path = path
        self._tail_leaf = node

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def insert(self, key: int, value: object) -> None:
        """Upsert via a PUT message through the root (O(1) amortized)."""
        self._put_message(Message(key, self._next_seq(), PUT, value))
        self.top_inserts += 1
        if self._max_key is None or key > self._max_key:
            self._max_key = key
        if self._min_key is None or key < self._min_key:
            self._min_key = key

    def delete(self, key: int) -> None:
        """Delete via a tombstone message through the root."""
        self.meter.charge("tombstone")
        self._put_message(Message(key, self._next_seq(), DELETE, None))

    def _put_message(self, message: Message) -> None:
        self._ensure_root()
        root = self._root
        self._touch(root, dirty=True)
        if root.is_leaf:
            splits = self._apply_messages_to_leaf(root, [message])
            if splits:
                self._grow_root(root, splits)
            return
        root.buffer.append(message)
        if len(root.buffer) > self.config.buffer_capacity:
            splits = self._flush_node(root)
            if splits:
                self._grow_root(root, splits)

    def insert_many(self, items: Sequence[Tuple[int, object]]) -> None:
        """Batch upsert: push the whole chunk of PUT messages through the
        root in one touch.

        Messages keep their arrival order (and hence ``seq`` order), so the
        per-key outcome is identical to a sequential loop of :meth:`insert` —
        messages for one key always travel together and apply in order. The
        root buffer may transiently exceed its capacity by the batch size;
        :meth:`_flush_node` loops until it is back within bounds, which lets
        one flush round route a large run of same-child messages downward in
        a single move instead of one overflow cycle per message.
        """
        if not items:
            return
        self._ensure_root()
        messages = [
            Message(key, self._next_seq(), PUT, value) for key, value in items
        ]
        self.top_inserts += len(messages)
        first_key = min(key for key, _value in items)
        last_key = max(key for key, _value in items)
        if self._max_key is None or last_key > self._max_key:
            self._max_key = last_key
        if self._min_key is None or first_key < self._min_key:
            self._min_key = first_key
        root = self._root
        self._touch(root, dirty=True)
        if root.is_leaf:
            splits = self._apply_messages_to_leaf(root, messages)
            if splits:
                self._grow_root(root, splits)
            return
        root.buffer.extend(messages)
        if len(root.buffer) > self.config.buffer_capacity:
            splits = self._flush_node(root)
            if splits:
                self._grow_root(root, splits)

    def _grow_root(self, old_root, splits: List[Tuple[int, object]]) -> None:
        new_root = self._new_internal()
        new_root.children = [old_root]
        for sep, node in splits:
            new_root.keys.append(sep)
            new_root.children.append(node)
        self._root = new_root
        self.height += 1
        # A cascade of splits could overflow even the fresh root's pivots.
        if len(new_root.keys) > self.config.max_pivots:
            upper = self._split_internal_if_needed(new_root)
            if upper:
                self._grow_root(new_root, upper)
                return
        self._recompute_tail_path()

    # -- message flow ---------------------------------------------------
    def _flush_node(self, node: BeInternalNode) -> List[Tuple[int, object]]:
        """Drain ``node``'s overfull buffer; returns splits of ``node``."""
        capacity = self.config.buffer_capacity
        while len(node.buffer) > capacity:
            self.buffer_flushes += 1
            # Bucket messages by target child under the *current* pivots.
            # Every flush round re-partitions the whole buffer (one pivot
            # bisect per message) — scrambled ingestion pays this far more
            # often per message than sorted ingestion, whose messages all
            # route to one child and leave in a single large batch.
            self.meter.charge("scan_entry", len(node.buffer))
            buckets: Dict[int, List[Message]] = {}
            for message in node.buffer:
                child_idx = bisect_right(node.keys, message.key)
                buckets.setdefault(child_idx, []).append(message)
            target = max(buckets, key=lambda idx: len(buckets[idx]))
            moving = buckets[target]
            moving_ids = set(map(id, moving))
            node.buffer = [m for m in node.buffer if id(m) not in moving_ids]
            self.messages_moved += len(moving)
            self.meter.charge("message_move", len(moving))
            if self.obs.enabled:
                self.obs.event(
                    "betree.buffer_flush", moved=len(moving), pending=len(node.buffer)
                )
            self.obs.observe_hist(
                "betree_messages_per_flush", len(moving), buckets=DEFAULT_SIZE_BUCKETS
            )

            child = node.children[target]
            self._touch(child, dirty=True)
            if child.is_leaf:
                child_splits = self._apply_messages_to_leaf(child, moving)
            else:
                child.buffer.extend(moving)
                child_splits = []
                if len(child.buffer) > capacity:
                    child_splits = self._flush_node(child)
            for sep, new_child in child_splits:
                idx = bisect_right(node.keys, sep)
                node.keys.insert(idx, sep)
                node.children.insert(idx + 1, new_child)
        return self._split_internal_if_needed(node)

    def _split_internal_if_needed(self, node: BeInternalNode) -> List[Tuple[int, object]]:
        """Split ``node`` while its pivots overflow; returns new siblings."""
        splits: List[Tuple[int, object]] = []
        max_pivots = self.config.max_pivots
        while len(node.keys) > max_pivots:
            self.internal_splits += 1
            self.meter.charge("internal_split")
            # The right sibling is peeled off and never re-enters this loop,
            # so it must receive at most ``max_pivots`` keys; the left part
            # (``node``) is re-checked on the next iteration.
            n_keys = len(node.keys)
            point = round(n_keys * self.config.split_factor)
            point = max(point, n_keys - 1 - max_pivots)
            point = max(1, min(point, n_keys - 1))
            promoted = node.keys[point]
            right = self._new_internal()
            right.keys = node.keys[point + 1 :]
            right.children = node.children[point + 1 :]
            del node.keys[point:]
            del node.children[point + 1 :]
            # Partition pending messages by the promoted key (stable).
            left_buffer: List[Message] = []
            right_buffer: List[Message] = []
            for message in node.buffer:
                if message.key < promoted:
                    left_buffer.append(message)
                else:
                    right_buffer.append(message)
            node.buffer = left_buffer
            right.buffer = right_buffer
            self.meter.charge("entry_move", len(right.keys) + len(right.buffer))
            splits.append((promoted, right))
        # Keep the sibling list sorted by separator (they already are: each
        # split peels the right end, so separators decrease; reverse them).
        splits.reverse()
        return splits

    def _apply_messages_to_leaf(
        self, leaf: LeafNode, messages: Sequence[Message]
    ) -> List[Tuple[int, object]]:
        """Apply messages in arrival order; returns (separator, new_leaf) splits."""
        for message in messages:
            idx = bisect_left(leaf.keys, message.key)
            present = idx < len(leaf.keys) and leaf.keys[idx] == message.key
            if message.op == PUT:
                if present:
                    leaf.values[idx] = message.value
                else:
                    leaf.keys.insert(idx, message.key)
                    leaf.values.insert(idx, message.value)
                    self.meter.charge("entry_move", len(leaf.keys) - idx)
            else:  # DELETE
                if present:
                    leaf.keys.pop(idx)
                    leaf.values.pop(idx)
                    self.meter.charge("entry_move", len(leaf.keys) - idx + 1)

        splits: List[Tuple[int, object]] = []
        capacity = self.config.leaf_capacity
        while len(leaf.keys) > capacity:
            self.leaf_splits += 1
            self.meter.charge("leaf_split")
            # The left node keeps ``point`` entries: cap it at the leaf
            # capacity — a large message batch can overfill a leaf by far
            # more than one entry, and only the right remainder re-enters
            # this loop.
            point = round(len(leaf.keys) * self.config.split_factor)
            point = max(1, min(point, len(leaf.keys) - 1, capacity))
            right = self._new_leaf()
            right.keys = leaf.keys[point:]
            right.values = leaf.values[point:]
            del leaf.keys[point:]
            del leaf.values[point:]
            self.meter.charge("entry_move", len(right.keys))
            right.next_leaf = leaf.next_leaf
            leaf.next_leaf = right
            if leaf is self._tail_leaf:
                self._tail_leaf = right
            splits.append((right.keys[0], right))
            leaf = right
        return splits

    # ------------------------------------------------------------------
    # bulk loading
    # ------------------------------------------------------------------
    def bulk_load_append(self, items: Sequence[Tuple[int, object]]) -> None:
        """Append a sorted batch of strictly increasing keys > max_key.

        Builds leaves directly at ``bulk_fill_factor`` and threads pivots up
        the right spine; internal node buffers stay untouched (all pending
        messages route strictly left of the new pivots because bulk keys
        exceed every previously seen key).
        """
        if not items:
            return
        previous = None
        for key, _ in items:
            if previous is not None and key <= previous:
                raise BulkLoadError("bulk batch must be strictly increasing")
            previous = key
        if self._max_key is not None and items[0][0] <= self._max_key:
            raise BulkLoadError(
                f"bulk batch starts at {items[0][0]} but tree max is {self._max_key}"
            )
        self._ensure_root()
        # Message flushes and their cascading splits may have restructured
        # the right spine since the last bulk load; refresh the cached path.
        self._recompute_tail_path()
        fill = max(1, int(self.config.leaf_capacity * self.config.bulk_fill_factor))
        self.meter.charge("bulk_entry", len(items))
        if self.obs.enabled:
            self.obs.event("betree.bulk_load", entries=len(items))
        self.obs.observe_hist(
            "betree_bulk_load_entries", len(items), buckets=DEFAULT_SIZE_BUCKETS
        )

        pos = 0
        total = len(items)
        tail = self._tail_leaf
        if len(tail.keys) < fill:
            take = min(fill - len(tail.keys), total)
            self._touch(tail, dirty=True)
            for key, value in items[pos : pos + take]:
                tail.keys.append(key)
                tail.values.append(value)
            pos += take
        while pos < total:
            take = min(fill, total - pos)
            leaf = self._new_leaf()
            for key, value in items[pos : pos + take]:
                leaf.keys.append(key)
                leaf.values.append(value)
            pos += take
            self._append_leaf(leaf)

        self.bulk_loaded_entries += total
        self._max_key = items[-1][0] if self._max_key is None else max(self._max_key, items[-1][0])
        if self._min_key is None:
            self._min_key = items[0][0]

    def _append_leaf(self, leaf: LeafNode) -> None:
        tail = self._tail_leaf
        leaf.next_leaf = tail.next_leaf
        tail.next_leaf = leaf
        self._tail_leaf = leaf
        if self._root is tail:
            new_root = self._new_internal()
            new_root.keys = [leaf.keys[0]]
            new_root.children = [tail, leaf]
            self._root = new_root
            self.height += 1
            self._recompute_tail_path()
            return
        parent = self._tail_path[-1]
        self._touch(parent, dirty=True)
        parent.keys.append(leaf.keys[0])
        parent.children.append(leaf)
        if len(parent.keys) > self.config.max_pivots:
            self._propagate_spine_split(len(self._tail_path) - 1)

    def _propagate_spine_split(self, level: int) -> None:
        """Split overflowing nodes upward along the cached right spine."""
        while level >= 0:
            node = self._tail_path[level]
            if len(node.keys) <= self.config.max_pivots:
                break
            splits = self._split_internal_if_needed(node)
            if level == 0:
                self._grow_root_with_spine(node, splits)
                return
            parent = self._tail_path[level - 1]
            self._touch(parent, dirty=True)
            for sep, new_node in splits:
                idx = bisect_right(parent.keys, sep)
                parent.keys.insert(idx, sep)
                parent.children.insert(idx + 1, new_node)
            level -= 1
        self._recompute_tail_path()

    def _grow_root_with_spine(self, old_root, splits: List[Tuple[int, object]]) -> None:
        new_root = self._new_internal()
        new_root.children = [old_root]
        for sep, node in splits:
            new_root.keys.append(sep)
            new_root.children.append(node)
        self._root = new_root
        self.height += 1
        self._recompute_tail_path()

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, key: int) -> Optional[object]:
        """Point lookup resolving pending messages top-down."""
        if self._root is None:
            return None
        node = self._root
        while not node.is_leaf:
            self._touch(node)
            # Newest message for the key in this buffer is the last one.
            self.meter.charge("scan_entry", len(node.buffer))
            latest: Optional[Message] = None
            for message in node.buffer:
                if message.key == key:
                    latest = message
            if latest is not None:
                return latest.value if latest.op == PUT else None
            node = node.children[bisect_right(node.keys, key)]
        self._touch(node)
        idx = bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            return node.values[idx]
        return None

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    def range_query(self, lo: int, hi: int) -> List[Tuple[int, object]]:
        """All (key, value) with lo <= key <= hi, newest version wins."""
        if self._root is None or lo > hi:
            return []
        resolved: Dict[int, Message] = {}

        def collect(node, depth: int) -> None:
            if node.is_leaf:
                return
            self._touch(node)
            self.meter.charge("scan_entry", len(node.buffer))
            for message in node.buffer:
                if lo <= message.key <= hi:
                    existing = resolved.get(message.key)
                    # Nearer the root = newer; within a buffer later = newer.
                    if existing is None or depth < existing_depth[message.key] or (
                        depth == existing_depth[message.key] and message.seq > existing.seq
                    ):
                        resolved[message.key] = message
                        existing_depth[message.key] = depth
            left = bisect_right(node.keys, lo)
            right = bisect_right(node.keys, hi)
            for child in node.children[left : right + 1]:
                if not child.is_leaf:
                    collect(child, depth + 1)

        existing_depth: Dict[int, int] = {}
        collect(self._root, 0)

        # Leaf pass via the chain.
        results: Dict[int, object] = {}
        node = self._root
        while not node.is_leaf:
            node = node.children[bisect_right(node.keys, lo)]
        self._touch(node)
        leaf = node
        while leaf is not None:
            keys = leaf.keys
            if keys:
                if keys[0] > hi:
                    break
                start = bisect_left(keys, lo)
                stop = bisect_right(keys, hi)
                self.meter.charge("scan_entry", max(stop - start, 0))
                for i in range(start, stop):
                    if keys[i] not in resolved:
                        results[keys[i]] = leaf.values[i]
                if stop < len(keys):
                    break
            leaf = leaf.next_leaf
            if leaf is not None:
                self._touch(leaf)
        for key, message in resolved.items():
            if message.op == PUT:
                results[key] = message.value
            else:
                results.pop(key, None)
        return sorted(results.items())

    def iter_items(self) -> Iterator[Tuple[int, object]]:
        """All live entries in key order (test/debug helper, uncharged)."""
        if self._root is None:
            return iter(())
        lo = self._min_key if self._min_key is not None else 0
        hi = self._max_key if self._max_key is not None else -1
        meter, self.meter = self.meter, NULL_METER
        try:
            return iter(self.range_query(lo, hi))
        finally:
            self.meter = meter

    def __len__(self) -> int:
        return len(list(self.iter_items()))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def max_key(self) -> Optional[int]:
        return self._max_key

    @property
    def min_key(self) -> Optional[int]:
        return self._min_key

    def pending_messages(self) -> int:
        """Total messages sitting in internal buffers (test helper)."""

        def count(node) -> int:
            if node.is_leaf:
                return 0
            return len(node.buffer) + sum(count(child) for child in node.children)

        return count(self._root) if self._root is not None else 0

    def check_invariants(self) -> None:
        """Validate structure; raises InvariantViolation on any breach."""
        if self._root is None:
            return
        leaf_depths = set()
        capacity = self.config.buffer_capacity

        def recurse(node, depth: int, lo: Optional[int], hi: Optional[int]) -> None:
            if node.is_leaf:
                leaf_depths.add(depth)
                if len(node.keys) > self.config.leaf_capacity:
                    raise InvariantViolation(
                        f"leaf holds {len(node.keys)} > capacity {self.config.leaf_capacity}"
                    )
                for i in range(1, len(node.keys)):
                    if node.keys[i - 1] >= node.keys[i]:
                        raise InvariantViolation("leaf keys not strictly sorted")
                for key in node.keys:
                    if lo is not None and key < lo:
                        raise InvariantViolation(f"leaf key {key} below separator {lo}")
                    if hi is not None and key >= hi:
                        raise InvariantViolation(f"leaf key {key} at/above separator {hi}")
                return
            if len(node.children) != len(node.keys) + 1:
                raise InvariantViolation("internal child count mismatch")
            if len(node.keys) > self.config.max_pivots:
                raise InvariantViolation(
                    f"internal holds {len(node.keys)} > max_pivots {self.config.max_pivots}"
                )
            if len(node.buffer) > capacity:
                raise InvariantViolation("internal buffer above capacity at rest")
            for message in node.buffer:
                if lo is not None and message.key < lo:
                    raise InvariantViolation("buffered message below node range")
                if hi is not None and message.key >= hi:
                    raise InvariantViolation("buffered message above node range")
            for i in range(1, len(node.keys)):
                if node.keys[i - 1] >= node.keys[i]:
                    raise InvariantViolation("internal keys not strictly sorted")
            bounds = [lo] + list(node.keys) + [hi]
            for i, child in enumerate(node.children):
                recurse(child, depth + 1, bounds[i], bounds[i + 1])

        recurse(self._root, 1, None, None)
        if len(leaf_depths) > 1:
            raise InvariantViolation(f"leaves at multiple depths: {leaf_depths}")
