"""Bε-tree messages.

A Bε-tree encodes every mutation as a *message* that trickles down the tree
through per-internal-node buffers [Bender et al., 2015]. We support upsert
(``PUT``) and tombstone (``DELETE``) messages; each carries a monotonically
increasing sequence number so recency can be resolved when a query meets
multiple pending messages for the same key.

Recency invariant (relied upon by queries): messages only move *down* the
tree and a flush moves all of a child's pending messages in arrival order,
so along any root-to-leaf path the message nearest the root is the newest,
and any value already applied to a leaf is older than every pending message
for that key.
"""

from __future__ import annotations

from typing import NamedTuple

PUT = 0
DELETE = 1

_OP_NAMES = {PUT: "PUT", DELETE: "DELETE"}


class Message(NamedTuple):
    """One pending mutation: ``(key, seq, op, value)``."""

    key: int
    seq: int
    op: int
    value: object

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Message({_OP_NAMES[self.op]} key={self.key} seq={self.seq})"
