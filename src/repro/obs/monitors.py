"""Streaming workload monitors and threshold health rules (obs v2).

The paper's premise is that index behavior should adapt to *measured* data
properties; the future self-tuning loop (ROADMAP: "online self-tuning from
observed sortedness drift") needs those properties as live, windowed feeds
rather than end-of-run snapshots. This module is that sensory layer:

* :class:`SortednessDriftMonitor` — windowed (K,L) estimates over the
  insert stream, so a mid-stream sortedness collapse is visible as drift
  between early and late windows;
* :class:`SaturationMonitor` — buffer fill trajectory plus flush-cycle
  accounting (effortless vs sorted flushes, bulk vs top routing);
* :class:`BloomMonitor` — theoretical false-positive rate sampled at each
  flush, compared against the observed rate from the filter counters;
* :class:`MonitorHub` — the bundle components feed; it serializes into the
  ``monitors`` section of BENCH artifacts.

Health evaluation is deliberately snapshot-shaped: :func:`build_signals`
assembles one flat signal dict from (metrics snapshot, monitors snapshot,
trace snapshot) — the exact triple found both on a live
:class:`~repro.obs.Observability` and inside a ``BENCH_*.json`` artifact —
and :func:`evaluate_signals` applies the threshold rules to produce
structured :class:`HealthFinding`\\ s. ``repro doctor`` and ``repro top``
share this one code path, live or post-hoc.

Cost discipline: monitors are opt-in (``Observability(monitors=True)``).
When off, ``obs.monitors`` is ``None`` and the instrumented components pay
a single attribute test per *batch* entry point and per insert — the same
gating budget the tracer's ``enabled`` check already set.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

from repro.sortedness.metrics import RunningSortednessEstimate

#: Insert-stream window size for the (K,L) drift estimates.
DEFAULT_WINDOW = 512

#: How often (in observed keys) the fill trajectory is sampled.
FILL_SAMPLE_EVERY = 64

# -- rule thresholds (module constants so tests and docs can cite them) ----
SORTEDNESS_COLLAPSE_DELTA = 0.20  #: windowed K% rise that flags a collapse
BULK_FRACTION_FLOOR = 0.60  #: bulk-load share below this = undersized buffer
SORTED_FLUSH_CEILING = 0.90  #: sorted-flush share above this = sort-bound
BF_FPR_FLOOR = 0.02  #: observed FPR below this never fires
BF_FPR_FACTOR = 5.0  #: observed FPR must exceed factor x theoretical
LOCK_WAIT_RATIO = 0.25  #: waits / acquisitions ratio that flags contention
FSYNC_P99_NS = 10_000_000.0  #: 10 ms p99 fsync latency threshold
MIN_FLUSHES = 5  #: flush-rule confidence floor
MIN_WINDOWS = 4  #: drift-rule confidence floor
MIN_BF_DECISIONS = 200  #: FPR-rule confidence floor (negatives + FPs)
MIN_LOCK_ACQUIRES = 100  #: contention-rule confidence floor
MIN_FSYNCS = 20  #: fsync-rule confidence floor

SEVERITIES = ("info", "warning", "critical")


@dataclass
class HealthFinding:
    """One structured health verdict from a threshold rule.

    ``remediation`` is phrased against the knobs ``repro.core.advisor``
    actually exposes (buffer_fraction, flush_fraction, split_factor,
    query_sorting_threshold) plus the WAL fsync policy, so the future
    closed-loop tuner can act on findings mechanically.
    """

    severity: str  # "info" | "warning" | "critical"
    code: str
    message: str
    remediation: str
    value: float = 0.0
    threshold: float = 0.0
    attrs: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "severity": self.severity,
            "code": self.code,
            "message": self.message,
            "remediation": self.remediation,
            "value": self.value,
            "threshold": self.threshold,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out


class SortednessDriftMonitor:
    """Windowed (K,L) estimates over the arriving key stream.

    Each full window of ``window`` keys is reduced to (k_fraction,
    l_fraction) with the same descent/displacement estimator the
    SWARE-buffer runs per flush epoch
    (:class:`~repro.sortedness.metrics.RunningSortednessEstimate`), giving
    a drift series: near-sorted ingest holds k% near its baseline; a
    sortedness collapse mid-stream shows as late windows far above it.
    """

    def __init__(self, window: int = DEFAULT_WINDOW):
        if window < 2:
            raise ValueError("window must be >= 2")
        self.window = window
        self.keys_observed = 0
        self.windows: List[Dict[str, float]] = []
        self._estimate = RunningSortednessEstimate()

    def observe_key(self, key: int) -> None:
        self._estimate.observe(key)
        self.keys_observed += 1
        if self._estimate.n >= self.window:
            self._close_window()

    def observe_keys(self, keys: Sequence[int]) -> None:
        for key in keys:
            self.observe_key(key)

    def _close_window(self) -> None:
        est = self._estimate
        self.windows.append(
            {
                "n": float(est.n),
                "k_fraction": est.k_fraction,
                "l_fraction": est.l_fraction,
            }
        )
        est.reset()

    def snapshot(self) -> Dict[str, object]:
        return {
            "window": self.window,
            "keys_observed": self.keys_observed,
            "windows": [dict(w) for w in self.windows],
        }


class SaturationMonitor:
    """Buffer-fill trajectory + flush-cycle routing accounting."""

    def __init__(self, trajectory_capacity: int = 1024):
        self.fill_trajectory: Deque[float] = deque(maxlen=trajectory_capacity)
        self.flushes = 0
        self.sorted_flushes = 0
        self.flush_entries = 0
        self.retained_entries = 0

    def observe_fill(self, fill: float) -> None:
        self.fill_trajectory.append(fill)

    def observe_flush(self, entries: int, retained: int, effortless: bool) -> None:
        self.flushes += 1
        if not effortless:
            self.sorted_flushes += 1
        self.flush_entries += entries
        self.retained_entries += retained

    def snapshot(self) -> Dict[str, object]:
        trajectory = list(self.fill_trajectory)
        return {
            "flushes": self.flushes,
            "sorted_flushes": self.sorted_flushes,
            "flush_entries": self.flush_entries,
            "retained_entries": self.retained_entries,
            "fill_trajectory": trajectory,
            "mean_fill": sum(trajectory) / len(trajectory) if trajectory else 0.0,
        }


class BloomMonitor:
    """Theoretical FPR sampled per flush epoch (the filter resets there)."""

    def __init__(self, sample_capacity: int = 1024):
        self.expected_fpr_samples: Deque[float] = deque(maxlen=sample_capacity)

    def observe_expected_fpr(self, fpr: float) -> None:
        self.expected_fpr_samples.append(fpr)

    @property
    def mean_expected_fpr(self) -> float:
        samples = self.expected_fpr_samples
        return sum(samples) / len(samples) if samples else 0.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "expected_fpr_samples": list(self.expected_fpr_samples),
            "mean_expected_fpr": self.mean_expected_fpr,
        }


class MonitorHub:
    """The monitor bundle an :class:`~repro.obs.Observability` carries.

    Components feed it through four entry points (key stream, flush cycle,
    WAL fsync, lock-manager attachment); everything else is derived at
    snapshot/evaluate time.
    """

    def __init__(self, window: int = DEFAULT_WINDOW):
        self.sortedness = SortednessDriftMonitor(window=window)
        self.saturation = SaturationMonitor()
        self.bloom = BloomMonitor()
        self.fsync_count = 0
        self.fsync_total_ns = 0.0
        self._locks = None  # attached BlockingLockManager, if any

    # -- feeds -------------------------------------------------------------
    def observe_insert(self, key: int, buffer=None) -> None:
        """One arriving key; samples the fill trajectory every few keys."""
        self.sortedness.observe_key(key)
        if buffer is not None and self.sortedness.keys_observed % FILL_SAMPLE_EVERY == 0:
            capacity = buffer.capacity
            if capacity:
                self.saturation.observe_fill(len(buffer) / capacity)

    def observe_inserts(self, keys: Sequence[int], buffer=None) -> None:
        self.sortedness.observe_keys(keys)
        if buffer is not None:
            capacity = buffer.capacity
            if capacity:
                self.saturation.observe_fill(len(buffer) / capacity)

    def observe_flush(
        self,
        entries: int,
        retained: int,
        effortless: bool,
        expected_fpr: Optional[float] = None,
    ) -> None:
        self.saturation.observe_flush(entries, retained, effortless)
        if expected_fpr is not None:
            self.bloom.observe_expected_fpr(expected_fpr)

    def observe_fsync(self, duration_ns: float) -> None:
        self.fsync_count += 1
        self.fsync_total_ns += duration_ns

    def attach_locks(self, manager) -> None:
        """Remember the lock manager so snapshots include contention."""
        self._locks = manager

    # -- reading -----------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """The ``monitors`` section of a BENCH artifact."""
        out: Dict[str, object] = {
            "sortedness": self.sortedness.snapshot(),
            "saturation": self.saturation.snapshot(),
            "bloom": self.bloom.snapshot(),
            "fsync": {"count": self.fsync_count, "total_ns": self.fsync_total_ns},
        }
        if self._locks is not None:
            out["locks"] = self._locks.snapshot()
        return out


# ---------------------------------------------------------------------------
# Signal assembly + threshold rules
# ---------------------------------------------------------------------------

def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def build_signals(
    metrics: Optional[Dict[str, object]],
    monitors: Optional[Dict[str, object]] = None,
    trace: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Flatten (metrics, monitors, trace) snapshots into one signal dict.

    The inputs are exactly the sections of a ``BENCH_*.json`` artifact and
    exactly what a live :class:`~repro.obs.Observability` can produce, so
    both ``repro doctor --from artifact.json`` and a live run evaluate the
    same signals. Gauges written by the ``sware``/``locks`` collectors are
    the fallback for runs that had metrics but no monitor hub.
    """
    gauges: Dict[str, float] = dict((metrics or {}).get("gauges", {}) or {})
    histograms: Dict[str, Dict] = dict((metrics or {}).get("histograms", {}) or {})
    monitors = monitors or {}

    def gauge(name: str, default: float = 0.0) -> float:
        # Collector names deduplicate as sware, sware_2, ... — the first is
        # the primary index of the run, which is what health rules target.
        return float(gauges.get(name, default))

    sortedness = monitors.get("sortedness") or {}
    saturation = monitors.get("saturation") or {}
    bloom = monitors.get("bloom") or {}
    locks = monitors.get("locks") or {}
    fsync_hist = histograms.get("wal_fsync_ns") or {}

    signals: Dict[str, object] = {
        "windows": list(sortedness.get("windows") or []),
        "flushes": gauge("sware_flushes", float(saturation.get("flushes", 0.0))),
        "flushes_with_sort": gauge("sware_flushes_with_sort"),
        "bulk_loaded_entries": gauge("sware_bulk_loaded_entries"),
        "top_inserted_entries": gauge("sware_top_inserted_entries"),
        "bulk_load_fraction": gauge("sware_bulk_load_fraction"),
        "inserts": gauge("sware_inserts"),
        "bf_false_positives": gauge("sware_global_bf_false_positives"),
        "bf_negatives": gauge("sware_global_bf_negatives"),
        "expected_fpr_mean": float(bloom.get("mean_expected_fpr", 0.0)),
        "lock_acquires": float(locks.get("acquires", gauge("locks_acquires"))),
        "lock_waits": float(locks.get("waits", gauge("locks_waits"))),
        "lock_timeouts": float(locks.get("timeouts", gauge("locks_timeouts"))),
        "fsync_count": float(fsync_hist.get("count", 0.0)),
        "fsync_p99_ns": float(fsync_hist.get("p99", 0.0)),
        "trace_dropped": float((trace or {}).get("dropped", 0.0)),
        "mean_fill": float(saturation.get("mean_fill", 0.0)),
    }
    return signals


def evaluate_signals(signals: Dict[str, object]) -> List[HealthFinding]:
    """Apply every threshold rule; returns findings, most severe first."""
    findings: List[HealthFinding] = []

    # Rule 1: sortedness collapse — late windows far above the baseline K%.
    windows = signals.get("windows") or []
    if len(windows) >= MIN_WINDOWS:
        quarter = max(1, len(windows) // 4)
        baseline = _mean([w["k_fraction"] for w in windows[:quarter]])
        recent = _mean([w["k_fraction"] for w in windows[-quarter:]])
        delta = recent - baseline
        if delta > SORTEDNESS_COLLAPSE_DELTA:
            findings.append(
                HealthFinding(
                    severity="critical",
                    code="sortedness_collapse",
                    message=(
                        f"windowed K rose from {baseline:.1%} to {recent:.1%} "
                        f"of keys over {len(windows)} windows — arrival "
                        "sortedness is collapsing mid-stream"
                    ),
                    remediation=(
                        "re-run repro.core.advisor.recommend with the drifted "
                        "(K,L): expect split_factor toward 0.5 and buffer_fraction "
                        "raised toward the L/4 rule's 5% cap (SWAREConfig "
                        "buffer_capacity / split_factor)"
                    ),
                    value=delta,
                    threshold=SORTEDNESS_COLLAPSE_DELTA,
                    attrs={"baseline_k": baseline, "recent_k": recent},
                )
            )

    # Rule 2: undersized buffer — flush batches mostly overlap the tree, so
    # ingestion degrades to top-inserts instead of opportunistic bulk loads.
    flushes = float(signals.get("flushes") or 0.0)
    bulk = float(signals.get("bulk_loaded_entries") or 0.0)
    top = float(signals.get("top_inserted_entries") or 0.0)
    if flushes >= MIN_FLUSHES and (bulk + top) > 0:
        bulk_fraction = bulk / (bulk + top)
        if bulk_fraction < BULK_FRACTION_FLOOR:
            findings.append(
                HealthFinding(
                    severity="warning",
                    code="buffer_undersized",
                    message=(
                        f"only {bulk_fraction:.1%} of flushed entries were "
                        f"bulk-loadable across {flushes:.0f} flushes — the buffer "
                        "is too small to absorb the workload's displacement"
                    ),
                    remediation=(
                        "increase buffer_fraction (advisor sizes it at L/4, "
                        "capped at 5%) or SWAREConfig.buffer_capacity so flushed "
                        "batches clear the tree's max key; consider flush_fraction "
                        "0.5 per the §V-D sweep"
                    ),
                    value=bulk_fraction,
                    threshold=BULK_FRACTION_FLOOR,
                    attrs={"bulk_entries": bulk, "top_entries": top},
                )
            )

    # Rule 3: Bloom FPR degraded — observed rate far above theoretical.
    fps = float(signals.get("bf_false_positives") or 0.0)
    negatives = float(signals.get("bf_negatives") or 0.0)
    decisions = fps + negatives
    if decisions >= MIN_BF_DECISIONS:
        observed = fps / decisions
        expected = float(signals.get("expected_fpr_mean") or 0.0)
        threshold = max(BF_FPR_FLOOR, BF_FPR_FACTOR * expected)
        if observed > threshold:
            findings.append(
                HealthFinding(
                    severity="warning",
                    code="bloom_fpr_degraded",
                    message=(
                        f"observed Bloom FPR {observed:.2%} exceeds "
                        f"{threshold:.2%} (theoretical {expected:.2%}) over "
                        f"{decisions:.0f} absent-key probes"
                    ),
                    remediation=(
                        "raise SWAREConfig.bits_per_entry above 10 or switch "
                        "hash_family (splitmix64 vs murmur3); a saturated filter "
                        "also points at an oversized unsorted tail — lower "
                        "query_sorting_threshold"
                    ),
                    value=observed,
                    threshold=threshold,
                    attrs={"false_positives": fps, "true_negatives": negatives},
                )
            )

    # Rule 4: lock contention — too many acquisitions had to wait.
    acquires = float(signals.get("lock_acquires") or 0.0)
    waits = float(signals.get("lock_waits") or 0.0)
    if acquires >= MIN_LOCK_ACQUIRES:
        ratio = waits / acquires
        if ratio > LOCK_WAIT_RATIO:
            findings.append(
                HealthFinding(
                    severity="warning",
                    code="lock_contention",
                    message=(
                        f"{ratio:.1%} of lock acquisitions waited "
                        f"({waits:.0f}/{acquires:.0f}) — the buffer-wide lock is "
                        "contended"
                    ),
                    remediation=(
                        "grow buffer_capacity to cut flush frequency (flushes "
                        "hold the buffer-wide X lock across the cycle), batch "
                        "writers through put_many, or reduce writer threads"
                    ),
                    value=ratio,
                    threshold=LOCK_WAIT_RATIO,
                )
            )
    timeouts = float(signals.get("lock_timeouts") or 0.0)
    if timeouts > 0:
        findings.append(
            HealthFinding(
                severity="critical",
                code="lock_timeouts",
                message=f"{timeouts:.0f} lock acquisitions timed out",
                remediation=(
                    "raise lock_timeout on ConcurrentSortednessAwareIndex or "
                    "eliminate the flush convoy (larger buffer_capacity, fewer "
                    "concurrent writers)"
                ),
                value=timeouts,
                threshold=0.0,
            )
        )

    # Rule 5: slow WAL fsync tail.
    fsync_count = float(signals.get("fsync_count") or 0.0)
    fsync_p99 = float(signals.get("fsync_p99_ns") or 0.0)
    if fsync_count >= MIN_FSYNCS and fsync_p99 > FSYNC_P99_NS:
        findings.append(
            HealthFinding(
                severity="warning",
                code="wal_fsync_slow",
                message=(
                    f"WAL fsync p99 is {fsync_p99 / 1e6:.1f} ms over "
                    f"{fsync_count:.0f} syncs"
                ),
                remediation=(
                    "switch WriteAheadLog fsync_policy to 'batch' and group "
                    "commits through put_many (append_puts pays one fsync per "
                    "batch), or place the log on faster storage"
                ),
                value=fsync_p99,
                threshold=FSYNC_P99_NS,
            )
        )

    # Rule 6 (informational): the trace window is truncated.
    dropped = float(signals.get("trace_dropped") or 0.0)
    if dropped > 0:
        findings.append(
            HealthFinding(
                severity="info",
                code="trace_truncated",
                message=(
                    f"{dropped:.0f} trace events were dropped by the ring "
                    "buffer — trace-derived analysis is biased toward the end "
                    "of the run"
                ),
                remediation=(
                    "raise Observability(trace_capacity=...) or trace a "
                    "shorter window"
                ),
                value=dropped,
                threshold=0.0,
            )
        )

    findings.sort(key=lambda f: SEVERITIES.index(f.severity), reverse=True)
    return findings
