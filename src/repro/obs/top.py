"""``repro top``: a live, refreshing terminal view of the monitor feeds.

Renders one frame of everything the streaming monitors know — windowed
(K,L) drift, buffer saturation, flush routing, Bloom FPR, WAL fsync
latency, lock contention, trace-ring accounting — plus the current health
verdict from the doctor's rules. The CLI drives :func:`format_dashboard`
in a refresh loop while the observed workload runs on a worker thread;
everything here is read-only over snapshots, so a frame never perturbs
the run it is watching (beyond the collector poll it shares with every
other exporter).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs import Observability
from repro.obs.monitors import build_signals, evaluate_signals

#: Eight-level bar glyphs for the fill/drift strips.
_BARS = " ▁▂▃▄▅▆▇█"


def spark(values: List[float], width: int = 32, peak: float = 1.0) -> str:
    """A sparkline strip of ``values`` clipped to [0, peak]."""
    if not values:
        return "(no samples)"
    tail = values[-width:]
    out = []
    for value in tail:
        level = 0.0 if peak <= 0 else max(0.0, min(1.0, value / peak))
        out.append(_BARS[round(level * (len(_BARS) - 1))])
    return "".join(out)


def format_dashboard(obs: Observability, title: str = "repro top") -> str:
    """One frame of the live dashboard (plain text, ~80 columns)."""
    metrics = obs.registry.snapshot() if obs.registry is not None else {}
    monitors: Dict[str, object] = (
        obs.monitors.snapshot() if obs.monitors is not None else {}
    )
    trace = obs.tracer.snapshot() if obs.tracer is not None else {}
    signals = build_signals(metrics, monitors, trace)
    findings = evaluate_signals(signals)
    actionable = [f for f in findings if f.severity in ("warning", "critical")]

    sortedness = monitors.get("sortedness") or {}
    saturation = monitors.get("saturation") or {}
    windows = sortedness.get("windows") or []
    fills = saturation.get("fill_trajectory") or []

    lines = [title, "=" * len(title)]

    k_series = [w["k_fraction"] for w in windows]
    latest = windows[-1] if windows else None
    lines.append(
        "sortedness   K% {}  {}".format(
            spark(k_series),
            f"now K={latest['k_fraction']:.0%} L={latest['l_fraction']:.0%} "
            f"({len(windows)} windows, {sortedness.get('keys_observed', 0)} keys)"
            if latest
            else "(warming up)",
        )
    )

    flushes = signals["flushes"]
    with_sort = signals["flushes_with_sort"]
    bulk = signals["bulk_loaded_entries"]
    top_ins = signals["top_inserted_entries"]
    routed = bulk + top_ins
    lines.append(
        "buffer       fill {}  mean {:.0%}".format(
            spark(list(fills)), float(saturation.get("mean_fill", 0.0))
        )
    )
    lines.append(
        f"flushes      {flushes:.0f} total, {with_sort:.0f} with sort; "
        f"bulk-loaded {bulk / routed if routed else 0.0:.0%} of "
        f"{routed:.0f} routed entries"
    )

    fps = signals["bf_false_positives"]
    negatives = signals["bf_negatives"]
    decisions = fps + negatives
    observed = fps / decisions if decisions else 0.0
    lines.append(
        f"bloom        observed FPR {observed:.2%} "
        f"(theoretical {signals['expected_fpr_mean']:.2%}, "
        f"{decisions:.0f} absent-key probes)"
    )

    lines.append(
        f"wal fsync    {signals['fsync_count']:.0f} syncs, "
        f"p99 {signals['fsync_p99_ns'] / 1e6:.2f} ms"
    )

    acquires = signals["lock_acquires"]
    waits = signals["lock_waits"]
    lines.append(
        f"locks        {acquires:.0f} acquires, {waits:.0f} waited "
        f"({waits / acquires if acquires else 0.0:.1%}), "
        f"{signals['lock_timeouts']:.0f} timeouts"
    )

    recorded = trace.get("recorded", 0)
    dropped = trace.get("dropped", 0)
    trace_line = f"trace        {recorded} events recorded"
    if dropped:
        trace_line += f", {dropped} dropped (ring truncated)"
    lines.append(trace_line)

    if actionable:
        worst = actionable[0].severity.upper()
        codes = ", ".join(f.code for f in actionable)
        lines.append(f"health       {worst}: {codes}")
    else:
        lines.append("health       OK")
    return "\n".join(lines) + "\n"


def live_loop(
    obs: Observability,
    done,
    interval: float = 0.5,
    frames: Optional[int] = None,
    clear: bool = True,
    out=None,
    title: str = "repro top",
) -> int:
    """Refresh the dashboard until ``done`` is set (or ``frames`` printed).

    ``done`` is a :class:`threading.Event` owned by the workload thread.
    Returns the number of frames rendered; always renders a final frame
    after ``done`` fires so the last state is what remains on screen.
    """
    import sys

    out = out if out is not None else sys.stdout
    rendered = 0
    while True:
        finished = done.wait(interval if rendered else 0.0)
        if clear:
            out.write("\x1b[2J\x1b[H")
        out.write(format_dashboard(obs, title=title))
        out.flush()
        rendered += 1
        if finished or (frames is not None and rendered >= frames):
            return rendered
