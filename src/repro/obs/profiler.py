"""Sampling profiler: wall-clock time attribution by layer.

A :class:`SamplingProfiler` runs a background thread that snapshots every
other thread's Python stack (``sys._current_frames``) at a configurable
rate, off by default. Each sample is attributed to a *layer* — buffer,
bloom, zonemap, btree, betree, lsm, wal, kernels, … — by mapping the
innermost ``repro`` frame's module through :data:`LAYER_PREFIXES`, so a run
answers "where does the wall time go?" at the same granularity the paper's
Fig. 13 breakdown uses for simulated cost.

Two output shapes:

* :meth:`collapsed` — collapsed-stack lines (``frame;frame;frame count``),
  the input format of every flamegraph renderer;
* :meth:`layer_table` / :meth:`snapshot` — the per-layer sample counts and
  fractions that land in the ``profile`` section of BENCH artifacts.

Cost model: the profiled program runs **zero** additional code — sampling
happens entirely on the profiler's own thread, which wakes ``hz`` times a
second, grabs the interpreter's frame map, and walks at most
``max_depth`` frames per thread. At the default rate the steal is a few
hundred microseconds per second of run (≤5% is asserted by the obs-smoke
CI job, with :func:`measure_overhead` as the measuring stick). When no
profiler is constructed there is nothing to pay anywhere: no hook, no
check, no attribute — the hot paths do not know the module exists.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter
from typing import Callable, Dict, List, Optional, Tuple

#: Default sampling rate. A prime-ish off-round frequency avoids lockstep
#: with periodic program behavior (the classic profiler aliasing trap).
DEFAULT_HZ = 67.0

#: Ordered (module prefix, layer) table; first match wins, so the specific
#: entries must precede their package prefixes.
LAYER_PREFIXES: Tuple[Tuple[str, str], ...] = (
    ("repro.core.buffer", "buffer"),
    ("repro.core.zonemap", "zonemap"),
    ("repro.core.sware", "sware"),
    ("repro.core.concurrent", "concurrency"),
    ("repro.core.locks", "concurrency"),
    ("repro.core.concurrency", "concurrency"),
    ("repro.filters", "bloom"),
    ("repro.btree", "btree"),
    ("repro.betree", "betree"),
    ("repro.lsm", "lsm"),
    ("repro.storage.wal", "wal"),
    ("repro.storage", "storage"),
    ("repro.kernels", "kernels"),
    ("repro.sortedness", "sortedness"),
    ("repro.search", "search"),
    ("repro.bench", "bench"),
    ("repro.workloads", "bench"),
    ("repro.obs", "obs"),
    ("repro", "repro-other"),
)

#: Layer assigned to samples whose stack never enters ``repro``.
OTHER_LAYER = "other"


def layer_for_module(module: str) -> Optional[str]:
    """Layer for a module name, or None when the module is outside repro."""
    for prefix, layer in LAYER_PREFIXES:
        if module == prefix or module.startswith(prefix + "."):
            return layer
    return None


class SamplingProfiler:
    """See module docstring."""

    def __init__(self, hz: float = DEFAULT_HZ, max_depth: int = 64):
        if hz <= 0:
            raise ValueError("hz must be positive")
        self.hz = hz
        self.max_depth = max_depth
        self.samples = 0  # stack samples taken (one per thread per tick)
        self.ticks = 0  # sampling wakeups
        self.layer_samples: Counter = Counter()
        self.stack_samples: Counter = Counter()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._exclude: set = set()
        self._started_at: Optional[float] = None
        self.duration_s = 0.0

    # -- lifecycle ---------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        if self.running:
            return self
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._loop, name="repro-profiler", daemon=True
        )
        # Exclude only the sampling thread itself: its ident lands in the
        # set before the first sample because _loop registers it on entry.
        self._exclude = set()
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join()
        self._thread = None
        if self._started_at is not None:
            self.duration_s += time.perf_counter() - self._started_at
            self._started_at = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _loop(self) -> None:
        self._exclude.add(threading.get_ident())
        period = 1.0 / self.hz
        while not self._stop.wait(period):
            self.sample_once()

    # -- sampling ----------------------------------------------------------
    def sample_once(self) -> int:
        """Take one sample of every foreign thread; returns threads seen."""
        self.ticks += 1
        seen = 0
        for ident, frame in sys._current_frames().items():
            if ident in self._exclude:
                continue
            seen += 1
            self._attribute(frame)
        return seen

    def _attribute(self, frame) -> None:
        """Attribute one thread's stack to a layer + collapsed stack."""
        stack: List[str] = []
        layer: Optional[str] = None
        depth = 0
        while frame is not None and depth < self.max_depth:
            module = frame.f_globals.get("__name__", "?")
            stack.append(f"{module}.{frame.f_code.co_name}")
            if layer is None:
                # Innermost repro frame wins: that is where time is spent.
                layer = layer_for_module(module)
            frame = frame.f_back
            depth += 1
        stack.reverse()  # collapsed-stack order is outermost-first
        self.samples += 1
        self.layer_samples[layer if layer is not None else OTHER_LAYER] += 1
        self.stack_samples[tuple(stack)] += 1

    # -- reading -----------------------------------------------------------
    def collapsed(self, limit: Optional[int] = None) -> str:
        """Collapsed-stack flamegraph lines: ``frame;frame;frame count``."""
        rows = self.stack_samples.most_common(limit)
        return "\n".join(f"{';'.join(stack)} {count}" for stack, count in rows)

    def layer_table(self) -> Dict[str, Dict[str, float]]:
        """Per-layer sample counts, fractions, and wall-time estimates."""
        total = sum(self.layer_samples.values())
        period_ns = 1e9 / self.hz
        return {
            layer: {
                "samples": float(count),
                "fraction": count / total if total else 0.0,
                "est_wall_ns": count * period_ns,
            }
            for layer, count in sorted(
                self.layer_samples.items(), key=lambda kv: -kv[1]
            )
        }

    def format_table(self) -> str:
        """The per-layer time table, human-formatted for reports."""
        table = self.layer_table()
        if not table:
            return "(no profile samples collected)\n"
        lines = [f"{'layer':<14} {'samples':>8} {'share':>7} {'est wall':>10}"]
        for layer, row in table.items():
            lines.append(
                f"{layer:<14} {int(row['samples']):>8} "
                f"{row['fraction']:>6.1%} {row['est_wall_ns'] / 1e6:>8.1f} ms"
            )
        return "\n".join(lines) + "\n"

    def snapshot(self, collapsed_limit: int = 200) -> Dict[str, object]:
        """The ``profile`` section of a BENCH artifact."""
        return {
            "hz": self.hz,
            "samples": self.samples,
            "ticks": self.ticks,
            "duration_s": self.duration_s
            + (
                time.perf_counter() - self._started_at
                if self._started_at is not None
                else 0.0
            ),
            "layers": self.layer_table(),
            "collapsed": self.collapsed(limit=collapsed_limit).splitlines(),
        }


def measure_overhead(
    workload: Callable[[], object],
    hz: float = DEFAULT_HZ,
    repeats: int = 3,
) -> Dict[str, float]:
    """Measure the profiler's wall-clock overhead on ``workload``.

    Runs the workload ``repeats`` times bare and ``repeats`` times under a
    profiler, takes the best of each (the standard noise-floor estimator
    used by the perf-gate benches), and reports the ratio. The obs-smoke CI
    job asserts ``ratio <= 1.05`` at the default rate.
    """
    def best(profiled: bool) -> float:
        runs = []
        for _ in range(repeats):
            profiler = SamplingProfiler(hz=hz) if profiled else None
            if profiler is not None:
                profiler.start()
            start = time.perf_counter()
            workload()
            elapsed = time.perf_counter() - start
            if profiler is not None:
                profiler.stop()
            runs.append(elapsed)
        return min(runs)

    bare = best(False)
    under = best(True)
    return {
        "bare_s": bare,
        "profiled_s": under,
        "ratio": under / bare if bare else 1.0,
    }
