"""Ring-buffered structured event tracing with causal identity.

A :class:`Tracer` records :class:`TraceEvent` rows — point events and spans
(begin/end with duration) — into a bounded ring so long runs cannot grow
memory without bound. Span nesting mirrors
:meth:`repro.storage.costmodel.Meter.bucket`: a flush cycle is a span, the
KL-sort inside it is a deeper span, Bloom skips inside a lookup are point
events at the current depth.

Since obs v2, every recorded row also carries *causal identity*:

* ``span_id`` — unique per span (point events get none);
* ``parent_id`` — the span open on the same thread when this row was
  recorded, so a flush cycle's sorts, routing decisions, WAL appends and
  backend bulk loads all chain back to the operation that triggered them;
* ``trace_id`` — the identity of the whole causal tree. A span that opens
  with no parent (a top-level ``put_many``, a lookup, a checkpoint) starts
  a fresh trace; everything nested under it inherits the id;
* ``tid`` — a small per-tracer thread number (``threading.get_ident``
  values are large and unstable; a dense mapping renders better in trace
  viewers), recorded so the concurrent front-end's interleavings are
  visible per thread.

Nesting state is thread-local: two threads flushing concurrently build two
independent, correctly-parented trees. The ring buffer itself is shared and
guarded by a small lock (enabled tracing only; see below).

Disabled tracing (the default) must cost nothing measurable on hot paths:
``event`` returns after one attribute test, and ``span`` hands back a shared
no-op context manager instead of allocating anything.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional


@dataclass
class TraceEvent:
    """One traced occurrence; ``dur_ns`` is None for point events."""

    name: str
    t_ns: int
    depth: int
    dur_ns: Optional[int] = None
    attrs: Dict[str, object] = field(default_factory=dict)
    trace_id: Optional[int] = None
    span_id: Optional[int] = None
    parent_id: Optional[int] = None
    tid: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"name": self.name, "t_ns": self.t_ns, "depth": self.depth}
        if self.dur_ns is not None:
            out["dur_ns"] = self.dur_ns
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        for key in ("trace_id", "span_id", "parent_id", "tid"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, **attrs) -> None:
        return None


NULL_SPAN = _NullSpan()


class _ThreadState:
    """Per-thread nesting state: the stack of open span ids + trace id."""

    __slots__ = ("stack", "trace_id")

    def __init__(self) -> None:
        self.stack: List[int] = []
        self.trace_id: Optional[int] = None


class _Span:
    """A live span: records its duration, identity and attributes on exit."""

    __slots__ = ("_tracer", "name", "attrs", "_start", "_span_id", "_parent_id", "_trace_id")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._start = 0
        self._span_id = 0
        self._parent_id: Optional[int] = None
        self._trace_id: Optional[int] = None

    def set(self, **attrs) -> None:
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        state = tracer._thread_state()
        self._span_id = next(tracer._ids)
        if state.stack:
            self._parent_id = state.stack[-1]
            self._trace_id = state.trace_id
        else:
            # A parentless span roots a fresh causal tree.
            self._parent_id = None
            self._trace_id = state.trace_id = next(tracer._ids)
        state.stack.append(self._span_id)
        self._start = tracer._clock()
        return self

    def __exit__(self, *exc) -> None:
        tracer = self._tracer
        now = tracer._clock()
        state = tracer._thread_state()
        if state.stack and state.stack[-1] == self._span_id:
            state.stack.pop()
        if not state.stack:
            state.trace_id = None
        tracer._record(
            TraceEvent(
                name=self.name,
                t_ns=self._start,
                depth=len(state.stack),
                dur_ns=now - self._start,
                attrs=self.attrs,
                trace_id=self._trace_id,
                span_id=self._span_id,
                parent_id=self._parent_id,
                tid=tracer._tid(),
            )
        )


class Tracer:
    """See module docstring."""

    def __init__(self, capacity: int = 8192, enabled: bool = False, clock=None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.enabled = enabled
        self._clock = clock if clock is not None else time.perf_counter_ns
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._tls = threading.local()
        self._tids: Dict[int, int] = {}
        self.dropped = 0
        self.recorded = 0

    # -- identity ----------------------------------------------------------
    def _thread_state(self) -> _ThreadState:
        state = getattr(self._tls, "state", None)
        if state is None:
            state = self._tls.state = _ThreadState()
        return state

    def _tid(self) -> int:
        """Dense thread number for the calling thread (1, 2, ...)."""
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with self._lock:
                tid = self._tids.setdefault(ident, len(self._tids) + 1)
        return tid

    @property
    def _depth(self) -> int:
        """Current nesting depth on the calling thread (test/debug aid)."""
        return len(self._thread_state().stack)

    # -- control -----------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.dropped = 0
            self.recorded = 0
        state = self._thread_state()
        state.stack.clear()
        state.trace_id = None

    # -- recording ---------------------------------------------------------
    def _record(self, event: TraceEvent) -> None:
        with self._lock:
            if len(self._events) == self.capacity:
                self.dropped += 1
            self._events.append(event)
            self.recorded += 1

    def event(self, name: str, **attrs) -> None:
        """Record a point event (no-op while disabled)."""
        if not self.enabled:
            return
        state = self._thread_state()
        self._record(
            TraceEvent(
                name=name,
                t_ns=self._clock(),
                depth=len(state.stack),
                attrs=attrs,
                trace_id=state.trace_id,
                parent_id=state.stack[-1] if state.stack else None,
                tid=self._tid(),
            )
        )

    def span(self, name: str, **attrs):
        """A context manager timing a phase; nests like ``Meter.bucket``."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, attrs)

    # -- reading -----------------------------------------------------------
    def events(self) -> List[TraceEvent]:
        with self._lock:
            return list(self._events)

    def snapshot(self) -> Dict[str, object]:
        """Ring-buffer accounting, for JSON snapshots and bench artifacts.

        ``truncated`` is the headline flag: when True, ``dropped`` earlier
        events were evicted by the ring and any analysis over the retained
        window is biased toward the end of the run.
        """
        return {
            "recorded": self.recorded,
            "dropped": self.dropped,
            "capacity": self.capacity,
            "truncated": self.dropped > 0,
        }

    def __len__(self) -> int:
        return len(self._events)
