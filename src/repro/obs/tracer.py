"""Ring-buffered structured event tracing.

A :class:`Tracer` records :class:`TraceEvent` rows — point events and spans
(begin/end with duration) — into a bounded ring so long runs cannot grow
memory without bound. Span nesting mirrors
:meth:`repro.storage.costmodel.Meter.bucket`: a flush cycle is a span, the
KL-sort inside it is a deeper span, Bloom skips inside a lookup are point
events at the current depth.

Disabled tracing (the default) must cost nothing measurable on hot paths:
``event`` returns after one attribute test, and ``span`` hands back a shared
no-op context manager instead of allocating anything.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional


@dataclass
class TraceEvent:
    """One traced occurrence; ``dur_ns`` is None for point events."""

    name: str
    t_ns: int
    depth: int
    dur_ns: Optional[int] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"name": self.name, "t_ns": self.t_ns, "depth": self.depth}
        if self.dur_ns is not None:
            out["dur_ns"] = self.dur_ns
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, **attrs) -> None:
        return None


NULL_SPAN = _NullSpan()


class _Span:
    """A live span: records its duration and attributes on exit."""

    __slots__ = ("_tracer", "name", "attrs", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._start = 0

    def set(self, **attrs) -> None:
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        self._start = self._tracer._clock()
        self._tracer._depth += 1
        return self

    def __exit__(self, *exc) -> None:
        tracer = self._tracer
        tracer._depth -= 1
        now = tracer._clock()
        tracer._record(
            TraceEvent(
                name=self.name,
                t_ns=self._start,
                depth=tracer._depth,
                dur_ns=now - self._start,
                attrs=self.attrs,
            )
        )


class Tracer:
    """See module docstring."""

    def __init__(self, capacity: int = 8192, enabled: bool = False, clock=None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.enabled = enabled
        self._clock = clock if clock is not None else time.perf_counter_ns
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._depth = 0
        self.dropped = 0
        self.recorded = 0

    # -- control -----------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0
        self.recorded = 0
        self._depth = 0

    # -- recording ---------------------------------------------------------
    def _record(self, event: TraceEvent) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)
        self.recorded += 1

    def event(self, name: str, **attrs) -> None:
        """Record a point event (no-op while disabled)."""
        if not self.enabled:
            return
        self._record(
            TraceEvent(name=name, t_ns=self._clock(), depth=self._depth, attrs=attrs)
        )

    def span(self, name: str, **attrs):
        """A context manager timing a phase; nests like ``Meter.bucket``."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, attrs)

    # -- reading -----------------------------------------------------------
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)
