"""``repro doctor``: run (or load) a workload and diagnose its health.

The doctor closes the loop the monitors open: it collects the three
snapshots health rules understand — metrics, monitors, trace — from either
a live instrumented run or a saved ``BENCH_*.json`` artifact, evaluates
every threshold rule in :mod:`repro.obs.monitors`, and renders the findings
with remediation hints phrased against the knobs
:mod:`repro.core.advisor` exposes.

Two seeded scenarios make the diagnosis testable end to end:

* ``healthy`` — the paper's near-sorted sweet spot (K=10%, L=5%) with an
  adequately sized buffer; evaluates clean (no warning/critical findings);
* ``drift`` — the same stream whose sortedness collapses mid-run (the
  second part is a uniform shuffle) in front of an undersized buffer; the
  doctor reports the collapse (critical) and the degraded bulk-load
  fraction (warning).

Both the live path and the artifact path go through
:func:`~repro.obs.monitors.build_signals`, so ``repro doctor`` and
``repro doctor --from artifact.json`` can never disagree about the same
run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs import Observability, observe
from repro.obs.monitors import (
    HealthFinding,
    build_signals,
    evaluate_signals,
)

#: The seeded scenarios (also the CLI choices).
SCENARIOS = ("healthy", "drift")


def run_scenario(
    scenario: str = "healthy",
    n: int = 20_000,
    seed: int = 7,
    read_fraction: float = 0.3,
    buffer_fraction: Optional[float] = None,
    trace: bool = False,
    obs: Optional[Observability] = None,
) -> Observability:
    """Run one seeded scenario under full monitoring; returns its obs.

    Pass ``obs`` to observe the run through an existing object (``repro
    top`` shares one between its workload thread and its render loop);
    by default a fresh monitored Observability is created.

    ``drift`` splits the stream 50/50: a (K=10%, L=5%) near-sorted prefix,
    then a uniform shuffle of the next key range — the arrival sortedness
    collapse of the paper's motivating scenario — in front of a buffer a
    quarter of the healthy size.
    """
    from repro.bench.experiments import common
    from repro.bench.runner import run_phases
    from repro.sortedness.generator import generate_kl_keys, scrambled_keys

    if scenario not in SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r} (choices: {SCENARIOS})")

    if scenario == "healthy":
        keys = list(common.keys_for(n, 0.10, 0.05, seed=seed))
        fraction = buffer_fraction if buffer_fraction is not None else 0.02
    else:
        n_sorted = n // 2
        keys = generate_kl_keys(n_sorted, 0.10, 0.05, seed=seed)
        # The collapse: the rest of the key range arrives uniformly
        # shuffled, so late drift windows sit near K%=100.
        keys = keys + scrambled_keys(n - n_sorted, seed=seed + 1, start=n_sorted)
        fraction = buffer_fraction if buffer_fraction is not None else 0.005

    ops = common.mixed_ops(tuple(keys), read_fraction, seed=seed)
    if obs is None:
        obs = Observability(trace=trace, monitors=True)
    with observe(obs):
        run_phases(
            common.sa_btree_factory(common.buffer_config(n, fraction)),
            [("mixed", ops)],
            label=f"doctor-{scenario}",
        )
    return obs


def evaluate_obs(obs: Observability, poll: bool = True) -> List[HealthFinding]:
    """Evaluate health rules against a live observability object."""
    signals = build_signals(
        obs.registry.snapshot(poll=poll) if obs.registry is not None else None,
        obs.monitors.snapshot() if obs.monitors is not None else None,
        obs.tracer.snapshot() if obs.tracer is not None else None,
    )
    return evaluate_signals(signals)


def evaluate_artifact(doc: Dict[str, object]) -> List[HealthFinding]:
    """Evaluate health rules against a saved ``BENCH_*.json`` artifact."""
    return evaluate_signals(
        build_signals(doc.get("metrics"), doc.get("monitors"), doc.get("trace"))
    )


_SEVERITY_MARK = {"critical": "✗", "warning": "!", "info": "·"}


def split_findings(
    findings: List[HealthFinding],
) -> Tuple[List[HealthFinding], List[HealthFinding]]:
    """(actionable, notes): warning/critical findings vs info notes."""
    actionable = [f for f in findings if f.severity in ("warning", "critical")]
    notes = [f for f in findings if f.severity == "info"]
    return actionable, notes


def format_report(findings: List[HealthFinding], source: str = "run") -> str:
    """The human findings report (severities, values, remediation hints)."""
    actionable, notes = split_findings(findings)
    lines = [f"repro doctor — {source}"]
    if not actionable:
        lines.append("health: OK — no findings")
    else:
        worst = actionable[0].severity
        lines.append(
            f"health: {worst.upper()} — "
            f"{len(actionable)} finding{'s' if len(actionable) != 1 else ''}"
        )
    for finding in actionable:
        mark = _SEVERITY_MARK.get(finding.severity, "?")
        lines.append(f"  {mark} [{finding.severity}] {finding.code}")
        lines.append(f"      {finding.message}")
        lines.append(f"      fix: {finding.remediation}")
    for note in notes:
        lines.append(f"  · [note] {note.code}: {note.message}")
    return "\n".join(lines) + "\n"


def report_document(
    findings: List[HealthFinding], source: str = "run"
) -> Dict[str, object]:
    """The machine-readable doctor report (the CI-uploaded artifact)."""
    actionable, notes = split_findings(findings)
    return {
        "schema": "repro-doctor/v1",
        "source": source,
        "healthy": not actionable,
        "findings": [f.to_dict() for f in actionable],
        "notes": [f.to_dict() for f in notes],
    }
