"""Exporters: Prometheus text exposition, JSON snapshots, trace views.

Every exporter works from the *snapshot* form (plain dicts) so a registry
deserialized from a ``BENCH_<experiment>.json`` artifact renders exactly
like a live one — ``repro stats --from artifact.json`` and an in-process
registry share this code path.

Trace rendering has two shapes: the human timeline (:func:`render_trace`)
and the Chrome trace-event / Perfetto JSON form (:func:`to_perfetto`),
loadable in ``chrome://tracing`` or https://ui.perfetto.dev. The Perfetto
document maps spans to complete (``"ph": "X"``) events and point events to
instants, keyed by the tracer's dense thread ids, with the causal ids
(trace/span/parent) carried in ``args`` so a flush cycle's full tree is
inspectable in a real viewer.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Optional, Sequence

from repro.obs.registry import MetricsRegistry, sanitize_name
from repro.obs.tracer import TraceEvent, Tracer


def _fmt_value(value: float) -> str:
    if math.isnan(value):
        # Prometheus spells the not-a-number literal "NaN"; repr() would
        # emit "nan", which some scrapers reject.
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def snapshot_to_prometheus(
    snapshot: Dict[str, object],
    prefix: str = "repro",
    help_texts: Optional[Dict[str, str]] = None,
) -> str:
    """Render a registry snapshot in the Prometheus text exposition format.

    Metric names are sanitized into the legal charset on the way out (a
    snapshot loaded from an artifact may carry dots or dashes that a live
    registry would have rejected at creation time), every metric gets a
    ``# HELP`` line (from ``help_texts`` when provided, falling back to a
    generated description), and non-finite values are spelled per the
    exposition format (``NaN`` / ``+Inf`` / ``-Inf``).
    """
    help_texts = help_texts or {}

    def emit_header(lines: List[str], full: str, name: str, kind: str) -> None:
        text = help_texts.get(name) or f"{name.replace('_', ' ')} ({kind})"
        lines.append(f"# HELP {full} {text}")
        lines.append(f"# TYPE {full} {kind}")

    lines: List[str] = []
    for name, value in sorted((snapshot.get("counters") or {}).items()):
        full = f"{prefix}_{sanitize_name(name)}"
        emit_header(lines, full, name, "counter")
        lines.append(f"{full} {_fmt_value(float(value))}")
    for name, value in sorted((snapshot.get("gauges") or {}).items()):
        full = f"{prefix}_{sanitize_name(name)}"
        emit_header(lines, full, name, "gauge")
        lines.append(f"{full} {_fmt_value(float(value))}")
    for name, data in sorted((snapshot.get("histograms") or {}).items()):
        full = f"{prefix}_{sanitize_name(name)}"
        emit_header(lines, full, name, "histogram")
        running = 0
        for bound, count in zip(data["buckets"], data["counts"]):
            running += count
            lines.append(f'{full}_bucket{{le="{_fmt_value(float(bound))}"}} {running}')
        total = running + data["counts"][len(data["buckets"])]
        lines.append(f'{full}_bucket{{le="+Inf"}} {total}')
        lines.append(f"{full}_sum {_fmt_value(float(data['sum']))}")
        lines.append(f"{full}_count {total}")
    return "\n".join(lines) + "\n"


def to_prometheus(registry: MetricsRegistry, prefix: str = "repro") -> str:
    return snapshot_to_prometheus(
        registry.snapshot(), prefix=prefix, help_texts=registry.help_texts()
    )


def to_json(registry: MetricsRegistry, indent: Optional[int] = 2) -> str:
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


def _fmt_attrs(attrs: Dict[str, object]) -> str:
    return " ".join(f"{k}={v}" for k, v in attrs.items())


def render_trace(
    tracer: Optional[Tracer],
    limit: Optional[int] = None,
    events: Optional[Sequence[TraceEvent]] = None,
) -> str:
    """A human timeline: relative ms, indented by span depth.

    Spans are recorded at exit, so the buffer is already in end-time order;
    indentation (two spaces per depth) restores the nesting visually. A
    nonzero drop count is always surfaced — silently rendering a truncated
    window would bias any analysis toward the end of the run.
    """
    rows = list(events) if events is not None else tracer.events()
    if limit is not None:
        rows = rows[-limit:]
    if not rows:
        if tracer is not None and tracer.dropped:
            return (
                "(no trace events retained; "
                f"{tracer.dropped} dropped by the ring buffer)\n"
            )
        return "(no trace events recorded)\n"
    t0 = min(event.t_ns for event in rows)
    lines = []
    for event in rows:
        rel_ms = (event.t_ns - t0) / 1e6
        indent = "  " * event.depth
        dur = f" [{event.dur_ns / 1e6:.3f} ms]" if event.dur_ns is not None else ""
        attrs = f"  {_fmt_attrs(event.attrs)}" if event.attrs else ""
        lines.append(f"{rel_ms:10.3f} ms  {indent}{event.name}{dur}{attrs}")
    if tracer is not None and tracer.dropped:
        lines.append(
            f"WARNING: trace truncated — {tracer.dropped} earlier events "
            f"dropped by the ring buffer (capacity {tracer.capacity})"
        )
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Chrome trace-event / Perfetto JSON
# ---------------------------------------------------------------------------

PERFETTO_PID = 1


def _json_safe(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def to_perfetto(
    events: Iterable[TraceEvent],
    tracer: Optional[Tracer] = None,
    process_name: str = "repro",
) -> Dict[str, object]:
    """Convert trace events into a Chrome trace-event (JSON object) document.

    Spans become complete events (``ph: "X"`` with microsecond ``ts``/``dur``
    relative to the earliest retained event); point events become thread
    instants (``ph: "i"``, ``s: "t"``). Causal ids land in ``args`` under
    ``trace_id``/``span_id``/``parent_id``; metadata events name the process
    and each tracer thread so multi-threaded runs render as separate rows.
    """
    rows = list(events)
    trace_events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": PERFETTO_PID,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    tids = sorted({event.tid for event in rows if event.tid is not None})
    for tid in tids:
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": PERFETTO_PID,
                "tid": tid,
                "args": {"name": f"tracer-thread-{tid}"},
            }
        )
    t0 = min((event.t_ns for event in rows), default=0)
    for event in rows:
        args: Dict[str, object] = {
            key: _json_safe(value) for key, value in event.attrs.items()
        }
        for key in ("trace_id", "span_id", "parent_id"):
            value = getattr(event, key)
            if value is not None:
                args[key] = value
        row: Dict[str, object] = {
            "name": event.name,
            "cat": event.name.split(".", 1)[0],
            "pid": PERFETTO_PID,
            "tid": event.tid if event.tid is not None else 0,
            "ts": (event.t_ns - t0) / 1e3,
            "args": args,
        }
        if event.dur_ns is not None:
            row["ph"] = "X"
            row["dur"] = event.dur_ns / 1e3
        else:
            row["ph"] = "i"
            row["s"] = "t"
        trace_events.append(row)
    doc: Dict[str, object] = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "otherData": {"producer": "repro.obs.export"},
    }
    if tracer is not None:
        doc["otherData"]["trace"] = tracer.snapshot()  # type: ignore[index]
    return doc


_PERFETTO_PHASES = {"X", "i", "M", "B", "E"}


def validate_perfetto(doc: object) -> List[str]:
    """Schema check for the trace-event JSON form (empty list means valid).

    Mirrors what the Perfetto/Chrome importers require: a ``traceEvents``
    list whose rows carry ``name``/``ph``/``pid``/``tid``, numeric ``ts``
    on non-metadata rows, and a numeric ``dur`` on complete events.
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["trace document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for i, row in enumerate(events):
        if not isinstance(row, dict):
            errors.append(f"traceEvents[{i}] is not an object")
            continue
        if not isinstance(row.get("name"), str) or not row.get("name"):
            errors.append(f"traceEvents[{i}].name must be a non-empty string")
        phase = row.get("ph")
        if phase not in _PERFETTO_PHASES:
            errors.append(f"traceEvents[{i}].ph {phase!r} is not a known phase")
        for key in ("pid", "tid"):
            if not isinstance(row.get(key), int):
                errors.append(f"traceEvents[{i}].{key} must be an integer")
        if phase != "M":
            if not isinstance(row.get("ts"), (int, float)):
                errors.append(f"traceEvents[{i}].ts must be numeric")
        if phase == "X" and not isinstance(row.get("dur"), (int, float)):
            errors.append(f"traceEvents[{i}].dur must be numeric on complete events")
        if phase == "i" and row.get("s") not in ("t", "p", "g"):
            errors.append(f"traceEvents[{i}].s must be one of t/p/g on instants")
        if "args" in row and not isinstance(row["args"], dict):
            errors.append(f"traceEvents[{i}].args must be an object")
    return errors
