"""Exporters: Prometheus text exposition, JSON snapshots, human trace views.

Every exporter works from the *snapshot* form (plain dicts) so a registry
deserialized from a ``BENCH_<experiment>.json`` artifact renders exactly
like a live one — ``repro stats --from artifact.json`` and an in-process
registry share this code path.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import TraceEvent, Tracer


def _fmt_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def snapshot_to_prometheus(snapshot: Dict[str, object], prefix: str = "repro") -> str:
    """Render a registry snapshot in the Prometheus text exposition format."""
    lines: List[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        full = f"{prefix}_{name}"
        lines.append(f"# TYPE {full} counter")
        lines.append(f"{full} {_fmt_value(float(value))}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        full = f"{prefix}_{name}"
        lines.append(f"# TYPE {full} gauge")
        lines.append(f"{full} {_fmt_value(float(value))}")
    for name, data in sorted(snapshot.get("histograms", {}).items()):
        full = f"{prefix}_{name}"
        lines.append(f"# TYPE {full} histogram")
        running = 0
        for bound, count in zip(data["buckets"], data["counts"]):
            running += count
            lines.append(f'{full}_bucket{{le="{_fmt_value(float(bound))}"}} {running}')
        total = running + data["counts"][len(data["buckets"])]
        lines.append(f'{full}_bucket{{le="+Inf"}} {total}')
        lines.append(f"{full}_sum {_fmt_value(float(data['sum']))}")
        lines.append(f"{full}_count {total}")
    return "\n".join(lines) + "\n"


def to_prometheus(registry: MetricsRegistry, prefix: str = "repro") -> str:
    return snapshot_to_prometheus(registry.snapshot(), prefix=prefix)


def to_json(registry: MetricsRegistry, indent: Optional[int] = 2) -> str:
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


def _fmt_attrs(attrs: Dict[str, object]) -> str:
    return " ".join(f"{k}={v}" for k, v in attrs.items())


def render_trace(
    tracer: Tracer,
    limit: Optional[int] = None,
    events: Optional[Sequence[TraceEvent]] = None,
) -> str:
    """A human timeline: relative ms, indented by span depth.

    Spans are recorded at exit, so the buffer is already in end-time order;
    indentation (two spaces per depth) restores the nesting visually.
    """
    rows = list(events) if events is not None else tracer.events()
    if limit is not None:
        rows = rows[-limit:]
    if not rows:
        return "(no trace events recorded)\n"
    t0 = min(event.t_ns for event in rows)
    lines = []
    for event in rows:
        rel_ms = (event.t_ns - t0) / 1e6
        indent = "  " * event.depth
        dur = f" [{event.dur_ns / 1e6:.3f} ms]" if event.dur_ns is not None else ""
        attrs = f"  {_fmt_attrs(event.attrs)}" if event.attrs else ""
        lines.append(f"{rel_ms:10.3f} ms  {indent}{event.name}{dur}{attrs}")
    if tracer is not None and tracer.dropped:
        lines.append(f"({tracer.dropped} earlier events dropped by the ring buffer)")
    return "\n".join(lines) + "\n"
