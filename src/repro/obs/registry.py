"""Metric primitives and the registry they live in.

The paper's evaluation is driven entirely by internal counters (§V); this
module gives those counters one home instead of three. A
:class:`MetricsRegistry` holds three metric kinds:

* :class:`Counter` — monotonically increasing totals (ops, flushes, splits);
* :class:`Gauge` — point-in-time values (buffer fill, resident pages);
* :class:`Histogram` — fixed-bucket distributions (per-op latency, flush
  sizes, sort costs) with percentile estimation, the machinery behind the
  Fig. 13-style latency breakdowns and the bench artifact's p50/p95/p99.

Existing stat carriers (:class:`~repro.core.stats.SWAREStats`, the
:class:`~repro.storage.costmodel.Meter`, bufferpool/tree counters) register
as *collectors*: callables polled at snapshot/export time, so hot paths keep
their cheap plain-attribute increments and the registry still sees every
value.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_name(name: str) -> str:
    """Coerce ``name`` into the Prometheus metric-name alphabet."""
    name = _NAME_RE.sub("_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


#: Default latency buckets, in nanoseconds: ~250 ns up to 100 ms. Chosen so
#: both simulated costs (µs-scale structural work, 100 µs disk pages) and
#: wall-clock Python op latencies land in the resolved middle of the range.
DEFAULT_LATENCY_BUCKETS_NS: Tuple[float, ...] = (
    250.0,
    500.0,
    1_000.0,
    2_500.0,
    5_000.0,
    10_000.0,
    25_000.0,
    50_000.0,
    100_000.0,
    250_000.0,
    500_000.0,
    1_000_000.0,
    2_500_000.0,
    5_000_000.0,
    10_000_000.0,
    25_000_000.0,
    100_000_000.0,
)

#: Default size buckets (entries): flush batches, sort inputs, bulk loads.
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1.0,
    4.0,
    16.0,
    64.0,
    256.0,
    1_024.0,
    4_096.0,
    16_384.0,
    65_536.0,
    262_144.0,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """A fixed-bucket histogram with Prometheus-compatible semantics.

    ``buckets`` are strictly increasing upper bounds; an implicit ``+Inf``
    bucket catches the overflow. ``observe`` is O(log buckets) via bisect.
    Percentiles are estimated by linear interpolation inside the bucket that
    crosses the target rank — the standard ``histogram_quantile`` estimate.
    """

    __slots__ = ("name", "help", "bounds", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_NS,
        help: str = "",
    ):
        bounds = [float(b) for b in buckets]
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.help = help
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative(self) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ending with +Inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (q in [0, 100])."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be within [0, 100]")
        if self.count == 0:
            return 0.0
        rank = q / 100.0 * self.count
        running = 0
        lower = 0.0
        for bound, n in zip(self.bounds, self.counts):
            if running + n >= rank and n > 0:
                fraction = (rank - running) / n
                return lower + fraction * (bound - lower)
            running += n
            lower = bound
        # Overflow bucket: the best unbiased guess is the last finite bound.
        return self.bounds[-1]

    def percentiles(self) -> Dict[str, float]:
        return {
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }


class MetricsRegistry:
    """A named collection of counters, gauges, histograms, and collectors."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: Dict[str, Callable[[], Dict[str, float]]] = {}
        # Collector values from the most recent poll; reused by
        # ``snapshot(poll=False)`` so one export cycle (e.g. ``repro stats``
        # rendering + telemetry emission in the same run) charges each
        # collector exactly once instead of polling per consumer.
        self._collected: Optional[Dict[str, float]] = None

    # -- creation / lookup -------------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        name = sanitize_name(name)
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name, help)
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        name = sanitize_name(name)
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name, help)
        return metric

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_NS,
        help: str = "",
    ) -> Histogram:
        name = sanitize_name(name)
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, buckets, help)
        return metric

    def register_collector(
        self, name: str, fn: Callable[[], Dict[str, float]]
    ) -> str:
        """Register a callable polled at snapshot time; returns its name.

        Multiple components of the same kind (e.g. two SWARE indexes in a
        comparison run) get deduplicated names: ``sware``, ``sware_2``, …
        """
        base = sanitize_name(name)
        unique = base
        suffix = 2
        while unique in self._collectors:
            unique = f"{base}_{suffix}"
            suffix += 1
        self._collectors[unique] = fn
        return unique

    # -- reading -----------------------------------------------------------
    def help_texts(self) -> Dict[str, str]:
        """Non-empty help strings by metric name (for ``# HELP`` lines)."""
        out: Dict[str, str] = {}
        for table in (self._counters, self._gauges, self._histograms):
            for name, metric in table.items():
                if metric.help:
                    out[name] = metric.help
        return out

    def collect_gauges(self, poll: bool = True) -> Dict[str, float]:
        """Explicit gauges plus every numeric value the collectors report.

        ``poll=False`` reuses the values from the previous poll (if any) —
        the single-poll contract for export cycles that render the same
        registry more than once (Prometheus text + JSON artifact of one
        run must agree, and stateful collectors must not be charged twice).
        """
        if not poll and self._collected is not None:
            return dict(self._collected)
        out = {name: gauge.value for name, gauge in self._gauges.items()}
        for prefix, fn in self._collectors.items():
            for key, value in fn().items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                out[sanitize_name(f"{prefix}_{key}")] = float(value)
        self._collected = dict(out)
        return out

    def snapshot(self, poll: bool = True) -> Dict[str, object]:
        """A JSON-serializable snapshot of everything in the registry.

        ``poll=False`` reuses the collector values of the previous snapshot
        (see :meth:`collect_gauges`), so a run that both renders stats and
        emits telemetry polls each collector exactly once.
        """
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": self.collect_gauges(poll=poll),
            "histograms": {
                n: {
                    "buckets": list(h.bounds),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                    "mean": h.mean,
                    **h.percentiles(),
                }
                for n, h in self._histograms.items()
            },
        }

    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, object]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output (round-trip)."""
        registry = cls()
        for name, value in snapshot.get("counters", {}).items():
            registry.counter(name).value = float(value)
        for name, value in snapshot.get("gauges", {}).items():
            registry.gauge(name).set(float(value))
        for name, data in snapshot.get("histograms", {}).items():
            hist = registry.histogram(name, buckets=data["buckets"])
            hist.counts = [int(c) for c in data["counts"]]
            hist.sum = float(data["sum"])
            hist.count = int(data["count"])
        return registry
