"""``repro.obs`` — the unified observability layer.

One :class:`Observability` object bundles the two measurement surfaces every
component shares:

* a :class:`~repro.obs.registry.MetricsRegistry` (counters, gauges,
  fixed-bucket histograms, and collectors that poll ``SWAREStats`` /
  ``Meter`` / bufferpool counters at export time);
* a :class:`~repro.obs.tracer.Tracer` (ring-buffered structured events and
  nested spans — causally linked since obs v2 — for flush cycles, sorts,
  bulk-load/top-insert routing, filter skips, and evictions).

Two optional v2 surfaces ride along when asked for:

* ``monitors`` — a :class:`~repro.obs.monitors.MonitorHub` of streaming
  estimators (windowed sortedness drift, buffer saturation, Bloom FPR,
  lock contention, fsync latency) that health rules and ``repro doctor``
  evaluate;
* ``profiler`` — a :class:`~repro.obs.profiler.SamplingProfiler` owned by
  the run (started/stopped by the CLI or bench runner, never by hot paths;
  sampling happens entirely on its own thread).

Components accept an ``obs`` keyword; when omitted they pick up the
*active* observability installed by :func:`observe` (how ``repro
experiment --json``, ``repro stats`` and the bench runner instrument whole
runs without threading a parameter through every factory), falling back to
the shared :data:`NULL_OBS`, whose methods are no-ops, so uninstrumented
hot paths stay at their previous cost.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_NS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.monitors import HealthFinding, MonitorHub
from repro.obs.profiler import SamplingProfiler
from repro.obs.tracer import NULL_SPAN, TraceEvent, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "HealthFinding",
    "Histogram",
    "MetricsRegistry",
    "MonitorHub",
    "SamplingProfiler",
    "Tracer",
    "TraceEvent",
    "Observability",
    "NULL_OBS",
    "current_obs",
    "observe",
    "DEFAULT_LATENCY_BUCKETS_NS",
    "DEFAULT_SIZE_BUCKETS",
]


class Observability:
    """Registry + tracer, plus the run log the bench artifact is built from."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        trace: bool = False,
        trace_capacity: int = 8192,
        monitors: bool = False,
        profiler: Optional[SamplingProfiler] = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(
            capacity=trace_capacity, enabled=trace
        )
        #: Streaming monitor hub, or None when monitors are off (components
        #: gate on ``obs.monitors is not None`` once per batch entry point).
        self.monitors: Optional[MonitorHub] = MonitorHub() if monitors else None
        #: A profiler owned by this run (the CLI/bench runner starts and
        #: stops it; instrumented code never touches it).
        self.profiler: Optional[SamplingProfiler] = profiler
        #: Serialized RunResults recorded by the bench runner (in run order).
        self.runs: List[Dict[str, object]] = []

    # -- tracing -----------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """True when event tracing is on (hot paths gate on this)."""
        return self.tracer.enabled

    def event(self, name: str, **attrs) -> None:
        self.tracer.event(name, **attrs)

    def span(self, name: str, **attrs):
        return self.tracer.span(name, **attrs)

    # -- metrics -----------------------------------------------------------
    def count(self, name: str, amount: float = 1.0) -> None:
        self.registry.counter(name).inc(amount)

    def gauge(self, name: str, value: float) -> None:
        self.registry.gauge(name).set(value)

    def observe_hist(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_NS,
    ) -> None:
        self.registry.histogram(name, buckets=buckets).observe(value)

    def register_collector(self, name: str, fn: Callable[[], Dict[str, float]]) -> str:
        return self.registry.register_collector(name, fn)

    # -- bench integration -------------------------------------------------
    def record_run(self, payload: Dict[str, object]) -> None:
        self.runs.append(payload)


class _NullObservability(Observability):
    """The do-nothing observability every component defaults to.

    Methods are overridden (not just gated) so a disabled hot path pays one
    no-op call at flush-granularity sites and a single ``.enabled`` check at
    per-op sites.
    """

    def __init__(self) -> None:  # no registry/tracer allocation
        self.registry = None  # type: ignore[assignment]
        self.tracer = None  # type: ignore[assignment]
        self.monitors = None
        self.profiler = None
        self.runs = []

    @property
    def enabled(self) -> bool:
        return False

    def event(self, name: str, **attrs) -> None:
        return None

    def span(self, name: str, **attrs):
        return NULL_SPAN

    def count(self, name: str, amount: float = 1.0) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def observe_hist(self, name: str, value: float, buckets=DEFAULT_LATENCY_BUCKETS_NS) -> None:
        return None

    def register_collector(self, name: str, fn) -> str:
        return name

    def record_run(self, payload) -> None:
        return None


NULL_OBS = _NullObservability()

#: Stack of active Observability objects (innermost last).
_ACTIVE: List[Observability] = []


def current_obs() -> Observability:
    """The innermost active observability, or :data:`NULL_OBS`."""
    return _ACTIVE[-1] if _ACTIVE else NULL_OBS


@contextmanager
def observe(obs: Observability) -> Iterator[Observability]:
    """Install ``obs`` as the active observability for the dynamic extent."""
    _ACTIVE.append(obs)
    try:
        yield obs
    finally:
        _ACTIVE.pop()
