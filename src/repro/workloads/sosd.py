"""SOSD-style dataset layer: realistic key distributions with measured (K,L).

SOSD ("SOSD: A Benchmark for Learned Indexes", PAPERS.md) fixed the learned
-index evaluation methodology by benchmarking on *real* key sets — Amazon
book-popularity ids (``books``), OpenStreetMap cell ids (``osm``), Facebook
user ids (``fb``), Wikipedia edit timestamps (``wiki``) — instead of
synthetic uniform keys. The real binaries are not shipped with this
repository, so this module provides both:

* **faithful synthetic twins** — generators reproducing each dataset's
  headline distributional property (heavy-tailed gaps for books, clustered
  bursts for osm, a near-linear body with catastrophic outliers for fb,
  bounded-lateness timestamp arrival for wiki, dbgen's date derivation for
  tpch via :mod:`repro.workloads.tpch`);
* **file-backed loading** — :func:`load_sosd_file` reads the standard SOSD
  binary layout (little-endian uint64 count, then count uint64 keys) so real
  downloads drop in via ``REPRO_SOSD_DIR`` when present.

Because SWARE's subject is *arrival order*, a dataset here is an ordered
stream, not a set: sorted-distribution families are replayed through
:func:`displaced_order` (the BoDS pairwise-swap scheme of
:mod:`repro.sortedness.generator`, applied to arbitrary key sets) to realize
each sortedness regime, while ``wiki``/``tpch`` carry their natural
near-sorted arrival. Every built dataset ships its **measured** (K,L) from
:func:`repro.sortedness.metrics.measure_sortedness` — reported numbers, not
requested ones.
"""

from __future__ import annotations

import os
import random
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sortedness.generator import NAMED_DEGREES
from repro.sortedness.metrics import measure_sortedness
from repro.workloads.tpch import receiptdate_keys

#: The synthetic families this layer can build (``file`` rides on top).
SOSD_FAMILIES: Tuple[str, ...] = ("books", "osm", "fb", "wiki", "tpch")

#: Families whose generator produces an inherently ordered arrival stream;
#: the others are key *sets* replayed under an explicit sortedness regime.
NATURAL_STREAM_FAMILIES: Tuple[str, ...] = ("wiki", "tpch")

#: Environment variable pointing at a directory of real SOSD binaries.
SOSD_DIR_ENV = "REPRO_SOSD_DIR"

#: Keys are capped below the gapped node layout's int64 sentinel so numpy
#: key stores never overflow (real uint64 datasets above this are shifted).
MAX_KEY = (1 << 62) - 1


@dataclass(frozen=True)
class SOSDDataset:
    """An ordered key stream plus its measured sortedness.

    ``keys`` is the arrival order an experiment ingests; ``k``/``l`` (and
    their fractions) are *measured* on that order, so artifact metadata
    reports the stream's true sortedness rather than a generator request.
    """

    name: str
    family: str
    keys: Tuple[int, ...]
    regime: str
    k: int
    l: int
    k_fraction: float
    l_fraction: float
    inversions: int
    source: str = "synthetic"
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def n(self) -> int:
        return len(self.keys)

    def meta(self) -> Dict[str, object]:
        """The per-dataset block carried in bench artifact metadata."""
        return {
            "name": self.name,
            "family": self.family,
            "regime": self.regime,
            "n": self.n,
            "k": self.k,
            "l": self.l,
            "k_fraction": self.k_fraction,
            "l_fraction": self.l_fraction,
            "inversions": self.inversions,
            "source": self.source,
            "params": dict(self.params),
        }


# ----------------------------------------------------------------------
# synthetic distribution twins (sorted unique key sets)
# ----------------------------------------------------------------------
def books_like_keys(n: int, seed: int = 0) -> List[int]:
    """Amazon-books style: heavy-tailed gap distribution (Pareto gaps).

    Popularity-ranked ids are dense among bestsellers and sparse in the
    long tail; successive gaps follow a power law, which is what defeats a
    single linear model and makes books a mid-hardness SOSD dataset.
    """
    rng = random.Random(seed * 2654435761 + 101)
    keys: List[int] = []
    key = rng.randrange(1 << 20)
    for _ in range(n):
        gap = int(rng.paretovariate(1.15))
        if gap > 1 << 32:
            gap = 1 << 32
        key += max(1, gap)
        if key > MAX_KEY:  # pragma: no cover - astronomically unlikely
            key = MAX_KEY - (n - len(keys))
        keys.append(key)
    return keys


def osm_like_keys(n: int, seed: int = 0) -> List[int]:
    """OpenStreetMap cell-id style: dense clusters split by empty space.

    Cell ids of mapped areas come in bursts (cities) separated by oceans of
    unused id space: small intra-cluster gaps, rare enormous inter-cluster
    jumps.
    """
    rng = random.Random(seed * 2654435761 + 211)
    keys: List[int] = []
    key = rng.randrange(1 << 24)
    remaining = n
    while remaining:
        cluster = min(remaining, 1 + int(rng.expovariate(1.0 / 256)))
        for _ in range(cluster):
            key += rng.randint(1, 16)
            keys.append(key)
        remaining -= cluster
        key += rng.randrange(1 << 24, 1 << 38)
        if key > MAX_KEY - (1 << 40):  # pragma: no cover - unlikely at bench n
            key = rng.randrange(1 << 24)
            keys.sort()
    if len(set(keys)) != len(keys):  # pragma: no cover - wrap fallback only
        keys = sorted(set(keys))
        while len(keys) < n:
            keys.append(keys[-1] + rng.randint(1, 16))
    return keys


def fb_like_keys(n: int, seed: int = 0) -> List[int]:
    """Facebook user-id style: near-linear body, catastrophic outlier tail.

    SOSD's fb is famously adversarial for learned indexes: ~99.9% of keys
    are almost uniformly spaced, but the top fraction jumps by many orders
    of magnitude, wrecking any global linear fit.
    """
    rng = random.Random(seed * 2654435761 + 307)
    body = max(1, n - max(1, n // 1000))
    keys: List[int] = []
    key = rng.randrange(1 << 16)
    for _ in range(body):
        key += rng.randint(1, 64)
        keys.append(key)
    for _ in range(n - body):
        key += rng.randrange(1 << 34, 1 << 44)
        keys.append(min(key, MAX_KEY))
    # The outlier tail can saturate at MAX_KEY; re-uniquify defensively.
    if len(set(keys)) != len(keys):  # pragma: no cover - saturation only
        keys = sorted(set(keys))
        while len(keys) < n:
            keys.append(keys[-1] - 1)
        keys.sort()
    return keys


def wiki_timestamp_keys(n: int, seed: int = 0, lateness: int = 64) -> List[int]:
    """Wikipedia edit-timestamp style **arrival stream** (naturally near-
    sorted).

    Edits arrive roughly in time order with bounded reordering (replication
    and batching delay delivery by a bounded number of positions) and
    duplicate timestamps under load. Duplicates are disambiguated into
    unique keys order-preservingly (``ts * 2**16 + counter``), exactly as
    :func:`repro.workloads.tpch.receiptdate_keys` does for dates.
    """
    rng = random.Random(seed * 2654435761 + 401)
    ts = 1_600_000_000
    stamps: List[int] = []
    for _ in range(n):
        # Bursts: many edits can share a second; quiet gaps in between.
        if rng.random() < 0.55:
            ts += rng.randint(1, 4)
        stamps.append(ts)
    # Bounded-lateness reordering: each element may arrive up to
    # ``lateness`` positions early, mirroring out-of-order log delivery.
    order = sorted(
        range(n), key=lambda i: (i + rng.randint(0, lateness), rng.random())
    )
    seen: Dict[int, int] = {}
    keys: List[int] = []
    for i in order:
        stamp = stamps[i]
        occurrence = seen.get(stamp, 0)
        seen[stamp] = occurrence + 1
        keys.append(stamp * (1 << 16) + occurrence)
    return keys


def tpch_receiptdate_stream(n: int, seed: int = 0) -> List[int]:
    """TPC-H receiptdate arrival stream (clustered by shipdate, §V-H)."""
    return receiptdate_keys(n, seed=seed)


# ----------------------------------------------------------------------
# arrival-order synthesis
# ----------------------------------------------------------------------
def displaced_order(
    keys: Sequence[int], k_fraction: float, l_fraction: float, seed: int = 0
) -> List[int]:
    """A (K,L)-near sorted replay order for an arbitrary sorted key set.

    The same BoDS pairwise-swap scheme as
    :func:`repro.sortedness.generator.generate_kl_keys`, generalized from
    the ``0..n`` integer sequence to any sorted collection: swap distance is
    bounded by ``L*N`` with one swap pinned at the maximum so measured L
    reaches the target, and swapped positions stay disjoint while possible
    so measured K tracks the request.
    """
    if not 0.0 <= k_fraction <= 1.0:
        raise ValueError("k_fraction must be within [0, 1]")
    if not 0.0 <= l_fraction <= 1.0:
        raise ValueError("l_fraction must be within [0, 1]")
    out = list(keys)
    n = len(out)
    if n < 2 or k_fraction == 0.0 or l_fraction == 0.0:
        return out
    rng = random.Random(seed)
    max_distance = max(1, int(l_fraction * n))
    target_displaced = int(k_fraction * n)
    if target_displaced < 2:
        return out
    displaced: set = set()
    n_displaced = 0
    attempts = 0
    max_attempts = 6 * n
    if max_distance < n:
        anchor = rng.randrange(0, n - max_distance)
        partner = anchor + max_distance
        out[anchor], out[partner] = out[partner], out[anchor]
        displaced.update((anchor, partner))
        n_displaced += 2
    while n_displaced < target_displaced and attempts < max_attempts:
        attempts += 1
        p = rng.randrange(n)
        if p in displaced:
            continue
        lo = max(0, p - max_distance)
        hi = min(n - 1, p + max_distance)
        q = rng.randint(lo, hi)
        if q == p or q in displaced:
            continue
        out[p], out[q] = out[q], out[p]
        displaced.update((p, q))
        n_displaced += 2
    return out


def scrambled_order(keys: Sequence[int], seed: int = 0) -> List[int]:
    """A uniformly shuffled replay order (the paper's ``scrambled``)."""
    out = list(keys)
    random.Random(seed).shuffle(out)
    return out


# ----------------------------------------------------------------------
# file-backed real SOSD binaries
# ----------------------------------------------------------------------
def sosd_data_dir() -> Optional[Path]:
    """The real-binaries directory (``REPRO_SOSD_DIR``), when configured."""
    value = os.environ.get(SOSD_DIR_ENV, "").strip()
    if not value:
        return None
    path = Path(value)
    return path if path.is_dir() else None


def available_sosd_files(directory: Optional[Path] = None) -> List[Path]:
    """Real SOSD binaries present on this machine (empty when none)."""
    directory = directory if directory is not None else sosd_data_dir()
    if directory is None:
        return []
    out = [
        path
        for pattern in ("*.bin", "*.uint64", "*.uint32")
        for path in sorted(directory.glob(pattern))
        if path.is_file()
    ]
    return out


def load_sosd_file(
    path, limit: Optional[int] = None, unique: bool = True
) -> List[int]:
    """Load keys from the standard SOSD binary layout.

    The format is a little-endian uint64 element count followed by that
    many little-endian keys — 8 bytes each for ``*.bin``/``*.uint64``
    files, 4 bytes for ``*.uint32``. Keys above :data:`MAX_KEY` (possible
    in real uint64 sets) are right-shifted by two bits, preserving order;
    ``unique=True`` drops duplicates (SOSD's own preprocessing).
    """
    path = Path(path)
    width = 4 if path.suffix == ".uint32" else 8
    fmt = "<I" if width == 4 else "<Q"
    with open(path, "rb") as fobj:
        (count,) = struct.unpack("<Q", fobj.read(8))
        if limit is not None:
            count = min(count, limit)
        raw = fobj.read(count * width)
    if len(raw) < count * width:
        raise ValueError(f"{path} truncated: expected {count} keys")
    keys = [
        struct.unpack_from(fmt, raw, i * width)[0] for i in range(count)
    ]
    if any(key > MAX_KEY for key in keys):
        keys = [key >> 2 for key in keys]
    if unique:
        seen: set = set()
        deduped: List[int] = []
        for key in keys:
            if key not in seen:
                seen.add(key)
                deduped.append(key)
        keys = deduped
    return keys


# ----------------------------------------------------------------------
# dataset assembly
# ----------------------------------------------------------------------
_SET_GENERATORS = {
    "books": books_like_keys,
    "osm": osm_like_keys,
    "fb": fb_like_keys,
}

_STREAM_GENERATORS = {
    "wiki": wiki_timestamp_keys,
    "tpch": tpch_receiptdate_stream,
}


def make_dataset(
    family: str,
    n: int,
    regime: str = "near_sorted",
    seed: int = 7,
    file_path=None,
) -> SOSDDataset:
    """Build one dataset: a replay stream with measured (K,L).

    ``family`` is one of :data:`SOSD_FAMILIES` or ``"file"`` (with
    ``file_path``). Sorted-set families honour ``regime`` (a
    :data:`repro.sortedness.generator.NAMED_DEGREES` name); natural-stream
    families (``wiki``, ``tpch``) carry their inherent arrival order and
    accept only ``regime="natural"``.
    """
    params: Dict[str, object] = {"seed": seed}
    if family == "file":
        if file_path is None:
            raise ValueError("family 'file' requires file_path")
        base = load_sosd_file(file_path, limit=n)
        params["path"] = str(file_path)
        source = "file"
        name = f"file:{Path(file_path).stem}"
        stream = _apply_regime(base, regime, seed)
    elif family in _SET_GENERATORS:
        base = _SET_GENERATORS[family](n, seed=seed)
        source = "synthetic"
        name = family
        stream = _apply_regime(base, regime, seed)
    elif family in _STREAM_GENERATORS:
        if regime not in ("natural",):
            raise ValueError(
                f"family {family!r} is a natural arrival stream; "
                "use regime='natural'"
            )
        stream = _STREAM_GENERATORS[family](n, seed=seed)
        source = "synthetic"
        name = family
    else:
        raise ValueError(
            f"unknown dataset family {family!r}; expected one of "
            f"{SOSD_FAMILIES + ('file',)}"
        )
    report = measure_sortedness(stream)
    return SOSDDataset(
        name=f"{name}/{regime}",
        family=family,
        keys=tuple(stream),
        regime=regime,
        k=report.k,
        l=report.l,
        k_fraction=report.k_fraction,
        l_fraction=report.l_fraction,
        inversions=report.inversions,
        source=source,
        params=params,
    )


def _apply_regime(base: Sequence[int], regime: str, seed: int) -> List[int]:
    if regime == "natural":
        raise ValueError(
            "regime 'natural' applies only to stream families (wiki, tpch)"
        )
    if regime not in NAMED_DEGREES:
        raise ValueError(
            f"unknown regime {regime!r}; expected one of "
            f"{sorted(NAMED_DEGREES) + ['natural']}"
        )
    degree = NAMED_DEGREES[regime]
    if degree is None:
        return scrambled_order(base, seed=seed)
    k_fraction, l_fraction = degree
    return displaced_order(base, k_fraction, l_fraction, seed=seed)


def default_benchmark_datasets(
    n: int, seed: int = 7, regimes: Sequence[str] = ("near_sorted", "scrambled")
) -> List[SOSDDataset]:
    """The bench-sosd default grid: every family, every applicable regime.

    Sorted-set families (books/osm/fb) appear once per requested regime;
    natural streams (wiki/tpch) once each; any real binaries found under
    ``REPRO_SOSD_DIR`` are appended with the first requested regime.
    """
    datasets: List[SOSDDataset] = []
    for family in _SET_GENERATORS:
        for regime in regimes:
            datasets.append(make_dataset(family, n, regime=regime, seed=seed))
    for family in _STREAM_GENERATORS:
        datasets.append(make_dataset(family, n, regime="natural", seed=seed))
    for path in available_sosd_files():
        datasets.append(
            make_dataset(
                "file", n, regime=regimes[0], seed=seed, file_path=path
            )
        )
    return datasets
