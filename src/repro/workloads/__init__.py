"""Workload generation: mixed/raw operation streams and TPC-H dates."""

from repro.workloads.spec import (
    DELETE,
    INSERT,
    LOOKUP,
    RANGE,
    MixedWorkloadSpec,
    Operation,
    RawWorkloadSpec,
    value_for,
)
from repro.workloads.tpch import (
    LineitemDates,
    generate_lineitem_dates,
    high_l_low_k_keys,
    receiptdate_keys,
    sorted_by_shipdate,
)

__all__ = [
    "DELETE",
    "INSERT",
    "LOOKUP",
    "RANGE",
    "MixedWorkloadSpec",
    "Operation",
    "RawWorkloadSpec",
    "value_for",
    "LineitemDates",
    "generate_lineitem_dates",
    "high_l_low_k_keys",
    "receiptdate_keys",
    "sorted_by_shipdate",
]
