"""Workload specifications and operation streams.

The paper's evaluation (§V) drives indexes with two workload shapes:

* **raw** — ingest N entries, then run point lookups / range scans
  (Fig. 12);
* **mixed** — ingest the first 80% of the data, then interleave the
  remaining inserts with uniform random non-empty point lookups at a given
  read:write ratio (Fig. 10, 14, 18, 20, Tables I/III).

Operations are plain tuples ``(op, a, b)`` with ``op`` one of the
:data:`INSERT`/:data:`LOOKUP`/:data:`RANGE`/:data:`DELETE` constants — cheap
to generate and to dispatch in the runner's hot loop.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

INSERT = 0
LOOKUP = 1
RANGE = 2
DELETE = 3

Operation = Tuple[int, int, int]  # (op, key_or_lo, payload_or_hi)


def value_for(key: int) -> int:
    """The deterministic payload used across workloads (tests rely on it)."""
    return key * 2 + 1


@dataclass(frozen=True)
class MixedWorkloadSpec:
    """A paper-style mixed workload over a given arrival-ordered key list.

    ``read_fraction`` is reads/(reads+writes) over the *interleaved phase*;
    the paper expresses it as ratios like "25:75" (reads:writes).
    """

    keys: Sequence[int]
    read_fraction: float
    preload_fraction: float = 0.8
    seed: int = 0
    max_reads: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_fraction < 1.0:
            raise ValueError("read_fraction must be within [0, 1)")
        if not 0.0 <= self.preload_fraction <= 1.0:
            raise ValueError("preload_fraction must be within [0, 1]")

    @property
    def n_preload(self) -> int:
        return int(len(self.keys) * self.preload_fraction)

    def operations(self) -> Iterator[Operation]:
        """Yield the full operation stream (preload, then interleaved)."""
        keys = self.keys
        n_preload = self.n_preload
        for key in keys[:n_preload]:
            yield (INSERT, key, value_for(key))

        remaining = list(keys[n_preload:])
        n_writes = len(remaining)
        r = self.read_fraction
        n_reads = int(n_writes * r / (1.0 - r)) if n_writes else 0
        if self.max_reads is not None:
            n_reads = min(n_reads, self.max_reads)
        rng = random.Random(self.seed)
        # Interleave by drawing from a shuffled schedule so reads and writes
        # mix uniformly rather than in phases. Lookups are uniform random
        # over everything ingested *so far* (non-empty lookups over the
        # whole current domain, as in the paper's benchmark) — which means
        # recently ingested, still-buffered keys are eligible targets.
        schedule = [INSERT] * n_writes + [LOOKUP] * n_reads
        rng.shuffle(schedule)
        write_pos = 0
        for op in schedule:
            if op == INSERT:
                key = remaining[write_pos]
                write_pos += 1
                yield (INSERT, key, value_for(key))
            else:
                ingested = n_preload + write_pos
                if ingested == 0:
                    continue
                key = keys[rng.randrange(ingested)]
                yield (LOOKUP, key, 0)

    def materialize(self) -> List[Operation]:
        return list(self.operations())


def recent_lookup_operations(
    keys: Sequence[int],
    n_lookups: int,
    window: int,
    seed: int = 0,
    recent_fraction: float = 1.0,
    offset: int = 0,
) -> List[Operation]:
    """Point lookups with temporal locality: ``recent_fraction`` of them
    target a ``window`` of keys ending ``offset`` positions before the end
    of the ingest order, the rest are uniform.

    Used by ablation experiments where the interesting cost sits in the
    buffer's most recent (unsorted) data — an ``offset`` aims at entries a
    few buffer pages old, which a newest-first scan reaches late.
    """
    rng = random.Random(seed)
    window = max(1, min(window, len(keys) - offset))
    recent = keys[len(keys) - offset - window : len(keys) - offset]
    ops: List[Operation] = []
    for _ in range(n_lookups):
        if rng.random() < recent_fraction:
            key = recent[rng.randrange(len(recent))]
        else:
            key = keys[rng.randrange(len(keys))]
        ops.append((LOOKUP, key, 0))
    return ops


@dataclass(frozen=True)
class RawWorkloadSpec:
    """Ingest everything, then query (the paper's Fig. 12 shape).

    ``n_lookups`` uniform random non-empty point lookups follow ingestion;
    optionally ``range_selectivities`` adds range scans whose width is the
    given fraction of the key domain.
    """

    keys: Sequence[int]
    n_lookups: int = 0
    n_ranges: int = 0
    range_selectivity: float = 0.0
    seed: int = 0

    def ingest_operations(self) -> Iterator[Operation]:
        for key in self.keys:
            yield (INSERT, key, value_for(key))

    def lookup_operations(self) -> Iterator[Operation]:
        rng = random.Random(self.seed)
        keys = self.keys
        for _ in range(self.n_lookups):
            yield (LOOKUP, keys[rng.randrange(len(keys))], 0)

    def range_operations(self) -> Iterator[Operation]:
        if self.n_ranges == 0:
            return
        rng = random.Random(self.seed + 1)
        lo_domain = min(self.keys)
        hi_domain = max(self.keys)
        width = max(1, int((hi_domain - lo_domain) * self.range_selectivity))
        for _ in range(self.n_ranges):
            lo = rng.randint(lo_domain, max(lo_domain, hi_domain - width))
            yield (RANGE, lo, lo + width)
