"""Synthetic TPC-H lineitem date columns (§V-H).

The paper's TPC-H experiment sorts lineitem by ``shipdate`` and indexes
``receiptdate``; because dbgen derives the three dates from ``orderdate``
with small bounded offsets (ship = order + U[1, 121], commit = order +
U[30, 90], receipt = ship + U[1, 30]), sorting on one date leaves the others
*near-sorted* — the paper measures K = 96.67% and L = 0.1% on receiptdate
for 6M tuples.

dbgen itself is unavailable offline (DESIGN.md substitution #3); this module
generates date columns with the same derivation rules, reproducing the same
clustering phenomenon. Dates are integers (days since epoch) scaled to a few
thousand distinct values; duplicates are expected and intentional — real
date columns are dense — but indexes in this library store unique keys, so
:func:`receiptdate_keys` disambiguates duplicates into unique integer keys
while *preserving displacement structure* (key = date * spread + counter).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

#: dbgen generates orderdates over ~2,406 days (1992-01-01 .. 1998-08-02).
ORDERDATE_DAYS = 2406


@dataclass(frozen=True)
class LineitemDates:
    """Parallel date columns for a synthetic lineitem table."""

    orderdate: List[int]
    shipdate: List[int]
    commitdate: List[int]
    receiptdate: List[int]

    @property
    def n(self) -> int:
        return len(self.orderdate)


def generate_lineitem_dates(n: int, seed: int = 0) -> LineitemDates:
    """Generate ``n`` lineitem rows' date columns with dbgen's rules."""
    rng = random.Random(seed)
    orderdate = [rng.randrange(ORDERDATE_DAYS) for _ in range(n)]
    shipdate = [d + rng.randint(1, 121) for d in orderdate]
    commitdate = [d + rng.randint(30, 90) for d in orderdate]
    receiptdate = [s + rng.randint(1, 30) for s in shipdate]
    return LineitemDates(orderdate, shipdate, commitdate, receiptdate)


def sorted_by_shipdate(dates: LineitemDates) -> LineitemDates:
    """Reorder all columns by (shipdate, original position) — the paper's
    clustering step that leaves receiptdate near-sorted."""
    order = sorted(range(dates.n), key=lambda i: (dates.shipdate[i], i))
    return LineitemDates(
        orderdate=[dates.orderdate[i] for i in order],
        shipdate=[dates.shipdate[i] for i in order],
        commitdate=[dates.commitdate[i] for i in order],
        receiptdate=[dates.receiptdate[i] for i in order],
    )


def receiptdate_keys(n: int, seed: int = 0, spread: int = 1 << 20) -> List[int]:
    """Unique integer keys whose arrival order mirrors receiptdate's
    near-sortedness after sorting lineitem by shipdate.

    Each duplicate date d becomes ``d * spread + occurrence_counter`` —
    order-preserving within a date, so the (K,L) character of the column is
    unchanged while keys become unique (as the indexes require).
    """
    dates = sorted_by_shipdate(generate_lineitem_dates(n, seed=seed))
    seen: dict = {}
    keys = []
    for date in dates.receiptdate:
        occurrence = seen.get(date, 0)
        seen[date] = occurrence + 1
        keys.append(date * spread + occurrence)
    return keys


def high_l_low_k_keys(n: int, seed: int = 0) -> List[int]:
    """The paper's §V-H second extreme: K = 5%, L = 95%.

    Few elements are displaced, but those that are travel almost the whole
    collection.
    """
    from repro.sortedness.generator import generate_kl_keys

    return generate_kl_keys(n, k_fraction=0.05, l_fraction=0.95, seed=seed)
