"""B+-tree substrate (the paper's baseline index)."""

from repro.btree.btree import BPlusTree, BPlusTreeConfig
from repro.btree.node import InternalNode, LeafNode

__all__ = ["BPlusTree", "BPlusTreeConfig", "InternalNode", "LeafNode"]
