"""B+-tree node structures.

Nodes are array-packed: a leaf holds parallel ``keys``/``values`` lists and a
``next_leaf`` link (leaves form a singly linked chain for range scans); an
internal node holds ``len(children) == len(keys) + 1`` with the usual
separator convention — child ``i`` covers keys < ``keys[i]``, child ``i+1``
covers keys >= ``keys[i]``.

Every node carries a ``page_id`` so the simulated bufferpool can treat it as
a 4 KB page (§V-E of the paper).
"""

from __future__ import annotations

from typing import List, Optional


class LeafNode:
    __slots__ = ("page_id", "keys", "values", "next_leaf")

    def __init__(self, page_id: int):
        self.page_id = page_id
        self.keys: List[int] = []
        self.values: List[object] = []
        self.next_leaf: Optional["LeafNode"] = None

    @property
    def is_leaf(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self.keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        head = self.keys[:4]
        return f"LeafNode(page={self.page_id}, n={len(self.keys)}, keys={head}...)"


class InternalNode:
    __slots__ = ("page_id", "keys", "children")

    def __init__(self, page_id: int):
        self.page_id = page_id
        self.keys: List[int] = []
        self.children: List[object] = []

    @property
    def is_leaf(self) -> bool:
        return False

    def __len__(self) -> int:
        return len(self.keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InternalNode(page={self.page_id}, n_keys={len(self.keys)})"
