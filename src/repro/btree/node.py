"""B+-tree node structures: classic list-packed and gapped array layouts.

Two interchangeable node families live here, selected by
``BPlusTreeConfig.node_layout``:

* **classic** — :class:`LeafNode` / :class:`InternalNode`: a leaf holds
  parallel ``keys``/``values`` lists and a ``next_leaf`` link (leaves form a
  singly linked chain for range scans); an internal node holds
  ``len(children) == len(keys) + 1`` with the usual separator convention —
  child ``i`` covers keys < ``keys[i]``, child ``i+1`` covers keys >=
  ``keys[i]``. Every mutation is a Python ``list`` insert/delete.

* **gapped** — :class:`GappedLeaf` / :class:`GappedInternal`: the BS-tree
  direction. Keys live in a fixed-capacity *store* obtained from
  :func:`repro.kernels.gapped_key_store`: a dense sorted prefix of ``n``
  live slots followed by sentinel-marked gaps (``kernels.GAP_SENTINEL`` ==
  INT64_MAX, so a sentinel-padded int64 array is sorted end to end and
  ``searchsorted`` needs no explicit bound — the shifted-sentinel trick).
  Under the numpy kernel backend the store is an int64 ndarray and
  intra-node search is a branchless ``searchsorted``; under the pure-Python
  backend it is a plain list. Keys that cannot be represented as a
  non-sentinel int64 demote a store to a list transparently — mutation
  kernels return the (possibly demoted) store and the node re-binds it.
  Values and child pointers stay dense Python lists in both layouts; only
  the key columns are vectorized.

Both families expose ``keys``/``values``/``children`` (the gapped ones as
properties materializing the live prefix) so serialization, invariant
checks and debugging code can walk either layout uniformly.

Every node carries a ``page_id`` so the simulated bufferpool can treat it as
a 4 KB page (§V-E of the paper).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, Optional

from repro import kernels

#: Sentinel marking a gap slot in an array-backed key store (INT64_MAX).
KEY_SENTINEL = kernels.GAP_SENTINEL


class LeafNode:
    __slots__ = ("page_id", "keys", "values", "next_leaf")

    def __init__(self, page_id: int):
        self.page_id = page_id
        self.keys: List[int] = []
        self.values: List[object] = []
        self.next_leaf: Optional["LeafNode"] = None

    @property
    def is_leaf(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self.keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        head = self.keys[:4]
        return f"LeafNode(page={self.page_id}, n={len(self.keys)}, keys={head}...)"


class InternalNode:
    __slots__ = ("page_id", "keys", "children")

    def __init__(self, page_id: int):
        self.page_id = page_id
        self.keys: List[int] = []
        self.children: List[object] = []

    @property
    def is_leaf(self) -> bool:
        return False

    def __len__(self) -> int:
        return len(self.keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InternalNode(page={self.page_id}, n_keys={len(self.keys)})"


class GappedLeaf:
    """Leaf with a gapped key store and a dense Python value list.

    ``ks`` is the backend-native key store (``n`` live slots, then gaps),
    ``vs`` the parallel dense value list (``len(vs) == n`` always). The
    physical store holds ``capacity + 1`` slots so one insert may overflow
    transiently before the tree splits the node.
    """

    __slots__ = ("page_id", "ks", "vs", "n", "next_leaf")

    is_leaf = True

    def __init__(self, page_id: int, physical: int):
        self.page_id = page_id
        self.ks = kernels.gapped_key_store((), physical)
        self.vs: List[object] = []
        self.n = 0
        self.next_leaf: Optional["GappedLeaf"] = None

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        head = kernels.store_keys(self.ks, min(self.n, 4))
        return f"GappedLeaf(page={self.page_id}, n={self.n}, keys={head}...)"

    # -- uniform read surface (serialization, invariants, debugging) --
    @property
    def keys(self) -> List[int]:
        return kernels.store_keys(self.ks, self.n)

    @property
    def values(self) -> List[object]:
        return list(self.vs)

    def key_at(self, idx: int) -> int:
        return int(self.ks[idx])

    def first_key(self) -> int:
        return int(self.ks[0])

    def last_key(self) -> int:
        return int(self.ks[self.n - 1])

    def iter_live(self):
        ks = self.ks
        vs = self.vs
        for i in range(self.n):
            yield int(ks[i]), vs[i]

    # -- search --
    def search_left(self, key: int) -> int:
        # List stores take the direct bisect path: scalar ops on the pure-
        # Python twin must not pay a dispatch round-trip per key.
        ks = self.ks
        if type(ks) is list:
            return bisect_left(ks, key)
        return kernels.node_search_left(ks, self.n, key)

    def has_key_at(self, idx: int, key: int) -> bool:
        return idx < self.n and self.ks[idx] == key

    # -- mutation (store kernels may demote the store; always re-bind) --
    def insert_at(self, idx: int, key: int, value: object) -> None:
        ks = self.ks
        if type(ks) is list:
            ks.insert(idx, key)
        else:
            self.ks = kernels.node_insert_key(ks, self.n, idx, key)
        self.vs.insert(idx, value)
        self.n += 1

    def set_value(self, idx: int, value: object) -> None:
        self.vs[idx] = value

    def delete_at(self, idx: int) -> None:
        self.ks = kernels.node_delete_key(self.ks, self.n, idx)
        del self.vs[idx]
        self.n -= 1

    def extend(self, chunk_keys, chunk_values: List[object]) -> None:
        """Bulk-append pre-sorted keys/values past the current prefix."""
        self.ks = kernels.store_extend(self.ks, self.n, chunk_keys)
        self.vs.extend(chunk_values)
        self.n += len(chunk_values)

    def replace(self, keys, values: List[object], physical: int) -> None:
        """Rewrite the whole leaf content (merge-absorb / fission)."""
        self.ks = kernels.gapped_key_store(keys, physical)
        self.vs = values
        self.n = len(values)

    def adopt(self, store, values: List[object]) -> None:
        """Take ownership of a pre-built store and dense value list."""
        self.ks = store
        self.vs = values
        self.n = len(values)

    def split_into(self, right: "GappedLeaf", split: int, physical: int) -> None:
        """Move slots ``[split:n]`` into ``right`` and truncate this leaf."""
        n = self.n
        right.ks = kernels.gapped_key_store(self.ks[split:n], physical)
        right.vs = self.vs[split:]
        right.n = n - split
        self.ks = kernels.store_truncate(self.ks, n, split)
        del self.vs[split:]
        self.n = split


class GappedInternal:
    """Internal node with a gapped pivot store and dense child list.

    ``len(children) == n + 1``; pivot ``i`` separates ``children[i]`` from
    ``children[i + 1]`` with the same bisect_right convention as the classic
    layout.
    """

    __slots__ = ("page_id", "ks", "children", "n")

    is_leaf = False

    def __init__(self, page_id: int, physical: int):
        self.page_id = page_id
        self.ks = kernels.gapped_key_store((), physical)
        self.children: List[object] = []
        self.n = 0

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GappedInternal(page={self.page_id}, n_keys={self.n})"

    @property
    def keys(self) -> List[int]:
        return kernels.store_keys(self.ks, self.n)

    def key_at(self, idx: int) -> int:
        return int(self.ks[idx])

    # -- search --
    def child_index(self, key: int) -> int:
        ks = self.ks
        if type(ks) is list:
            return bisect_right(ks, key)
        return kernels.node_search_right(ks, self.n, key)

    def child_for(self, key: int):
        return self.children[self.child_index(key)]

    # -- mutation --
    def insert_pivot(self, idx: int, key: int, child: object) -> None:
        """Insert separator ``key`` at ``idx`` with ``child`` to its right."""
        self.ks = kernels.node_insert_key(self.ks, self.n, idx, key)
        self.children.insert(idx + 1, child)
        self.n += 1

    def split_into(self, right: "GappedInternal", split: int, physical: int) -> int:
        """Split around pivot ``split``; returns the promoted separator."""
        n = self.n
        promoted = int(self.ks[split])
        right.ks = kernels.gapped_key_store(self.ks[split + 1 : n], physical)
        right.children = self.children[split + 1 :]
        right.n = n - split - 1
        self.ks = kernels.store_truncate(self.ks, n, split)
        del self.children[split + 1 :]
        self.n = split
        return promoted
