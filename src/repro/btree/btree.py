"""An in-memory B+-tree with the paper's tuning knobs.

This is the baseline index of the paper (inspired by the STX B+-tree) plus
the hooks SWARE needs (§III design elements):

* **configurable split factor** — on overflow the left node keeps
  ``split_factor`` of the entries (80:20 by default for SWARE trees, the
  textbook 50:50 for the baseline);
* **tail-leaf fast path** — an optional pointer to the right-most leaf so an
  in-order insert costs O(1) node accesses instead of a root-to-leaf walk;
* **append-only bulk loading** — a sorted batch of keys strictly above the
  current maximum is loaded leaf-at-a-time, filling each leaf to
  ``bulk_fill_factor`` (95% by default) and pushing separators up the right
  spine, amortizing to O(1) per entry;
* **gapped node layout** (default, ``node_layout="gapped"``) — the BS-tree
  direction: keys live in fixed-capacity stores with sentinel-marked gaps
  (:mod:`repro.btree.node`), intra-node search and batch descent go through
  the :mod:`repro.kernels` dispatch (branchless ``searchsorted`` under the
  numpy backend), ``insert_many`` absorbs whole runs into a leaf's gaps in
  one merge — or *fissions* the leaf into several bulk-filled pieces when a
  run overflows it, replacing the classic one-split-per-overflow cascade —
  and ``get_many``/``range_many`` push sorted key vectors down the tree one
  level at a time. ``node_layout="classic"`` keeps the list-packed nodes;
  both layouts are observationally identical
  (``tests/test_gapped_equivalence.py``).

Semantics: unique keys with upsert on conflict; deletes are *lazy* (the
entry is removed, underfull/empty leaves stay in the structure and are
skipped by scans) — the paper's workloads exercise deletes only through
SWARE tombstone propagation, where lazy deletion is the standard choice.

Every structural operation is charged to a :class:`~repro.storage.Meter`,
and node touches are mirrored to an optional
:class:`~repro.storage.BufferPool` so the §V-E on-disk experiments can count
page I/O.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro import kernels
from repro.errors import BulkLoadError, ConfigError, InvariantViolation
from repro.btree.node import KEY_SENTINEL, GappedInternal, GappedLeaf, InternalNode, LeafNode
from repro.obs import DEFAULT_SIZE_BUCKETS, NULL_OBS, Observability, current_obs
from repro.storage.bufferpool import BufferPool, PageIdAllocator
from repro.storage.costmodel import NULL_METER, Meter


@dataclass(frozen=True)
class BPlusTreeConfig:
    """Tuning knobs for :class:`BPlusTree`.

    ``leaf_capacity``/``internal_capacity`` are in entries/pivots per node
    (the paper's 4 KB pages hold 512 8-byte entries; we default to 64 to keep
    reduced-scale trees a realistic height). ``split_factor`` is the fraction
    kept on the left node at a split. ``bulk_fill_factor`` is how full bulk
    loading packs a leaf, leaving headroom for later top-inserts (§IV-C).

    ``node_layout`` selects the node family: ``"gapped"`` (default) stores
    keys in fixed-capacity gapped arrays behind the kernels dispatch,
    ``"classic"`` keeps list-packed nodes. ``gap_high_water`` is the
    occupancy fraction at which a gapped leaf splits on scalar inserts: 1.0
    reproduces the classic split timing exactly; lower values keep standing
    gaps in every leaf (more space, fewer shifts near future splits).
    """

    leaf_capacity: int = 64
    internal_capacity: int = 64
    split_factor: float = 0.5
    bulk_fill_factor: float = 0.95
    tail_leaf_optimization: bool = False
    node_layout: str = "gapped"
    gap_high_water: float = 1.0

    def __post_init__(self) -> None:
        if self.leaf_capacity < 2:
            raise ConfigError("leaf_capacity must be >= 2")
        if self.internal_capacity < 2:
            raise ConfigError("internal_capacity must be >= 2")
        if not 0.1 <= self.split_factor <= 0.9:
            raise ConfigError("split_factor must be within [0.1, 0.9]")
        if not 0.1 <= self.bulk_fill_factor <= 1.0:
            raise ConfigError("bulk_fill_factor must be within [0.1, 1.0]")
        if self.node_layout not in ("classic", "gapped"):
            raise ConfigError(
                f"node_layout must be 'classic' or 'gapped', got {self.node_layout!r}"
            )
        if not 0.5 <= self.gap_high_water <= 1.0:
            raise ConfigError("gap_high_water must be within [0.5, 1.0]")


class BPlusTree:
    """See module docstring."""

    def __init__(
        self,
        config: Optional[BPlusTreeConfig] = None,
        meter: Optional[Meter] = None,
        pool: Optional[BufferPool] = None,
        obs: Optional[Observability] = None,
    ):
        self.config = config or BPlusTreeConfig()
        self.meter = meter if meter is not None else NULL_METER
        self.obs = obs if obs is not None else current_obs()
        self.pool = pool
        # getattr: configs unpickled from pre-gapped checkpoints lack the
        # layout fields (frozen dataclass unpickling bypasses __init__).
        self._gapped = getattr(self.config, "node_layout", "classic") == "gapped"
        # One spare physical slot lets an insert overflow transiently before
        # the split; the high-water mark is where scalar inserts split.
        self._leaf_physical = self.config.leaf_capacity + 1
        self._internal_physical = self.config.internal_capacity + 1
        high_water = getattr(self.config, "gap_high_water", 1.0)
        self._leaf_high_water = max(
            2, min(self.config.leaf_capacity, round(self.config.leaf_capacity * high_water))
        )
        self._pages = PageIdAllocator()
        self._root: Optional[object] = None
        self._tail_leaf: Optional[LeafNode] = None
        self._head_leaf: Optional[LeafNode] = None
        self._tail_path: List[InternalNode] = []
        self.n_entries = 0
        self.height = 0
        self.leaf_count = 0
        self.internal_count = 0
        # Statistic counters mirrored by the paper's figures.
        self.leaf_splits = 0
        self.internal_splits = 0
        self.leaf_fissions = 0
        #: Cached (leaves, combined, offsets, total) for the coalesced batch
        #: probe; invalidated by every mutating entry point.
        self._column_cache = None
        self.top_inserts = 0
        self.fastpath_inserts = 0
        self.bulk_loaded_entries = 0
        self._max_key: Optional[int] = None
        self._min_key: Optional[int] = None
        if self.obs is not NULL_OBS:
            self.obs.register_collector("btree", self._obs_snapshot)

    def _obs_snapshot(self) -> dict:
        return {
            "n_entries": self.n_entries,
            "height": self.height,
            "leaf_count": self.leaf_count,
            "internal_count": self.internal_count,
            "leaf_splits": self.leaf_splits,
            "internal_splits": self.internal_splits,
            "leaf_fissions": self.leaf_fissions,
            "gap_slots": self.leaf_count * self.config.leaf_capacity - self.n_entries
            if self._gapped
            else 0,
            "top_inserts": self.top_inserts,
            "fastpath_inserts": self.fastpath_inserts,
            "bulk_loaded_entries": self.bulk_loaded_entries,
        }

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _invalidate_columns(self) -> None:
        """Drop the coalesced-probe column cache.

        Every mutating entry point (insert, insert_many, bulk_load_append,
        delete — including the structural work they trigger: splits,
        fissions, merge-runs, lazy-delete compaction) must call this before
        touching any leaf store; ``_get_many_gapped`` snapshots the leaf
        chain into one sorted column and a stale snapshot silently serves
        pre-mutation reads. Checkpoint loads are safe without it only
        because ``deserialize_btree`` builds a fresh tree (cache starts
        ``None``); anything that ever mutates an existing tree in place
        must route through here.
        """
        self._column_cache = None

    def _touch(self, node, dirty: bool = False) -> None:
        self.meter.charge("node_access")
        if self.pool is not None:
            self.pool.access(node.page_id, dirty=dirty)

    def _new_leaf(self):
        if self._gapped:
            leaf = GappedLeaf(self._pages.allocate(), self._leaf_physical)
        else:
            leaf = LeafNode(self._pages.allocate())
        self.leaf_count += 1
        if self.pool is not None:
            self.pool.create(leaf.page_id)
        return leaf

    def _new_internal(self):
        if self._gapped:
            node = GappedInternal(self._pages.allocate(), self._internal_physical)
        else:
            node = InternalNode(self._pages.allocate())
        self.internal_count += 1
        if self.pool is not None:
            self.pool.create(node.page_id)
        return node

    def _ensure_root(self) -> None:
        if self._root is None:
            leaf = self._new_leaf()
            self._root = leaf
            self._tail_leaf = leaf
            self._head_leaf = leaf
            self._tail_path = []
            self.height = 1

    def _descend_to_leaf(
        self, key: int, dirty: bool = False, impl=None
    ) -> Tuple[LeafNode, List[InternalNode]]:
        """Walk root->leaf for ``key``; returns (leaf, internal path). Batch
        loops pass their hoisted kernel module as ``impl`` to skip the
        per-call backend dispatch."""
        node = self._root
        path: List[InternalNode] = []
        if self._gapped:
            search = impl.node_search_right if impl is not None else None
            while not node.is_leaf:
                self._touch(node)
                path.append(node)
                ks = node.ks
                if type(ks) is list:
                    idx = bisect_right(ks, key)
                elif search is not None:
                    idx = search(ks, node.n, key)
                else:
                    idx = node.child_index(key)
                node = node.children[idx]
        else:
            while not node.is_leaf:
                self._touch(node)
                path.append(node)
                node = node.children[bisect_right(node.keys, key)]
        self._touch(node, dirty=dirty)
        return node, path

    def _recompute_tail_path(self) -> None:
        """Refresh the cached right-most path (bookkeeping, not charged)."""
        node = self._root
        path: List[InternalNode] = []
        while node is not None and not node.is_leaf:
            path.append(node)
            node = node.children[-1]
        self._tail_path = path
        self._tail_leaf = node

    def _descend_to_leaf_bounded(
        self, key: int, dirty: bool = False, impl=None
    ) -> Tuple[LeafNode, List[InternalNode], Optional[int]]:
        """Like :meth:`_descend_to_leaf`, also returning the leaf's upper
        separator (``None`` on the right-most path) so batch walks know how
        long the current leaf stays valid for ascending keys. Batch loops
        pass their hoisted kernel module as ``impl`` to skip the per-call
        backend dispatch."""
        node = self._root
        path: List[InternalNode] = []
        hi: Optional[int] = None
        if self._gapped:
            search = impl.node_search_right if impl is not None else None
            while not node.is_leaf:
                self._touch(node)
                path.append(node)
                ks = node.ks
                if type(ks) is list:
                    idx = bisect_right(ks, key)
                elif search is not None:
                    idx = search(ks, node.n, key)
                else:
                    idx = node.child_index(key)
                if idx < node.n:
                    hi = int(node.ks[idx])
                node = node.children[idx]
        else:
            while not node.is_leaf:
                self._touch(node)
                path.append(node)
                idx = bisect_right(node.keys, key)
                if idx < len(node.keys):
                    hi = node.keys[idx]
                node = node.children[idx]
        self._touch(node, dirty=dirty)
        return node, path, hi

    # ------------------------------------------------------------------
    # inserts
    # ------------------------------------------------------------------
    def insert(self, key: int, value: object) -> bool:
        """Insert or update; returns True if a new entry was created."""
        self._invalidate_columns()
        if self._gapped:
            return self._insert_gapped(key, value)
        self._ensure_root()
        self.top_inserts += 1
        tail = self._tail_leaf
        if (
            self.config.tail_leaf_optimization
            and tail is not None
            and tail.keys
            and key >= tail.keys[0]
        ):
            # Right-most leaf insertion (§III, Fig. 3a): one node access.
            self.fastpath_inserts += 1
            self._touch(tail, dirty=True)
            leaf, path = tail, self._tail_path
        else:
            leaf, path = self._descend_to_leaf(key, dirty=True)

        idx = bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            leaf.values[idx] = value
            return False
        leaf.keys.insert(idx, key)
        leaf.values.insert(idx, value)
        self.meter.charge("entry_move", len(leaf.keys) - idx)
        self.n_entries += 1
        if self._max_key is None or key > self._max_key:
            self._max_key = key
        if self._min_key is None or key < self._min_key:
            self._min_key = key
        if len(leaf.keys) > self.config.leaf_capacity:
            self._split_leaf(leaf, path)
        return True

    def _insert_gapped(self, key: int, value: object) -> bool:
        """Scalar insert on the gapped layout: find the slot, shift the
        dense prefix into the gap region, split past the high-water mark."""
        self._ensure_root()
        self.top_inserts += 1
        tail = self._tail_leaf
        if (
            self.config.tail_leaf_optimization
            and tail is not None
            and tail.n
            and key >= tail.first_key()
        ):
            # Right-most leaf insertion (§III, Fig. 3a): one node access.
            self.fastpath_inserts += 1
            self._touch(tail, dirty=True)
            leaf, path = tail, self._tail_path
        else:
            leaf, path = self._descend_to_leaf(key, dirty=True)

        idx = leaf.search_left(key)
        if leaf.has_key_at(idx, key):
            leaf.set_value(idx, value)
            return False
        leaf.insert_at(idx, key, value)
        self.meter.charge("entry_move", leaf.n - idx)
        self.n_entries += 1
        if self._max_key is None or key > self._max_key:
            self._max_key = key
        if self._min_key is None or key < self._min_key:
            self._min_key = key
        if leaf.n > self._leaf_high_water:
            self._split_leaf(leaf, path)
        return True

    def insert_many(self, items: Sequence[Tuple[int, object]]) -> int:
        """Batch upsert with sort-then-walk amortization; returns the number
        of new entries created.

        The batch is stable-sorted by key (later duplicates win, matching a
        sequential loop of upserts) and applied with one leaf descent per run
        of keys landing in the same leaf. A batch that is strictly increasing
        and entirely above ``max_key`` — the common case under sorted
        ingestion — short-circuits into :meth:`bulk_load_append`. After a
        split the cached descent is discarded, so correctness never depends
        on patched-up paths; the re-descent costs one extra walk per split.
        """
        if not items:
            return 0
        self._invalidate_columns()
        batch = kernels.sort_items_by_key(items)
        first_key = batch[0][0]
        if self._gapped:
            # Hoist the backend and build the key column exactly once; the
            # pre-checks, dedup, and the whole batch walk reuse it.
            impl = kernels.backend_module()
            col = impl.key_array([key for key, _value in batch])
            if self._max_key is None or first_key > self._max_key:
                if impl.column_strictly_increasing(col):
                    before = self.n_entries
                    self.bulk_load_append(batch)
                    return self.n_entries - before
            self._ensure_root()
            # A sequential upsert replay would make the later duplicate
            # overwrite the earlier one in place, so dropping all but the
            # last version of a key before the walk changes neither the
            # final tree, the created count, nor the entry_move charges —
            # the batch still bills len(batch) top-inserts because that is
            # how many operations it stands for.
            self.top_inserts += len(batch)
            batch, col = impl.dedup_sorted_items_col(batch, col)
            return self._insert_many_gapped(batch, col, first_key, impl)
        if self._max_key is None or first_key > self._max_key:
            if kernels.keys_strictly_increasing(batch):
                before = self.n_entries
                self.bulk_load_append(batch)
                return self.n_entries - before
        self._ensure_root()
        nb = len(batch)
        # Same dedup-before-walk argument as the gapped branch above.
        self.top_inserts += nb
        batch = kernels.dedup_sorted_items(batch)
        nb = len(batch)
        created = 0
        entry_moves = 0
        leaf_capacity = self.config.leaf_capacity
        i = 0
        while i < nb:
            key, value = batch[i]
            leaf, path, hi = self._descend_to_leaf_bounded(key, dirty=True)
            lkeys = leaf.keys
            lvalues = leaf.values
            # Inner loop: drain the run of keys belonging to this leaf with
            # all hot locals bound once; any split invalidates the cached
            # descent, so it breaks out to re-descend.
            while True:
                idx = bisect_left(lkeys, key)
                if idx < len(lkeys) and lkeys[idx] == key:
                    lvalues[idx] = value
                else:
                    lkeys.insert(idx, key)
                    lvalues.insert(idx, value)
                    entry_moves += len(lkeys) - idx
                    created += 1
                    if len(lkeys) > leaf_capacity:
                        self._split_leaf(leaf, path)
                        i += 1
                        break
                i += 1
                if i >= nb:
                    break
                key, value = batch[i]
                if hi is not None and key >= hi:
                    break
        self.meter.charge("entry_move", entry_moves)
        self.n_entries += created
        last_key = batch[-1][0]
        if self._max_key is None or last_key > self._max_key:
            self._max_key = last_key
        if self._min_key is None or first_key < self._min_key:
            self._min_key = first_key
        return created

    def _insert_many_gapped(
        self, batch: List[Tuple[int, object]], col, first_key: int, impl
    ) -> int:
        """Batch descent + gap-absorbing merges for a sorted, deduped batch.

        ``col`` is the backend-native key column for ``batch`` (built once by
        :meth:`insert_many`) and ``impl`` the hoisted kernel module. One
        bounded descent per run of keys sharing a leaf; the whole run is
        merged into the leaf in a single pass. A run that fits under the
        high-water mark is absorbed with zero structural work; one that does
        not *fissions* the leaf into bulk-filled pieces (one structural event
        for the run, vs one split per ``leaf_capacity`` keys classically).
        """
        nb = len(batch)
        run_end = impl.run_end
        created = 0
        entry_moves = 0
        i = 0
        while i < nb:
            leaf, path, hi = self._descend_to_leaf_bounded(
                batch[i][0], dirty=True, impl=impl
            )
            j = run_end(col, i, hi, nb) if hi is not None else nb
            c, moves = self._merge_run_gapped(leaf, batch, col, i, j, impl)
            created += c
            entry_moves += moves
            i = j
        if entry_moves:
            self.meter.charge("entry_move", entry_moves)
        self.n_entries += created
        last_key = batch[-1][0]
        if self._max_key is None or last_key > self._max_key:
            self._max_key = last_key
        if self._min_key is None or first_key < self._min_key:
            self._min_key = first_key
        return created

    def _merge_run_gapped(
        self,
        leaf: GappedLeaf,
        batch: List[Tuple[int, object]],
        col,
        i: int,
        j: int,
        impl=None,
    ) -> Tuple[int, int]:
        """Merge sorted ``batch[i:j]`` into ``leaf``; returns (created, moves)."""
        if impl is None:
            impl = kernels.backend_module()
        n0 = leaf.n
        positions, is_new, n_created = impl.merge_positions(leaf.ks, n0, col[i:j])
        if n_created == 0:
            # Pure overwrites: patch values in place, no key motion at all.
            vs = leaf.vs
            for t in range(i, j):
                vs[positions[t - i]] = batch[t][1]
            return 0, 0
        if n_created == j - i:
            # Pure inserts (the common case on fresh ingest): merge the key
            # column vectorized and the values with slice copies.
            new_store = impl.merge_insert_keys(
                leaf.ks, n0, col, i, j, positions, self._leaf_physical
            )
            live_vals = leaf.vs
            merged_vals = []
            p = 0
            for t in range(i, j):
                pos = positions[t - i]
                if pos > p:
                    merged_vals.extend(live_vals[p:pos])
                    p = pos
                merged_vals.append(batch[t][1])
            merged_vals.extend(live_vals[p:n0])
            total = n0 + n_created
            if total <= self._leaf_high_water:
                leaf.adopt(new_store, merged_vals)
                return n_created, (n0 - positions[0]) + n_created
            merged = new_store if type(new_store) is list else new_store[:total]
            self._fission_leaf(leaf, merged, merged_vals, impl)
            return n_created, 0
        # Single merge pass over (live prefix, run) producing dense output.
        live_keys = impl.store_keys(leaf.ks, n0)
        live_vals = leaf.vs
        merged_keys: List[int] = []
        merged_vals: List[object] = []
        p = 0
        for t in range(i, j):
            key, value = batch[t]
            pos = positions[t - i]
            while p < pos:
                merged_keys.append(live_keys[p])
                merged_vals.append(live_vals[p])
                p += 1
            merged_keys.append(key)
            merged_vals.append(value)
            if not is_new[t - i]:
                p += 1  # overwrite consumed the existing slot
        while p < n0:
            merged_keys.append(live_keys[p])
            merged_vals.append(live_vals[p])
            p += 1

        total = len(merged_keys)
        if total <= self._leaf_high_water:
            # Gap absorption: the run disappears into the leaf's holes.
            leaf.replace(merged_keys, merged_vals, self._leaf_physical)
            moves = (n0 - positions[0]) + n_created
            return n_created, moves
        self._fission_leaf(leaf, merged_keys, merged_vals, impl)
        return n_created, 0

    def _fission_leaf(
        self,
        leaf: GappedLeaf,
        merged_keys: List[int],
        merged_vals: List[object],
        impl=None,
    ) -> None:
        """Rebuild an overflowing leaf as several bulk-filled leaves.

        The merged run is cut into pieces of ``bulk_fill_factor * capacity``
        entries; the first piece reuses ``leaf``, each further piece becomes
        a fresh leaf spliced into the chain and registered with its parent
        via a fresh descent (splits invalidate cached paths, so every
        separator insertion re-walks — one O(height) walk per piece).
        """
        total = len(merged_keys)
        target = max(1, int(self.config.leaf_capacity * self.config.bulk_fill_factor))
        self.leaf_fissions += 1
        self.meter.charge("leaf_fission")
        self.meter.charge("entry_move", total)
        if self.obs.enabled:
            self.obs.event(
                "btree.leaf_fission",
                entries=total,
                pieces=(total + target - 1) // target,
            )
        was_tail = leaf is self._tail_leaf
        if impl is None:
            impl = kernels.backend_module()
        key_store = impl.gapped_key_store
        physical = self._leaf_physical
        leaf.adopt(key_store(merged_keys[:target], physical), merged_vals[:target])
        prev = leaf
        pos = target
        while pos < total:
            take = min(target, total - pos)
            piece = self._new_leaf()
            piece.adopt(
                key_store(merged_keys[pos : pos + take], physical),
                merged_vals[pos : pos + take],
            )
            piece.next_leaf = prev.next_leaf
            prev.next_leaf = piece
            if was_tail and piece.next_leaf is None:
                self._tail_leaf = piece
            sep = piece.first_key()
            # sep still routes to ``prev`` (its separator is not in any
            # parent yet), so this walk yields prev's current parent path.
            _, spath = self._descend_to_leaf(sep, impl=impl)
            self._insert_into_parent(prev, sep, piece, spath)
            prev = piece
            pos += take

    def _split_point(self, total: int, capacity: int) -> int:
        point = round(total * self.config.split_factor)
        return max(1, min(point, total - 1))

    def _split_leaf(self, leaf, path: List[InternalNode]) -> None:
        self.leaf_splits += 1
        self.meter.charge("leaf_split")
        if self.obs.enabled:
            self.obs.event("btree.leaf_split", entries=len(leaf), depth=len(path))
        split = self._split_point(len(leaf), self.config.leaf_capacity)
        right = self._new_leaf()
        if self._gapped:
            leaf.split_into(right, split, self._leaf_physical)
            moved = right.n
            separator = right.first_key()
        else:
            right.keys = leaf.keys[split:]
            right.values = leaf.values[split:]
            del leaf.keys[split:]
            del leaf.values[split:]
            moved = len(right.keys)
            separator = right.keys[0]
        self.meter.charge("entry_move", moved)
        right.next_leaf = leaf.next_leaf
        leaf.next_leaf = right
        if leaf is self._tail_leaf:
            self._tail_leaf = right
        self._insert_into_parent(leaf, separator, right, path)

    def _split_internal(self, node, path: List[InternalNode]) -> None:
        self.internal_splits += 1
        self.meter.charge("internal_split")
        if self.obs.enabled:
            self.obs.event("btree.internal_split", pivots=len(node), depth=len(path))
        split = self._split_point(len(node), self.config.internal_capacity)
        right = self._new_internal()
        if self._gapped:
            promoted = node.split_into(right, split, self._internal_physical)
            moved = right.n + 1
        else:
            promoted = node.keys[split]
            right.keys = node.keys[split + 1 :]
            right.children = node.children[split + 1 :]
            del node.keys[split:]
            del node.children[split + 1 :]
            moved = len(right.keys) + 1
        self.meter.charge("entry_move", moved)
        self._insert_into_parent(node, promoted, right, path)

    def _insert_into_parent(
        self, left, promoted_key: int, right, path: List[InternalNode]
    ) -> None:
        if not path:
            # Splitting the root: grow the tree by one level.
            new_root = self._new_internal()
            if self._gapped:
                new_root.children = [left]
                new_root.insert_pivot(0, promoted_key, right)
            else:
                new_root.keys = [promoted_key]
                new_root.children = [left, right]
            self._root = new_root
            self.height += 1
            self._recompute_tail_path()
            return
        parent = path[-1]
        self._touch(parent, dirty=True)
        if self._gapped:
            idx = parent.child_index(promoted_key)
            parent.insert_pivot(idx, promoted_key, right)
            n_after = parent.n
        else:
            idx = bisect_right(parent.keys, promoted_key)
            parent.keys.insert(idx, promoted_key)
            parent.children.insert(idx + 1, right)
            n_after = len(parent.keys)
        self.meter.charge("entry_move", n_after - idx)
        if n_after > self.config.internal_capacity:
            self._split_internal(parent, path[:-1])
        else:
            self._recompute_tail_path()

    # ------------------------------------------------------------------
    # bulk loading
    # ------------------------------------------------------------------
    def bulk_load_append(self, items: Sequence[Tuple[int, object]]) -> None:
        """Append a sorted batch of strictly increasing keys > max_key.

        Fills each leaf to ``bulk_fill_factor`` and pushes separators up the
        right spine (Fig. 3b); cost is O(1) amortized per entry.
        """
        if not items:
            return
        if not kernels.keys_strictly_increasing(items):
            raise BulkLoadError("bulk batch must be strictly increasing")
        if self._max_key is not None and items[0][0] <= self._max_key:
            raise BulkLoadError(
                f"bulk batch starts at {items[0][0]} but tree max is {self._max_key}"
            )
        self._invalidate_columns()
        self._ensure_root()
        fill = max(1, int(self.config.leaf_capacity * self.config.bulk_fill_factor))
        self.meter.charge("bulk_entry", len(items))
        if self.obs.enabled:
            self.obs.event("btree.bulk_load", entries=len(items))
        self.obs.observe_hist(
            "btree_bulk_load_entries", len(items), buckets=DEFAULT_SIZE_BUCKETS
        )

        pos = 0
        total = len(items)
        tail = self._tail_leaf
        if self._gapped:
            # Chunked fills: one store slice-assignment per leaf instead of a
            # per-key append loop — the main bulk-load speedup of the layout.
            col = kernels.key_column(items)
            if tail.n < fill:
                take = min(fill - tail.n, total) if tail.n else min(fill, total)
                self._touch(tail, dirty=True)
                tail.extend(col[pos : pos + take], [v for _, v in items[pos : pos + take]])
                pos += take
            while pos < total:
                take = min(fill, total - pos)
                leaf = self._new_leaf()
                leaf.extend(col[pos : pos + take], [v for _, v in items[pos : pos + take]])
                pos += take
                self._append_leaf(leaf)
        else:
            # Top off the current tail leaf first so it reaches the fill target.
            if tail.keys and len(tail.keys) < fill:
                take = min(fill - len(tail.keys), total)
                self._touch(tail, dirty=True)
                for key, value in items[pos : pos + take]:
                    tail.keys.append(key)
                    tail.values.append(value)
                pos += take
            elif not tail.keys:
                take = min(fill, total)
                self._touch(tail, dirty=True)
                for key, value in items[pos : pos + take]:
                    tail.keys.append(key)
                    tail.values.append(value)
                pos += take

            while pos < total:
                take = min(fill, total - pos)
                leaf = self._new_leaf()
                for key, value in items[pos : pos + take]:
                    leaf.keys.append(key)
                    leaf.values.append(value)
                pos += take
                self._append_leaf(leaf)

        self.n_entries += total
        self.bulk_loaded_entries += total
        self._max_key = items[-1][0] if self._max_key is None else max(self._max_key, items[-1][0])
        if self._min_key is None:
            self._min_key = items[0][0]

    def _append_leaf(self, leaf) -> None:
        """Attach a freshly built leaf at the right edge of the tree."""
        tail = self._tail_leaf
        leaf.next_leaf = tail.next_leaf
        tail.next_leaf = leaf
        self._tail_leaf = leaf
        separator = leaf.first_key() if self._gapped else leaf.keys[0]
        if self._root is tail:
            # Root was a lone leaf: create the first internal level.
            new_root = self._new_internal()
            if self._gapped:
                new_root.children = [tail]
                new_root.insert_pivot(0, separator, leaf)
            else:
                new_root.keys = [separator]
                new_root.children = [tail, leaf]
            self._root = new_root
            self.height += 1
            self._recompute_tail_path()
            return
        parent = self._tail_path[-1]
        self._touch(parent, dirty=True)
        if self._gapped:
            parent.insert_pivot(parent.n, separator, leaf)
            overflow = parent.n > self.config.internal_capacity
        else:
            parent.keys.append(separator)
            parent.children.append(leaf)
            overflow = len(parent.keys) > self.config.internal_capacity
        if overflow:
            self._split_internal(parent, self._tail_path[:-1])
        # No path recompute needed otherwise: parent chain unchanged.

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, key: int) -> Optional[object]:
        """Point lookup; returns the value or None."""
        if self._root is None:
            return None
        leaf, _ = self._descend_to_leaf(key)
        if self._gapped:
            idx = leaf.search_left(key)
            if leaf.has_key_at(idx, key):
                return leaf.vs[idx]
            return None
        idx = bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        return None

    def get_many(self, keys: Sequence[int]) -> List[Optional[object]]:
        """Batch point lookups, one value-or-``None`` per key in input order.

        Distinct keys are resolved in sorted order by one of two strategies,
        picked by batch density:

        * **dense** (at least ~one key per leaf): descend once to the
          left-most queried key, then merge the sorted batch along the
          ``next_leaf`` chain — per key only the in-leaf bisect remains, and
          the chain advance costs O(leaves spanned) for the whole batch;
        * **sparse**: partition the sorted batch across children at each
          internal node (a bisect per child actually entered), visiting only
          nodes on the union of root-to-leaf paths.

        Either way each visited node is touched — and charged — exactly
        once per batch instead of once per key; without a pool the charges
        are aggregated into a single meter call (with a pool each node is
        touched individually to keep eviction order honest).
        """
        n = len(keys)
        if self._root is None or n == 0:
            return [None] * n
        if self._gapped:
            return self._get_many_gapped(keys)
        skeys = sorted(set(keys))
        m = len(skeys)
        found: dict = {}
        pool = self.pool
        touch = self._touch
        root = self._root

        if not root.is_leaf and m >= self.leaf_count:
            # Dense: merge along the leaf chain.
            leaf, _path = self._descend_to_leaf(skeys[0])
            i = 0
            extra_visits = 0
            while leaf is not None:
                nkeys = leaf.keys
                if nkeys:
                    last = nkeys[-1]
                    width = len(nkeys)
                    values = leaf.values
                    while i < m:
                        key = skeys[i]
                        if key > last:
                            break
                        idx = bisect_left(nkeys, key)
                        if idx < width and nkeys[idx] == key:
                            found[key] = values[idx]
                        i += 1
                    if i >= m:
                        break
                leaf = leaf.next_leaf
                if leaf is None:
                    break
                if pool is not None:
                    touch(leaf)
                else:
                    extra_visits += 1
            if pool is None and extra_visits:
                self.meter.charge("node_access", extra_visits)
            return [found.get(key) for key in keys]

        node_visits = 0

        def resolve_leaf(leaf: LeafNode, lo: int, hi: int) -> None:
            nkeys = leaf.keys
            width = len(nkeys)
            nvalues = leaf.values
            for t in range(lo, hi):
                key = skeys[t]
                idx = bisect_left(nkeys, key)
                if idx < width and nkeys[idx] == key:
                    found[key] = nvalues[idx]

        if root.is_leaf:
            node_visits += 1
            if pool is not None:
                touch(root)
            resolve_leaf(root, 0, m)
        else:
            stack = [(root, 0, m)]
            while stack:
                node, lo, hi = stack.pop()
                node_visits += 1
                if pool is not None:
                    touch(node)
                seps = node.keys
                children = node.children
                n_seps = len(seps)
                if children[0].is_leaf:
                    # Resolve leaf children inline — most segments hold one
                    # key, so stack round-trips would dominate.
                    i = lo
                    while i < hi:
                        key = skeys[i]
                        child_idx = bisect_right(seps, key)
                        j = i + 1
                        if child_idx < n_seps:
                            sep = seps[child_idx]
                            if j < hi and skeys[j] < sep:
                                j = bisect_left(skeys, sep, j, hi)
                        else:
                            j = hi
                        leaf = children[child_idx]
                        node_visits += 1
                        if pool is not None:
                            touch(leaf)
                        nkeys = leaf.keys
                        if j - i == 1:
                            idx = bisect_left(nkeys, key)
                            if idx < len(nkeys) and nkeys[idx] == key:
                                found[key] = leaf.values[idx]
                        else:
                            resolve_leaf(leaf, i, j)
                        i = j
                else:
                    i = lo
                    while i < hi:
                        child_idx = bisect_right(seps, skeys[i])
                        if child_idx < n_seps:
                            j = bisect_left(skeys, seps[child_idx], i, hi)
                        else:
                            j = hi
                        stack.append((children[child_idx], i, j))
                        i = j
        if pool is None:
            self.meter.charge("node_access", node_visits)
        return [found.get(key) for key in keys]

    def _get_many_gapped(self, keys: Sequence[int]) -> List[Optional[object]]:
        """Batch descent: partition the sorted key vector across children one
        level at a time (one vectorized ``searchsorted`` per visited node),
        then resolve each leaf's segment with one vectorized probe. Every
        visited node is touched/charged once per batch, as in the classic
        batch path."""
        skeys = sorted(set(keys))
        m = len(skeys)
        impl = kernels.backend_module()
        col = impl.key_array(skeys)
        found: dict = {}
        pool = self.pool
        touch = self._touch
        node_visits = 0
        partition = impl.partition_runs
        find_positions = impl.leaf_find_positions
        # Coalesced leaf probe: the leaf chain in key order is one globally
        # sorted column, so a single vectorized search resolves every key at
        # once instead of one tiny searchsorted per visited leaf (the
        # dominant cost on wide trees). The concatenated column is cached
        # until the next mutation; the descent below still walks the tree
        # for bufferpool touches and node_access accounting, which model the
        # algorithm's I/O pattern regardless of how the probe is executed.
        flat = type(col) is not list
        cache = self._column_cache if flat else None
        if flat and cache is None:
            leaves: List[GappedLeaf] = []
            leaf = self._head_leaf
            while leaf is not None:
                if type(leaf.ks) is list:
                    break
                leaves.append(leaf)
                leaf = leaf.next_leaf
            if leaf is None and leaves:
                combined, offsets = impl.concat_stores(
                    [lf.ks for lf in leaves], [lf.n for lf in leaves]
                )
                total = offsets[-1] + leaves[-1].n
                cache = (leaves, combined, offsets, total)
                self._column_cache = cache
            else:
                # Demoted (list-store) leaves in the chain: probe per leaf.
                flat = False
        stack = [(self._root, 0, m)]
        while stack:
            node, lo, hi = stack.pop()
            node_visits += 1
            if pool is not None:
                touch(node)
            if node.is_leaf:
                if flat:
                    continue
                positions = find_positions(node.ks, node.n, col, lo, hi)
                vs = node.vs
                for t, p in enumerate(positions):
                    if p >= 0:
                        found[skeys[lo + t]] = vs[p]
            else:
                children = node.children
                for child_idx, start, stop in partition(node.ks, node.n, col, lo, hi):
                    stack.append((children[child_idx], start, stop))
        if flat:
            leaves, combined, offsets, total = cache
            owners, locals_ = impl.probe_positions(combined, total, offsets, col, m)
            for t, li in enumerate(owners):
                if li >= 0:
                    found[skeys[t]] = leaves[li].vs[locals_[t]]
        if pool is None:
            self.meter.charge("node_access", node_visits)
        return [found.get(key) for key in keys]

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    def range_query(self, lo: int, hi: int) -> List[Tuple[int, object]]:
        """All (key, value) with lo <= key <= hi, in key order."""
        results: List[Tuple[int, object]] = []
        if self._root is None or lo > hi:
            return results
        leaf, _ = self._descend_to_leaf(lo)
        if self._gapped:
            self._scan_gapped(leaf, lo, hi, results)
            return results
        while leaf is not None:
            keys = leaf.keys
            if keys:
                if keys[0] > hi:
                    break
                start = bisect_left(keys, lo)
                stop = bisect_right(keys, hi)
                self.meter.charge("scan_entry", max(stop - start, 0))
                for i in range(start, stop):
                    results.append((keys[i], leaf.values[i]))
                if stop < len(keys):
                    break
            leaf = leaf.next_leaf
            if leaf is not None:
                self._touch(leaf)
        return results

    def _scan_gapped(self, leaf, lo: int, hi: int, out: List[Tuple[int, object]]):
        """Collect [lo, hi] walking the chain from ``leaf`` (already
        touched); returns the last leaf visited so batch callers can resume
        the walk instead of re-descending."""
        last = leaf
        while leaf is not None:
            last = leaf
            n = leaf.n
            if n:
                if leaf.first_key() > hi:
                    break
                start, stop = kernels.leaf_range_bounds(leaf.ks, n, lo, hi)
                self.meter.charge("scan_entry", max(stop - start, 0))
                if stop > start:
                    ks = leaf.ks
                    vs = leaf.vs
                    for i in range(start, stop):
                        out.append((int(ks[i]), vs[i]))
                if stop < n:
                    break
            leaf = leaf.next_leaf
            if leaf is not None:
                self._touch(leaf)
        return last

    def range_many(
        self, ranges: Sequence[Tuple[int, int]]
    ) -> List[List[Tuple[int, object]]]:
        """Batch range queries: one result list per ``(lo, hi)`` pair.

        On the gapped layout the ranges are visited in ascending-``lo`` order
        and each scan resumes from the leaf where the previous one stopped
        when it can (bounded chain walk), falling back to a fresh descent —
        overlapping or adjacent ranges touch each leaf once per batch instead
        of once per range. The classic layout runs one query per range.
        """
        if not self._gapped or self._root is None or len(ranges) < 2:
            return [self.range_query(lo, hi) for lo, hi in ranges]
        results: List[List[Tuple[int, object]]] = [[] for _ in ranges]
        order = sorted(range(len(ranges)), key=lambda i: ranges[i][0])
        cursor = None
        walk_budget = self.height + 2
        for ridx in order:
            lo, hi = ranges[ridx]
            if lo > hi:
                continue
            leaf = None
            if cursor is not None and cursor.n and lo >= cursor.first_key():
                # Try to reach lo's leaf along the chain before paying a
                # root-to-leaf walk: ascending los make this amortized O(1).
                node = cursor
                hops = 0
                while node is not None and hops <= walk_budget:
                    if node.n and node.last_key() >= lo:
                        leaf = node
                        break
                    node = node.next_leaf
                    hops += 1
                    if node is not None:
                        self._touch(node)
                if leaf is None and node is not None and node.n and node.last_key() >= lo:
                    leaf = node
            if leaf is None:
                leaf, _ = self._descend_to_leaf(lo)
            cursor = self._scan_gapped(leaf, lo, hi, results[ridx])
        return results

    def iter_items(self) -> Iterator[Tuple[int, object]]:
        """All entries in key order (no cost charged: test/debug helper)."""
        leaf = self._head_leaf
        if self._gapped:
            while leaf is not None:
                yield from leaf.iter_live()
                leaf = leaf.next_leaf
            return
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next_leaf

    # ------------------------------------------------------------------
    # deletes
    # ------------------------------------------------------------------
    def delete(self, key: int) -> bool:
        """Remove ``key`` if present (lazy: no rebalancing).

        ``min_key``/``max_key`` are *watermark* bounds: they never shrink on
        deletes. A stale bound only costs a wasted lookup for a key outside
        the live range — whereas shrinking ``max_key`` below the right-most
        separator would let a later bulk load append keys that belong left
        of that separator into the tail leaf.
        """
        if self._root is None:
            return False
        self._invalidate_columns()
        leaf, _ = self._descend_to_leaf(key, dirty=True)
        if self._gapped:
            idx = leaf.search_left(key)
            if not leaf.has_key_at(idx, key):
                return False
            leaf.delete_at(idx)
            self.meter.charge("entry_move", leaf.n - idx + 1)
            self.n_entries -= 1
            return True
        idx = bisect_left(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            return False
        leaf.keys.pop(idx)
        leaf.values.pop(idx)
        self.meter.charge("entry_move", len(leaf.keys) - idx + 1)
        self.n_entries -= 1
        return True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def max_key(self) -> Optional[int]:
        """High-watermark upper bound (never shrinks on deletes)."""
        return self._max_key

    @property
    def min_key(self) -> Optional[int]:
        """Low-watermark lower bound (never grows on deletes)."""
        return self._min_key

    def __len__(self) -> int:
        return self.n_entries

    def space_stats(self) -> dict:
        """Space-utilization report (intro claim: up to 48% reduction).

        ``leaf_slots``/``avg_leaf_fill``/``slot_overhead`` are *logical*
        figures (capacity-based, comparable across layouts). The gapped
        layout also physically allocates its gap region up front, so the
        report carries explicit physical accounting — ``physical_slots``
        counts every allocated key slot (including the per-leaf spare),
        ``gap_slots`` the currently empty ones — and the space bench cannot
        silently flatter the layout by ignoring pre-allocated gaps.
        """
        leaf_slots = self.leaf_count * self.config.leaf_capacity
        used = self.n_entries
        fills: List[float] = []
        leaf = self._head_leaf
        while leaf is not None:
            fills.append(len(leaf) / self.config.leaf_capacity)
            leaf = leaf.next_leaf
        avg_fill = sum(fills) / len(fills) if fills else 0.0
        physical_slots = (
            self.leaf_count * self._leaf_physical if self._gapped else leaf_slots
        )
        return {
            "leaf_count": self.leaf_count,
            "internal_count": self.internal_count,
            "height": self.height,
            "leaf_slots": leaf_slots,
            "entries": used,
            "avg_leaf_fill": avg_fill,
            "slot_overhead": (leaf_slots / used) if used else 0.0,
            "logical_entries": used,
            "physical_slots": physical_slots,
            "gap_slots": physical_slots - used,
            "physical_fill": (used / physical_slots) if physical_slots else 0.0,
        }

    def check_invariants(self) -> None:
        """Validate structural invariants; raises InvariantViolation."""
        if self._root is None:
            return
        leaf_depths = set()

        def check_store(node) -> None:
            """Gapped-store integrity: dense sorted prefix, sentinel tail."""
            ks = node.ks
            if isinstance(ks, list):
                if len(ks) != node.n:
                    raise InvariantViolation(
                        f"list store holds {len(ks)} keys but n={node.n}"
                    )
                return
            if node.n > len(ks):
                raise InvariantViolation("store live count exceeds physical slots")
            live = ks[: node.n]
            if node.n and int(live.max()) >= KEY_SENTINEL:
                raise InvariantViolation("sentinel-valued key in live prefix")
            tail = ks[node.n :]
            if len(tail) and int(tail.min()) < KEY_SENTINEL:
                raise InvariantViolation("live key in gap region")

        def recurse(node, depth: int, lo: Optional[int], hi: Optional[int]) -> None:
            if self._gapped:
                check_store(node)
                if node.is_leaf and len(node.vs) != node.n:
                    raise InvariantViolation(
                        f"leaf value count {len(node.vs)} != n={node.n}"
                    )
            if node.is_leaf:
                leaf_depths.add(depth)
                keys = node.keys
                if len(keys) > self.config.leaf_capacity:
                    raise InvariantViolation(
                        f"leaf holds {len(keys)} > capacity {self.config.leaf_capacity}"
                    )
                for i in range(1, len(keys)):
                    if keys[i - 1] >= keys[i]:
                        raise InvariantViolation(f"leaf keys not strictly sorted: {keys}")
                for key in keys:
                    if lo is not None and key < lo:
                        raise InvariantViolation(f"leaf key {key} below separator {lo}")
                    if hi is not None and key >= hi:
                        raise InvariantViolation(f"leaf key {key} at/above separator {hi}")
                return
            if len(node.children) != len(node.keys) + 1:
                raise InvariantViolation("internal child count mismatch")
            if len(node.keys) > self.config.internal_capacity:
                raise InvariantViolation(
                    f"internal holds {len(node.keys)} > capacity {self.config.internal_capacity}"
                )
            for i in range(1, len(node.keys)):
                if node.keys[i - 1] >= node.keys[i]:
                    raise InvariantViolation("internal keys not strictly sorted")
            bounds = [lo] + list(node.keys) + [hi]
            for i, child in enumerate(node.children):
                recurse(child, depth + 1, bounds[i], bounds[i + 1])

        recurse(self._root, 1, None, None)
        if len(leaf_depths) > 1:
            raise InvariantViolation(f"leaves at multiple depths: {leaf_depths}")
        if leaf_depths and next(iter(leaf_depths)) != self.height:
            raise InvariantViolation(
                f"height {self.height} does not match leaf depth {leaf_depths}"
            )
        # Leaf chain must be globally sorted and cover n_entries.
        count = 0
        previous = None
        leaf = self._head_leaf
        last_nonempty = None
        while leaf is not None:
            for key in leaf.keys:
                if previous is not None and key <= previous:
                    raise InvariantViolation("leaf chain out of order")
                previous = key
                count += 1
            if leaf.keys:
                last_nonempty = leaf
            leaf = leaf.next_leaf
        if count != self.n_entries:
            raise InvariantViolation(f"entry count {count} != n_entries {self.n_entries}")
        if self._tail_leaf is not None and self._tail_leaf.next_leaf is not None:
            raise InvariantViolation("tail leaf is not the end of the chain")
        if last_nonempty is not None and (
            self._max_key is None or self._max_key < last_nonempty.keys[-1]
        ):
            raise InvariantViolation("max_key watermark below right-most entry")
