"""Offline index reconstruction: checkpoint + WAL tail → fresh bulk-loaded tree.

The incremental restart path (:meth:`CheckpointStore.recover`) replays the
WAL tail through the index's normal per-op write path. That is the right
call for short tails, but a long tail pays a full root-to-leaf descent —
plus buffer, Bloom, and zonemap maintenance — per logged record. This
module implements the paper-adjacent alternative ("compressed key sort and
fast index reconstruction"): treat the checkpoint's leaf pages and the
sorted WAL tail as *compressed sorted runs*, k-way merge them while keys
stay delta-encoded except at merge frontiers
(:mod:`repro.storage.compress`), and bulk-load the merged stream straight
into a fresh gapped B+-tree at O(1) amortized per entry.

The same merge doubles as LSM compaction — :meth:`repro.lsm.LSMTree.compact`
routes its runs through :func:`merge_compressed_runs`.

Crash safety: the rebuild never mutates the source checkpoint or WAL. An
optional re-checkpoint of the rebuilt tree goes through the standard
atomic tmp-file + rename protocol, so a crash mid-rebuild leaves the
original checkpoint untouched and at most a stale ``*.tmp`` that the next
``recover``/``rebuild`` removes.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from repro.obs import current_obs
from repro.storage.compress import CompressedRun, RunPage, merge_compressed_items
from repro.storage.pagefile import DEFAULT_SLOT_SIZE, CheckpointStore
from repro.storage.pages import (
    FLAG_COMPRESSED_KEYS,
    KIND_LEAF,
    leaf_columns,
    page_kind,
)
from repro.storage.wal import replay_wal

__all__ = [
    "RebuildReport",
    "checkpoint_run",
    "wal_run",
    "rebuild_index",
]

#: Items per bulk-load batch handed to ``bulk_load_append``.
BULK_BATCH = 4096


@dataclass
class RebuildReport:
    """What :func:`rebuild_index` consumed and produced."""

    checkpoint_epoch: int = 0
    checkpoint_pages: int = 0  #: leaf pages streamed out of the checkpoint
    checkpoint_entries: int = 0
    wal_records: int = 0
    wal_torn_tail: bool = False
    wal_unique_keys: int = 0
    entries: int = 0  #: live entries in the rebuilt index
    out_path: Optional[str] = None
    stale_tmp_removed: bool = False

    def describe(self) -> str:
        lines = [
            f"checkpoint : epoch {self.checkpoint_epoch}, "
            f"{self.checkpoint_pages} leaf pages, {self.checkpoint_entries} entries",
            f"wal tail   : {self.wal_records} records, "
            f"{self.wal_unique_keys} unique keys"
            + (" (torn tail truncated)" if self.wal_torn_tail else ""),
            f"entries    : {self.entries} (bulk-loaded)",
        ]
        if self.out_path is not None:
            lines.append(f"checkpoint written : {self.out_path}")
        if self.stale_tmp_removed:
            lines.append("cleanup    : removed stale checkpoint temp file")
        return "\n".join(lines)


def checkpoint_run(
    path: str,
    *,
    slot_size: int = DEFAULT_SLOT_SIZE,
    opener: Callable = open,
) -> Tuple[CompressedRun, dict, int]:
    """Stream a checkpoint's leaf pages as one sorted compressed run.

    Returns ``(run, directory, epoch)``. Leaf key ranges are disjoint, so
    sorting pages by their first key yields one globally sorted run; pages
    whose key column is already delta-compressed (v2 checkpoints) are
    adopted **without decoding** — their blocks go straight into the merge.
    """
    store = CheckpointStore(path, slot_size, opener=opener)
    directory, epoch, pages = store.load_pages()
    run_pages: List[Tuple[int, RunPage]] = []
    for data in pages.values():
        if page_kind(data) != KIND_LEAF:
            continue
        count, flags, key_column, values = leaf_columns(data)
        if count == 0:
            continue
        if flags & FLAG_COMPRESSED_KEYS:
            page = RunPage(key_column, values)
            first = page.min_key
        else:
            keys = list(struct.unpack(f"<{count}q", key_column))
            page = RunPage.from_items(keys, values)
            first = keys[0]
        run_pages.append((first, page))
    run_pages.sort(key=lambda pair: pair[0])
    run = CompressedRun(pages=[page for _first, page in run_pages], priority=0)
    return run, directory, epoch


def wal_run(
    wal_path: str,
    *,
    opener: Callable = open,
    priority: int = 1,
    page_items: int = 512,
):
    """Condense a WAL tail into one sorted compressed run.

    Replays the intact prefix, keeps the **last** operation per key
    (deletes become tombstones), sorts, and delta-encodes. Returns
    ``(run, replay)`` so callers can report record counts / torn tails.
    """
    replay = replay_wal(wal_path, opener=opener)
    last: dict = {}
    for kind, key, value in replay.ops:
        last[key] = (value, kind != "put")
    items = (
        (key, value, tombstone)
        for key, (value, tombstone) in sorted(last.items())
    )
    run = CompressedRun.from_items(items, priority=priority, page_items=page_items)
    return run, replay


def _batched(
    items: Iterable[Tuple[int, object, bool]], size: int
) -> Iterator[List[Tuple[int, object]]]:
    batch: List[Tuple[int, object]] = []
    for key, value, _tombstone in items:
        batch.append((key, value))
        if len(batch) >= size:
            yield batch
            batch = []
    if batch:
        yield batch


def rebuild_index(
    checkpoint_path: str,
    wal_path: Optional[str] = None,
    *,
    out_path: Optional[str] = None,
    slot_size: int = DEFAULT_SLOT_SIZE,
    config=None,
    meter=None,
    tree_config=None,
    opener: Callable = open,
    replace: Optional[Callable] = None,
    compress: bool = True,
):
    """Rebuild a fresh index from a checkpoint plus an optional WAL tail.

    Returns ``(index, report)`` where ``index`` is a
    :class:`~repro.core.sware.SortednessAwareIndex` over a freshly
    bulk-loaded gapped B+-tree holding exactly the state incremental
    recovery would produce (checkpoint contents overlaid with the WAL's
    last-op-per-key, deletes dropped).

    ``out_path`` additionally re-checkpoints the rebuilt tree there (atomic
    tmp + rename; with ``compress``, in v2 compressed page format). The
    source checkpoint and WAL are never modified.
    """
    from repro.btree.btree import BPlusTree
    from repro.core.sware import SortednessAwareIndex

    obs = current_obs()
    report = RebuildReport()
    for victim in (checkpoint_path, out_path):
        if victim is None:
            continue
        tmp = victim + CheckpointStore.TMP_SUFFIX
        if os.path.exists(tmp):
            os.unlink(tmp)
            report.stale_tmp_removed = True

    with obs.span("rebuild.stream_runs") as span:
        ckpt_run, directory, epoch = checkpoint_run(
            checkpoint_path, slot_size=slot_size, opener=opener
        )
        report.checkpoint_epoch = epoch
        report.checkpoint_pages = len(ckpt_run.pages)
        report.checkpoint_entries = ckpt_run.count
        runs = [ckpt_run]
        if wal_path is not None and os.path.exists(wal_path):
            tail_run, replay = wal_run(wal_path, opener=opener)
            report.wal_records = replay.records
            report.wal_torn_tail = replay.torn_tail
            report.wal_unique_keys = tail_run.count
            if tail_run.pages:
                runs.append(tail_run)
        span.set(
            checkpoint_pages=report.checkpoint_pages,
            wal_records=report.wal_records,
        )

    if tree_config is None:
        tree_config = directory.get("config")
    tree = BPlusTree(tree_config)
    if meter is not None:
        tree.meter = meter
    with obs.span("rebuild.bulk_load") as span:
        merged = merge_compressed_items(runs, drop_tombstones=True)
        for batch in _batched(merged, BULK_BATCH):
            tree.bulk_load_append(batch)
        span.set(entries=tree.n_entries)
    tree.check_invariants()
    report.entries = tree.n_entries

    index = SortednessAwareIndex(tree, config=config, meter=meter)
    if out_path is not None:
        store = CheckpointStore(
            out_path,
            slot_size,
            opener=opener,
            replace=replace,
            compress=compress,
        )
        report.out_path = out_path
        store.save_btree(tree)
    if obs.enabled:
        obs.event(
            "rebuild.done",
            entries=report.entries,
            wal_records=report.wal_records,
            checkpoint_pages=report.checkpoint_pages,
        )
    return index, report
