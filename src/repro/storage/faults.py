"""Deterministic fault injection for the durability subsystem.

The crash-recovery acceptance test needs to kill the "process" at *every*
I/O boundary the WAL and checkpoint paths cross, and to leave behind the
kind of wreckage a real crash leaves — a torn final write, a rename that
never happened, a truncate that never ran. This module provides that as a
seeded, fully deterministic harness:

* :class:`FaultyEnv` owns a global mutating-I/O counter shared by every
  file it opens. Operation ``crash_at`` raises :class:`SimulatedCrash`;
  for a ``write`` the crash first commits a random *prefix* of the data
  (the torn write), for ``flush``/``fsync``/``truncate``/``replace`` it
  fires before the effect. After the crash every further I/O through the
  environment raises immediately — the process is dead.
* :class:`FaultyFile` wraps a real file object and routes its mutating
  calls through the environment's counter. Reads can also be shortened
  (``short_read_at``) to exercise torn-read handling on the replay side.

Determinism contract: the same ``(seed, crash_at)`` against the same
workload produces byte-identical on-disk wreckage, so every crash point in
an acceptance sweep is reproducible in isolation.

Durability model: bytes are considered durable once ``write`` returns
(page-cache loss is not simulated); the torn write at the crash point is
what models a partially persisted frame. Under the WAL's default
``fsync_policy="always"`` the distinction is immaterial — an acknowledged
append has already fsynced.

:class:`SimulatedCrash` deliberately does **not** subclass ``ReproError``:
library code that politely catches its own exception family must never
swallow a crash.
"""

from __future__ import annotations

import os
import random
from typing import Optional


class SimulatedCrash(Exception):
    """The fault harness killed the process at an I/O boundary."""


class FaultyEnv:
    """A seeded crash schedule shared by every file opened through it.

    Parameters
    ----------
    crash_at:
        Index (0-based) of the mutating I/O operation that crashes. ``None``
        never crashes (useful for counting a workload's total I/O ops).
    seed:
        Seeds the torn-write cut point.
    short_read_at:
        Optional index (0-based, separate counter) of a read operation to
        shorten to a random prefix.
    """

    def __init__(
        self,
        crash_at: Optional[int] = None,
        seed: int = 0,
        short_read_at: Optional[int] = None,
    ):
        self.crash_at = crash_at
        self.rng = random.Random(seed)
        self.short_read_at = short_read_at
        self.ops = 0  # mutating I/O operations performed so far
        self.reads = 0
        self.crashed = False

    # -- scheduling --------------------------------------------------------
    def _check_alive(self) -> None:
        if self.crashed:
            raise SimulatedCrash("I/O after simulated crash")

    def _tick(self) -> bool:
        """Advance the op counter; True when this op is the crash point."""
        self._check_alive()
        op = self.ops
        self.ops += 1
        if self.crash_at is not None and op >= self.crash_at:
            self.crashed = True
            return True
        return False

    def _tick_read(self) -> bool:
        self._check_alive()
        op = self.reads
        self.reads += 1
        return self.short_read_at is not None and op == self.short_read_at

    # -- environment surface ------------------------------------------------
    def open(self, path: str, mode: str = "rb") -> "FaultyFile":
        self._check_alive()
        return FaultyFile(open(path, mode), self)

    def replace(self, src: str, dst: str) -> None:
        """``os.replace`` with a crash point *before* the atomic rename."""
        if self._tick():
            raise SimulatedCrash(f"crash before replace({src!r}, {dst!r})")
        os.replace(src, dst)


class FaultyFile:
    """A file wrapper whose mutating calls pass through a :class:`FaultyEnv`."""

    def __init__(self, fobj, env: FaultyEnv):
        self._file = fobj
        self._env = env

    # -- mutating operations (crash-scheduled) -------------------------------
    def write(self, data: bytes) -> int:
        if self._env._tick():
            # Torn write: a random strict prefix reaches the platter.
            cut = self._env.rng.randrange(len(data)) if data else 0
            if cut:
                self._file.write(data[:cut])
                self._file.flush()
            raise SimulatedCrash(f"torn write: {cut}/{len(data)} bytes persisted")
        return self._file.write(data)

    def flush(self) -> None:
        if self._env._tick():
            raise SimulatedCrash("crash before flush")
        self._file.flush()

    def fsync(self) -> None:
        if self._env._tick():
            raise SimulatedCrash("crash before fsync")
        self._file.flush()
        os.fsync(self._file.fileno())

    def truncate(self, size: Optional[int] = None) -> int:
        if self._env._tick():
            raise SimulatedCrash("crash before truncate")
        return self._file.truncate(size)

    # -- reads (short-read injection, never crash-scheduled) -----------------
    def read(self, size: int = -1) -> bytes:
        if self._env._tick_read():
            data = self._file.read(size)
            cut = self._env.rng.randrange(len(data)) if data else 0
            return data[:cut]
        return self._file.read(size)

    # -- passthrough ---------------------------------------------------------
    def seek(self, offset: int, whence: int = 0) -> int:
        self._env._check_alive()
        return self._file.seek(offset, whence)

    def tell(self) -> int:
        return self._file.tell()

    def fileno(self) -> int:
        return self._file.fileno()

    def close(self) -> None:
        # Always allowed, even post-crash: cleanup paths must not re-raise.
        self._file.close()

    def __enter__(self) -> "FaultyFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
