"""A file-backed page store and crash-safe index checkpointing.

:class:`PageFile` manages a single file of fixed-size slots (4 KB by
default, the paper's page size), with a free-list for reuse and CRC-checked
page payloads (via :mod:`repro.storage.pages`). :class:`CheckpointStore`
persists a whole B+-tree into a page file and restores it, and together
with the write-ahead log (:mod:`repro.storage.wal`) forms the durability
subsystem: checkpoint + WAL-tail replay is the restart path
(:meth:`CheckpointStore.recover`).

Checkpoints are **atomic**. A save writes data slots, a pickled directory
(logical page id → slot chain, root id, tree config) and a fixed-size,
CRC-protected footer carrying a monotonically increasing epoch into a
temporary file, fsyncs it, and commits with an atomic ``os.replace``; the
containing directory is fsynced so the rename itself is durable. A reader
therefore always sees either the previous checkpoint or the new one in
full — never a torn mix — and the highest epoch stamp identifies the
newest. A crash mid-save leaves only a stale ``*.tmp`` file, which
recovery removes.

File layout::

    [ slot 0 | slot 1 | ... | slot N-1 | directory pickle | footer ]

    footer (little-endian, fixed size, last bytes of the file):
        magic       u32   0x53574346 ("SWCF")
        version     u16   1
        flags       u16   reserved
        epoch       u64   checkpoint epoch (monotonic per store path)
        dir_offset  u64   byte offset of the directory pickle
        dir_length  u64   directory pickle length
        dir_crc     u32   CRC32 of the directory pickle
        footer_crc  u32   CRC32 of all preceding footer bytes

Covered failure modes (torn footer, truncated file, payload corruption,
garbage files, crash at any I/O boundary during save) are exercised by the
module tests and the seeded crash-injection harness
(:mod:`repro.storage.faults`).
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import CheckpointUnsupportedError, ReproError
from repro.obs import current_obs
from repro.storage.pages import deserialize_btree, serialize_btree
from repro.storage.wal import fsync_file, replay_wal

DEFAULT_SLOT_SIZE = 4096

_SLOT_HEADER = struct.Struct("<I")  # payload length within the slot chain

FOOTER_MAGIC = 0x53574346  # "SWCF": SWARE checkpoint footer
FOOTER_VERSION = 1
_FOOTER = struct.Struct("<IHHQQQII")


class PageFileError(ReproError):
    """The page file is structurally unusable (bad directory, missing slots)."""


class PageFile:
    """Fixed-size-slot page storage over one OS file.

    Payloads larger than a slot spill into a chain of continuation slots;
    each stored page records its payload length so reads are exact.

    Reopening an existing file resumes slot allocation *after* the slots
    already on disk (``file size // slot_size``), so appends to a reopened
    file never silently overwrite existing data.
    """

    def __init__(
        self,
        path: str,
        slot_size: int = DEFAULT_SLOT_SIZE,
        opener: Callable = open,
    ):
        if slot_size < 64:
            raise ValueError("slot_size must be >= 64")
        self.path = path
        self.slot_size = slot_size
        self._free: List[int] = []
        self._chains: Dict[int, List[int]] = {}  # logical id -> slot chain
        exists = os.path.exists(path)
        self._file = opener(path, "r+b" if exists else "w+b")
        # Slots already on disk stay allocated: a fresh file starts at slot
        # 0, a reopened one appends after its existing content.
        self._n_slots = os.path.getsize(path) // slot_size if exists else 0

    # -- slot primitives ---------------------------------------------------
    def _allocate_slot(self) -> int:
        if self._free:
            return self._free.pop()
        slot = self._n_slots
        self._n_slots += 1
        return slot

    def _write_slot(self, slot: int, payload: bytes) -> None:
        assert len(payload) <= self.slot_size
        self._file.seek(slot * self.slot_size)
        self._file.write(payload.ljust(self.slot_size, b"\x00"))

    def _read_slot(self, slot: int) -> bytes:
        self._file.seek(slot * self.slot_size)
        data = self._file.read(self.slot_size)
        if len(data) < self.slot_size:
            raise PageFileError(f"slot {slot} truncated")
        return data

    # -- page API ---------------------------------------------------------
    def write_page(self, page_id: int, payload: bytes) -> None:
        """Store ``payload`` under logical ``page_id`` (replacing any old)."""
        self.free_page(page_id)
        body = _SLOT_HEADER.pack(len(payload)) + payload
        usable = self.slot_size
        chain: List[int] = []
        for offset in range(0, len(body), usable):
            chain.append(self._allocate_slot())
        for index, slot in enumerate(chain):
            self._write_slot(slot, body[index * usable : (index + 1) * usable])
        self._chains[page_id] = chain

    def read_page(self, page_id: int) -> bytes:
        chain = self._chains.get(page_id)
        if chain is None:
            raise PageFileError(f"unknown page {page_id}")
        body = b"".join(self._read_slot(slot) for slot in chain)
        (length,) = _SLOT_HEADER.unpack_from(body)
        payload = body[_SLOT_HEADER.size : _SLOT_HEADER.size + length]
        if len(payload) != length:
            raise PageFileError(f"page {page_id} payload truncated")
        return payload

    def free_page(self, page_id: int) -> None:
        chain = self._chains.pop(page_id, None)
        if chain:
            self._free.extend(chain)

    def page_ids(self) -> List[int]:
        return sorted(self._chains)

    @property
    def n_slots(self) -> int:
        return self._n_slots

    # -- lifecycle ----------------------------------------------------------
    def truncate(self) -> None:
        """Discard every slot and reset allocation to an empty file."""
        self._file.seek(0)
        self._file.truncate(0)
        self._free.clear()
        self._chains.clear()
        self._n_slots = 0

    def sync(self) -> None:
        fsync_file(self._file)

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "PageFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class RecoveryReport:
    """What :meth:`CheckpointStore.recover` found and rebuilt."""

    checkpoint_found: bool = False
    checkpoint_epoch: int = 0
    checkpoint_pages: int = 0
    wal_records_replayed: int = 0
    wal_torn_tail: bool = False
    entries: int = 0  #: live entries in the recovered index
    stale_tmp_removed: bool = False
    rebuilt: bool = False  #: recovery used the bulk-rebuild fast path

    def describe(self) -> str:
        if self.checkpoint_found:
            found = f"epoch {self.checkpoint_epoch}, {self.checkpoint_pages} pages"
        else:
            found = "none found (fresh index)"
        lines = [
            f"checkpoint : {found}",
            f"wal replay : {self.wal_records_replayed} records"
            + (" (torn tail truncated)" if self.wal_torn_tail else "")
            + (" (merged via rebuild fast path)" if self.rebuilt else ""),
            f"entries    : {self.entries}",
        ]
        if self.stale_tmp_removed:
            lines.append("cleanup    : removed stale checkpoint temp file")
        return "\n".join(lines)


class CheckpointStore:
    """Persist/restore whole indexes atomically through a :class:`PageFile`.

    Parameters
    ----------
    path:
        Checkpoint file. Saves are committed by writing ``path + ".tmp"``
        in full and atomically renaming it over ``path``.
    opener / replace:
        Injection seams for the crash harness; default to ``open`` and
        ``os.replace``.
    """

    TMP_SUFFIX = ".tmp"

    def __init__(
        self,
        path: str,
        slot_size: int = DEFAULT_SLOT_SIZE,
        opener: Callable = open,
        replace: Optional[Callable] = None,
        compress: bool = True,
    ):
        self.path = path
        self.slot_size = slot_size
        self.compress = compress
        self._opener = opener
        self._replace = replace if replace is not None else os.replace
        self._epoch: Optional[int] = None  # last epoch written/read

    @property
    def tmp_path(self) -> str:
        return self.path + self.TMP_SUFFIX

    @property
    def last_epoch(self) -> Optional[int]:
        """Epoch of the last checkpoint saved or loaded through this store."""
        return self._epoch

    # -- save ---------------------------------------------------------------
    def _next_epoch(self) -> int:
        if self._epoch is not None:
            return self._epoch + 1
        # First save through this handle: resume after any epoch already
        # committed at this path so the stamp stays monotonic across
        # process restarts ("epoch stamp wins" on load).
        if os.path.exists(self.path):
            try:
                with self._opener(self.path, "rb") as fobj:
                    _directory, epoch = self._read_footer(
                        fobj, os.path.getsize(self.path)
                    )
                return epoch + 1
            except (PageFileError, OSError):
                pass
        return 1

    def save_btree(self, tree) -> int:
        """Atomically checkpoint ``tree``; returns the number of pages written.

        The previous checkpoint at :attr:`path` stays intact (and loadable)
        until the new one is durably committed; a crash at any point during
        the save leaves at most a stale temp file.
        """
        if not hasattr(tree, "_root"):
            # The page format serializes B+-tree nodes; model-based backends
            # (learned, cracking) have no node structure to image.
            raise CheckpointUnsupportedError(
                f"{type(tree).__name__} has no page-serializable node "
                "structure; checkpointing supports B+-tree backends only"
            )
        blob = serialize_btree(tree, compress=self.compress)
        epoch = self._next_epoch()
        tmp = self.tmp_path
        if os.path.exists(tmp):
            os.unlink(tmp)
        pagefile = PageFile(tmp, self.slot_size, opener=self._opener)
        try:
            for page_id, payload in blob["pages"].items():
                pagefile.write_page(page_id, payload)
            directory = {
                "root": blob["root"],
                "config": blob["config"],
                "chains": dict(pagefile._chains),
                "epoch": epoch,
                # v1 = raw key columns, v2 = delta-compressed where smaller.
                # Pages self-describe via their flags byte, so loaders never
                # branch on this — it is metadata for reporting/rebuild.
                "page_format": 2 if self.compress else 1,
            }
            dir_payload = pickle.dumps(directory, protocol=pickle.HIGHEST_PROTOCOL)
            dir_offset = pagefile.n_slots * self.slot_size
            fobj = pagefile._file
            fobj.seek(dir_offset)
            fobj.write(dir_payload)
            footer_body = _FOOTER.pack(
                FOOTER_MAGIC,
                FOOTER_VERSION,
                0,
                epoch,
                dir_offset,
                len(dir_payload),
                zlib.crc32(dir_payload) & 0xFFFFFFFF,
                0,
            )[: -4]
            footer = footer_body + struct.pack(
                "<I", zlib.crc32(footer_body) & 0xFFFFFFFF
            )
            fobj.write(footer)
            pagefile.sync()
        finally:
            pagefile.close()
        self._replace(tmp, self.path)
        self._sync_parent_dir()
        self._epoch = epoch
        return len(blob["pages"])

    def _sync_parent_dir(self) -> None:
        """fsync the directory entry so the rename survives power loss."""
        parent = os.path.dirname(os.path.abspath(self.path))
        try:
            fd = os.open(parent, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir-open
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- load ---------------------------------------------------------------
    def _read_footer(self, fobj, file_size: int):
        """Validate and return (directory, epoch) from the file's footer."""
        if file_size < _FOOTER.size:
            raise PageFileError("file too small for a checkpoint footer")
        fobj.seek(file_size - _FOOTER.size)
        raw = fobj.read(_FOOTER.size)
        if len(raw) < _FOOTER.size:
            raise PageFileError("checkpoint footer truncated")
        (
            magic,
            version,
            _flags,
            epoch,
            dir_offset,
            dir_length,
            dir_crc,
            footer_crc,
        ) = _FOOTER.unpack(raw)
        if magic != FOOTER_MAGIC:
            raise PageFileError(f"bad checkpoint footer magic 0x{magic:08X}")
        if zlib.crc32(raw[:-4]) & 0xFFFFFFFF != footer_crc:
            raise PageFileError("checkpoint footer checksum mismatch")
        if version != FOOTER_VERSION:
            raise PageFileError(f"unsupported checkpoint version {version}")
        if dir_offset + dir_length > file_size - _FOOTER.size:
            raise PageFileError("checkpoint directory extends past the footer")
        fobj.seek(dir_offset)
        dir_payload = fobj.read(dir_length)
        if len(dir_payload) < dir_length:
            raise PageFileError("checkpoint directory truncated")
        if zlib.crc32(dir_payload) & 0xFFFFFFFF != dir_crc:
            raise PageFileError("checkpoint directory checksum mismatch")
        try:
            directory = pickle.loads(dir_payload)
        except Exception as exc:  # noqa: BLE001 - corrupt pickle = corrupt file
            raise PageFileError(f"checkpoint directory unreadable: {exc!r}") from exc
        if not isinstance(directory, dict) or not {"root", "chains", "config"} <= set(
            directory
        ):
            raise PageFileError("checkpoint directory malformed")
        return directory, epoch

    def load_pages(self):
        """``(directory, epoch, pages)`` of the newest valid checkpoint.

        ``pages`` maps logical page id → raw page bytes **still encoded**
        (compressed key columns are not expanded). This is the shared read
        path for :meth:`load_btree` and the rebuild pipeline's run
        streamer.
        """
        pagefile = PageFile(self.path, self.slot_size, opener=self._opener)
        try:
            directory, epoch = self._read_footer(
                pagefile._file, os.path.getsize(self.path)
            )
            chains = directory["chains"]
            pagefile._chains = dict(chains)
            pages = {page_id: pagefile.read_page(page_id) for page_id in chains}
            return directory, epoch, pages
        finally:
            pagefile.close()

    def load_btree(self):
        """Restore the checkpointed B+-tree from the newest valid footer."""
        directory, epoch, pages = self.load_pages()
        blob = {
            "root": directory["root"],
            "config": directory["config"],
            "pages": pages,
        }
        tree = deserialize_btree(blob)
        tree.check_invariants()
        self._epoch = epoch
        return tree

    # -- index-level helpers --------------------------------------------------
    def save_index(self, index) -> int:
        """Checkpoint a :class:`~repro.core.sware.SortednessAwareIndex`.

        The SWARE buffer is volatile by design (its contents are covered by
        the WAL, when one is attached); checkpointing drains it into the
        tree first, then persists the tree atomically. Returns the number
        of pages written.
        """
        index.flush_all()
        return self.save_btree(index.backend)

    def load_index(self, config=None, meter=None, wal=None):
        """Restore a checkpoint as a fresh SA B+-tree (empty buffer)."""
        from repro.core.sware import SortednessAwareIndex

        tree = self.load_btree()
        if meter is not None:
            tree.meter = meter
        return SortednessAwareIndex(tree, config=config, meter=meter, wal=wal)

    # -- recovery -------------------------------------------------------------
    def recover(
        self,
        wal_path: Optional[str] = None,
        config=None,
        meter=None,
        backend_factory: Optional[Callable] = None,
        rebuild_threshold: Optional[int] = None,
    ):
        """Rebuild an index from the newest checkpoint plus the WAL tail.

        Returns ``(index, report)``. The restart sequence is:

        1. remove any stale ``*.tmp`` left by a crash mid-checkpoint;
        2. load the checkpoint at :attr:`path` (a missing file means the
           system crashed before its first checkpoint: start fresh, with
           ``backend_factory()`` — default a bare B+-tree — as the tree);
        3. replay the WAL's intact prefix, in order, through the index's
           normal write path (idempotent upserts/deletes, so a WAL that
           overlaps the checkpoint re-applies harmlessly).

        With ``rebuild_threshold`` set, a WAL tail of at least that many
        records (alongside an existing checkpoint) switches to the offline
        rebuild fast path instead: merge the checkpoint's compressed key
        runs with the sorted WAL tail and bulk-load a fresh tree
        (:func:`repro.storage.rebuild.rebuild_index`), which is far faster
        than per-op replay on long tails. The recovered state is identical
        either way.

        The returned index has **no WAL attached**; the caller reopens the
        log (which truncates its torn tail) and assigns ``index.wal`` to
        resume durable operation.
        """
        from repro.core.sware import SortednessAwareIndex

        obs = current_obs()
        report = RecoveryReport()
        if os.path.exists(self.tmp_path):
            os.unlink(self.tmp_path)
            report.stale_tmp_removed = True
        if (
            rebuild_threshold is not None
            and wal_path is not None
            and os.path.exists(self.path)
            and os.path.exists(wal_path)
        ):
            replay = replay_wal(wal_path, opener=self._opener)
            if replay.records >= rebuild_threshold:
                from repro.storage.rebuild import rebuild_index

                with obs.span("recovery.rebuild") as span:
                    index, rebuild_report = rebuild_index(
                        self.path,
                        wal_path,
                        slot_size=self.slot_size,
                        config=config,
                        meter=meter,
                        opener=self._opener,
                        replace=self._replace,
                    )
                    span.set(
                        records=replay.records,
                        entries=rebuild_report.entries,
                    )
                report.checkpoint_found = True
                report.checkpoint_epoch = rebuild_report.checkpoint_epoch
                report.checkpoint_pages = rebuild_report.checkpoint_pages
                report.wal_records_replayed = replay.records
                report.wal_torn_tail = replay.torn_tail
                report.entries = rebuild_report.entries
                report.rebuilt = True
                self._epoch = rebuild_report.checkpoint_epoch
                return index, report
        with obs.span("recovery.load_checkpoint") as span:
            if os.path.exists(self.path):
                index = self.load_index(config=config, meter=meter)
                report.checkpoint_found = True
                report.checkpoint_epoch = self._epoch or 0
                report.checkpoint_pages = (
                    index.backend.leaf_count + index.backend.internal_count
                    if hasattr(index.backend, "leaf_count")
                    else 0
                )
            else:
                if backend_factory is None:
                    from repro.btree.btree import BPlusTree

                    backend_factory = BPlusTree
                index = SortednessAwareIndex(
                    backend_factory(), config=config, meter=meter
                )
            span.set(found=report.checkpoint_found, epoch=report.checkpoint_epoch)
        if wal_path is not None:
            replay = replay_wal(wal_path, opener=self._opener)
            with obs.span("recovery.replay_wal") as span:
                for kind, key, value in replay.ops:
                    if kind == "put":
                        index.insert(key, value)
                    else:
                        index.delete(key)
                span.set(records=replay.records, torn=replay.torn_tail)
            report.wal_records_replayed = replay.records
            report.wal_torn_tail = replay.torn_tail
        report.entries = len(index.items())
        return index, report
