"""A file-backed page store and index checkpointing.

:class:`PageFile` manages a single file of fixed-size slots (4 KB by
default, the paper's page size), with a free-list for reuse and CRC-checked
page payloads (via :mod:`repro.storage.pages`). :class:`CheckpointStore`
persists a whole B+-tree into a page file and restores it — the durability
story a downstream user of this library needs, and a concrete consumer of
the binary page format.

The file layout is deliberately simple (this is a reproduction, not a
transactional engine): data pages are written first, then a pickled
directory (logical page id → slot chain, root id, tree config) is appended
and found again by scanning from the end of the file. Torn-write atomicity
is *not* guaranteed; the covered failure modes (payload corruption,
truncation, missing pages, garbage files) are in the module tests.
"""

from __future__ import annotations

import os
import pickle
import struct
from typing import Dict, List

from repro.errors import ReproError
from repro.storage.pages import deserialize_btree, serialize_btree

DEFAULT_SLOT_SIZE = 4096

_SLOT_HEADER = struct.Struct("<I")  # payload length within the slot chain


class PageFileError(ReproError):
    """The page file is structurally unusable (bad directory, missing slots)."""


class PageFile:
    """Fixed-size-slot page storage over one OS file.

    Payloads larger than a slot spill into a chain of continuation slots;
    each stored page records its payload length so reads are exact.
    """

    def __init__(self, path: str, slot_size: int = DEFAULT_SLOT_SIZE):
        if slot_size < 64:
            raise ValueError("slot_size must be >= 64")
        self.path = path
        self.slot_size = slot_size
        self._free: List[int] = []
        self._n_slots = 0
        self._chains: Dict[int, List[int]] = {}  # logical id -> slot chain
        mode = "r+b" if os.path.exists(path) else "w+b"
        self._file = open(path, mode)

    # -- slot primitives ---------------------------------------------------
    def _allocate_slot(self) -> int:
        if self._free:
            return self._free.pop()
        slot = self._n_slots
        self._n_slots += 1
        return slot

    def _write_slot(self, slot: int, payload: bytes) -> None:
        assert len(payload) <= self.slot_size
        self._file.seek(slot * self.slot_size)
        self._file.write(payload.ljust(self.slot_size, b"\x00"))

    def _read_slot(self, slot: int) -> bytes:
        self._file.seek(slot * self.slot_size)
        data = self._file.read(self.slot_size)
        if len(data) < self.slot_size:
            raise PageFileError(f"slot {slot} truncated")
        return data

    # -- page API ---------------------------------------------------------
    def write_page(self, page_id: int, payload: bytes) -> None:
        """Store ``payload`` under logical ``page_id`` (replacing any old)."""
        self.free_page(page_id)
        body = _SLOT_HEADER.pack(len(payload)) + payload
        usable = self.slot_size
        chain: List[int] = []
        for offset in range(0, len(body), usable):
            chain.append(self._allocate_slot())
        for index, slot in enumerate(chain):
            self._write_slot(slot, body[index * usable : (index + 1) * usable])
        self._chains[page_id] = chain

    def read_page(self, page_id: int) -> bytes:
        chain = self._chains.get(page_id)
        if chain is None:
            raise PageFileError(f"unknown page {page_id}")
        body = b"".join(self._read_slot(slot) for slot in chain)
        (length,) = _SLOT_HEADER.unpack_from(body)
        payload = body[_SLOT_HEADER.size : _SLOT_HEADER.size + length]
        if len(payload) != length:
            raise PageFileError(f"page {page_id} payload truncated")
        return payload

    def free_page(self, page_id: int) -> None:
        chain = self._chains.pop(page_id, None)
        if chain:
            self._free.extend(chain)

    def page_ids(self) -> List[int]:
        return sorted(self._chains)

    @property
    def n_slots(self) -> int:
        return self._n_slots

    # -- lifecycle ----------------------------------------------------------
    def sync(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "PageFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class CheckpointStore:
    """Persist/restore whole indexes through a :class:`PageFile`.

    The directory (logical-id → slot chain map, root id, config) is pickled
    into reserved logical page ``-1``.
    """

    DIRECTORY_ID = -1

    def __init__(self, path: str, slot_size: int = DEFAULT_SLOT_SIZE):
        self.path = path
        self.slot_size = slot_size

    def save_btree(self, tree) -> int:
        """Checkpoint ``tree``; returns the number of pages written."""
        blob = serialize_btree(tree)
        pagefile = PageFile(self.path, self.slot_size)
        try:
            for page_id, payload in blob["pages"].items():
                pagefile.write_page(page_id, payload)
            directory = {
                "root": blob["root"],
                "config": blob["config"],
                "chains": pagefile._chains.copy(),
            }
            # The directory must not be listed in its own chain map.
            directory["chains"].pop(self.DIRECTORY_ID, None)
            pagefile.write_page(self.DIRECTORY_ID, pickle.dumps(directory))
            pagefile.sync()
            return len(blob["pages"])
        finally:
            pagefile.close()

    def load_btree(self):
        """Restore the checkpointed B+-tree."""
        pagefile = PageFile(self.path, self.slot_size)
        try:
            # Bootstrap: the directory is the last page the save wrote, so
            # it is discovered by scanning from the end; it carries the
            # chain map for every data page.
            directory = self._load_directory(pagefile)
            chains = directory["chains"]
            pagefile._chains = dict(chains)
            pages = {page_id: pagefile.read_page(page_id) for page_id in chains}
            blob = {
                "root": directory["root"],
                "config": directory["config"],
                "pages": pages,
            }
            tree = deserialize_btree(blob)
            tree.check_invariants()
            return tree
        finally:
            pagefile.close()

    def save_index(self, index) -> int:
        """Checkpoint a :class:`~repro.core.sware.SortednessAwareIndex`.

        The SWARE buffer is volatile by design (it mirrors recently arrived
        data); checkpointing drains it into the tree first, then persists
        the tree. Returns the number of pages written.
        """
        index.flush_all()
        return self.save_btree(index.backend)

    def load_index(self, config=None, meter=None):
        """Restore a checkpoint as a fresh SA B+-tree (empty buffer)."""
        from repro.core.sware import SortednessAwareIndex

        tree = self.load_btree()
        if meter is not None:
            tree.meter = meter
        return SortednessAwareIndex(tree, config=config, meter=meter)

    def _load_directory(self, pagefile: PageFile) -> dict:
        """Find the directory by scanning slots for a valid pickle tail.

        The save path writes data pages first and the directory last, so
        its chain occupies the highest slots; we scan from the end.
        """
        file_size = os.path.getsize(self.path)
        n_slots = file_size // pagefile.slot_size
        for start in range(n_slots - 1, -1, -1):
            try:
                body = b"".join(
                    pagefile._read_slot(slot) for slot in range(start, n_slots)
                )
                (length,) = _SLOT_HEADER.unpack_from(body)
                payload = body[_SLOT_HEADER.size : _SLOT_HEADER.size + length]
                if len(payload) != length:
                    continue
                directory = pickle.loads(payload)
                if (
                    isinstance(directory, dict)
                    and "chains" in directory
                    and "root" in directory
                ):
                    return directory
            except Exception:  # noqa: BLE001 - scanning for a valid pickle
                continue
        raise PageFileError("no valid checkpoint directory found")
