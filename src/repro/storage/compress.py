"""Delta-compressed key runs and merge-on-encoded-runs machinery.

The unit of compression is the **key block**: a sorted int64 key column
delta-encoded by :func:`repro.kernels.delta_pack` behind a small fixed
header. The header carries the column's ``count``, ``anchor`` (first key),
``last`` (last key), and per-block bit ``width``, so a merge can learn a
block's key *range* without decoding a single delta — that is what lets the
k-way merge below operate on still-encoded runs and only materialise keys
at the merge frontiers.

Layered on top:

``RunPage``
    One compressed page of a sorted run — a key block plus the parallel
    value column and an optional tombstone column. Keys decode lazily and
    the decode is cached.

``CompressedRun``
    An ordered list of ``RunPage`` objects with disjoint, ascending key
    ranges, tagged with a ``priority`` (higher = newer) used for
    duplicate-key resolution during merges.

``merge_compressed_items`` / ``merge_compressed_runs``
    A k-way merge over runs. When the page at a run's cursor ends strictly
    before every other run's frontier key, the whole page is consumed
    wholesale — no per-key cross-run comparisons, and in the run→run
    variant the encoded page is passed through verbatim (no decode, no
    re-encode). Only overlapping regions pay per-key work.
"""

from __future__ import annotations

import struct
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro import kernels

__all__ = [
    "KEY_BLOCK_HEADER",
    "encode_key_block",
    "decode_key_block",
    "key_block_stats",
    "RunPage",
    "CompressedRun",
    "merge_compressed_items",
    "merge_compressed_runs",
]

#: count:u32 | anchor:s64 | last:s64 | width:u8 — followed by the packed
#: delta payload of ``(count - 1) * width`` bits, little-endian bit order.
KEY_BLOCK_HEADER = struct.Struct("<IqqB")

#: Default number of keys per ``RunPage``.
DEFAULT_PAGE_ITEMS = 512


def encode_key_block(keys: Sequence[int]) -> bytes:
    """Serialize a sorted int64 key column into a self-describing block."""
    anchor, width, packed = kernels.delta_pack(keys)
    last = keys[-1] if keys else 0
    return KEY_BLOCK_HEADER.pack(len(keys), anchor, last, width) + packed


def decode_key_block(block: bytes) -> List[int]:
    """Recover the exact key column from :func:`encode_key_block` output."""
    count, anchor, _last, width = KEY_BLOCK_HEADER.unpack_from(block)
    return kernels.delta_unpack(anchor, width, count, block[KEY_BLOCK_HEADER.size :])


def key_block_stats(block: bytes) -> Tuple[int, int, int, int]:
    """``(count, first_key, last_key, width)`` without decoding any deltas."""
    count, anchor, last, width = KEY_BLOCK_HEADER.unpack_from(block)
    return count, anchor, last, width


class RunPage:
    """One compressed page of a sorted run.

    ``values[i]`` belongs to the ``i``-th key of the block; ``tombstones``
    is ``None`` (no deletions) or a tuple of bools parallel to the keys.
    """

    __slots__ = ("key_block", "values", "tombstones", "_keys")

    def __init__(
        self,
        key_block: bytes,
        values: Sequence[object],
        tombstones: Optional[Tuple[bool, ...]] = None,
    ) -> None:
        self.key_block = key_block
        self.values = list(values)
        self.tombstones = tombstones
        self._keys: Optional[List[int]] = None

    @classmethod
    def from_items(
        cls,
        keys: Sequence[int],
        values: Sequence[object],
        tombstones: Optional[Sequence[bool]] = None,
    ) -> "RunPage":
        if len(keys) != len(values):
            raise ValueError("keys and values must be parallel columns")
        tombs: Optional[Tuple[bool, ...]] = None
        if tombstones is not None and any(tombstones):
            tombs = tuple(bool(t) for t in tombstones)
        page = cls(encode_key_block(keys), values, tombs)
        page._keys = list(keys)
        return page

    @property
    def count(self) -> int:
        return key_block_stats(self.key_block)[0]

    @property
    def min_key(self) -> int:
        return key_block_stats(self.key_block)[1]

    @property
    def max_key(self) -> int:
        return key_block_stats(self.key_block)[2]

    def keys(self) -> List[int]:
        """Decoded key column (cached after the first call)."""
        if self._keys is None:
            self._keys = decode_key_block(self.key_block)
        return self._keys

    def tombstone_at(self, i: int) -> bool:
        return bool(self.tombstones[i]) if self.tombstones is not None else False

    @property
    def has_tombstones(self) -> bool:
        return self.tombstones is not None

    def encoded_bytes(self) -> int:
        """Size of the compressed key column (header + packed deltas)."""
        return len(self.key_block)

    def items(self) -> Iterator[Tuple[int, object, bool]]:
        keys = self.keys()
        if self.tombstones is None:
            for i, key in enumerate(keys):
                yield key, self.values[i], False
        else:
            for i, key in enumerate(keys):
                yield key, self.values[i], self.tombstones[i]


@dataclass
class CompressedRun:
    """A sorted run of compressed pages with disjoint ascending key ranges."""

    pages: List[RunPage] = field(default_factory=list)
    priority: int = 0

    @classmethod
    def from_items(
        cls,
        items: Iterable[Tuple[int, object, bool]],
        *,
        priority: int = 0,
        page_items: int = DEFAULT_PAGE_ITEMS,
    ) -> "CompressedRun":
        """Build a run from ``(key, value, tombstone)`` triples.

        Keys must be strictly increasing — a run never contains duplicates;
        the caller deduplicates first (newest wins).
        """
        if page_items < 1:
            raise ValueError("page_items must be >= 1")
        run = cls(priority=priority)
        keys: List[int] = []
        values: List[object] = []
        tombs: List[bool] = []
        previous: Optional[int] = None
        for key, value, tombstone in items:
            if previous is not None and key <= previous:
                raise ValueError(
                    f"run items must be strictly increasing ({key!r} after {previous!r})"
                )
            previous = key
            keys.append(key)
            values.append(value)
            tombs.append(bool(tombstone))
            if len(keys) >= page_items:
                run.pages.append(RunPage.from_items(keys, values, tombs))
                keys, values, tombs = [], [], []
        if keys:
            run.pages.append(RunPage.from_items(keys, values, tombs))
        return run

    @property
    def count(self) -> int:
        return sum(page.count for page in self.pages)

    @property
    def min_key(self) -> Optional[int]:
        return self.pages[0].min_key if self.pages else None

    @property
    def max_key(self) -> Optional[int]:
        return self.pages[-1].max_key if self.pages else None

    def encoded_key_bytes(self) -> int:
        return sum(page.encoded_bytes() for page in self.pages)

    def items(self) -> Iterator[Tuple[int, object, bool]]:
        for page in self.pages:
            yield from page.items()

    def check_invariants(self) -> None:
        previous: Optional[int] = None
        for page in self.pages:
            keys = page.keys()
            if not keys:
                raise AssertionError("empty RunPage")
            for key in keys:
                if previous is not None and key <= previous:
                    raise AssertionError("run keys not strictly increasing")
                previous = key


class _Cursor:
    """Read position inside one run during a merge.

    While positioned at the *start* of a page the frontier key comes from
    the block header (no decode); the page body is only decoded once the
    merge has to step inside it.
    """

    __slots__ = ("run", "page_idx", "offset")

    def __init__(self, run: CompressedRun) -> None:
        self.run = run
        self.page_idx = 0
        self.offset = 0

    @property
    def exhausted(self) -> bool:
        return self.page_idx >= len(self.run.pages)

    @property
    def page(self) -> RunPage:
        return self.run.pages[self.page_idx]

    def frontier(self) -> int:
        page = self.page
        if self.offset == 0:
            return page.min_key  # header read — no delta decode
        return page.keys()[self.offset]

    def at_page_start(self) -> bool:
        return self.offset == 0

    def current(self) -> Tuple[int, object, bool]:
        page = self.page
        keys = page.keys()
        i = self.offset
        return keys[i], page.values[i], page.tombstone_at(i)

    def advance(self) -> None:
        self.offset += 1
        if self.offset >= self.page.count:
            self.page_idx += 1
            self.offset = 0

    def skip_page(self) -> RunPage:
        page = self.page
        self.page_idx += 1
        self.offset = 0
        return page


#: Merge event tags — a wholesale encoded page vs. a single decoded item.
_PAGE = 0
_ITEM = 1


def _merge_events(runs: Sequence[CompressedRun]) -> Iterator[Tuple[int, object]]:
    """K-way merge yielding ``(_PAGE, RunPage)`` or ``(_ITEM, (k, v, tomb))``.

    Duplicate keys resolve to the highest-``priority`` run (ties broken by
    run order, later wins). A page is emitted wholesale only when its whole
    key range lies strictly below every other run's frontier, so wholesale
    pages never require duplicate resolution. When only a *prefix* of the
    winning page lies below the other frontiers, that prefix gallops out in
    one bisect-bounded slice — every key in it is strictly below every
    other run's next key, so no per-item minimum is needed.
    """
    cursors = [_Cursor(run) for run in runs if run.pages]
    while cursors:
        cursors = [c for c in cursors if not c.exhausted]
        if not cursors:
            break
        best = min(c.frontier() for c in cursors)
        tied = [c for c in cursors if c.frontier() == best]
        winner = max(tied, key=lambda c: c.run.priority)
        if len(tied) == 1:
            page = winner.page
            others = [c.frontier() for c in cursors if c is not winner]
            bound = min(others) if others else None
            if winner.at_page_start() and (bound is None or page.max_key < bound):
                yield _PAGE, winner.skip_page()
                continue
            i = winner.offset
            keys = page.keys()
            j = page.count if bound is None else bisect_left(keys, bound, i)
            if j > i + 1:
                values = page.values
                tombs = page.tombstones
                if tombs is None:
                    for idx in range(i, j):
                        yield _ITEM, (keys[idx], values[idx], False)
                else:
                    for idx in range(i, j):
                        yield _ITEM, (keys[idx], values[idx], bool(tombs[idx]))
                winner.offset = j
                if j >= page.count:
                    winner.page_idx += 1
                    winner.offset = 0
                continue
        yield _ITEM, winner.current()
        for cursor in tied:
            cursor.advance()


def merge_compressed_items(
    runs: Sequence[CompressedRun],
    *,
    drop_tombstones: bool = False,
) -> Iterator[Tuple[int, object, bool]]:
    """Merged ``(key, value, tombstone)`` stream, strictly increasing keys.

    With ``drop_tombstones`` (full-merge semantics) deleted keys vanish
    from the output entirely; otherwise tombstones are carried through for
    a later merge to apply.
    """
    for tag, payload in _merge_events(runs):
        if tag == _PAGE:
            page = payload
            if drop_tombstones and page.has_tombstones:
                for item in page.items():
                    if not item[2]:
                        yield item
            else:
                yield from page.items()
        else:
            if drop_tombstones and payload[2]:
                continue
            yield payload


def merge_compressed_runs(
    runs: Sequence[CompressedRun],
    *,
    priority: int = 0,
    page_items: int = DEFAULT_PAGE_ITEMS,
    drop_tombstones: bool = False,
) -> CompressedRun:
    """Merge runs into one new :class:`CompressedRun`.

    Non-overlapping pages pass through *verbatim* — the encoded key block
    is reused without decode or re-encode — whenever no partial output
    page is pending and the page needs no tombstone filtering. Everything
    else is re-paged at ``page_items``.
    """
    out = CompressedRun(priority=priority)
    keys: List[int] = []
    values: List[object] = []
    tombs: List[bool] = []

    def flush() -> None:
        if keys:
            out.pages.append(RunPage.from_items(keys, values, tombs))
            keys.clear()
            values.clear()
            tombs.clear()

    for tag, payload in _merge_events(runs):
        if tag == _PAGE and not keys and not (drop_tombstones and payload.has_tombstones):
            out.pages.append(payload)  # verbatim pass-through, still encoded
            continue
        items: Iterable[Tuple[int, object, bool]]
        items = payload.items() if tag == _PAGE else (payload,)
        for key, value, tombstone in items:
            if drop_tombstones and tombstone:
                continue
            keys.append(key)
            values.append(value)
            tombs.append(tombstone)
            if len(keys) >= page_items:
                flush()
    flush()
    return out
