"""Operation accounting and the simulated cost clock.

The paper measures wall-clock latency of a C++ implementation on a Xeon
server. In pure Python, interpreter overhead dominates and masks the
*algorithmic* savings SWARE provides (fewer node accesses, fewer splits,
amortized sorting). Following DESIGN.md substitution #1, every structural
operation in this library is counted on a :class:`Meter`, and a
:class:`CostModel` converts the counts into simulated nanoseconds using
weights calibrated to commodity hardware. Benchmarks report simulated
latency (primary — it reproduces the paper's shape) alongside raw wall time.

Meters also support *buckets* — named phases such as ``"sort"`` or
``"top_insert"`` — which is how the Fig. 13 latency breakdowns are produced:
the SWARE wrapper brackets each phase with ``meter.bucket(name)`` and every
charge inside is attributed to that phase.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

#: Default cost weights, in nanoseconds per operation. These approximate a
#: modern x86 server: an in-memory node access is a couple of cache misses
#: (~100 ns), a sort comparison including data movement ~6 ns, a Bloom-filter
#: probe a few hashes and cache lines (~25 ns), an SSD 4 KB page read/write
#: ~100 µs of device latency.
DEFAULT_WEIGHTS: Dict[str, float] = {
    "node_access": 120.0,  # pivot search + cache misses while descending
    "leaf_split": 400.0,  # allocating + relinking a node, moving ~half a page
    "internal_split": 400.0,
    "entry_move": 3.0,  # shifting one slot within a node on insert
    "bulk_entry": 8.0,  # appending one entry during bulk load (amortized)
    "buffer_append": 10.0,  # SWARE-buffer append incl. zonemap update
    "bf_add": 15.0,
    "bf_probe": 20.0,
    "zonemap_check": 5.0,
    "scan_entry": 4.0,  # one key comparison during a page scan
    "interp_step": 15.0,  # one interpolation / binary probe
    "sort_comparison": 3.0,  # one comparison+move inside a sort of packed ints
    "merge_step": 4.0,  # one step of a k-way merge
    "message_move": 10.0,  # moving one message down a Be-tree level
    "run_write": 25.0,  # (re-)writing one entry into an LSM run, amortized
    "tombstone": 10.0,
    "disk_read": 100_000.0,  # 4 KB page from SSD
    "disk_write": 100_000.0,
}


class CostModel:
    """Maps operation kinds to simulated nanoseconds.

    Unknown kinds cost zero — that makes it safe to add new counters for
    purely statistical purposes without touching the model.
    """

    def __init__(self, weights: Optional[Dict[str, float]] = None):
        self.weights = dict(DEFAULT_WEIGHTS)
        if weights:
            self.weights.update(weights)

    def cost(self, kind: str, count: float = 1.0) -> float:
        return self.weights.get(kind, 0.0) * count

    def nanos(self, counts: Dict[str, float]) -> float:
        """Total simulated nanoseconds for a counter dictionary."""
        weights = self.weights
        return sum(weights.get(kind, 0.0) * n for kind, n in counts.items())


class Meter:
    """Accumulates operation counts, bucketed by the active phase.

    The meter is deliberately tolerant: any string is a valid kind, charges
    are additive, and ``bucket`` contexts nest (inner-most wins, matching how
    the paper attributes, e.g., the sort inside a flush to "sort" rather than
    "bulk load").
    """

    def __init__(self) -> None:
        self.counts: Dict[str, float] = defaultdict(float)
        self.bucket_counts: Dict[str, Dict[str, float]] = defaultdict(
            lambda: defaultdict(float)
        )
        self.bucket_wall_ns: Dict[str, float] = defaultdict(float)
        self._bucket_stack: list = []

    # -- charging ---------------------------------------------------------
    def charge(self, kind: str, count: float = 1.0) -> None:
        """Record ``count`` operations of ``kind`` in the active bucket."""
        self.counts[kind] += count
        if self._bucket_stack:
            self.bucket_counts[self._bucket_stack[-1]][kind] += count

    @contextmanager
    def bucket(self, name: str) -> Iterator[None]:
        """Attribute all charges (and wall time) inside to phase ``name``."""
        self._bucket_stack.append(name)
        start = time.perf_counter_ns()
        try:
            yield
        finally:
            self.bucket_wall_ns[name] += time.perf_counter_ns() - start
            self._bucket_stack.pop()

    # -- reading ----------------------------------------------------------
    def nanos(self, model: CostModel) -> float:
        """Total simulated nanoseconds under ``model``."""
        return model.nanos(self.counts)

    def bucket_nanos(self, model: CostModel) -> Dict[str, float]:
        """Simulated nanoseconds per bucket."""
        return {name: model.nanos(counts) for name, counts in self.bucket_counts.items()}

    def snapshot(self) -> Dict[str, float]:
        return dict(self.counts)

    def reset(self) -> None:
        self.counts.clear()
        self.bucket_counts.clear()
        self.bucket_wall_ns.clear()
        self._bucket_stack.clear()

    def merge(self, other: "Meter") -> "Meter":
        """Fold ``other``'s counts, buckets and wall times into this meter.

        Lets multi-phase runs aggregate per-phase meters without rebuilding
        the index between phases; returns ``self`` for chaining.
        """
        for kind, count in other.counts.items():
            self.counts[kind] += count
        for name, counts in other.bucket_counts.items():
            bucket = self.bucket_counts[name]
            for kind, count in counts.items():
                bucket[kind] += count
        for name, wall in other.bucket_wall_ns.items():
            self.bucket_wall_ns[name] += wall
        return self

    def __getitem__(self, kind: str) -> float:
        return self.counts.get(kind, 0.0)


class _NullMeter(Meter):
    """A meter that forgets everything; used when accounting is disabled."""

    def charge(self, kind: str, count: float = 1.0) -> None:  # noqa: D102
        pass

    @contextmanager
    def bucket(self, name: str) -> Iterator[None]:  # noqa: D102
        yield


#: Shared no-op meter for callers that do not care about accounting.
NULL_METER = _NullMeter()


@dataclass
class StopwatchResult:
    """Wall-clock measurement companion to the simulated clock."""

    wall_ns: float = 0.0
    sections: Dict[str, float] = field(default_factory=dict)


@contextmanager
def stopwatch(result: StopwatchResult, section: Optional[str] = None) -> Iterator[None]:
    """Accumulate wall time into ``result`` (and optionally a section)."""
    start = time.perf_counter_ns()
    try:
        yield
    finally:
        elapsed = time.perf_counter_ns() - start
        result.wall_ns += elapsed
        if section is not None:
            result.sections[section] = result.sections.get(section, 0.0) + elapsed
