"""Simulated pager and bufferpool for the on-disk experiments (§V-E).

The paper's trees sit on a 4 KB-page bufferpool; the in-memory experiments
give it 300 GB (everything resident) while §V-E shrinks it to ~1% of the
data so only internal nodes stay cached. We reproduce that with a page-level
LRU bufferpool that *simulates* the device: a miss charges ``disk_read`` on
the meter, evicting a dirty frame charges ``disk_write``. No bytes actually
move — the trees keep their Python object nodes — but the I/O counts (and
therefore the simulated latency) follow exactly the access pattern a paged
implementation would produce.

Pinning is supported because the SWARE-buffer "pins its pages in the
system's bufferpool" (§IV-A): pinned frames are never eviction victims.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.errors import BufferpoolFullError, PinViolationError
from repro.obs import NULL_OBS, Observability, current_obs
from repro.storage.costmodel import NULL_METER, Meter


class PageIdAllocator:
    """Monotonically increasing page-id source shared by an index's nodes."""

    def __init__(self) -> None:
        self._next = 0

    def allocate(self) -> int:
        page_id = self._next
        self._next += 1
        return page_id


@dataclass
class Frame:
    """Bookkeeping for one resident page."""

    page_id: int
    dirty: bool = False
    pins: int = 0


class BufferPool:
    """An LRU bufferpool over simulated pages.

    Parameters
    ----------
    capacity:
        Number of page frames. ``None`` (or 0) means unbounded — the
        in-memory configuration where nothing ever misses after creation.
    meter:
        Cost meter charged with ``disk_read`` / ``disk_write``.
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        meter: Optional[Meter] = None,
        obs: Optional[Observability] = None,
    ):
        if capacity is not None and capacity < 0:
            raise ValueError("capacity must be >= 0 or None")
        self.capacity = capacity or None
        self.meter = meter if meter is not None else NULL_METER
        self.obs = obs if obs is not None else current_obs()
        self._frames: "OrderedDict[int, Frame]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_reads = 0
        self.disk_writes = 0
        if self.obs is not NULL_OBS:
            self.obs.register_collector("bufferpool", self.stats)

    # -- configuration ------------------------------------------------------
    def set_meter(self, meter: Meter) -> None:
        self.meter = meter

    @property
    def resident(self) -> int:
        return len(self._frames)

    # -- core protocol -------------------------------------------------------
    def access(self, page_id: int, dirty: bool = False) -> bool:
        """Touch ``page_id``; returns True on a hit.

        A miss simulates reading the page from disk and may evict the LRU
        unpinned frame (writing it back first if dirty).
        """
        frame = self._frames.get(page_id)
        if frame is not None:
            self.hits += 1
            frame.dirty = frame.dirty or dirty
            self._frames.move_to_end(page_id)
            return True
        self.misses += 1
        self.disk_reads += 1
        self.meter.charge("disk_read")
        self._admit(Frame(page_id=page_id, dirty=dirty))
        return False

    def create(self, page_id: int) -> None:
        """Register a freshly allocated page (born dirty, no read needed)."""
        if page_id in self._frames:
            frame = self._frames[page_id]
            frame.dirty = True
            self._frames.move_to_end(page_id)
            return
        self._admit(Frame(page_id=page_id, dirty=True))

    def drop(self, page_id: int) -> None:
        """Discard a page that no longer exists (e.g. a merged node).

        Dropping a pinned frame is a pin-accounting violation: the holder's
        eventual ``unpin`` would target a vanished frame, so the bug would
        only surface later and far from its cause. It is rejected here.
        """
        frame = self._frames.get(page_id)
        if frame is None:
            return
        if frame.pins:
            raise PinViolationError(
                f"page {page_id} is pinned ({frame.pins}); cannot drop"
            )
        del self._frames[page_id]

    def pin(self, page_id: int) -> None:
        """Pin a page; it is faulted in first if absent."""
        if page_id not in self._frames:
            self.access(page_id)
        self._frames[page_id].pins += 1

    def unpin(self, page_id: int) -> None:
        frame = self._frames.get(page_id)
        if frame is None or frame.pins == 0:
            raise PinViolationError(f"page {page_id} is not pinned")
        frame.pins -= 1

    def flush_all(self) -> int:
        """Write back every dirty frame; returns the number written."""
        written = 0
        for frame in self._frames.values():
            if frame.dirty:
                frame.dirty = False
                written += 1
        self.disk_writes += written
        if written:
            self.meter.charge("disk_write", written)
        return written

    # -- internals ------------------------------------------------------------
    def _admit(self, frame: Frame) -> None:
        if self.capacity is not None:
            while len(self._frames) >= self.capacity:
                self._evict_one()
        self._frames[frame.page_id] = frame

    def _evict_one(self) -> None:
        for page_id, frame in self._frames.items():
            if frame.pins == 0:
                if frame.dirty:
                    self.disk_writes += 1
                    self.meter.charge("disk_write")
                del self._frames[page_id]
                self.evictions += 1
                if self.obs.enabled:
                    self.obs.event("pool.evict", page=page_id, dirty=frame.dirty)
                return
        raise BufferpoolFullError(
            f"all {len(self._frames)} frames are pinned; cannot evict"
        )

    # -- reporting --------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "capacity": self.capacity,
            "resident": self.resident,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_reads": self.disk_reads,
            "disk_writes": self.disk_writes,
            "hit_rate": self.hit_rate,
        }
