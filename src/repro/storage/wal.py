"""Write-ahead log: crash durability for the SWARE front-end (§IV).

The SWARE design keeps recently ingested data in a volatile in-memory
buffer in front of the tree — exactly the data a crash loses. The
:class:`WriteAheadLog` closes that window: every logical ``put``/``delete``
is appended (and, under the default policy, fsynced) *before* it enters the
buffer, so an acknowledged write survives a crash even though it may sit in
the buffer for thousands of operations before a flush cycle moves it into
the tree.

Frame format (all little-endian)::

    magic   u16   0x57A1
    kind    u8    1=put, 2=delete
    flags   u8    reserved
    length  u32   payload length in bytes
    crc     u32   CRC32 over (kind, flags, length, payload)
    payload ...   put:    key s64 + pickled value
                  delete: key s64

Replay (:func:`replay_wal`) walks frames from the start of the file and
stops at the first invalid one — a short header, bad magic, short payload,
or CRC mismatch. That is *torn-tail tolerance*: the frame being written
when the process died is, by construction, the last one in the file, so an
invalid frame marks the crash point and everything before it is intact. A
torn record is therefore never surfaced as data; it is reported through
:attr:`WALReplay.torn_tail` and truncated away the next time the log is
opened for appending.

The log is safe to share between threads (appends serialize on an internal
lock) and is truncated by :meth:`WriteAheadLog.reset` once a checkpoint has
made its contents redundant (see :class:`~repro.storage.pagefile.CheckpointStore`).
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import WALError
from repro.obs import NULL_OBS, Observability, current_obs

WAL_MAGIC = 0x57A1
KIND_PUT = 1
KIND_DELETE = 2

#: fsync policies: every append / only on explicit ``sync()`` / never
#: automatically (``sync()`` still forces one when called).
FSYNC_ALWAYS = "always"
FSYNC_BATCH = "batch"
FSYNC_NEVER = "never"
FSYNC_POLICIES = (FSYNC_ALWAYS, FSYNC_BATCH, FSYNC_NEVER)

_FRAME_HEADER = struct.Struct("<HBBII")  # magic, kind, flags, length, crc
_KEY = struct.Struct("<q")

#: A replayed logical operation: ("put", key, value) or ("delete", key, None).
WALOp = Tuple[str, int, object]


def fsync_file(fobj) -> None:
    """fsync a file object, honouring a fault-injection wrapper's hook.

    Wrappers (e.g. :class:`~repro.storage.faults.FaultyFile`) expose their
    own ``fsync`` method so the syscall passes through the injection
    counter; plain files fall back to ``os.fsync`` on the descriptor.
    """
    hook = getattr(fobj, "fsync", None)
    if hook is not None:
        hook()
    else:
        fobj.flush()
        os.fsync(fobj.fileno())


def _frame_crc(kind: int, flags: int, length: int, payload: bytes) -> int:
    crc = zlib.crc32(struct.pack("<BBI", kind, flags, length))
    return zlib.crc32(payload, crc) & 0xFFFFFFFF


def encode_frame(kind: int, payload: bytes) -> bytes:
    """One CRC-framed WAL record."""
    crc = _frame_crc(kind, 0, len(payload), payload)
    return _FRAME_HEADER.pack(WAL_MAGIC, kind, 0, len(payload), crc) + payload


def _decode_op(kind: int, payload: bytes) -> Optional[WALOp]:
    """Payload -> logical op, or None when structurally invalid."""
    if len(payload) < _KEY.size:
        return None
    (key,) = _KEY.unpack_from(payload)
    if kind == KIND_DELETE:
        return ("delete", key, None) if len(payload) == _KEY.size else None
    try:
        value = pickle.loads(payload[_KEY.size :])
    except Exception:  # noqa: BLE001 - a torn pickle is a torn record
        return None
    return ("put", key, value)


@dataclass
class WALReplay:
    """The outcome of scanning a WAL file.

    ``valid_bytes`` is the length of the intact prefix — reopening the log
    truncates to exactly this offset before appending again.
    """

    ops: List[WALOp] = field(default_factory=list)
    records: int = 0
    valid_bytes: int = 0
    torn_tail: bool = False


def _scan(fobj) -> WALReplay:
    """Walk frames from offset 0; stop at the first invalid frame."""
    replay = WALReplay()
    fobj.seek(0)
    while True:
        header = fobj.read(_FRAME_HEADER.size)
        if len(header) < _FRAME_HEADER.size:
            replay.torn_tail = len(header) > 0
            return replay
        magic, kind, flags, length, crc = _FRAME_HEADER.unpack(header)
        if magic != WAL_MAGIC or kind not in (KIND_PUT, KIND_DELETE):
            replay.torn_tail = True
            return replay
        payload = fobj.read(length)
        if len(payload) < length or _frame_crc(kind, flags, length, payload) != crc:
            replay.torn_tail = True
            return replay
        op = _decode_op(kind, payload)
        if op is None:
            replay.torn_tail = True
            return replay
        replay.ops.append(op)
        replay.records += 1
        replay.valid_bytes += _FRAME_HEADER.size + length


def replay_wal(path: str, opener: Callable = open) -> WALReplay:
    """Scan ``path`` and return its intact logical operations, in order.

    A missing file replays as empty (a fresh log that never saw a write);
    torn tails are tolerated per the module docstring.
    """
    if not os.path.exists(path):
        return WALReplay()
    fobj = opener(path, "rb")
    try:
        return _scan(fobj)
    finally:
        fobj.close()


class WriteAheadLog:
    """Append-only, CRC-framed log of logical index operations.

    Parameters
    ----------
    path:
        Log file; created if absent. An existing file is scanned on open
        and any torn tail left by a crash is truncated away so new appends
        start at the intact prefix.
    fsync_policy:
        ``"always"`` (default) fsyncs every append — an acknowledged write
        is durable; ``"batch"`` flushes to the OS per append but fsyncs only
        on :meth:`sync`; ``"never"`` leaves syncing entirely to the caller.
    opener:
        File factory (``open``-compatible); the fault-injection harness
        substitutes one that wraps files in :class:`FaultyFile`.
    """

    def __init__(
        self,
        path: str,
        fsync_policy: str = FSYNC_ALWAYS,
        opener: Callable = open,
        obs: Optional[Observability] = None,
    ):
        if fsync_policy not in FSYNC_POLICIES:
            raise WALError(f"unknown fsync policy {fsync_policy!r}")
        self.path = path
        self.fsync_policy = fsync_policy
        self.obs = obs if obs is not None else current_obs()
        self._lock = threading.Lock()
        self._closed = False
        self.records = 0  # appended through this handle
        self.bytes_written = 0
        self.syncs = 0
        self.resets = 0
        self.recovered_records = 0  # intact records found at open
        self.recovered_torn_tail = False
        existing = os.path.exists(path)
        self._file = opener(path, "r+b" if existing else "w+b")
        if existing:
            replay = _scan(self._file)
            self.recovered_records = replay.records
            self.recovered_torn_tail = replay.torn_tail
            if replay.torn_tail:
                self._file.truncate(replay.valid_bytes)
            self._file.seek(replay.valid_bytes)
        if self.obs is not NULL_OBS:
            self.obs.register_collector("wal", self.snapshot)

    # -- appends -----------------------------------------------------------
    def append_put(self, key: int, value: object) -> int:
        """Log an upsert; returns the record's LSN (1-based append count)."""
        payload = _KEY.pack(key) + pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        return self._append([encode_frame(KIND_PUT, payload)])

    def append_delete(self, key: int) -> int:
        """Log a delete; returns the record's LSN."""
        return self._append([encode_frame(KIND_DELETE, _KEY.pack(key))])

    def append_puts(self, items: Sequence[Tuple[int, object]]) -> int:
        """Log a batch of upserts in one append (one fsync under "always")."""
        frames = [
            encode_frame(
                KIND_PUT,
                _KEY.pack(key) + pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL),
            )
            for key, value in items
        ]
        return self._append(frames)

    def _append(self, frames: List[bytes]) -> int:
        with self.obs.span("wal.append", frames=len(frames)):
            with self._lock:
                if self._closed:
                    raise WALError("write-ahead log is closed")
                for frame in frames:
                    self._file.write(frame)
                    self.bytes_written += len(frame)
                self.records += len(frames)
                if self.fsync_policy == FSYNC_ALWAYS:
                    self._timed_fsync()
                elif self.fsync_policy == FSYNC_BATCH:
                    self._file.flush()
                return self.records

    def _timed_fsync(self) -> None:
        """fsync with latency observability (histogram + monitor feed).

        Callers hold ``_lock``. The timing pair costs two clock reads per
        sync — noise next to the syscall it brackets — and feeds both the
        ``wal_fsync_ns`` histogram (p99 drives the ``wal_fsync_slow``
        health rule) and the monitor hub's fsync totals.
        """
        start = time.perf_counter_ns()
        fsync_file(self._file)
        elapsed = time.perf_counter_ns() - start
        self.syncs += 1
        obs = self.obs
        if obs is not NULL_OBS:
            obs.observe_hist("wal_fsync_ns", elapsed)
            hub = obs.monitors
            if hub is not None:
                hub.observe_fsync(elapsed)

    # -- lifecycle ---------------------------------------------------------
    def sync(self) -> None:
        """Force everything appended so far to stable storage."""
        with self._lock:
            if self._closed:
                raise WALError("write-ahead log is closed")
            self._timed_fsync()

    def reset(self) -> None:
        """Truncate the log to empty (called once a checkpoint is durable).

        Every logged operation is now redundant with the checkpoint; a
        crash between the checkpoint rename and this truncation merely
        replays idempotent upserts/deletes onto state that already
        contains them.
        """
        with self.obs.span("wal.reset"):
            with self._lock:
                if self._closed:
                    raise WALError("write-ahead log is closed")
                self._file.seek(0)
                self._file.truncate(0)
                self._timed_fsync()
                self.resets += 1

    def tail_bytes(self) -> int:
        """Bytes currently in the log (since the last reset)."""
        with self._lock:
            return self._file.tell()

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reporting ---------------------------------------------------------
    def snapshot(self) -> dict:
        """Counters for the ``wal`` obs collector."""
        return {
            "records": float(self.records),
            "bytes": float(self.bytes_written),
            "syncs": float(self.syncs),
            "resets": float(self.resets),
            "recovered_records": float(self.recovered_records),
            "recovered_torn_tail": float(self.recovered_torn_tail),
        }
