"""Binary page serialization for tree nodes and LSM runs.

The simulated bufferpool never actually moves bytes, but a production index
needs a page format; this module provides one so the structures in this
library are genuinely storable: fixed little-endian headers, varint-free
8-byte keys (matching the paper's 4-byte-key/8-byte-entry layout scaled to
64-bit keys), a payload section for pickled values, and a CRC32 checksum
that detects torn or corrupted pages on load.

Layout (all little-endian)::

    magic   u16   0x5A7E ("SWARE"-ish)
    kind    u8    1=leaf, 2=internal, 3=run
    flags   u8    reserved
    count   u32   number of entries / separators
    crc     u32   CRC32 of everything after the header
    body    ...   kind-specific
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import List, Tuple

from repro.errors import ReproError

MAGIC = 0x5A7E
KIND_LEAF = 1
KIND_INTERNAL = 2
KIND_RUN = 3

_HEADER = struct.Struct("<HBBII")


class PageCorruptionError(ReproError):
    """A page failed its checksum or structural validation on load."""


def _pack(kind: int, count: int, body: bytes) -> bytes:
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return _HEADER.pack(MAGIC, kind, 0, count, crc) + body


def _unpack(data: bytes, expected_kind: int) -> Tuple[int, bytes]:
    if len(data) < _HEADER.size:
        raise PageCorruptionError("page shorter than header")
    magic, kind, _flags, count, crc = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise PageCorruptionError(f"bad magic 0x{magic:04X}")
    if kind != expected_kind:
        raise PageCorruptionError(f"expected kind {expected_kind}, found {kind}")
    body = data[_HEADER.size :]
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise PageCorruptionError("checksum mismatch")
    return count, body


def page_kind(data: bytes) -> int:
    """The kind byte of a serialized page (validates magic only)."""
    if len(data) < _HEADER.size:
        raise PageCorruptionError("page shorter than header")
    magic, kind, _flags, _count, _crc = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise PageCorruptionError(f"bad magic 0x{magic:04X}")
    return kind


def encode_leaf(keys: List[int], values: List[object]) -> bytes:
    """Serialize a leaf page: packed keys + pickled value array."""
    if len(keys) != len(values):
        raise ValueError("keys/values length mismatch")
    key_block = struct.pack(f"<{len(keys)}q", *keys) if keys else b""
    value_block = pickle.dumps(values, protocol=pickle.HIGHEST_PROTOCOL)
    body = key_block + value_block
    return _pack(KIND_LEAF, len(keys), body)


def decode_leaf(data: bytes) -> Tuple[List[int], List[object]]:
    count, body = _unpack(data, KIND_LEAF)
    key_bytes = count * 8
    if len(body) < key_bytes:
        raise PageCorruptionError("leaf body truncated")
    keys = list(struct.unpack(f"<{count}q", body[:key_bytes])) if count else []
    values = pickle.loads(body[key_bytes:])
    if len(values) != count:
        raise PageCorruptionError("leaf value count mismatch")
    return keys, values


def encode_internal(keys: List[int], child_page_ids: List[int]) -> bytes:
    """Serialize an internal page: separators + child page ids."""
    if len(child_page_ids) != len(keys) + 1:
        raise ValueError("an internal page needs len(keys)+1 children")
    body = struct.pack(f"<{len(keys)}q", *keys) if keys else b""
    body += struct.pack(f"<{len(child_page_ids)}q", *child_page_ids)
    return _pack(KIND_INTERNAL, len(keys), body)


def decode_internal(data: bytes) -> Tuple[List[int], List[int]]:
    count, body = _unpack(data, KIND_INTERNAL)
    need = count * 8 + (count + 1) * 8
    if len(body) != need:
        raise PageCorruptionError("internal body size mismatch")
    keys = list(struct.unpack(f"<{count}q", body[: count * 8])) if count else []
    children = list(struct.unpack(f"<{count + 1}q", body[count * 8 :]))
    return keys, children


def encode_run(entries: List[Tuple[int, int, object, bool]]) -> bytes:
    """Serialize an LSM run: (key, seq, tombstone) columns + values."""
    keys = struct.pack(f"<{len(entries)}q", *(e[0] for e in entries)) if entries else b""
    seqs = struct.pack(f"<{len(entries)}q", *(e[1] for e in entries)) if entries else b""
    tombs = bytes(1 if e[3] else 0 for e in entries)
    values = pickle.dumps([e[2] for e in entries], protocol=pickle.HIGHEST_PROTOCOL)
    return _pack(KIND_RUN, len(entries), keys + seqs + tombs + values)


def decode_run(data: bytes) -> List[Tuple[int, int, object, bool]]:
    count, body = _unpack(data, KIND_RUN)
    fixed = count * 8 * 2 + count
    if len(body) < fixed:
        raise PageCorruptionError("run body truncated")
    keys = struct.unpack(f"<{count}q", body[: count * 8]) if count else ()
    seqs = struct.unpack(f"<{count}q", body[count * 8 : count * 16]) if count else ()
    tombs = body[count * 16 : count * 16 + count]
    values = pickle.loads(body[fixed:])
    if len(values) != count:
        raise PageCorruptionError("run value count mismatch")
    return [
        (keys[i], seqs[i], values[i], bool(tombs[i])) for i in range(count)
    ]


def serialize_btree(tree) -> dict:
    """Serialize a whole B+-tree into a page-id -> bytes dict + metadata.

    A companion to :func:`deserialize_btree`; the result is what a real
    engine would hand to its pager, and round-tripping through it is tested
    to preserve the logical contents exactly.
    """
    pages: dict = {}
    if tree._root is None:
        return {"root": None, "pages": pages, "config": tree.config}

    def visit(node) -> int:
        if node.is_leaf:
            pages[node.page_id] = encode_leaf(node.keys, node.values)
        else:
            child_ids = [visit(child) for child in node.children]
            pages[node.page_id] = encode_internal(node.keys, child_ids)
        return node.page_id

    root_id = visit(tree._root)
    return {"root": root_id, "pages": pages, "config": tree.config}


def deserialize_btree(blob: dict):
    """Rebuild a :class:`~repro.btree.BPlusTree` from serialized pages.

    The node family is chosen by the config's ``node_layout``: the page
    format itself is layout-agnostic (dense sorted key runs), so a gapped
    tree rebuilds its sentinel-padded stores from the same bytes a classic
    tree would produce.
    """
    from repro import kernels
    from repro.btree.btree import BPlusTree
    from repro.btree.node import GappedInternal, GappedLeaf, InternalNode, LeafNode

    tree = BPlusTree(blob["config"])
    gapped = getattr(tree, "_gapped", False)
    if blob["root"] is None:
        return tree
    pages = blob["pages"]
    leaves: List[object] = []

    def load(page_id: int):
        data = pages[page_id]
        if page_kind(data) == KIND_LEAF:
            keys, values = decode_leaf(data)
            if gapped:
                leaf = GappedLeaf(page_id, tree._leaf_physical)
                leaf.replace(keys, values, tree._leaf_physical)
            else:
                leaf = LeafNode(page_id)
                leaf.keys = keys
                leaf.values = values
            leaves.append(leaf)
            tree.leaf_count += 1
            return leaf
        keys, children = decode_internal(data)
        if gapped:
            node = GappedInternal(page_id, tree._internal_physical)
            node.ks = kernels.gapped_key_store(keys, tree._internal_physical)
            node.n = len(keys)
        else:
            node = InternalNode(page_id)
            node.keys = keys
        node.children = [load(child) for child in children]
        tree.internal_count += 1
        return node

    tree._root = load(blob["root"])
    # Keep fresh page-id allocations clear of the loaded ids.
    tree._pages._next = max(pages) + 1 if pages else 0
    # Re-thread the leaf chain (left-to-right order of the traversal).
    for left, right in zip(leaves, leaves[1:]):
        left.next_leaf = right
    tree._head_leaf = leaves[0] if leaves else None
    tree._tail_leaf = leaves[-1] if leaves else None
    tree._recompute_tail_path()
    tree.n_entries = sum(len(leaf) for leaf in leaves)
    non_empty = [leaf for leaf in leaves if len(leaf)]
    if non_empty:
        first, last = non_empty[0], non_empty[-1]
        if gapped:
            tree._min_key = first.first_key()
            tree._max_key = last.last_key()
        else:
            tree._min_key = first.keys[0]
            tree._max_key = last.keys[-1]
    depth = 1
    node = tree._root
    while not node.is_leaf:
        depth += 1
        node = node.children[0]
    tree.height = depth
    return tree
