"""Binary page serialization for tree nodes and LSM runs.

The simulated bufferpool never actually moves bytes, but a production index
needs a page format; this module provides one so the structures in this
library are genuinely storable: fixed little-endian headers, varint-free
8-byte keys (matching the paper's 4-byte-key/8-byte-entry layout scaled to
64-bit keys), a payload section for pickled values, and a CRC32 checksum
that detects torn or corrupted pages on load.

Layout (all little-endian)::

    magic   u16   0x5A7E ("SWARE"-ish)
    kind    u8    1=leaf, 2=internal, 3=run
    flags   u8    bit 0 = delta-compressed key column (format v2)
                  bit 1 = delta-compressed all-int64 value column
    count   u32   number of entries / separators
    crc     u32   CRC32 of everything after the header
    body    ...   kind-specific

Flags=0 is the original (v1) format; every v1 page written by older
checkpoints decodes unchanged. When ``FLAG_COMPRESSED_KEYS`` is set the
key column is a self-describing delta block (see
:mod:`repro.storage.compress`) instead of ``count`` raw ``<q`` words —
chosen per page, and only when it is actually smaller. The same block
format doubles for the value column (``FLAG_COMPRESSED_VALUES``) when
every value on the page is a plain int64: wrapped deltas round-trip any
int64 sequence exactly, sorted or not, so the value column needs no
sortedness — only the guarantee that it shrank versus the pickle.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import List, Tuple

from repro.errors import ReproError
from repro.storage.compress import (
    KEY_BLOCK_HEADER,
    decode_key_block,
    encode_key_block,
    key_block_stats,
)

MAGIC = 0x5A7E
KIND_LEAF = 1
KIND_INTERNAL = 2
KIND_RUN = 3

#: flags bit 0: key column is a delta-compressed block, not raw ``<q`` words.
FLAG_COMPRESSED_KEYS = 0x01
#: flags bit 1: value column is a delta-compressed block, not a pickle —
#: only ever set when every value on the page is a plain (non-bool) int64.
FLAG_COMPRESSED_VALUES = 0x02

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

_HEADER = struct.Struct("<HBBII")


class PageCorruptionError(ReproError):
    """A page failed its checksum or structural validation on load."""


def _pack(kind: int, count: int, body: bytes, flags: int = 0) -> bytes:
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return _HEADER.pack(MAGIC, kind, flags, count, crc) + body


def _unpack(data: bytes, expected_kind: int) -> Tuple[int, int, bytes]:
    if len(data) < _HEADER.size:
        raise PageCorruptionError("page shorter than header")
    magic, kind, flags, count, crc = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise PageCorruptionError(f"bad magic 0x{magic:04X}")
    if kind != expected_kind:
        raise PageCorruptionError(f"expected kind {expected_kind}, found {kind}")
    body = data[_HEADER.size :]
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise PageCorruptionError("checksum mismatch")
    return count, flags, body


def _encode_keys(keys: List[int], compress: bool) -> Tuple[bytes, int]:
    """Key column bytes + flags: compressed only when it actually shrinks.

    The decision is deterministic in the keys alone (both kernel backends
    produce bit-identical blocks), so a checkpoint's bytes do not depend on
    which backend wrote it.
    """
    raw_bytes = 8 * len(keys)
    if compress and len(keys) >= 2:
        block = encode_key_block(keys)
        if len(block) < raw_bytes:
            return block, FLAG_COMPRESSED_KEYS
    return (struct.pack(f"<{len(keys)}q", *keys) if keys else b""), 0


def _decode_keys(body: bytes, count: int, flags: int) -> Tuple[List[int], int]:
    """Decode the key column; returns ``(keys, bytes_consumed)``."""
    if flags & FLAG_COMPRESSED_KEYS:
        if len(body) < KEY_BLOCK_HEADER.size:
            raise PageCorruptionError("compressed key block truncated")
        blk_count, _first, _last, width = key_block_stats(body)
        if blk_count != count:
            raise PageCorruptionError("compressed key count mismatch")
        n_deltas = max(count - 1, 0)
        used = KEY_BLOCK_HEADER.size + (n_deltas * width + 7) // 8
        if len(body) < used:
            raise PageCorruptionError("compressed key block truncated")
        return decode_key_block(body[:used]), used
    key_bytes = count * 8
    if len(body) < key_bytes:
        raise PageCorruptionError("key column truncated")
    keys = list(struct.unpack(f"<{count}q", body[:key_bytes])) if count else []
    return keys, key_bytes


def _encode_values(values: List[object], compress: bool) -> Tuple[bytes, int]:
    """Value column bytes + flags: a delta block when that beats the pickle.

    ``bool`` is excluded (``type(v) is int``) — a delta block would decode
    ``True`` back as ``1``, silently changing the value's type.
    """
    blob = pickle.dumps(values, protocol=pickle.HIGHEST_PROTOCOL)
    if (
        compress
        and len(values) >= 2
        and all(type(v) is int and _I64_MIN <= v <= _I64_MAX for v in values)
    ):
        block = encode_key_block(values)
        if len(block) < len(blob):
            return block, FLAG_COMPRESSED_VALUES
    return blob, 0


def _decode_values(blob: bytes, count: int, flags: int, what: str) -> List[object]:
    if flags & FLAG_COMPRESSED_VALUES:
        if len(blob) < KEY_BLOCK_HEADER.size:
            raise PageCorruptionError(f"compressed {what} value block truncated")
        values: List[object] = decode_key_block(blob)
    else:
        values = pickle.loads(blob)
    if len(values) != count:
        raise PageCorruptionError(f"{what} value count mismatch")
    return values


def page_kind(data: bytes) -> int:
    """The kind byte of a serialized page (validates magic only)."""
    if len(data) < _HEADER.size:
        raise PageCorruptionError("page shorter than header")
    magic, kind, _flags, _count, _crc = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise PageCorruptionError(f"bad magic 0x{magic:04X}")
    return kind


def encode_leaf(keys: List[int], values: List[object], *, compress: bool = False) -> bytes:
    """Serialize a leaf page: key column + pickled value array.

    With ``compress`` the key column is delta-encoded when that is smaller
    than the raw packing (v2 pages, ``FLAG_COMPRESSED_KEYS``).
    """
    if len(keys) != len(values):
        raise ValueError("keys/values length mismatch")
    key_block, key_flags = _encode_keys(keys, compress)
    value_block, value_flags = _encode_values(values, compress)
    return _pack(KIND_LEAF, len(keys), key_block + value_block, key_flags | value_flags)


def decode_leaf(data: bytes) -> Tuple[List[int], List[object]]:
    count, flags, body = _unpack(data, KIND_LEAF)
    keys, used = _decode_keys(body, count, flags)
    values = _decode_values(body[used:], count, flags, "leaf")
    return keys, values


def encode_internal(keys: List[int], child_page_ids: List[int]) -> bytes:
    """Serialize an internal page: separators + child page ids."""
    if len(child_page_ids) != len(keys) + 1:
        raise ValueError("an internal page needs len(keys)+1 children")
    body = struct.pack(f"<{len(keys)}q", *keys) if keys else b""
    body += struct.pack(f"<{len(child_page_ids)}q", *child_page_ids)
    return _pack(KIND_INTERNAL, len(keys), body)


def decode_internal(data: bytes) -> Tuple[List[int], List[int]]:
    count, _flags, body = _unpack(data, KIND_INTERNAL)
    need = count * 8 + (count + 1) * 8
    if len(body) != need:
        raise PageCorruptionError("internal body size mismatch")
    keys = list(struct.unpack(f"<{count}q", body[: count * 8])) if count else []
    children = list(struct.unpack(f"<{count + 1}q", body[count * 8 :]))
    return keys, children


def encode_run(
    entries: List[Tuple[int, int, object, bool]], *, compress: bool = False
) -> bytes:
    """Serialize an LSM run: (key, seq, tombstone) columns + values.

    With ``compress`` the sorted key column is delta-encoded (seqs stay
    raw — they are not sorted, so deltas would not shrink them).
    """
    ekeys = [e[0] for e in entries]
    key_block, key_flags = _encode_keys(ekeys, compress)
    seqs = struct.pack(f"<{len(entries)}q", *(e[1] for e in entries)) if entries else b""
    tombs = bytes(1 if e[3] else 0 for e in entries)
    values, value_flags = _encode_values([e[2] for e in entries], compress)
    return _pack(
        KIND_RUN, len(entries), key_block + seqs + tombs + values,
        key_flags | value_flags,
    )


def decode_run(data: bytes) -> List[Tuple[int, int, object, bool]]:
    count, flags, body = _unpack(data, KIND_RUN)
    keys, used = _decode_keys(body, count, flags)
    fixed = used + count * 8 + count
    if len(body) < fixed:
        raise PageCorruptionError("run body truncated")
    seqs = struct.unpack(f"<{count}q", body[used : used + count * 8]) if count else ()
    tombs = body[used + count * 8 : used + count * 8 + count]
    values = _decode_values(body[fixed:], count, flags, "run")
    return [
        (keys[i], seqs[i], values[i], bool(tombs[i])) for i in range(count)
    ]


def leaf_columns(data: bytes) -> Tuple[int, int, bytes, List[object]]:
    """``(count, flags, key_column, values)`` of a leaf page.

    Unlike :func:`decode_leaf` the key column is returned **still encoded**
    (a delta block for v2 pages, raw ``<q`` words for v1) — this is the
    entry point for the rebuild pipeline, which merges runs without
    decoding keys that never reach a merge frontier.
    """
    count, flags, body = _unpack(data, KIND_LEAF)
    if flags & FLAG_COMPRESSED_KEYS:
        if len(body) < KEY_BLOCK_HEADER.size:
            raise PageCorruptionError("compressed key block truncated")
        blk_count, _first, _last, width = key_block_stats(body)
        if blk_count != count:
            raise PageCorruptionError("compressed key count mismatch")
        used = KEY_BLOCK_HEADER.size + (max(count - 1, 0) * width + 7) // 8
    else:
        used = count * 8
    if len(body) < used:
        raise PageCorruptionError("key column truncated")
    values = _decode_values(body[used:], count, flags, "leaf")
    return count, flags, body[:used], values


def serialize_btree(tree, *, compress: bool = False) -> dict:
    """Serialize a whole B+-tree into a page-id -> bytes dict + metadata.

    A companion to :func:`deserialize_btree`; the result is what a real
    engine would hand to its pager, and round-tripping through it is tested
    to preserve the logical contents exactly. ``compress`` delta-encodes
    leaf key columns (v2 pages) where that shrinks them.
    """
    pages: dict = {}
    if tree._root is None:
        return {"root": None, "pages": pages, "config": tree.config}

    def visit(node) -> int:
        if node.is_leaf:
            pages[node.page_id] = encode_leaf(node.keys, node.values, compress=compress)
        else:
            child_ids = [visit(child) for child in node.children]
            pages[node.page_id] = encode_internal(node.keys, child_ids)
        return node.page_id

    root_id = visit(tree._root)
    return {"root": root_id, "pages": pages, "config": tree.config}


def deserialize_btree(blob: dict):
    """Rebuild a :class:`~repro.btree.BPlusTree` from serialized pages.

    The node family is chosen by the config's ``node_layout``: the page
    format itself is layout-agnostic (dense sorted key runs), so a gapped
    tree rebuilds its sentinel-padded stores from the same bytes a classic
    tree would produce.
    """
    from repro import kernels
    from repro.btree.btree import BPlusTree
    from repro.btree.node import GappedInternal, GappedLeaf, InternalNode, LeafNode

    tree = BPlusTree(blob["config"])
    gapped = getattr(tree, "_gapped", False)
    if blob["root"] is None:
        return tree
    pages = blob["pages"]
    leaves: List[object] = []

    def load(page_id: int):
        data = pages[page_id]
        if page_kind(data) == KIND_LEAF:
            keys, values = decode_leaf(data)
            if gapped:
                leaf = GappedLeaf(page_id, tree._leaf_physical)
                leaf.replace(keys, values, tree._leaf_physical)
            else:
                leaf = LeafNode(page_id)
                leaf.keys = keys
                leaf.values = values
            leaves.append(leaf)
            tree.leaf_count += 1
            return leaf
        keys, children = decode_internal(data)
        if gapped:
            node = GappedInternal(page_id, tree._internal_physical)
            node.ks = kernels.gapped_key_store(keys, tree._internal_physical)
            node.n = len(keys)
        else:
            node = InternalNode(page_id)
            node.keys = keys
        node.children = [load(child) for child in children]
        tree.internal_count += 1
        return node

    tree._root = load(blob["root"])
    # Keep fresh page-id allocations clear of the loaded ids.
    tree._pages._next = max(pages) + 1 if pages else 0
    # Re-thread the leaf chain (left-to-right order of the traversal).
    for left, right in zip(leaves, leaves[1:]):
        left.next_leaf = right
    tree._head_leaf = leaves[0] if leaves else None
    tree._tail_leaf = leaves[-1] if leaves else None
    tree._recompute_tail_path()
    tree.n_entries = sum(len(leaf) for leaf in leaves)
    non_empty = [leaf for leaf in leaves if len(leaf)]
    if non_empty:
        first, last = non_empty[0], non_empty[-1]
        if gapped:
            tree._min_key = first.first_key()
            tree._max_key = last.last_key()
        else:
            tree._min_key = first.keys[0]
            tree._max_key = last.keys[-1]
    depth = 1
    node = tree._root
    while not node.is_leaf:
        depth += 1
        node = node.children[0]
    tree.height = depth
    return tree
