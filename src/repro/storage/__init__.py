"""Simulated storage substrate: cost accounting, an LRU bufferpool, and the
binary page format."""

from repro.storage.bufferpool import BufferPool, Frame, PageIdAllocator
from repro.storage.costmodel import (
    DEFAULT_WEIGHTS,
    NULL_METER,
    CostModel,
    Meter,
    StopwatchResult,
    stopwatch,
)
from repro.storage.pagefile import CheckpointStore, PageFile, PageFileError
from repro.storage.pages import (
    PageCorruptionError,
    decode_internal,
    decode_leaf,
    decode_run,
    deserialize_btree,
    encode_internal,
    encode_leaf,
    encode_run,
    serialize_btree,
)

__all__ = [
    "BufferPool",
    "Frame",
    "PageIdAllocator",
    "DEFAULT_WEIGHTS",
    "NULL_METER",
    "CostModel",
    "Meter",
    "StopwatchResult",
    "stopwatch",
    "CheckpointStore",
    "PageFile",
    "PageFileError",
    "PageCorruptionError",
    "decode_internal",
    "decode_leaf",
    "decode_run",
    "deserialize_btree",
    "encode_internal",
    "encode_leaf",
    "encode_run",
    "serialize_btree",
]
