"""Storage substrate: cost accounting, an LRU bufferpool, the binary page
format, and the durability subsystem (WAL + atomic checkpoints + crash
fault-injection)."""

from repro.storage.bufferpool import BufferPool, Frame, PageIdAllocator
from repro.storage.costmodel import (
    DEFAULT_WEIGHTS,
    NULL_METER,
    CostModel,
    Meter,
    StopwatchResult,
    stopwatch,
)
from repro.storage.faults import FaultyEnv, FaultyFile, SimulatedCrash
from repro.storage.pagefile import (
    CheckpointStore,
    PageFile,
    PageFileError,
    RecoveryReport,
)
from repro.storage.wal import WALReplay, WriteAheadLog, replay_wal
from repro.storage.pages import (
    PageCorruptionError,
    decode_internal,
    decode_leaf,
    decode_run,
    deserialize_btree,
    encode_internal,
    encode_leaf,
    encode_run,
    serialize_btree,
)

__all__ = [
    "BufferPool",
    "Frame",
    "PageIdAllocator",
    "DEFAULT_WEIGHTS",
    "NULL_METER",
    "CostModel",
    "Meter",
    "StopwatchResult",
    "stopwatch",
    "CheckpointStore",
    "PageFile",
    "PageFileError",
    "RecoveryReport",
    "WALReplay",
    "WriteAheadLog",
    "replay_wal",
    "FaultyEnv",
    "FaultyFile",
    "SimulatedCrash",
    "PageCorruptionError",
    "decode_internal",
    "decode_leaf",
    "decode_run",
    "deserialize_btree",
    "encode_internal",
    "encode_leaf",
    "encode_run",
    "serialize_btree",
]
