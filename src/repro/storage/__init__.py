"""Storage substrate: cost accounting, an LRU bufferpool, the binary page
format, and the durability subsystem (WAL + atomic checkpoints + crash
fault-injection)."""

from repro.storage.bufferpool import BufferPool, Frame, PageIdAllocator
from repro.storage.costmodel import (
    DEFAULT_WEIGHTS,
    NULL_METER,
    CostModel,
    Meter,
    StopwatchResult,
    stopwatch,
)
from repro.storage.compress import (
    CompressedRun,
    RunPage,
    decode_key_block,
    encode_key_block,
    merge_compressed_items,
    merge_compressed_runs,
)
from repro.storage.faults import FaultyEnv, FaultyFile, SimulatedCrash
from repro.storage.pagefile import (
    CheckpointStore,
    PageFile,
    PageFileError,
    RecoveryReport,
)
from repro.storage.rebuild import RebuildReport, rebuild_index
from repro.storage.wal import WALReplay, WriteAheadLog, replay_wal
from repro.storage.pages import (
    FLAG_COMPRESSED_KEYS,
    PageCorruptionError,
    decode_internal,
    decode_leaf,
    decode_run,
    deserialize_btree,
    encode_internal,
    encode_leaf,
    encode_run,
    serialize_btree,
)

__all__ = [
    "BufferPool",
    "Frame",
    "PageIdAllocator",
    "DEFAULT_WEIGHTS",
    "NULL_METER",
    "CostModel",
    "Meter",
    "StopwatchResult",
    "stopwatch",
    "CheckpointStore",
    "PageFile",
    "PageFileError",
    "RecoveryReport",
    "WALReplay",
    "WriteAheadLog",
    "replay_wal",
    "FaultyEnv",
    "FaultyFile",
    "SimulatedCrash",
    "CompressedRun",
    "RunPage",
    "encode_key_block",
    "decode_key_block",
    "merge_compressed_items",
    "merge_compressed_runs",
    "RebuildReport",
    "rebuild_index",
    "FLAG_COMPRESSED_KEYS",
    "PageCorruptionError",
    "decode_internal",
    "decode_leaf",
    "decode_run",
    "deserialize_btree",
    "encode_internal",
    "encode_leaf",
    "encode_run",
    "serialize_btree",
]
