"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming from this package with a single ``except`` clause,
while still being able to discriminate configuration problems from runtime
invariant violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigError(ReproError, ValueError):
    """A configuration object was constructed with invalid parameters."""


class BulkLoadError(ReproError, ValueError):
    """A bulk-load batch violated its precondition.

    Bulk loading in this library is *append-only*: the batch must be sorted
    in non-decreasing key order and every key must be strictly greater than
    the current maximum key of the index.
    """


class KLSortCapacityError(ReproError, RuntimeError):
    """The (K,L)-adaptive sort exceeded its side-buffer capacity.

    The paper notes that (K,L)-adaptive sorting "fails for significantly
    high values of K or L"; this exception is that failure surfaced so the
    caller can fall back to a general-purpose stable sort.
    """


class InvariantViolation(ReproError, AssertionError):
    """An internal structural invariant check failed.

    Raised by the explicit ``check_invariants()`` validators on the tree
    structures; these are exercised heavily by the test suite and are cheap
    enough to call after metamorphic operation sequences.
    """


class CheckpointUnsupportedError(ReproError, TypeError):
    """The backend behind an index cannot be checkpointed.

    The page-image checkpoint format serializes B+-tree nodes; backends
    without a node structure (the learned index and the cracking index,
    which rebuild their models/partitions from data) raise this instead of
    failing deep inside the serializer. Persist their contents through the
    WAL or re-ingest instead.
    """


class LockTimeout(ReproError, TimeoutError):
    """A blocking lock acquisition exceeded its timeout.

    The blocking lock manager surfaces potential deadlocks (e.g. two readers
    both waiting to upgrade to exclusive) as timeouts instead of hanging;
    callers either propagate the error or fall back to releasing and
    re-acquiring in a stronger mode.
    """


class PagePinnedError(ReproError, RuntimeError):
    """A bufferpool frame could not be evicted because it is pinned."""


class BufferpoolFullError(ReproError, RuntimeError):
    """Every frame in the bufferpool is pinned; no victim can be chosen."""


class PinViolationError(ReproError, ValueError):
    """A bufferpool pin-accounting rule was violated.

    Raised when a pinned frame is dropped (which would silently corrupt the
    pin count the later ``unpin`` relies on) or when an unpinned page is
    unpinned. Subclasses :class:`ValueError` for backward compatibility with
    callers that caught the bare ``ValueError`` ``unpin`` used to raise.
    """


class WALError(ReproError, RuntimeError):
    """The write-ahead log cannot accept the requested operation.

    Raised for lifecycle misuse (appending to a closed log) and for
    configuration problems (an unknown fsync policy). Torn tails discovered
    on replay are *not* errors — they are the expected aftermath of a crash
    and are reported through :class:`~repro.storage.wal.WALReplay` instead.
    """
