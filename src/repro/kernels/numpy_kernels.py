"""NumPy-vectorized kernels.

Drop-in replacements for :mod:`repro.kernels.python_kernels` that operate on
whole arrays instead of per-element Python loops. Every function returns
*bit-identical* results to its pure-Python twin (same Bloom bit patterns,
same stable sort orders, same metric values) — only the wall-clock changes.
The equivalence contract is enforced by ``tests/test_kernels_equivalence.py``.

All 64-bit hash arithmetic runs on ``uint64`` arrays, where NumPy's
wraparound multiplication/addition is exactly the ``& 0xFFFF...FFFF`` masking
the scalar implementations perform. Inputs that do not fit a NumPy integer
dtype (arbitrary-precision Python ints, mixed objects) make each kernel fall
back to the pure-Python implementation for that call, so behaviour never
depends on value ranges.

This module must only be imported through :mod:`repro.kernels`, which guards
the ``import numpy`` behind availability checks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels import python_kernels as _py

_M32 = np.uint64(0xFFFFFFFF)
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_MASK64 = 0xFFFFFFFFFFFFFFFF

#: Raised internally when an input cannot be represented as a NumPy integer
#: array; the public kernels catch it and delegate to the Python backend.
class _Fallback(Exception):
    pass


_FALLBACK_ERRORS = (_Fallback, OverflowError, TypeError, ValueError)


def _int_array(values) -> np.ndarray:
    """``values`` as an integer ndarray, or :class:`_Fallback`."""
    arr = values if isinstance(values, np.ndarray) else np.asarray(values)
    if arr.dtype.kind not in "iu":
        raise _Fallback
    return arr


def _u64_array(values) -> np.ndarray:
    """``values`` reduced mod 2**64 as a uint64 ndarray, or :class:`_Fallback`.

    ``astype(uint64)`` on a signed array is two's-complement wraparound —
    the same ``key & _MASK64`` the scalar hashes apply to negative keys.
    """
    return _int_array(values).astype(np.uint64, copy=False)


# ----------------------------------------------------------------------
# hashing / Bloom filters
# ----------------------------------------------------------------------
def _splitmix64_arr(keys: np.ndarray, seed: int = 0) -> np.ndarray:
    offset = np.uint64((seed * _GOLDEN + _GOLDEN) & _MASK64)
    z = keys + offset
    z = (z ^ (z >> np.uint64(30))) * _MIX1
    z = (z ^ (z >> np.uint64(27))) * _MIX2
    return z ^ (z >> np.uint64(31))


def _murmur3_32_block8(lo32: np.ndarray, hi32: np.ndarray, seed: int) -> np.ndarray:
    """Vectorized murmur3_32 over 8-byte keys split into two LE 32-bit blocks.

    Mirrors ``hashing.murmur3_32`` specialised to ``len(data) == 8``: two
    block rounds, no tail bytes, then the finalization mix. Work happens in
    uint64 lanes masked back to 32 bits after every step, matching the
    scalar code's ``& _MASK32``.
    """
    c1 = np.uint64(0xCC9E2D51)
    c2 = np.uint64(0x1B873593)
    h = np.full(lo32.shape, np.uint64(seed & 0xFFFFFFFF), dtype=np.uint64)
    for block in (lo32, hi32):
        k = (block * c1) & _M32
        k = ((k << np.uint64(15)) | (k >> np.uint64(17))) & _M32
        k = (k * c2) & _M32
        h = h ^ k
        h = ((h << np.uint64(13)) | (h >> np.uint64(19))) & _M32
        h = (h * np.uint64(5) + np.uint64(0xE6546B64)) & _M32
    h = h ^ np.uint64(8)  # ^= length
    h = h ^ (h >> np.uint64(16))
    h = (h * np.uint64(0x85EBCA6B)) & _M32
    h = h ^ (h >> np.uint64(13))
    h = (h * np.uint64(0xC2B2AE35)) & _M32
    return h ^ (h >> np.uint64(16))


def _murmur3_64_arr(keys: np.ndarray, seed: int = 0) -> np.ndarray:
    lo32 = keys & _M32
    hi32 = keys >> np.uint64(32)
    lo = _murmur3_32_block8(lo32, hi32, seed)
    hi = _murmur3_32_block8(lo32, hi32, seed ^ 0x9E3779B9)
    return (hi << np.uint64(32)) | lo


def shared_bases(keys: Sequence[int], family: str = "splitmix64", seed: int = 0):
    """One 64-bit base hash per key, as a uint64 array."""
    try:
        arr = _u64_array(keys)
    except _FALLBACK_ERRORS:
        return _py.shared_bases(keys, family, seed)
    if family == "splitmix64":
        return _splitmix64_arr(arr, seed)
    if family == "murmur3":
        return _murmur3_64_arr(arr, seed)
    raise ValueError(f"unknown hash family: {family!r}")


def splitmix64_many(keys: Sequence[int], seed: int = 0):
    try:
        arr = _u64_array(keys)
    except _FALLBACK_ERRORS:
        return _py.splitmix64_many(keys, seed)
    return _splitmix64_arr(arr, seed)


def murmur3_64_many(keys: Sequence[int], seed: int = 0):
    try:
        arr = _u64_array(keys)
    except _FALLBACK_ERRORS:
        return _py.murmur3_64_many(keys, seed)
    return _murmur3_64_arr(arr, seed)


def _probe_matrix(bases: np.ndarray, n_probes: int, n_bits: int, rotation: int) -> np.ndarray:
    """Kirsch–Mitzenmacher probe positions, shape ``(n_keys, n_probes)``.

    ``h1 + i*h2`` stays far below 2**64 (h1, h2 < 2**32, i small), so the
    uint64 arithmetic is exact — no wraparound before the modulo, exactly
    like the arbitrary-precision scalar path.
    """
    if rotation:
        r = np.uint64(rotation & 63)
        bases = (bases << r) | (bases >> (np.uint64(64) - r))
    h1 = bases & _M32
    h2 = (bases >> np.uint64(32)) | np.uint64(1)
    i = np.arange(n_probes, dtype=np.uint64)
    return (h1[:, None] + i[None, :] * h2[:, None]) % np.uint64(n_bits)


def bloom_add_many(
    bits: bytearray,
    bases: Sequence[int],
    n_probes: int,
    n_bits: int,
    rotation: int = 0,
) -> None:
    try:
        base_arr = _u64_array(bases)
    except _FALLBACK_ERRORS:
        _py.bloom_add_many(bits, bases, n_probes, n_bits, rotation)
        return
    if base_arr.size == 0:
        return
    pos = _probe_matrix(base_arr, n_probes, n_bits, rotation)
    # Mark probe positions in a bool scratch (duplicate positions are plain
    # overwrites, no ufunc.at needed), pack little-endian — bit p lands in
    # byte p>>3 at bit p&7, the byte path's exact layout — and OR the packed
    # block into the store in one vector op.
    scratch = np.zeros(len(bits) * 8, dtype=bool)
    scratch[pos.ravel().astype(np.intp)] = True
    packed = np.packbits(scratch, bitorder="little")
    view = np.frombuffer(bits, dtype=np.uint8)
    np.bitwise_or(view, packed, out=view)


def bloom_contains_many(
    bits: bytearray,
    bases: Sequence[int],
    n_probes: int,
    n_bits: int,
    rotation: int = 0,
) -> List[bool]:
    try:
        base_arr = _u64_array(bases)
    except _FALLBACK_ERRORS:
        return _py.bloom_contains_many(bits, bases, n_probes, n_bits, rotation)
    if base_arr.size == 0:
        return []
    pos = _probe_matrix(base_arr, n_probes, n_bits, rotation)
    byte_view = np.frombuffer(bits, dtype=np.uint8)
    byte_idx = (pos >> np.uint64(3)).astype(np.intp)
    shift = (pos & np.uint64(7)).astype(np.uint8)
    probe_hits = (byte_view[byte_idx] >> shift) & np.uint8(1)
    return probe_hits.all(axis=1).tolist()


def popcount_bytes(buf) -> int:
    arr = np.frombuffer(buf, dtype=np.uint8)
    if arr.size == 0:
        return 0
    if hasattr(np, "bitwise_count"):  # numpy >= 2.0
        return int(np.bitwise_count(arr).sum(dtype=np.int64))
    return int(np.unpackbits(arr).sum(dtype=np.int64))  # pragma: no cover


# ----------------------------------------------------------------------
# buffer primitives
# ----------------------------------------------------------------------
def nondecreasing_prefix_len(keys: Sequence[int], last: Optional[int]) -> int:
    n = len(keys)
    if n == 0:
        return 0
    try:
        arr = _int_array(keys)
    except _FALLBACK_ERRORS:
        return _py.nondecreasing_prefix_len(keys, last)
    # Position i continues the run iff keys[i] >= max(last, keys[:i]); once
    # keys[0] >= last holds, the running max dominates ``last`` everywhere
    # after it, so only position 0 needs the explicit comparison.
    ok = np.empty(n, dtype=bool)
    ok[0] = last is None or bool(arr[0] >= last)
    if n > 1:
        cummax = np.maximum.accumulate(arr[:-1])
        np.greater_equal(arr[1:], cummax, out=ok[1:])
    bad = np.flatnonzero(~ok)
    return int(bad[0]) if bad.size else n


def _entry_order(entries: Sequence[tuple]) -> np.ndarray:
    """Stable (key, seq) sort permutation over entry tuples."""
    keys = _int_array([entry[0] for entry in entries])
    seqs = np.asarray([entry[1] for entry in entries])
    return np.lexsort((seqs, keys))


def sort_tail_entries(entries: Sequence[tuple]) -> List[tuple]:
    if len(entries) < 2:
        return list(entries)
    try:
        order = _entry_order(entries)
    except _FALLBACK_ERRORS:
        return _py.sort_tail_entries(entries)
    return [entries[i] for i in order]


def merge_entry_streams(streams: List[List[tuple]]) -> List[tuple]:
    streams = [s for s in streams if s]
    if not streams:
        return []
    if len(streams) == 1:
        return list(streams[0])
    # Buffer seq numbers are unique, so (key, seq) is a total order and a
    # stable sort of the concatenation equals the k-way heap merge.
    entries: List[tuple] = []
    for stream in streams:
        entries.extend(stream)
    try:
        order = _entry_order(entries)
    except _FALLBACK_ERRORS:
        return _py.merge_entry_streams(streams)
    return [entries[i] for i in order]


def key_column(entries: Sequence[tuple]):
    keys = [entry[0] for entry in entries]
    try:
        arr = np.asarray(keys)
    except OverflowError:
        return keys
    return arr if arr.dtype.kind in "iu" else keys


def searchsorted_range(keys, lo: int, hi: int) -> Tuple[int, int]:
    if isinstance(keys, np.ndarray):
        try:
            return (
                int(np.searchsorted(keys, lo, side="left")),
                int(np.searchsorted(keys, hi, side="right")),
            )
        except _FALLBACK_ERRORS:
            pass  # lo/hi outside the dtype's range: bisect handles bignums
    return _py.searchsorted_range(keys, lo, hi)


# ----------------------------------------------------------------------
# B+-tree batch pre-pass
# ----------------------------------------------------------------------
def sort_items_by_key(items: Sequence[Tuple[int, object]]) -> List[Tuple[int, object]]:
    items = list(items)
    if len(items) < 2:
        return items
    try:
        keys = _int_array([key for key, _value in items])
    except _FALLBACK_ERRORS:
        return _py.sort_items_by_key(items)
    order = np.argsort(keys, kind="stable")
    return [items[i] for i in order]


def keys_strictly_increasing(batch: Sequence[Tuple[int, object]]) -> bool:
    if len(batch) < 2:
        return True
    try:
        keys = _int_array([key for key, _value in batch])
    except _FALLBACK_ERRORS:
        return _py.keys_strictly_increasing(batch)
    return bool(np.all(keys[1:] > keys[:-1]))


def dedup_sorted_items(batch: List[Tuple[int, object]]) -> List[Tuple[int, object]]:
    n = len(batch)
    if n < 2:
        return list(batch)
    try:
        keys = _int_array([key for key, _value in batch])
    except _FALLBACK_ERRORS:
        return _py.dedup_sorted_items(batch)
    keep = np.empty(n, dtype=bool)
    keep[-1] = True
    np.not_equal(keys[:-1], keys[1:], out=keep[:-1])
    if keep.all():
        return list(batch)
    return [batch[i] for i in np.flatnonzero(keep)]


# ----------------------------------------------------------------------
# sortedness metrics
# ----------------------------------------------------------------------
def longest_nondecreasing_subsequence_length(keys: Sequence[int]) -> int:
    # Patience sorting is a sequential dependence chain (each element lands
    # on a pile determined by all previous piles) — per-element np calls are
    # slower than bisect, so K deliberately stays on the Python kernel.
    return _py.longest_nondecreasing_subsequence_length(keys)


def count_out_of_order(keys: Sequence[int]) -> int:
    return _py.count_out_of_order(keys)


def max_displacement(keys: Sequence[int]) -> int:
    if len(keys) < 2:
        return 0
    try:
        arr = _int_array(keys)
    except _FALLBACK_ERRORS:
        return _py.max_displacement(keys)
    order = np.argsort(arr, kind="stable")
    return int(np.abs(order - np.arange(len(keys))).max())


def count_inversions(keys: Sequence[int]) -> int:
    n = len(keys)
    if n < 2:
        return 0
    try:
        arr = _int_array(keys)
    except _FALLBACK_ERRORS:
        return _py.count_inversions(keys)
    # Stable ranks turn the input into a permutation with the same inversion
    # count (equal keys get increasing ranks, so ties add no pairs), then a
    # bottom-up merge-count runs every row of each level in one vector op:
    # per-row offsets of P separate the rows' value ranges so one global
    # searchsorted counts "left-half elements below y" for every y at once.
    order = np.argsort(arr, kind="stable")
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n, dtype=np.int64)
    p = 1 << (n - 1).bit_length()
    # Pad with ascending sentinels above every rank: zero extra inversions.
    a = np.concatenate([rank, np.arange(n, p, dtype=np.int64)])
    total = 0
    width = 1
    while width < p:
        m = a.reshape(-1, 2 * width)
        nrows = m.shape[0]
        offsets = np.arange(nrows, dtype=np.int64)[:, None] * p
        left = (m[:, :width] + offsets).ravel()
        right = (m[:, width:] + offsets).ravel()
        below = np.searchsorted(left, right)
        row_base = np.repeat(np.arange(nrows, dtype=np.int64) * width, width)
        total += int((width - (below - row_base)).sum(dtype=np.int64))
        a = np.sort(m, axis=1).ravel()
        width *= 2
    return total


def count_runs(keys: Sequence[int]) -> int:
    n = len(keys)
    if n == 0:
        return 0
    if n == 1:
        return 1
    try:
        arr = _int_array(keys)
    except _FALLBACK_ERRORS:
        return _py.count_runs(keys)
    return 1 + int(np.count_nonzero(arr[1:] < arr[:-1]))
