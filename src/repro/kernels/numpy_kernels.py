"""NumPy-vectorized kernels.

Drop-in replacements for :mod:`repro.kernels.python_kernels` that operate on
whole arrays instead of per-element Python loops. Every function returns
*bit-identical* results to its pure-Python twin (same Bloom bit patterns,
same stable sort orders, same metric values) — only the wall-clock changes.
The equivalence contract is enforced by ``tests/test_kernels_equivalence.py``.

All 64-bit hash arithmetic runs on ``uint64`` arrays, where NumPy's
wraparound multiplication/addition is exactly the ``& 0xFFFF...FFFF`` masking
the scalar implementations perform. Inputs that do not fit a NumPy integer
dtype (arbitrary-precision Python ints, mixed objects) make each kernel fall
back to the pure-Python implementation for that call, so behaviour never
depends on value ranges.

This module must only be imported through :mod:`repro.kernels`, which guards
the ``import numpy`` behind availability checks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels import python_kernels as _py

_M32 = np.uint64(0xFFFFFFFF)
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_MASK64 = 0xFFFFFFFFFFFFFFFF

#: Raised internally when an input cannot be represented as a NumPy integer
#: array; the public kernels catch it and delegate to the Python backend.
class _Fallback(Exception):
    pass


_FALLBACK_ERRORS = (_Fallback, OverflowError, TypeError, ValueError)


def _int_array(values) -> np.ndarray:
    """``values`` as an integer ndarray, or :class:`_Fallback`."""
    arr = values if isinstance(values, np.ndarray) else np.asarray(values)
    if arr.dtype.kind not in "iu":
        raise _Fallback
    return arr


def _u64_array(values) -> np.ndarray:
    """``values`` reduced mod 2**64 as a uint64 ndarray, or :class:`_Fallback`.

    ``astype(uint64)`` on a signed array is two's-complement wraparound —
    the same ``key & _MASK64`` the scalar hashes apply to negative keys.
    """
    return _int_array(values).astype(np.uint64, copy=False)


# ----------------------------------------------------------------------
# hashing / Bloom filters
# ----------------------------------------------------------------------
def _splitmix64_arr(keys: np.ndarray, seed: int = 0) -> np.ndarray:
    offset = np.uint64((seed * _GOLDEN + _GOLDEN) & _MASK64)
    z = keys + offset
    z = (z ^ (z >> np.uint64(30))) * _MIX1
    z = (z ^ (z >> np.uint64(27))) * _MIX2
    return z ^ (z >> np.uint64(31))


def _murmur3_32_block8(lo32: np.ndarray, hi32: np.ndarray, seed: int) -> np.ndarray:
    """Vectorized murmur3_32 over 8-byte keys split into two LE 32-bit blocks.

    Mirrors ``hashing.murmur3_32`` specialised to ``len(data) == 8``: two
    block rounds, no tail bytes, then the finalization mix. Work happens in
    uint64 lanes masked back to 32 bits after every step, matching the
    scalar code's ``& _MASK32``.
    """
    c1 = np.uint64(0xCC9E2D51)
    c2 = np.uint64(0x1B873593)
    h = np.full(lo32.shape, np.uint64(seed & 0xFFFFFFFF), dtype=np.uint64)
    for block in (lo32, hi32):
        k = (block * c1) & _M32
        k = ((k << np.uint64(15)) | (k >> np.uint64(17))) & _M32
        k = (k * c2) & _M32
        h = h ^ k
        h = ((h << np.uint64(13)) | (h >> np.uint64(19))) & _M32
        h = (h * np.uint64(5) + np.uint64(0xE6546B64)) & _M32
    h = h ^ np.uint64(8)  # ^= length
    h = h ^ (h >> np.uint64(16))
    h = (h * np.uint64(0x85EBCA6B)) & _M32
    h = h ^ (h >> np.uint64(13))
    h = (h * np.uint64(0xC2B2AE35)) & _M32
    return h ^ (h >> np.uint64(16))


def _murmur3_64_arr(keys: np.ndarray, seed: int = 0) -> np.ndarray:
    lo32 = keys & _M32
    hi32 = keys >> np.uint64(32)
    lo = _murmur3_32_block8(lo32, hi32, seed)
    hi = _murmur3_32_block8(lo32, hi32, seed ^ 0x9E3779B9)
    return (hi << np.uint64(32)) | lo


def shared_bases(keys: Sequence[int], family: str = "splitmix64", seed: int = 0):
    """One 64-bit base hash per key, as a uint64 array."""
    try:
        arr = _u64_array(keys)
    except _FALLBACK_ERRORS:
        return _py.shared_bases(keys, family, seed)
    if family == "splitmix64":
        return _splitmix64_arr(arr, seed)
    if family == "murmur3":
        return _murmur3_64_arr(arr, seed)
    raise ValueError(f"unknown hash family: {family!r}")


def splitmix64_many(keys: Sequence[int], seed: int = 0):
    try:
        arr = _u64_array(keys)
    except _FALLBACK_ERRORS:
        return _py.splitmix64_many(keys, seed)
    return _splitmix64_arr(arr, seed)


def murmur3_64_many(keys: Sequence[int], seed: int = 0):
    try:
        arr = _u64_array(keys)
    except _FALLBACK_ERRORS:
        return _py.murmur3_64_many(keys, seed)
    return _murmur3_64_arr(arr, seed)


def _probe_matrix(bases: np.ndarray, n_probes: int, n_bits: int, rotation: int) -> np.ndarray:
    """Kirsch–Mitzenmacher probe positions, shape ``(n_keys, n_probes)``.

    ``h1 + i*h2`` stays far below 2**64 (h1, h2 < 2**32, i small), so the
    uint64 arithmetic is exact — no wraparound before the modulo, exactly
    like the arbitrary-precision scalar path.
    """
    if rotation:
        r = np.uint64(rotation & 63)
        bases = (bases << r) | (bases >> (np.uint64(64) - r))
    h1 = bases & _M32
    h2 = (bases >> np.uint64(32)) | np.uint64(1)
    i = np.arange(n_probes, dtype=np.uint64)
    return (h1[:, None] + i[None, :] * h2[:, None]) % np.uint64(n_bits)


def bloom_add_many(
    bits: bytearray,
    bases: Sequence[int],
    n_probes: int,
    n_bits: int,
    rotation: int = 0,
) -> None:
    try:
        base_arr = _u64_array(bases)
    except _FALLBACK_ERRORS:
        _py.bloom_add_many(bits, bases, n_probes, n_bits, rotation)
        return
    if base_arr.size == 0:
        return
    pos = _probe_matrix(base_arr, n_probes, n_bits, rotation)
    # Mark probe positions in a bool scratch (duplicate positions are plain
    # overwrites, no ufunc.at needed), pack little-endian — bit p lands in
    # byte p>>3 at bit p&7, the byte path's exact layout — and OR the packed
    # block into the store in one vector op.
    scratch = np.zeros(len(bits) * 8, dtype=bool)
    scratch[pos.ravel().astype(np.intp)] = True
    packed = np.packbits(scratch, bitorder="little")
    view = np.frombuffer(bits, dtype=np.uint8)
    np.bitwise_or(view, packed, out=view)


def bloom_contains_many(
    bits: bytearray,
    bases: Sequence[int],
    n_probes: int,
    n_bits: int,
    rotation: int = 0,
) -> List[bool]:
    try:
        base_arr = _u64_array(bases)
    except _FALLBACK_ERRORS:
        return _py.bloom_contains_many(bits, bases, n_probes, n_bits, rotation)
    if base_arr.size == 0:
        return []
    pos = _probe_matrix(base_arr, n_probes, n_bits, rotation)
    byte_view = np.frombuffer(bits, dtype=np.uint8)
    byte_idx = (pos >> np.uint64(3)).astype(np.intp)
    shift = (pos & np.uint64(7)).astype(np.uint8)
    probe_hits = (byte_view[byte_idx] >> shift) & np.uint8(1)
    return probe_hits.all(axis=1).tolist()


def popcount_bytes(buf) -> int:
    arr = np.frombuffer(buf, dtype=np.uint8)
    if arr.size == 0:
        return 0
    if hasattr(np, "bitwise_count"):  # numpy >= 2.0
        return int(np.bitwise_count(arr).sum(dtype=np.int64))
    return int(np.unpackbits(arr).sum(dtype=np.int64))  # pragma: no cover


# ----------------------------------------------------------------------
# buffer primitives
# ----------------------------------------------------------------------
def nondecreasing_prefix_len(keys: Sequence[int], last: Optional[int]) -> int:
    n = len(keys)
    if n == 0:
        return 0
    try:
        arr = _int_array(keys)
    except _FALLBACK_ERRORS:
        return _py.nondecreasing_prefix_len(keys, last)
    # Position i continues the run iff keys[i] >= max(last, keys[:i]); once
    # keys[0] >= last holds, the running max dominates ``last`` everywhere
    # after it, so only position 0 needs the explicit comparison.
    ok = np.empty(n, dtype=bool)
    ok[0] = last is None or bool(arr[0] >= last)
    if n > 1:
        cummax = np.maximum.accumulate(arr[:-1])
        np.greater_equal(arr[1:], cummax, out=ok[1:])
    bad = np.flatnonzero(~ok)
    return int(bad[0]) if bad.size else n


def _entry_order(entries: Sequence[tuple]) -> np.ndarray:
    """Stable (key, seq) sort permutation over entry tuples."""
    keys = _int_array([entry[0] for entry in entries])
    seqs = np.asarray([entry[1] for entry in entries])
    return np.lexsort((seqs, keys))


def sort_tail_entries(entries: Sequence[tuple]) -> List[tuple]:
    if len(entries) < 2:
        return list(entries)
    try:
        order = _entry_order(entries)
    except _FALLBACK_ERRORS:
        return _py.sort_tail_entries(entries)
    return [entries[i] for i in order]


def merge_entry_streams(streams: List[List[tuple]]) -> List[tuple]:
    streams = [s for s in streams if s]
    if not streams:
        return []
    if len(streams) == 1:
        return list(streams[0])
    # Buffer seq numbers are unique, so (key, seq) is a total order and a
    # stable sort of the concatenation equals the k-way heap merge.
    entries: List[tuple] = []
    for stream in streams:
        entries.extend(stream)
    try:
        order = _entry_order(entries)
    except _FALLBACK_ERRORS:
        return _py.merge_entry_streams(streams)
    return [entries[i] for i in order]


def key_column(entries: Sequence[tuple]):
    keys = [entry[0] for entry in entries]
    try:
        arr = np.asarray(keys)
    except OverflowError:
        return keys
    return arr if arr.dtype.kind in "iu" else keys


def searchsorted_range(keys, lo: int, hi: int) -> Tuple[int, int]:
    if isinstance(keys, np.ndarray):
        try:
            return (
                int(np.searchsorted(keys, lo, side="left")),
                int(np.searchsorted(keys, hi, side="right")),
            )
        except _FALLBACK_ERRORS:
            pass  # lo/hi outside the dtype's range: bisect handles bignums
    return _py.searchsorted_range(keys, lo, hi)


# ----------------------------------------------------------------------
# B+-tree batch pre-pass
# ----------------------------------------------------------------------
def sort_items_by_key(items: Sequence[Tuple[int, object]]) -> List[Tuple[int, object]]:
    # Timsort on the tuple list beats extract-argsort-rebuild at every batch
    # size we ship (2.7x on near-sorted batches, 1.3x on shuffled ones): the
    # listcomps around argsort cost more than the sort itself, and timsort
    # exploits presortedness that argsort's introsort cannot.
    return _py.sort_items_by_key(items)


def keys_strictly_increasing(batch: Sequence[Tuple[int, object]]) -> bool:
    if len(batch) < 2:
        return True
    try:
        keys = _int_array([key for key, _value in batch])
    except _FALLBACK_ERRORS:
        return _py.keys_strictly_increasing(batch)
    return bool(np.all(keys[1:] > keys[:-1]))


def dedup_sorted_items(batch: List[Tuple[int, object]]) -> List[Tuple[int, object]]:
    n = len(batch)
    if n < 2:
        return list(batch)
    try:
        keys = _int_array([key for key, _value in batch])
    except _FALLBACK_ERRORS:
        return _py.dedup_sorted_items(batch)
    keep = np.empty(n, dtype=bool)
    keep[-1] = True
    np.not_equal(keys[:-1], keys[1:], out=keep[:-1])
    if keep.all():
        return list(batch)
    return [batch[i] for i in np.flatnonzero(keep)]


def column_strictly_increasing(col) -> bool:
    if not isinstance(col, np.ndarray):
        return _py.column_strictly_increasing(col)
    if len(col) < 2:
        return True
    return bool(np.all(col[:-1] < col[1:]))


def dedup_sorted_items_col(batch: List[Tuple[int, object]], col):
    n = len(batch)
    if n < 2 or not isinstance(col, np.ndarray):
        return _py.dedup_sorted_items_col(batch, col)
    keep = np.empty(n, dtype=bool)
    keep[-1] = True
    np.not_equal(col[:-1], col[1:], out=keep[:-1])
    if keep.all():
        return batch, col
    idx = np.flatnonzero(keep)
    return [batch[i] for i in idx], col[idx]


# ----------------------------------------------------------------------
# gapped node layout (BS-tree direction)
# ----------------------------------------------------------------------
GAP_SENTINEL = _py.GAP_SENTINEL


def gapped_key_store(keys, physical: int):
    """Sentinel-padded int64 array store (falls back to a list store).

    The sentinel is INT64_MAX, so the padded array is sorted end to end and
    ``searchsorted`` over the *whole* buffer equals a search over the dense
    prefix — the branchless/shifted-sentinel trick. Keys that cannot be
    stored as a non-sentinel int64 demote the store to a plain list.
    """
    if isinstance(keys, np.ndarray) and keys.dtype == np.int64:
        # Already a validated int64 column (a store slice, a probe column):
        # one vectorized copy, no per-element conversion.
        n = keys.size
        if n > physical:
            physical = n
        arr = np.full(physical, GAP_SENTINEL, dtype=np.int64)
        arr[:n] = keys
        if n and int(arr[n - 1]) >= GAP_SENTINEL and int(arr[:n].max()) >= GAP_SENTINEL:
            return [int(k) for k in keys]
        return arr
    keys = list(keys)
    n = len(keys)
    if n > physical:
        physical = n
    arr = np.full(physical, GAP_SENTINEL, dtype=np.int64)
    try:
        arr[:n] = keys
    except _FALLBACK_ERRORS:
        return keys
    if n and int(arr[:n].max()) >= GAP_SENTINEL:
        return keys
    return arr


def store_keys(store, n: int):
    return _py.store_keys(store, n)


def node_search_left(store, n: int, key: int) -> int:
    if isinstance(store, list):
        return _py.node_search_left(store, n, key)
    # Sentinel padding keeps the whole buffer sorted, so no hi bound is
    # needed; min() folds a sentinel-valued probe back into the live prefix.
    return min(int(np.searchsorted(store, key, side="left")), n)


def node_search_right(store, n: int, key: int) -> int:
    if isinstance(store, list):
        return _py.node_search_right(store, n, key)
    return min(int(np.searchsorted(store, key, side="right")), n)


def node_insert_key(store, n: int, idx: int, key: int):
    return _py.node_insert_key(store, n, idx, key)


def node_delete_key(store, n: int, idx: int):
    return _py.node_delete_key(store, n, idx)


def store_truncate(store, n_old: int, n_new: int):
    return _py.store_truncate(store, n_old, n_new)


def store_extend(store, n: int, chunk):
    return _py.store_extend(store, n, chunk)


def merge_positions(store, n: int, run_keys):
    m = len(run_keys)
    if isinstance(store, list) or m == 0:
        return _py.merge_positions(store, n, run_keys)
    try:
        # dtype=int64 up front: uint64 astype would silently wrap keys >= 2**63
        run = np.asarray(run_keys, dtype=np.int64)
    except _FALLBACK_ERRORS:
        return _py.merge_positions(store, n, run_keys)
    pos = np.searchsorted(store[:n], run, side="left")
    hit = np.zeros(m, dtype=bool)
    inside = pos < n
    if inside.any():
        clipped = np.minimum(pos, max(n - 1, 0))
        hit = inside & (store[clipped] == run)
    return pos.tolist(), (~hit).tolist(), m - int(hit.sum())


def merge_insert_keys(store, n: int, col, i: int, j: int, positions, physical: int):
    if isinstance(store, list) or not isinstance(col, np.ndarray):
        return _py.merge_insert_keys(store, n, col, i, j, positions, physical)
    m = j - i
    total = n + m
    if total > physical:
        physical = total
    # Scatter the run, then fill the survivors — ~2x cheaper than np.insert,
    # which pays a python-level dispatch and an extra intermediate copy.
    arr = np.full(physical, GAP_SENTINEL, dtype=np.int64)
    out = arr[:total]
    idx = np.asarray(positions, dtype=np.intp)
    idx = idx + np.arange(m, dtype=np.intp)
    out[idx] = col[i:j]
    keep = np.ones(total, dtype=bool)
    keep[idx] = False
    out[keep] = store[:n]
    if int(out[total - 1]) >= GAP_SENTINEL:
        return [int(k) for k in out]
    return arr


def partition_runs(store, n: int, keys, lo: int, hi: int):
    if isinstance(store, list) or not isinstance(keys, np.ndarray) or hi <= lo:
        return _py.partition_runs(store, n, keys, lo, hi)
    segment = keys[lo:hi]
    child = np.searchsorted(store[:n], segment, side="right")
    cuts = np.flatnonzero(child[1:] != child[:-1]) + 1
    bounds = [0, *cuts.tolist(), hi - lo]
    return [
        (int(child[bounds[t]]), lo + bounds[t], lo + bounds[t + 1])
        for t in range(len(bounds) - 1)
    ]


def leaf_find_positions(store, n: int, keys, lo: int, hi: int):
    if isinstance(store, list) or not isinstance(keys, np.ndarray) or hi <= lo:
        return _py.leaf_find_positions(store, n, keys, lo, hi)
    segment = keys[lo:hi]
    pos = np.searchsorted(store[:n], segment, side="left")
    clipped = np.minimum(pos, max(n - 1, 0))
    hit = (pos < n) & (store[clipped] == segment) if n else np.zeros(hi - lo, bool)
    return np.where(hit, pos, -1).tolist()


def concat_stores(stores, ns):
    if any(isinstance(store, list) for store in stores):
        return _py.concat_stores(stores, ns)
    offsets = []
    parts = []
    start = 0
    for store, n in zip(stores, ns):
        offsets.append(start)
        parts.append(store[:n])
        start += n
    combined = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
    return combined, offsets


def probe_positions(combined, total: int, offsets, col, m: int):
    if not isinstance(combined, np.ndarray) or not isinstance(col, np.ndarray):
        return _py.probe_positions(combined, total, offsets, col, m)
    seg = col[:m]
    pos = np.searchsorted(combined, seg, side="left")
    if total:
        clipped = np.minimum(pos, total - 1)
        hit = (pos < total) & (combined[clipped] == seg)
    else:
        hit = np.zeros(m, dtype=bool)
    off = np.asarray(offsets, dtype=np.int64)
    owner = np.searchsorted(off, pos, side="right") - 1
    owner = np.maximum(owner, 0)
    store_idx = np.where(hit, owner, -1)
    local_idx = np.where(hit, pos - off[owner], 0)
    return store_idx.tolist(), local_idx.tolist()


def leaf_range_bounds(store, n: int, lo: int, hi: int):
    if isinstance(store, list):
        return _py.leaf_range_bounds(store, n, lo, hi)
    try:
        return (
            min(int(np.searchsorted(store, lo, side="left")), n),
            min(int(np.searchsorted(store, hi, side="right")), n),
        )
    except _FALLBACK_ERRORS:  # pragma: no cover - defensive
        return _py.leaf_range_bounds(store, n, lo, hi)


def run_end(keys, i: int, bound: int, nb: int) -> int:
    if isinstance(keys, np.ndarray):
        return i + int(np.searchsorted(keys[i:nb], bound, side="left"))
    return _py.run_end(keys, i, bound, nb)


def key_array(keys):
    """Query keys as an int64 column when every key fits, else a list."""
    keys = list(keys)
    try:
        return np.asarray(keys, dtype=np.int64)
    except _FALLBACK_ERRORS:
        return keys


# ----------------------------------------------------------------------
# sortedness metrics
# ----------------------------------------------------------------------
def longest_nondecreasing_subsequence_length(keys: Sequence[int]) -> int:
    # Patience sorting is a sequential dependence chain (each element lands
    # on a pile determined by all previous piles) — per-element np calls are
    # slower than bisect, so K deliberately stays on the Python kernel.
    return _py.longest_nondecreasing_subsequence_length(keys)


def count_out_of_order(keys: Sequence[int]) -> int:
    return _py.count_out_of_order(keys)


def max_displacement(keys: Sequence[int]) -> int:
    if len(keys) < 2:
        return 0
    try:
        arr = _int_array(keys)
    except _FALLBACK_ERRORS:
        return _py.max_displacement(keys)
    order = np.argsort(arr, kind="stable")
    return int(np.abs(order - np.arange(len(keys))).max())


def count_inversions(keys: Sequence[int]) -> int:
    n = len(keys)
    if n < 2:
        return 0
    try:
        arr = _int_array(keys)
    except _FALLBACK_ERRORS:
        return _py.count_inversions(keys)
    # Stable ranks turn the input into a permutation with the same inversion
    # count (equal keys get increasing ranks, so ties add no pairs), then a
    # bottom-up merge-count runs every row of each level in one vector op:
    # per-row offsets of P separate the rows' value ranges so one global
    # searchsorted counts "left-half elements below y" for every y at once.
    order = np.argsort(arr, kind="stable")
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n, dtype=np.int64)
    p = 1 << (n - 1).bit_length()
    # Pad with ascending sentinels above every rank: zero extra inversions.
    a = np.concatenate([rank, np.arange(n, p, dtype=np.int64)])
    total = 0
    width = 1
    while width < p:
        m = a.reshape(-1, 2 * width)
        nrows = m.shape[0]
        offsets = np.arange(nrows, dtype=np.int64)[:, None] * p
        left = (m[:, :width] + offsets).ravel()
        right = (m[:, width:] + offsets).ravel()
        below = np.searchsorted(left, right)
        row_base = np.repeat(np.arange(nrows, dtype=np.int64) * width, width)
        total += int((width - (below - row_base)).sum(dtype=np.int64))
        a = np.sort(m, axis=1).ravel()
        width *= 2
    return total


def count_runs(keys: Sequence[int]) -> int:
    n = len(keys)
    if n == 0:
        return 0
    if n == 1:
        return 1
    try:
        arr = _int_array(keys)
    except _FALLBACK_ERRORS:
        return _py.count_runs(keys)
    return 1 + int(np.count_nonzero(arr[1:] < arr[:-1]))


# ----------------------------------------------------------------------
# piecewise-linear approximation (PGM/FITing-tree style learned index)
# ----------------------------------------------------------------------
def pla_fit_segments(keys, epsilon: int):
    # The shrinking-cone fit is inherently sequential (each point updates
    # the feasible interval of the *current* segment); delegating to the
    # scalar twin keeps the float arithmetic — and therefore the segment
    # boundaries — bit-identical across backends. Fits happen once per
    # rebuild, never on the per-query hot path.
    if isinstance(keys, np.ndarray):
        keys = keys.tolist()
    return _py.pla_fit_segments(keys, epsilon)


def pla_predict_many(first_keys, slopes, starts, keys):
    try:
        qs = _int_array(keys).astype(np.int64, copy=False)
        fk = _int_array(first_keys).astype(np.int64, copy=False)
    except _FALLBACK_ERRORS:
        return _py.pla_predict_many(first_keys, slopes, starts, keys)
    if fk.size == 0:
        return []
    seg = np.searchsorted(fk, qs, side="right") - 1
    np.clip(seg, 0, None, out=seg)
    sl = np.asarray(slopes, dtype=np.float64)[seg]
    st = np.asarray(starts, dtype=np.int64)[seg]
    # float64 multiply + truncation toward zero matches the scalar
    # ``int(slope * float(delta))`` exactly.
    pred = st + (sl * (qs - fk[seg]).astype(np.float64)).astype(np.int64)
    return pred.tolist()


# ----------------------------------------------------------------------
# delta-compressed key columns (compressed leaf pages / rebuild runs)
# ----------------------------------------------------------------------
def delta_pack(keys) -> Tuple[int, int, bytes]:
    n = len(keys)
    if n < 2:
        return _py.delta_pack(keys)
    try:
        arr = _int_array(keys).astype(np.int64, copy=False)
    except _FALLBACK_ERRORS:
        return _py.delta_pack(keys)
    # Two's-complement reinterpret, then wraparound uint64 differences —
    # exactly the scalar ``(key - prev) & MASK64`` reduction.
    unsigned = arr.view(np.uint64)
    deltas = unsigned[1:] - unsigned[:-1]
    anchor = int(arr[0])
    max_delta = int(deltas.max())
    width = max_delta.bit_length()
    if width == 0:
        return anchor, 0, b""
    shifts = np.arange(width, dtype=np.uint64)
    bits = ((deltas[:, None] >> shifts) & np.uint64(1)).astype(np.uint8)
    packed = np.packbits(bits.ravel(), bitorder="little").tobytes()
    return anchor, width, packed


def delta_unpack(anchor: int, width: int, count: int, packed: bytes) -> List[int]:
    if count <= 0 or width == 0:
        return _py.delta_unpack(anchor, width, count, packed)
    if width > 64:
        return _py.delta_unpack(anchor, width, count, packed)
    n_deltas = count - 1
    raw = np.frombuffer(packed, dtype=np.uint8)
    bits = np.unpackbits(raw, bitorder="little", count=n_deltas * width)
    bits = bits.reshape(n_deltas, width).astype(np.uint64)
    shifts = np.arange(width, dtype=np.uint64)
    deltas = np.bitwise_or.reduce(bits << shifts, axis=1)
    keys = np.empty(count, dtype=np.uint64)
    keys[0] = np.uint64(anchor & _MASK64)
    # uint64 cumsum wraps mod 2**64, matching the scalar reduction.
    np.cumsum(deltas, dtype=np.uint64, out=keys[1:])
    keys[1:] += keys[0]
    return keys.view(np.int64).tolist()
