"""Pure-Python reference kernels.

Every function here is the *semantic definition* of a kernel: the NumPy
backend (:mod:`repro.kernels.numpy_kernels`) must reproduce these results
bit for bit (Bloom bit patterns, sort orders, metric values), a contract
pinned by ``tests/test_kernels_equivalence.py``. Several bodies are the
hot-path loops that previously lived inline in ``filters.bloom``,
``core.buffer``, ``btree.btree`` and ``sortedness.metrics``; they moved
here unchanged so both backends sit behind one dispatch point.

This module must stay import-light (no numpy, no repro.core/*): it is the
fallback that keeps the library dependency-free.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from heapq import merge as heap_merge
from operator import itemgetter
from typing import List, Optional, Sequence, Tuple

from repro.filters.hashing import murmur3_64, rotate64, shared_bases as _shared_bases

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF

#: Chunk width (bytes) for the incremental popcount — large enough that the
#: per-chunk ``int.from_bytes`` overhead amortizes, small enough that no
#: single bignum conversion dominates (the previous implementation built one
#: bignum for the whole filter on every call).
_POPCOUNT_CHUNK = 4096


# ----------------------------------------------------------------------
# hashing / Bloom filters
# ----------------------------------------------------------------------
def shared_bases(keys: Sequence[int], family: str = "splitmix64", seed: int = 0):
    """One 64-bit base hash per key (batch hash sharing)."""
    return _shared_bases(keys, family, seed)


def splitmix64_many(keys: Sequence[int], seed: int = 0) -> List[int]:
    """Vectorizable alias for the splitmix64 batch hash."""
    return _shared_bases(keys, "splitmix64", seed)


def murmur3_64_many(keys: Sequence[int], seed: int = 0) -> List[int]:
    return [murmur3_64(key, seed) for key in keys]


def bloom_add_many(
    bits: bytearray,
    bases: Sequence[int],
    n_probes: int,
    n_bits: int,
    rotation: int = 0,
) -> None:
    """Set the Kirsch–Mitzenmacher probe bits for every base hash.

    Set bits are accumulated per 64-bit word and folded into the byte array
    with one read-OR-write per touched word instead of one poke per probe.
    """
    words = {}
    get = words.get
    for base in bases:
        if rotation:
            base = rotate64(base, rotation)
        h1 = base & _MASK32
        h2 = (base >> 32) | 1
        for i in range(n_probes):
            pos = (h1 + i * h2) % n_bits
            word = pos >> 6
            words[word] = get(word, 0) | (1 << (pos & 63))
    n_bytes = len(bits)
    for word, mask in words.items():
        start = word << 3
        stop = min(start + 8, n_bytes)
        width = stop - start
        merged = int.from_bytes(bits[start:stop], "little") | mask
        bits[start:stop] = merged.to_bytes(width, "little")


def bloom_contains_many(
    bits: bytearray,
    bases: Sequence[int],
    n_probes: int,
    n_bits: int,
    rotation: int = 0,
) -> List[bool]:
    """One membership verdict per base hash (early exit per key)."""
    out: List[bool] = []
    append = out.append
    for base in bases:
        if rotation:
            base = rotate64(base, rotation)
        h1 = base & _MASK32
        h2 = (base >> 32) | 1
        hit = True
        for i in range(n_probes):
            pos = (h1 + i * h2) % n_bits
            if not bits[pos >> 3] & (1 << (pos & 7)):
                hit = False
                break
        append(hit)
    return out


def popcount_bytes(buf) -> int:
    """Total set bits in a byte buffer, converted in bounded chunks."""
    view = memoryview(buf)
    total = 0
    for start in range(0, len(view), _POPCOUNT_CHUNK):
        chunk = int.from_bytes(view[start : start + _POPCOUNT_CHUNK], "little")
        try:
            total += chunk.bit_count()
        except AttributeError:  # pragma: no cover - Python 3.9 only
            total += bin(chunk).count("1")
    return total


# ----------------------------------------------------------------------
# buffer primitives
# ----------------------------------------------------------------------
def nondecreasing_prefix_len(keys: Sequence[int], last: Optional[int]) -> int:
    """Length of the longest prefix continuing an in-order run.

    ``last`` is the previous maximum (``None`` when the run is empty); the
    prefix ends at the first key that undercuts its predecessor.
    """
    split = 0
    n = len(keys)
    while split < n and (last is None or keys[split] >= last):
        last = keys[split]
        split += 1
    return split


def sort_tail_entries(entries: Sequence[tuple]) -> List[tuple]:
    """Stable sort of buffer entries by ``(key, seq)``.

    Buffer tails arrive in ``seq`` order, so this equals a stable sort by
    key alone — the property the NumPy argsort kernel relies on.
    """
    return sorted(entries, key=lambda e: (e[0], e[1]))


def merge_entry_streams(streams: List[List[tuple]]) -> List[tuple]:
    """Stable k-way merge of ``(key, seq)``-sorted entry lists."""
    streams = [s for s in streams if s]
    if not streams:
        return []
    if len(streams) == 1:
        return list(streams[0])
    return list(heap_merge(*streams, key=lambda e: (e[0], e[1])))


def key_column(entries: Sequence[tuple]):
    """The key column of an entry list (backend-native sequence)."""
    return [entry[0] for entry in entries]


def searchsorted_range(keys, lo: int, hi: int) -> Tuple[int, int]:
    """``(bisect_left(lo), bisect_right(hi))`` over a sorted key column."""
    return bisect_left(keys, lo), bisect_right(keys, hi)


# ----------------------------------------------------------------------
# B+-tree batch pre-pass
# ----------------------------------------------------------------------
def sort_items_by_key(items: Sequence[Tuple[int, object]]) -> List[Tuple[int, object]]:
    """Stable sort of ``(key, value)`` pairs by key (later duplicate last)."""
    return sorted(items, key=itemgetter(0))


def keys_strictly_increasing(batch: Sequence[Tuple[int, object]]) -> bool:
    """True when the (sorted) batch has strictly increasing keys."""
    return all(batch[i - 1][0] < batch[i][0] for i in range(1, len(batch)))


def dedup_sorted_items(batch: List[Tuple[int, object]]) -> List[Tuple[int, object]]:
    """Keep the last pair of every key run in a key-sorted batch.

    Matches upsert semantics: in a sequential replay the later duplicate
    overwrites the earlier one, so only the final version needs to reach
    the tree.
    """
    out: List[Tuple[int, object]] = []
    append = out.append
    last_key: Optional[int] = None
    for pair in batch:
        if pair[0] == last_key:
            out[-1] = pair
        else:
            append(pair)
            last_key = pair[0]
    return out


# ----------------------------------------------------------------------
# sortedness metrics
# ----------------------------------------------------------------------
def longest_nondecreasing_subsequence_length(keys: Sequence[int]) -> int:
    """Length of the longest non-decreasing subsequence (patience sorting)."""
    tails: List[int] = []  # tails[i] = smallest tail of a subsequence of len i+1
    for key in keys:
        pos = bisect_right(tails, key)
        if pos == len(tails):
            tails.append(key)
        else:
            tails[pos] = key
    return len(tails)


def count_out_of_order(keys: Sequence[int]) -> int:
    """Exact K: minimum removals that leave the sequence non-decreasing."""
    return len(keys) - longest_nondecreasing_subsequence_length(keys)


def max_displacement(keys: Sequence[int]) -> int:
    """Exact L: max |i - sorted_position(i)| under a stable sort."""
    order = sorted(range(len(keys)), key=lambda i: (keys[i], i))
    worst = 0
    for sorted_pos, original_pos in enumerate(order):
        displacement = abs(sorted_pos - original_pos)
        if displacement > worst:
            worst = displacement
    return worst


def count_inversions(keys: Sequence[int]) -> int:
    """Number of pairs (i, j) with i < j and keys[i] > keys[j].

    Merge-count implementation, O(N log N); duplicates do not count as
    inversions.
    """
    arr = list(keys)
    temp = [0] * len(arr)

    def merge_count(lo: int, hi: int) -> int:
        if hi - lo <= 1:
            return 0
        mid = (lo + hi) // 2
        inv = merge_count(lo, mid) + merge_count(mid, hi)
        i, j, k = lo, mid, lo
        while i < mid and j < hi:
            if arr[i] <= arr[j]:
                temp[k] = arr[i]
                i += 1
            else:
                temp[k] = arr[j]
                inv += mid - i
                j += 1
            k += 1
        while i < mid:
            temp[k] = arr[i]
            i += 1
            k += 1
        while j < hi:
            temp[k] = arr[j]
            j += 1
            k += 1
        arr[lo:hi] = temp[lo:hi]
        return inv

    return merge_count(0, len(arr))


def count_runs(keys: Sequence[int]) -> int:
    """Mannila's *Runs* measure: number of maximal non-decreasing runs."""
    if not keys:
        return 0
    runs = 1
    for i in range(1, len(keys)):
        if keys[i] < keys[i - 1]:
            runs += 1
    return runs
