"""Pure-Python reference kernels.

Every function here is the *semantic definition* of a kernel: the NumPy
backend (:mod:`repro.kernels.numpy_kernels`) must reproduce these results
bit for bit (Bloom bit patterns, sort orders, metric values), a contract
pinned by ``tests/test_kernels_equivalence.py``. Several bodies are the
hot-path loops that previously lived inline in ``filters.bloom``,
``core.buffer``, ``btree.btree`` and ``sortedness.metrics``; they moved
here unchanged so both backends sit behind one dispatch point.

This module must stay import-light (no numpy, no repro.core/*): it is the
fallback that keeps the library dependency-free.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from heapq import merge as heap_merge
from operator import itemgetter
from typing import List, Optional, Sequence, Tuple

from repro.filters.hashing import murmur3_64, rotate64, shared_bases as _shared_bases

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF

#: Chunk width (bytes) for the incremental popcount — large enough that the
#: per-chunk ``int.from_bytes`` overhead amortizes, small enough that no
#: single bignum conversion dominates (the previous implementation built one
#: bignum for the whole filter on every call).
_POPCOUNT_CHUNK = 4096


# ----------------------------------------------------------------------
# hashing / Bloom filters
# ----------------------------------------------------------------------
def shared_bases(keys: Sequence[int], family: str = "splitmix64", seed: int = 0):
    """One 64-bit base hash per key (batch hash sharing)."""
    return _shared_bases(keys, family, seed)


def splitmix64_many(keys: Sequence[int], seed: int = 0) -> List[int]:
    """Vectorizable alias for the splitmix64 batch hash."""
    return _shared_bases(keys, "splitmix64", seed)


def murmur3_64_many(keys: Sequence[int], seed: int = 0) -> List[int]:
    return [murmur3_64(key, seed) for key in keys]


def bloom_add_many(
    bits: bytearray,
    bases: Sequence[int],
    n_probes: int,
    n_bits: int,
    rotation: int = 0,
) -> None:
    """Set the Kirsch–Mitzenmacher probe bits for every base hash.

    Set bits are accumulated per 64-bit word and folded into the byte array
    with one read-OR-write per touched word instead of one poke per probe.
    """
    words = {}
    get = words.get
    for base in bases:
        if rotation:
            base = rotate64(base, rotation)
        h1 = base & _MASK32
        h2 = (base >> 32) | 1
        for i in range(n_probes):
            pos = (h1 + i * h2) % n_bits
            word = pos >> 6
            words[word] = get(word, 0) | (1 << (pos & 63))
    n_bytes = len(bits)
    for word, mask in words.items():
        start = word << 3
        stop = min(start + 8, n_bytes)
        width = stop - start
        merged = int.from_bytes(bits[start:stop], "little") | mask
        bits[start:stop] = merged.to_bytes(width, "little")


def bloom_contains_many(
    bits: bytearray,
    bases: Sequence[int],
    n_probes: int,
    n_bits: int,
    rotation: int = 0,
) -> List[bool]:
    """One membership verdict per base hash (early exit per key)."""
    out: List[bool] = []
    append = out.append
    for base in bases:
        if rotation:
            base = rotate64(base, rotation)
        h1 = base & _MASK32
        h2 = (base >> 32) | 1
        hit = True
        for i in range(n_probes):
            pos = (h1 + i * h2) % n_bits
            if not bits[pos >> 3] & (1 << (pos & 7)):
                hit = False
                break
        append(hit)
    return out


def popcount_bytes(buf) -> int:
    """Total set bits in a byte buffer, converted in bounded chunks."""
    view = memoryview(buf)
    total = 0
    for start in range(0, len(view), _POPCOUNT_CHUNK):
        chunk = int.from_bytes(view[start : start + _POPCOUNT_CHUNK], "little")
        try:
            total += chunk.bit_count()
        except AttributeError:  # pragma: no cover - Python 3.9 only
            total += bin(chunk).count("1")
    return total


# ----------------------------------------------------------------------
# buffer primitives
# ----------------------------------------------------------------------
def nondecreasing_prefix_len(keys: Sequence[int], last: Optional[int]) -> int:
    """Length of the longest prefix continuing an in-order run.

    ``last`` is the previous maximum (``None`` when the run is empty); the
    prefix ends at the first key that undercuts its predecessor.
    """
    split = 0
    n = len(keys)
    while split < n and (last is None or keys[split] >= last):
        last = keys[split]
        split += 1
    return split


def sort_tail_entries(entries: Sequence[tuple]) -> List[tuple]:
    """Stable sort of buffer entries by ``(key, seq)``.

    Buffer tails arrive in ``seq`` order, so this equals a stable sort by
    key alone — the property the NumPy argsort kernel relies on.
    """
    return sorted(entries, key=lambda e: (e[0], e[1]))


def merge_entry_streams(streams: List[List[tuple]]) -> List[tuple]:
    """Stable k-way merge of ``(key, seq)``-sorted entry lists."""
    streams = [s for s in streams if s]
    if not streams:
        return []
    if len(streams) == 1:
        return list(streams[0])
    return list(heap_merge(*streams, key=lambda e: (e[0], e[1])))


def key_column(entries: Sequence[tuple]):
    """The key column of an entry list (backend-native sequence)."""
    return [entry[0] for entry in entries]


def searchsorted_range(keys, lo: int, hi: int) -> Tuple[int, int]:
    """``(bisect_left(lo), bisect_right(hi))`` over a sorted key column."""
    return bisect_left(keys, lo), bisect_right(keys, hi)


# ----------------------------------------------------------------------
# B+-tree batch pre-pass
# ----------------------------------------------------------------------
def sort_items_by_key(items: Sequence[Tuple[int, object]]) -> List[Tuple[int, object]]:
    """Stable sort of ``(key, value)`` pairs by key (later duplicate last)."""
    return sorted(items, key=itemgetter(0))


def keys_strictly_increasing(batch: Sequence[Tuple[int, object]]) -> bool:
    """True when the (sorted) batch has strictly increasing keys."""
    return all(batch[i - 1][0] < batch[i][0] for i in range(1, len(batch)))


def dedup_sorted_items(batch: List[Tuple[int, object]]) -> List[Tuple[int, object]]:
    """Keep the last pair of every key run in a key-sorted batch.

    Matches upsert semantics: in a sequential replay the later duplicate
    overwrites the earlier one, so only the final version needs to reach
    the tree.
    """
    out: List[Tuple[int, object]] = []
    append = out.append
    last_key: Optional[int] = None
    for pair in batch:
        if pair[0] == last_key:
            out[-1] = pair
        else:
            append(pair)
            last_key = pair[0]
    return out


def column_strictly_increasing(col) -> bool:
    """True when the sorted key column has strictly increasing keys."""
    return all(col[i - 1] < col[i] for i in range(1, len(col)))


def dedup_sorted_items_col(batch: List[Tuple[int, object]], col):
    """Dedup a key-sorted batch alongside its prebuilt key column.

    Same last-duplicate-wins semantics as :func:`dedup_sorted_items`, but
    returns ``(batch, col)`` with the column rebuilt only when duplicates
    were actually dropped — batch entry points build the column once and
    reuse it across the whole walk.
    """
    deduped = dedup_sorted_items(batch)
    if len(deduped) == len(batch):
        return batch, col
    return deduped, key_array([key for key, _value in deduped])


# ----------------------------------------------------------------------
# gapped node layout (BS-tree direction)
# ----------------------------------------------------------------------
#: Sentinel marking an empty slot in a gapped key store. Chosen as INT64_MAX
#: so that a sentinel-padded int64 array is *sorted as stored*: every live key
#: compares below every gap, and ``searchsorted`` over the whole array equals
#: ``searchsorted`` over the dense prefix (the shifted-sentinel trick). A key
#: equal to the sentinel itself cannot live in an array store — mutation
#: kernels demote such stores to plain lists, which have no reserved values.
GAP_SENTINEL = (1 << 63) - 1

_INT64_MIN = -(1 << 63)


def _store_fits(key: int) -> bool:
    """True when ``key`` may live in an int64 array store."""
    return _INT64_MIN <= key < GAP_SENTINEL


def gapped_key_store(keys, physical: int):
    """A gapped key store holding ``keys`` with room for ``physical`` slots.

    The Python twin is a plain list (the gap region is implicit — Python
    lists grow in place); the NumPy twin is a sentinel-padded int64 array.
    Kernels that mutate a store return the store, which may be a *different*
    object: array stores are demoted to lists when a key cannot be
    represented as a non-sentinel int64.
    """
    return list(keys)


def store_keys(store, n: int) -> List[int]:
    """The live keys of a store as a plain list of Python ints."""
    if isinstance(store, list):
        return list(store)
    return [int(k) for k in store[:n]]


def node_search_left(store, n: int, key: int) -> int:
    """``bisect_left`` over the live prefix of a gapped key store."""
    return bisect_left(store, key, 0, n)


def node_search_right(store, n: int, key: int) -> int:
    """``bisect_right`` over the live prefix of a gapped key store."""
    return bisect_right(store, key, 0, n)


def node_insert_key(store, n: int, idx: int, key: int):
    """Insert ``key`` at ``idx``, shifting ``store[idx:n]`` into the gap.

    Returns the (possibly demoted or regrown) store.
    """
    if isinstance(store, list):
        store.insert(idx, key)
        return store
    if not _store_fits(key) or n >= len(store):
        demoted = [int(k) for k in store[:n]]
        demoted.insert(idx, key)
        return demoted
    store[idx + 1 : n + 1] = store[idx:n]
    store[idx] = key
    return store


def node_delete_key(store, n: int, idx: int):
    """Remove the key at ``idx``, closing the hole; returns the store."""
    if isinstance(store, list):
        del store[idx]
        return store
    store[idx : n - 1] = store[idx + 1 : n]
    store[n - 1] = GAP_SENTINEL
    return store


def store_truncate(store, n_old: int, n_new: int):
    """Drop live slots ``[n_new:n_old]`` (marking them as gaps)."""
    if isinstance(store, list):
        del store[n_new:n_old]
        return store
    store[n_new:n_old] = GAP_SENTINEL
    return store


def store_extend(store, n: int, chunk):
    """Bulk-append ``chunk`` (a key sequence) after slot ``n``.

    The fast path behind ``bulk_load_append``: one slice assignment instead
    of a per-key append loop. Returns the (possibly demoted) store.
    """
    if isinstance(store, list):
        store.extend(chunk)
        return store
    m = len(chunk)

    def demote():
        out = [int(k) for k in store[:n]]
        out.extend(int(k) for k in chunk)
        return out

    dtype = getattr(chunk, "dtype", None)
    if dtype is not None and dtype.kind != "i":
        # A non-signed chunk (uint64 with keys >= 2**63, floats, objects)
        # would wrap or mis-cast under slice assignment into an int64 store.
        return demote()
    try:
        store[n : n + m] = chunk
    except (OverflowError, TypeError, ValueError):
        return demote()
    if m and int(max(store[n + m - 1], store[n])) >= GAP_SENTINEL:
        return demote()
    return store


def merge_positions(store, n: int, run_keys) -> Tuple[List[int], List[bool], int]:
    """Insertion positions for a sorted unique key run against a leaf store.

    Returns ``(positions, is_new, n_created)``: ``positions[i]`` is where
    ``run_keys[i]`` lands in the live prefix and ``is_new[i]`` is False when
    the slot already holds that key (an overwrite, not an insert);
    ``n_created`` counts the True slots so callers need not re-scan.
    Positions are relative to the *current* store — callers merge in one
    pass.
    """
    positions: List[int] = []
    is_new: List[bool] = []
    n_created = 0
    lo = 0
    for key in run_keys:
        pos = bisect_left(store, key, lo, n)
        positions.append(pos)
        fresh = not (pos < n and store[pos] == key)
        is_new.append(fresh)
        if fresh:
            n_created += 1
        lo = pos
    return positions, is_new, n_created


def merge_insert_keys(store, n: int, col, i: int, j: int, positions, physical: int):
    """Merged key store for a pure-insert run (no overwrites).

    ``positions`` are the insertion points of ``col[i:j]`` against the live
    prefix (from :func:`merge_positions` with every slot new). Returns a new
    gapped store of ``n + (j - i)`` live keys with ``physical`` slots.
    """
    out: List[int] = []
    p = 0
    for t in range(i, j):
        pos = positions[t - i]
        if pos > p:
            out.extend(store[p:pos])
            p = pos
        out.append(col[t])
    out.extend(store[p:n])
    return out


def partition_runs(store, n: int, keys, lo: int, hi: int) -> List[Tuple[int, int, int]]:
    """Partition sorted ``keys[lo:hi]`` across an internal node's children.

    Returns ``(child_index, start, stop)`` triples covering ``[lo, hi)``:
    every key in ``keys[start:stop]`` routes to ``children[child_index]``
    under ``bisect_right`` pivot semantics. One step of batch descent.
    """
    runs: List[Tuple[int, int, int]] = []
    i = lo
    while i < hi:
        child = bisect_right(store, keys[i], 0, n)
        if child < n:
            stop = bisect_left(keys, store[child], i, hi)
        else:
            stop = hi
        runs.append((child, i, stop))
        i = stop
    return runs


def leaf_find_positions(store, n: int, keys, lo: int, hi: int) -> List[int]:
    """Live-slot position of each sorted query key, or -1 when absent."""
    out: List[int] = []
    append = out.append
    base = 0
    for i in range(lo, hi):
        key = keys[i]
        pos = bisect_left(store, key, base, n)
        if pos < n and store[pos] == key:
            append(pos)
        else:
            append(-1)
        base = pos
    return out


def concat_stores(stores, ns) -> Tuple[object, List[int]]:
    """Concatenate the live prefixes of key-ordered stores into one column.

    Returns ``(combined, offsets)`` where ``offsets[i]`` is the start of
    store ``i`` inside ``combined``. Because the stores come from leaves in
    ascending key order, ``combined`` is globally sorted — one search over
    it replaces a search per store (the coalesced batch-probe trick).
    """
    combined: List[int] = []
    offsets: List[int] = []
    for store, n in zip(stores, ns):
        offsets.append(len(combined))
        if isinstance(store, list):
            combined.extend(store)
        else:
            combined.extend(int(k) for k in store[:n])
    return combined, offsets


def probe_positions(combined, total: int, offsets, col, m: int):
    """Locate each sorted query key inside a concatenated store column.

    Returns ``(store_idx, local_idx)`` parallel lists: entry ``t`` names the
    store (by position in ``offsets``) and in-store slot holding ``col[t]``,
    or ``(-1, 0)`` when the key is absent.
    """
    store_idx: List[int] = []
    local_idx: List[int] = []
    base = 0
    oi = 0
    last = len(offsets) - 1
    for t in range(m):
        key = col[t]
        pos = bisect_left(combined, key, base, total)
        base = pos
        if pos < total and combined[pos] == key:
            while oi < last and offsets[oi + 1] <= pos:
                oi += 1
            store_idx.append(oi)
            local_idx.append(pos - offsets[oi])
        else:
            store_idx.append(-1)
            local_idx.append(0)
    return store_idx, local_idx


def leaf_range_bounds(store, n: int, lo: int, hi: int) -> Tuple[int, int]:
    """``(bisect_left(lo), bisect_right(hi))`` over the live prefix."""
    return bisect_left(store, lo, 0, n), bisect_right(store, hi, 0, n)


def run_end(keys, i: int, bound: int, nb: int) -> int:
    """First position in sorted ``keys[i:nb]`` with ``key >= bound``."""
    return bisect_left(keys, bound, i, nb)


def key_array(keys):
    """Sorted query keys as a backend-native column for batch descent."""
    return list(keys)


# ----------------------------------------------------------------------
# sortedness metrics
# ----------------------------------------------------------------------
def longest_nondecreasing_subsequence_length(keys: Sequence[int]) -> int:
    """Length of the longest non-decreasing subsequence (patience sorting)."""
    tails: List[int] = []  # tails[i] = smallest tail of a subsequence of len i+1
    for key in keys:
        pos = bisect_right(tails, key)
        if pos == len(tails):
            tails.append(key)
        else:
            tails[pos] = key
    return len(tails)


def count_out_of_order(keys: Sequence[int]) -> int:
    """Exact K: minimum removals that leave the sequence non-decreasing."""
    return len(keys) - longest_nondecreasing_subsequence_length(keys)


def max_displacement(keys: Sequence[int]) -> int:
    """Exact L: max |i - sorted_position(i)| under a stable sort."""
    order = sorted(range(len(keys)), key=lambda i: (keys[i], i))
    worst = 0
    for sorted_pos, original_pos in enumerate(order):
        displacement = abs(sorted_pos - original_pos)
        if displacement > worst:
            worst = displacement
    return worst


def count_inversions(keys: Sequence[int]) -> int:
    """Number of pairs (i, j) with i < j and keys[i] > keys[j].

    Merge-count implementation, O(N log N); duplicates do not count as
    inversions.
    """
    arr = list(keys)
    temp = [0] * len(arr)

    def merge_count(lo: int, hi: int) -> int:
        if hi - lo <= 1:
            return 0
        mid = (lo + hi) // 2
        inv = merge_count(lo, mid) + merge_count(mid, hi)
        i, j, k = lo, mid, lo
        while i < mid and j < hi:
            if arr[i] <= arr[j]:
                temp[k] = arr[i]
                i += 1
            else:
                temp[k] = arr[j]
                inv += mid - i
                j += 1
            k += 1
        while i < mid:
            temp[k] = arr[i]
            i += 1
            k += 1
        while j < hi:
            temp[k] = arr[j]
            j += 1
            k += 1
        arr[lo:hi] = temp[lo:hi]
        return inv

    return merge_count(0, len(arr))


def count_runs(keys: Sequence[int]) -> int:
    """Mannila's *Runs* measure: number of maximal non-decreasing runs."""
    if not keys:
        return 0
    runs = 1
    for i in range(1, len(keys)):
        if keys[i] < keys[i - 1]:
            runs += 1
    return runs


# ----------------------------------------------------------------------
# piecewise-linear approximation (PGM/FITing-tree style learned index)
# ----------------------------------------------------------------------
def pla_fit_segments(keys: Sequence[int], epsilon: int):
    """Greedy shrinking-cone PLA fit over a sorted, unique key column.

    Returns ``(first_keys, slopes, starts)``: segment ``i`` covers the index
    range ``starts[i]:starts[i+1]`` (the last segment runs to ``len(keys)``)
    and predicts ``pos ~= starts[i] + slopes[i] * (key - first_keys[i])``
    with absolute error at most ``epsilon`` for every fitted key.

    The cone is the classic feasible-slope interval: each new point
    intersects ``[slope_lo, slope_hi]`` with the slopes that keep it within
    +/- epsilon of the segment origin; an empty intersection closes the
    segment with the midpoint slope and opens a new one at the point.
    """
    n = len(keys)
    first_keys: list = []
    slopes: list = []
    starts: list = []
    if n == 0:
        return first_keys, slopes, starts
    eps = float(epsilon)
    x0 = keys[0]
    y0 = 0
    slope_lo = 0.0
    slope_hi = float("inf")
    starts.append(0)
    first_keys.append(x0)
    for i in range(1, n):
        dx = float(keys[i] - x0)
        dy = float(i - y0)
        hi = (dy + eps) / dx
        lo = (dy - eps) / dx
        new_lo = lo if lo > slope_lo else slope_lo
        new_hi = hi if hi < slope_hi else slope_hi
        if new_lo > new_hi:
            slopes.append(_cone_slope(slope_lo, slope_hi))
            x0 = keys[i]
            y0 = i
            slope_lo = 0.0
            slope_hi = float("inf")
            starts.append(i)
            first_keys.append(x0)
        else:
            slope_lo = new_lo
            slope_hi = new_hi
    slopes.append(_cone_slope(slope_lo, slope_hi))
    return first_keys, slopes, starts


def _cone_slope(slope_lo: float, slope_hi: float) -> float:
    """The representative slope of a closed cone (midpoint; 0 for a point)."""
    if slope_hi == float("inf"):
        # Single-point segment: any slope fits; 0 keeps predictions pinned.
        return 0.0
    return (slope_lo + slope_hi) / 2.0


def pla_predict_many(first_keys, slopes, starts, keys):
    """Predicted data-layer position per query key, one ``int`` per key.

    ``first_keys``/``slopes``/``starts`` are the columns produced by
    :func:`pla_fit_segments`. Keys below the first segment clamp to segment
    0. Predictions are raw (not clamped to the data bounds) — the caller
    owns clamping and the epsilon search window.
    """
    from bisect import bisect_right

    out = []
    for key in keys:
        seg = bisect_right(first_keys, key) - 1
        if seg < 0:
            seg = 0
        out.append(starts[seg] + int(slopes[seg] * float(key - first_keys[seg])))
    return out


# ----------------------------------------------------------------------
# delta-compressed key columns (compressed leaf pages / rebuild runs)
# ----------------------------------------------------------------------
def delta_pack(keys: Sequence[int]) -> Tuple[int, int, bytes]:
    """Delta-encode an int64 key column: ``(anchor, width, packed)``.

    ``anchor`` is the first key; the remaining ``len(keys) - 1`` keys are
    stored as successive differences reduced mod 2**64 and bit-packed at a
    uniform ``width`` (the widest delta's bit length), LSB-first into a
    little-endian byte string — bit ``j`` of delta ``i`` lands at overall
    bit position ``i*width + j``, i.e. byte ``(i*width + j) >> 3``, bit
    ``(i*width + j) & 7``.

    Sorted columns produce small deltas and therefore small widths; the
    mod-2**64 reduction makes the encoding *correct* for any int64 column
    (a descending pair wraps to a ~64-bit delta — no compression, never
    corruption). ``width == 0`` means every key equals the anchor.
    """
    n = len(keys)
    if n == 0:
        return 0, 0, b""
    anchor = keys[0]
    if n == 1:
        return anchor, 0, b""
    width = 0
    deltas: List[int] = []
    previous = anchor
    for key in keys[1:]:
        delta = (key - previous) & _MASK64
        deltas.append(delta)
        bits = delta.bit_length()
        if bits > width:
            width = bits
        previous = key
    if width == 0:
        return anchor, 0, b""
    accumulator = 0
    shift = 0
    for delta in deltas:
        accumulator |= delta << shift
        shift += width
    return anchor, width, accumulator.to_bytes((shift + 7) // 8, "little")


def delta_unpack(anchor: int, width: int, count: int, packed: bytes) -> List[int]:
    """Inverse of :func:`delta_pack`: the original int64 key column.

    ``count`` is the total number of keys including the anchor. All
    arithmetic happens in the unsigned mod-2**64 domain and is folded back
    to signed int64 at the end, matching the encoder's reduction.
    """
    if count <= 0:
        return []
    if width == 0:
        return [anchor] * count
    accumulator = int.from_bytes(packed, "little")
    mask = (1 << width) - 1
    keys = [anchor]
    unsigned = anchor & _MASK64
    shift = 0
    for _ in range(count - 1):
        unsigned = (unsigned + ((accumulator >> shift) & mask)) & _MASK64
        shift += width
        keys.append(unsigned - (1 << 64) if unsigned >= (1 << 63) else unsigned)
    return keys
