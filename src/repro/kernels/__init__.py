"""``repro.kernels`` — backend dispatch for vectorized hot-path kernels.

The library's hot paths (Bloom probe generation, buffer tail sorting and
merging, sortedness metrics, B+-tree batch pre-passes) are expressed as
*kernels*: small data-parallel functions with two interchangeable
implementations —

* :mod:`repro.kernels.python_kernels` — pure Python, always available, the
  semantic reference;
* :mod:`repro.kernels.numpy_kernels` — NumPy-vectorized, used automatically
  when ``numpy`` is importable.

NumPy is an *optional* extra (``pip install repro[fast]``), never a hard
dependency. Backend selection, in precedence order:

1. :func:`set_backend` / :func:`use_backend` (tests, benchmarks);
2. the ``REPRO_KERNELS`` environment variable (``python`` or ``numpy``);
3. auto: numpy if importable, else python.

Forcing ``numpy`` when it is not importable raises
:class:`~repro.errors.ConfigError` at the first kernel call rather than
silently degrading, so CI backend matrices cannot lie.

Both backends return bit-identical results (Bloom bit patterns, stable sort
orders, metric values); ``tests/test_kernels_equivalence.py`` pins that
contract. Cost-model charges never live in kernels — meters bill the
*algorithm* of the paper, not the implementation, so simulated costs are
identical under either backend.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional

from repro.errors import ConfigError
from repro.kernels import python_kernels as _python_kernels

__all__ = [
    "active_backend",
    "backend_info",
    "numpy_available",
    "set_backend",
    "use_backend",
    # kernels
    "shared_bases",
    "splitmix64_many",
    "murmur3_64_many",
    "bloom_add_many",
    "bloom_contains_many",
    "popcount_bytes",
    "nondecreasing_prefix_len",
    "sort_tail_entries",
    "merge_entry_streams",
    "key_column",
    "searchsorted_range",
    "sort_items_by_key",
    "keys_strictly_increasing",
    "dedup_sorted_items",
    "longest_nondecreasing_subsequence_length",
    "count_out_of_order",
    "max_displacement",
    "count_inversions",
    "count_runs",
]

_BACKENDS = ("python", "numpy")
_UNRESOLVED = object()
_numpy_kernels = _UNRESOLVED  # lazily imported module, or None when absent
_override: Optional[str] = None  # set_backend()/use_backend() selection


def _numpy_module():
    """The numpy kernel module, or None when numpy cannot be imported."""
    global _numpy_kernels
    if _numpy_kernels is _UNRESOLVED:
        try:
            from repro.kernels import numpy_kernels
        except ImportError:
            _numpy_kernels = None
        else:
            _numpy_kernels = numpy_kernels
    return _numpy_kernels


def numpy_available() -> bool:
    """True when the numpy backend can be used in this interpreter."""
    return _numpy_module() is not None


def _requested() -> tuple:
    """(backend name or "auto", where the request came from)."""
    if _override is not None:
        return _override, "set_backend()"
    env = os.environ.get("REPRO_KERNELS", "").strip().lower()
    if env:
        return env, "REPRO_KERNELS"
    return "auto", "auto-detection"


def _impl():
    """Resolve the active kernel module for this call."""
    name, source = _requested()
    if name == "auto":
        module = _numpy_module()
        return module if module is not None else _python_kernels
    if name == "python":
        return _python_kernels
    if name == "numpy":
        module = _numpy_module()
        if module is None:
            raise ConfigError(
                f"{source} requested the numpy kernel backend, "
                "but numpy is not importable (pip install repro[fast])"
            )
        return module
    raise ConfigError(
        f"{source} requested unknown kernel backend {name!r}; "
        f"expected one of {_BACKENDS}"
    )


def active_backend() -> str:
    """Name of the backend the next kernel call will use."""
    return "python" if _impl() is _python_kernels else "numpy"


def set_backend(name: Optional[str]) -> None:
    """Force a backend programmatically; ``None`` restores env/auto selection."""
    global _override
    if name is not None:
        if name not in _BACKENDS:
            raise ConfigError(
                f"unknown kernel backend {name!r}; expected one of {_BACKENDS}"
            )
        if name == "numpy" and _numpy_module() is None:
            raise ConfigError(
                "cannot force the numpy kernel backend: numpy is not importable "
                "(pip install repro[fast])"
            )
    _override = name


@contextmanager
def use_backend(name: Optional[str]):
    """Temporarily force a backend (equivalence tests, benchmarks)."""
    global _override
    previous = _override
    set_backend(name)
    try:
        yield
    finally:
        _override = previous


def backend_info() -> dict:
    """Metadata describing the active backend, for telemetry ``meta`` blocks."""
    info = {"kernel_backend": active_backend(), "numpy_version": None}
    module = _numpy_module()
    if module is not None:
        info["numpy_version"] = module.np.__version__
    return info


# ----------------------------------------------------------------------
# kernel entry points — dispatch resolved per call so use_backend() works
# ----------------------------------------------------------------------
def shared_bases(keys, family="splitmix64", seed=0):
    return _impl().shared_bases(keys, family, seed)


def splitmix64_many(keys, seed=0):
    return _impl().splitmix64_many(keys, seed)


def murmur3_64_many(keys, seed=0):
    return _impl().murmur3_64_many(keys, seed)


def bloom_add_many(bits, bases, n_probes, n_bits, rotation=0):
    return _impl().bloom_add_many(bits, bases, n_probes, n_bits, rotation)


def bloom_contains_many(bits, bases, n_probes, n_bits, rotation=0):
    return _impl().bloom_contains_many(bits, bases, n_probes, n_bits, rotation)


def popcount_bytes(buf):
    return _impl().popcount_bytes(buf)


def nondecreasing_prefix_len(keys, last):
    return _impl().nondecreasing_prefix_len(keys, last)


def sort_tail_entries(entries):
    return _impl().sort_tail_entries(entries)


def merge_entry_streams(streams):
    return _impl().merge_entry_streams(streams)


def key_column(entries):
    return _impl().key_column(entries)


def searchsorted_range(keys, lo, hi):
    return _impl().searchsorted_range(keys, lo, hi)


def sort_items_by_key(items):
    return _impl().sort_items_by_key(items)


def keys_strictly_increasing(batch):
    return _impl().keys_strictly_increasing(batch)


def dedup_sorted_items(batch):
    return _impl().dedup_sorted_items(batch)


def longest_nondecreasing_subsequence_length(keys):
    return _impl().longest_nondecreasing_subsequence_length(keys)


def count_out_of_order(keys):
    return _impl().count_out_of_order(keys)


def max_displacement(keys):
    return _impl().max_displacement(keys)


def count_inversions(keys):
    return _impl().count_inversions(keys)


def count_runs(keys):
    return _impl().count_runs(keys)
