"""``repro.kernels`` — backend dispatch for vectorized hot-path kernels.

The library's hot paths (Bloom probe generation, buffer tail sorting and
merging, sortedness metrics, B+-tree batch pre-passes) are expressed as
*kernels*: small data-parallel functions with two interchangeable
implementations —

* :mod:`repro.kernels.python_kernels` — pure Python, always available, the
  semantic reference;
* :mod:`repro.kernels.numpy_kernels` — NumPy-vectorized, used automatically
  when ``numpy`` is importable.

NumPy is an *optional* extra (``pip install repro[fast]``), never a hard
dependency. Backend selection, in precedence order:

1. :func:`set_backend` / :func:`use_backend` (tests, benchmarks);
2. the ``REPRO_KERNELS`` environment variable (``python`` or ``numpy``);
3. auto: numpy if importable, else python.

Forcing ``numpy`` when it is not importable raises
:class:`~repro.errors.ConfigError` at the first kernel call rather than
silently degrading, so CI backend matrices cannot lie.

Both backends return bit-identical results (Bloom bit patterns, stable sort
orders, metric values); ``tests/test_kernels_equivalence.py`` pins that
contract. Cost-model charges never live in kernels — meters bill the
*algorithm* of the paper, not the implementation, so simulated costs are
identical under either backend.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional

from repro.errors import ConfigError
from repro.kernels import python_kernels as _python_kernels

__all__ = [
    "active_backend",
    "backend_info",
    "backend_module",
    "numpy_available",
    "set_backend",
    "use_backend",
    # kernels
    "shared_bases",
    "splitmix64_many",
    "murmur3_64_many",
    "bloom_add_many",
    "bloom_contains_many",
    "popcount_bytes",
    "nondecreasing_prefix_len",
    "sort_tail_entries",
    "merge_entry_streams",
    "key_column",
    "searchsorted_range",
    "sort_items_by_key",
    "keys_strictly_increasing",
    "dedup_sorted_items",
    "column_strictly_increasing",
    "dedup_sorted_items_col",
    "GAP_SENTINEL",
    "gapped_key_store",
    "store_keys",
    "node_search_left",
    "node_search_right",
    "node_insert_key",
    "node_delete_key",
    "store_truncate",
    "store_extend",
    "merge_positions",
    "merge_insert_keys",
    "partition_runs",
    "leaf_find_positions",
    "concat_stores",
    "probe_positions",
    "leaf_range_bounds",
    "run_end",
    "key_array",
    "longest_nondecreasing_subsequence_length",
    "count_out_of_order",
    "max_displacement",
    "count_inversions",
    "count_runs",
    "pla_fit_segments",
    "pla_predict_many",
    "delta_pack",
    "delta_unpack",
]

_BACKENDS = ("python", "numpy")
_UNRESOLVED = object()
_numpy_kernels = _UNRESOLVED  # lazily imported module, or None when absent
_override: Optional[str] = None  # set_backend()/use_backend() selection


def _numpy_module():
    """The numpy kernel module, or None when numpy cannot be imported."""
    global _numpy_kernels
    if _numpy_kernels is _UNRESOLVED:
        try:
            from repro.kernels import numpy_kernels
        except ImportError:
            _numpy_kernels = None
        else:
            _numpy_kernels = numpy_kernels
    return _numpy_kernels


def numpy_available() -> bool:
    """True when the numpy backend can be used in this interpreter."""
    return _numpy_module() is not None


def _requested() -> tuple:
    """(backend name or "auto", where the request came from)."""
    if _override is not None:
        return _override, "set_backend()"
    env = os.environ.get("REPRO_KERNELS", "").strip().lower()
    if env:
        return env, "REPRO_KERNELS"
    return "auto", "auto-detection"


def _impl():
    """Resolve the active kernel module for this call."""
    name, source = _requested()
    if name == "auto":
        module = _numpy_module()
        return module if module is not None else _python_kernels
    if name == "python":
        return _python_kernels
    if name == "numpy":
        module = _numpy_module()
        if module is None:
            raise ConfigError(
                f"{source} requested the numpy kernel backend, "
                "but numpy is not importable (pip install repro[fast])"
            )
        return module
    raise ConfigError(
        f"{source} requested unknown kernel backend {name!r}; "
        f"expected one of {_BACKENDS}"
    )


def active_backend() -> str:
    """Name of the backend the next kernel call will use."""
    return "python" if _impl() is _python_kernels else "numpy"


def backend_module():
    """The active kernel module itself, for hot loops to hoist.

    The per-call dispatch wrappers below re-resolve the backend on every
    call (so ``use_backend`` works mid-stream), which costs an environment
    lookup each time. Batch entry points that issue thousands of kernel
    calls per invocation resolve once up front instead — the backend cannot
    change in the middle of a single batch operation.
    """
    return _impl()


def set_backend(name: Optional[str]) -> None:
    """Force a backend programmatically; ``None`` restores env/auto selection."""
    global _override
    if name is not None:
        if name not in _BACKENDS:
            raise ConfigError(
                f"unknown kernel backend {name!r}; expected one of {_BACKENDS}"
            )
        if name == "numpy" and _numpy_module() is None:
            raise ConfigError(
                "cannot force the numpy kernel backend: numpy is not importable "
                "(pip install repro[fast])"
            )
    _override = name


@contextmanager
def use_backend(name: Optional[str]):
    """Temporarily force a backend (equivalence tests, benchmarks)."""
    global _override
    previous = _override
    set_backend(name)
    try:
        yield
    finally:
        _override = previous


def backend_info() -> dict:
    """Metadata describing the active backend, for telemetry ``meta`` blocks."""
    info = {"kernel_backend": active_backend(), "numpy_version": None}
    module = _numpy_module()
    if module is not None:
        info["numpy_version"] = module.np.__version__
    return info


# ----------------------------------------------------------------------
# kernel entry points — dispatch resolved per call so use_backend() works
# ----------------------------------------------------------------------
def shared_bases(keys, family="splitmix64", seed=0):
    return _impl().shared_bases(keys, family, seed)


def splitmix64_many(keys, seed=0):
    return _impl().splitmix64_many(keys, seed)


def murmur3_64_many(keys, seed=0):
    return _impl().murmur3_64_many(keys, seed)


def bloom_add_many(bits, bases, n_probes, n_bits, rotation=0):
    return _impl().bloom_add_many(bits, bases, n_probes, n_bits, rotation)


def bloom_contains_many(bits, bases, n_probes, n_bits, rotation=0):
    return _impl().bloom_contains_many(bits, bases, n_probes, n_bits, rotation)


def popcount_bytes(buf):
    return _impl().popcount_bytes(buf)


def nondecreasing_prefix_len(keys, last):
    return _impl().nondecreasing_prefix_len(keys, last)


def sort_tail_entries(entries):
    return _impl().sort_tail_entries(entries)


def merge_entry_streams(streams):
    return _impl().merge_entry_streams(streams)


def key_column(entries):
    return _impl().key_column(entries)


def searchsorted_range(keys, lo, hi):
    return _impl().searchsorted_range(keys, lo, hi)


def sort_items_by_key(items):
    return _impl().sort_items_by_key(items)


def keys_strictly_increasing(batch):
    return _impl().keys_strictly_increasing(batch)


def dedup_sorted_items(batch):
    return _impl().dedup_sorted_items(batch)


def column_strictly_increasing(col):
    return _impl().column_strictly_increasing(col)


def dedup_sorted_items_col(batch, col):
    return _impl().dedup_sorted_items_col(batch, col)


# -- gapped node layout (BS-tree direction) ----------------------------
#: Sentinel marking a gap slot in an array-backed key store (INT64_MAX).
GAP_SENTINEL = _python_kernels.GAP_SENTINEL


def gapped_key_store(keys, physical):
    return _impl().gapped_key_store(keys, physical)


def store_keys(store, n):
    return _impl().store_keys(store, n)


def node_search_left(store, n, key):
    return _impl().node_search_left(store, n, key)


def node_search_right(store, n, key):
    return _impl().node_search_right(store, n, key)


def node_insert_key(store, n, idx, key):
    return _impl().node_insert_key(store, n, idx, key)


def node_delete_key(store, n, idx):
    return _impl().node_delete_key(store, n, idx)


def store_truncate(store, n_old, n_new):
    return _impl().store_truncate(store, n_old, n_new)


def store_extend(store, n, chunk):
    return _impl().store_extend(store, n, chunk)


def merge_positions(store, n, run_keys):
    return _impl().merge_positions(store, n, run_keys)


def merge_insert_keys(store, n, col, i, j, positions, physical):
    return _impl().merge_insert_keys(store, n, col, i, j, positions, physical)


def partition_runs(store, n, keys, lo, hi):
    return _impl().partition_runs(store, n, keys, lo, hi)


def leaf_find_positions(store, n, keys, lo, hi):
    return _impl().leaf_find_positions(store, n, keys, lo, hi)


def concat_stores(stores, ns):
    return _impl().concat_stores(stores, ns)


def probe_positions(combined, total, offsets, col, m):
    return _impl().probe_positions(combined, total, offsets, col, m)


def leaf_range_bounds(store, n, lo, hi):
    return _impl().leaf_range_bounds(store, n, lo, hi)


def run_end(keys, i, bound, nb):
    return _impl().run_end(keys, i, bound, nb)


def key_array(keys):
    return _impl().key_array(keys)


def longest_nondecreasing_subsequence_length(keys):
    return _impl().longest_nondecreasing_subsequence_length(keys)


def count_out_of_order(keys):
    return _impl().count_out_of_order(keys)


def max_displacement(keys):
    return _impl().max_displacement(keys)


def count_inversions(keys):
    return _impl().count_inversions(keys)


def count_runs(keys):
    return _impl().count_runs(keys)


def pla_fit_segments(keys, epsilon):
    return _impl().pla_fit_segments(keys, epsilon)


def pla_predict_many(first_keys, slopes, starts, keys):
    return _impl().pla_predict_many(first_keys, slopes, starts, keys)


def delta_pack(keys):
    return _impl().delta_pack(keys)


def delta_unpack(anchor, width, count, packed):
    return _impl().delta_unpack(anchor, width, count, packed)
