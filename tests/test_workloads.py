"""Tests for workload specs and the synthetic TPC-H generator."""

import pytest

from repro.sortedness.metrics import measure_sortedness
from repro.workloads.spec import (
    INSERT,
    LOOKUP,
    MixedWorkloadSpec,
    RawWorkloadSpec,
    recent_lookup_operations,
    value_for,
)
from repro.workloads.tpch import (
    generate_lineitem_dates,
    high_l_low_k_keys,
    receiptdate_keys,
    sorted_by_shipdate,
)


class TestMixedWorkload:
    def test_preload_then_interleave(self):
        spec = MixedWorkloadSpec(keys=tuple(range(100)), read_fraction=0.5)
        ops = spec.materialize()
        # First 80 ops are the preload inserts, in arrival order.
        assert all(op[0] == INSERT for op in ops[:80])
        assert [op[1] for op in ops[:80]] == list(range(80))
        tail = ops[80:]
        inserts = [op for op in tail if op[0] == INSERT]
        lookups = [op for op in tail if op[0] == LOOKUP]
        assert len(inserts) == 20
        assert len(lookups) == 20  # 50:50 over the interleaved phase

    def test_read_ratio_respected(self):
        spec = MixedWorkloadSpec(keys=tuple(range(1000)), read_fraction=0.75)
        tail = spec.materialize()[800:]
        lookups = sum(1 for op in tail if op[0] == LOOKUP)
        inserts = sum(1 for op in tail if op[0] == INSERT)
        assert inserts == 200
        assert lookups == pytest.approx(600, abs=2)

    def test_every_insert_appears_once(self):
        spec = MixedWorkloadSpec(keys=tuple(range(200)), read_fraction=0.3)
        inserted = [op[1] for op in spec.operations() if op[0] == INSERT]
        assert sorted(inserted) == list(range(200))

    def test_lookups_are_non_empty(self):
        """Lookups only target keys that have already been ingested."""
        spec = MixedWorkloadSpec(keys=tuple(range(100)), read_fraction=0.6, seed=3)
        ingested = set()
        for op, key, _ in spec.materialize():
            if op == INSERT:
                ingested.add(key)
            else:
                assert key in ingested

    def test_max_reads_cap(self):
        spec = MixedWorkloadSpec(
            keys=tuple(range(100)), read_fraction=0.9, max_reads=10
        )
        lookups = sum(1 for op in spec.operations() if op[0] == LOOKUP)
        assert lookups == 10

    def test_deterministic_by_seed(self):
        a = MixedWorkloadSpec(keys=tuple(range(50)), read_fraction=0.5, seed=1)
        b = MixedWorkloadSpec(keys=tuple(range(50)), read_fraction=0.5, seed=1)
        assert a.materialize() == b.materialize()

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            MixedWorkloadSpec(keys=(1,), read_fraction=1.0)
        with pytest.raises(ValueError):
            MixedWorkloadSpec(keys=(1,), read_fraction=0.5, preload_fraction=2.0)

    def test_value_payload_deterministic(self):
        assert value_for(21) == 43


class TestRawWorkload:
    def test_ingest_covers_all_keys(self):
        spec = RawWorkloadSpec(keys=tuple(range(50)))
        ops = list(spec.ingest_operations())
        assert [op[1] for op in ops] == list(range(50))

    def test_lookup_count(self):
        spec = RawWorkloadSpec(keys=tuple(range(50)), n_lookups=17)
        assert len(list(spec.lookup_operations())) == 17

    def test_range_width_from_selectivity(self):
        spec = RawWorkloadSpec(
            keys=tuple(range(1000)), n_ranges=5, range_selectivity=0.1
        )
        for _, lo, hi in spec.range_operations():
            assert hi - lo == 99  # 10% of the 999-wide domain

    def test_no_ranges_when_zero(self):
        spec = RawWorkloadSpec(keys=tuple(range(10)))
        assert list(spec.range_operations()) == []


class TestRecentLookups:
    def test_window_targeting(self):
        keys = list(range(100))
        ops = recent_lookup_operations(keys, 50, window=10, seed=1)
        assert all(90 <= key <= 99 for _, key, _ in ops)

    def test_offset_shifts_window(self):
        keys = list(range(100))
        ops = recent_lookup_operations(keys, 50, window=10, offset=20, seed=1)
        assert all(70 <= key <= 79 for _, key, _ in ops)

    def test_mixed_fraction(self):
        keys = list(range(1000))
        ops = recent_lookup_operations(
            keys, 400, window=10, seed=2, recent_fraction=0.5
        )
        recent_hits = sum(1 for _, key, _ in ops if key >= 990)
        assert 120 < recent_hits < 280


class TestTPCH:
    def test_date_derivation_rules(self):
        dates = generate_lineitem_dates(500, seed=1)
        for i in range(500):
            assert 1 <= dates.shipdate[i] - dates.orderdate[i] <= 121
            assert 30 <= dates.commitdate[i] - dates.orderdate[i] <= 90
            assert 1 <= dates.receiptdate[i] - dates.shipdate[i] <= 30

    def test_sort_by_shipdate_keeps_rows_together(self):
        dates = sorted_by_shipdate(generate_lineitem_dates(300, seed=2))
        assert dates.shipdate == sorted(dates.shipdate)
        for i in range(300):
            assert 1 <= dates.receiptdate[i] - dates.shipdate[i] <= 30

    def test_receiptdate_near_sorted_phenomenon(self):
        """The paper's §V-H observation: shipdate-sorted data leaves
        receiptdate with very high K but small L."""
        keys = receiptdate_keys(4000, seed=3)
        report = measure_sortedness(keys)
        assert report.k_fraction > 0.5  # paper: 96.67%
        assert report.l_fraction < 0.10  # paper: 0.1% (density-dependent)
        assert report.l_fraction < report.k_fraction / 5

    def test_receiptdate_keys_unique(self):
        keys = receiptdate_keys(2000, seed=4)
        assert len(set(keys)) == len(keys)

    def test_high_l_low_k(self):
        report = measure_sortedness(high_l_low_k_keys(3000, seed=5))
        assert report.k_fraction < 0.12  # target 5%
        assert report.l_fraction > 0.5  # target 95%
