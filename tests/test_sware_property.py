"""Property-based tests for the full sortedness-aware index."""

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.config import SWAREConfig
from repro.core.factory import make_sa_btree


def build_index(capacity=32, page_size=4, **overrides):
    return make_sa_btree(
        SWAREConfig(buffer_capacity=capacity, page_size=page_size, **overrides),
        leaf_capacity=4,
        internal_capacity=4,
    )


@given(
    keys=st.lists(st.integers(min_value=0, max_value=500), max_size=400),
    capacity=st.sampled_from([8, 16, 64, 256]),
)
@settings(max_examples=80, deadline=None)
def test_flush_timing_invariance(keys, capacity):
    """The visible contents never depend on the buffer capacity (and hence
    on when flushes happen) — SWARE is purely an ingestion accelerator."""
    index = build_index(capacity=capacity, page_size=4)
    reference = {}
    for step, key in enumerate(keys):
        index.insert(key, (key, step))
        reference[key] = (key, step)
    lo, hi = (min(keys), max(keys)) if keys else (0, 0)
    assert index.range_query(lo, hi) == sorted(reference.items())


@given(
    operations=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete"]),
            st.integers(min_value=0, max_value=100),
        ),
        max_size=250,
    )
)
@settings(max_examples=80, deadline=None)
def test_delete_insert_interleaving(operations):
    """Tombstones and re-inserts resolve to exactly the dict semantics,
    whether they sit in the buffer, flush together, or straddle flushes."""
    index = build_index(capacity=16, page_size=4)
    reference = {}
    for step, (op, key) in enumerate(operations):
        if op == "insert":
            index.insert(key, step)
            reference[key] = step
        else:
            index.delete(key)
            reference.pop(key, None)
    for key in range(101):
        assert index.get(key) == reference.get(key)
    index.flush_all()
    assert dict(index.backend.iter_items()) == reference


@given(
    keys=st.lists(
        st.integers(min_value=0, max_value=300), min_size=1, max_size=200
    ),
    threshold=st.sampled_from([0.05, 0.25, 1.0]),
)
@settings(max_examples=60, deadline=None)
def test_query_sorting_transparent(keys, threshold):
    """Query-driven sorting must never change what a query returns."""
    with_qs = build_index(capacity=32, page_size=4, query_sorting_threshold=threshold)
    without = build_index(capacity=32, page_size=4, query_sorting_threshold=1.0)
    for step, key in enumerate(keys):
        with_qs.insert(key, step)
        without.insert(key, step)
        if step % 7 == 0:  # interleave reads to trigger query sorting
            assert with_qs.get(key) == without.get(key)
    for key in set(keys):
        assert with_qs.get(key) == without.get(key)


class SAIndexMachine(RuleBasedStateMachine):
    """Stateful fuzzing of the SA B+-tree with invariant checks."""

    def __init__(self):
        super().__init__()
        self.index = build_index(capacity=16, page_size=4)
        self.model = {}
        self.step = 0

    @rule(key=st.integers(min_value=0, max_value=60))
    def insert(self, key):
        self.step += 1
        self.index.insert(key, self.step)
        self.model[key] = self.step

    @rule(key=st.integers(min_value=0, max_value=60))
    def delete(self, key):
        self.index.delete(key)
        self.model.pop(key, None)

    @rule(key=st.integers(min_value=-5, max_value=65))
    def get(self, key):
        assert self.index.get(key) == self.model.get(key)

    @rule(lo=st.integers(min_value=-5, max_value=65), width=st.integers(0, 30))
    def range(self, lo, width):
        expected = sorted(
            (k, v) for k, v in self.model.items() if lo <= k <= lo + width
        )
        assert self.index.range_query(lo, lo + width) == expected

    @rule()
    def flush_all(self):
        self.index.flush_all()

    @invariant()
    def structures_hold(self):
        self.index.backend.check_invariants()
        self.index.buffer.check_invariants()


from hypothesis import settings as hyp_settings  # noqa: E402

TestSAIndexStateful = SAIndexMachine.TestCase
TestSAIndexStateful.settings = hyp_settings(
    max_examples=25, deadline=None, stateful_step_count=50
)
