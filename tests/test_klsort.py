"""Tests for the (K,L)-adaptive sorting algorithm."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KLSortCapacityError
from repro.sortedness.generator import generate_kl_keys
from repro.sortedness.klsort import KLSortStats, kl_sort, kl_sort_or_fallback


class TestCorrectness:
    def test_empty(self):
        assert kl_sort([]) == []

    def test_already_sorted(self):
        data = list(range(100))
        stats = KLSortStats()
        assert kl_sort(data, stats=stats) == data
        assert stats.outliers == 0

    def test_reverse_sorted(self):
        data = list(range(100, 0, -1))
        assert kl_sort(data) == sorted(data)

    def test_single_spike_backtrack(self):
        # One huge early element must not poison the spine.
        data = [1000] + list(range(50))
        stats = KLSortStats()
        assert kl_sort(data, stats=stats) == sorted(data)
        assert stats.outliers == 1
        assert stats.backtracks == 1

    def test_near_sorted_has_few_outliers(self):
        data = generate_kl_keys(5000, 0.05, 0.02, seed=3)
        stats = KLSortStats()
        assert kl_sort(data, stats=stats) == sorted(data)
        # O(K)-ish outliers for a (K,L)-near sorted input.
        assert stats.outliers <= int(0.15 * len(data))

    @given(st.lists(st.integers(min_value=-10_000, max_value=10_000), max_size=400))
    @settings(max_examples=120, deadline=None)
    def test_matches_sorted(self, data):
        assert kl_sort(data) == sorted(data)

    @given(st.lists(st.integers(min_value=0, max_value=30), max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_stability_for_duplicates(self, data):
        tagged = [(value, position) for position, value in enumerate(data)]
        result = kl_sort(tagged, key=lambda pair: pair[0])
        assert result == sorted(tagged, key=lambda pair: pair[0])
        # sorted() is stable, so matching it proves our stability too.


class TestKeyExtraction:
    def test_key_function(self):
        data = [{"k": 3}, {"k": 1}, {"k": 2}]
        result = kl_sort(data, key=lambda d: d["k"])
        assert [d["k"] for d in result] == [1, 2, 3]


class TestCapacityBound:
    def test_capacity_exceeded_raises(self):
        scrambled = list(range(500, 0, -1))
        with pytest.raises(KLSortCapacityError):
            kl_sort(scrambled, capacity=10)

    def test_capacity_sufficient_succeeds(self):
        data = generate_kl_keys(1000, 0.02, 0.01, seed=1)
        assert kl_sort(data, capacity=200) == sorted(data)

    def test_fallback_on_overflow(self):
        scrambled = list(range(500, 0, -1))
        result, algorithm = kl_sort_or_fallback(scrambled, capacity=10)
        assert algorithm == "stable"
        assert result == sorted(scrambled)

    def test_fallback_not_taken_when_fits(self):
        data = generate_kl_keys(1000, 0.02, 0.01, seed=1)
        result, algorithm = kl_sort_or_fallback(data, capacity=400)
        assert algorithm == "kl"
        assert result == sorted(data)

    def test_fallback_preserves_key_function(self):
        data = [(v,) for v in range(50, 0, -1)]
        result, algorithm = kl_sort_or_fallback(data, key=lambda t: t[0], capacity=2)
        assert algorithm == "stable"
        assert result == sorted(data)


class TestComplexityCharacter:
    def test_work_scales_with_disorder_not_n(self):
        """For fixed disorder, outliers stay O(K) as N grows."""
        small = KLSortStats()
        large = KLSortStats()
        kl_sort(generate_kl_keys(2000, 0.05, 0.02, seed=5), stats=small)
        kl_sort(generate_kl_keys(8000, 0.05, 0.02, seed=5), stats=large)
        # Outlier *fraction* should not blow up with N.
        assert large.outliers / 8000 < (small.outliers / 2000) * 2 + 0.05
