"""Wire-protocol unit tests: framing, CRC, payload codecs, stream reads."""

import asyncio

import pytest

from repro.net import protocol as p


class TestFrameCodec:
    def test_roundtrip_empty_payload(self):
        frame = p.encode_frame(p.OP_STATS, 7)
        opcode, request_id, length, crc = p.decode_header(frame[: p.HEADER.size])
        assert (opcode, request_id, length) == (p.OP_STATS, 7, 0)
        p.check_payload(opcode, request_id, b"", crc)

    def test_roundtrip_with_payload(self):
        payload = p.encode_put(42, {"nested": [1, 2]})
        frame = p.encode_frame(p.OP_PUT, 99, payload)
        opcode, request_id, length, crc = p.decode_header(frame[: p.HEADER.size])
        body = frame[p.HEADER.size :]
        assert length == len(body)
        p.check_payload(opcode, request_id, body, crc)
        assert p.decode_put(body) == (42, {"nested": [1, 2]})

    def test_bad_magic_rejected(self):
        frame = bytearray(p.encode_frame(p.OP_GET, 1, p.encode_key(5)))
        frame[0] ^= 0xFF
        with pytest.raises(p.ProtocolError, match="magic"):
            p.decode_header(bytes(frame[: p.HEADER.size]))

    def test_unknown_opcode_rejected(self):
        frame = p.HEADER.pack(p.WIRE_MAGIC, 0x55, 0, 1, 0, 0)
        with pytest.raises(p.ProtocolError, match="opcode"):
            p.decode_header(frame)

    def test_flipped_payload_bit_fails_crc(self):
        payload = bytearray(p.encode_key(1234))
        frame = p.encode_frame(p.OP_GET, 3, bytes(payload))
        opcode, request_id, _length, crc = p.decode_header(frame[: p.HEADER.size])
        corrupt = bytearray(frame[p.HEADER.size :])
        corrupt[2] ^= 0x01
        with pytest.raises(p.ProtocolError, match="checksum"):
            p.check_payload(opcode, request_id, bytes(corrupt), crc)

    def test_oversized_length_rejected_before_allocation(self):
        frame = p.HEADER.pack(p.WIRE_MAGIC, p.OP_PUT, 0, 1, p.MAX_PAYLOAD + 1, 0)
        with pytest.raises(p.ProtocolError, match="cap"):
            p.decode_header(frame)

    def test_nonzero_flags_rejected(self):
        frame = p.HEADER.pack(p.WIRE_MAGIC, p.OP_GET, 1, 1, 0, 0)
        with pytest.raises(p.ProtocolError, match="flags"):
            p.decode_header(frame)


class TestPayloadCodecs:
    def test_key_roundtrip_negative(self):
        assert p.decode_key(p.encode_key(-(1 << 62))) == -(1 << 62)

    def test_key_wrong_size(self):
        with pytest.raises(p.ProtocolError):
            p.decode_key(b"\x00" * 7)

    def test_range_roundtrip(self):
        assert p.decode_range(p.encode_range(-5, 10**12)) == (-5, 10**12)

    def test_put_many_roundtrip(self):
        items = [(1, "a"), (-2, None), (3, b"\x00" * 100), (4, [1, [2]])]
        assert p.decode_put_many(p.encode_put_many(items)) == items
        assert p.decode_put_many(p.encode_put_many([])) == []

    def test_put_many_trailing_bytes_rejected(self):
        blob = p.encode_put_many([(1, "a")]) + b"\x00"
        with pytest.raises(p.ProtocolError, match="trailing"):
            p.decode_put_many(blob)

    def test_put_many_truncated_value_rejected(self):
        blob = p.encode_put_many([(1, "abcdef")])
        with pytest.raises(p.ProtocolError, match="truncated"):
            p.decode_put_many(blob[:-3])

    def test_get_many_roundtrip(self):
        keys = [0, -1, 1 << 40]
        assert p.decode_get_many(p.encode_get_many(keys)) == keys

    def test_get_many_length_mismatch(self):
        blob = p.encode_get_many([1, 2, 3])
        with pytest.raises(p.ProtocolError, match="mismatch"):
            p.decode_get_many(blob[:-1])

    def test_error_roundtrip(self):
        assert p.decode_error(p.encode_error("boom")) == "boom"


def _feed_reader(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


class TestReadFrame:
    def test_reads_back_to_back_frames(self):
        async def run():
            stream = _feed_reader(
                p.encode_frame(p.OP_PUT, 1, p.encode_put(1, "x"))
                + p.encode_frame(p.OP_GET, 2, p.encode_key(1))
            )
            first = await p.read_frame(stream)
            second = await p.read_frame(stream)
            third = await p.read_frame(stream)
            return first, second, third

        (op1, rid1, _), (op2, rid2, _), eof = asyncio.run(run())
        assert (op1, rid1) == (p.OP_PUT, 1)
        assert (op2, rid2) == (p.OP_GET, 2)
        assert eof is None  # clean EOF at a frame boundary

    @pytest.mark.parametrize("cut", [1, p.HEADER.size - 1, p.HEADER.size + 2])
    def test_torn_frame_raises(self, cut):
        frame = p.encode_frame(p.OP_PUT, 9, p.encode_put(5, "value"))
        assert cut < len(frame)

        async def run():
            await p.read_frame(_feed_reader(frame[:cut]))

        with pytest.raises(p.ProtocolError, match="closed mid"):
            asyncio.run(run())

    def test_corrupt_crc_on_stream(self):
        frame = bytearray(p.encode_frame(p.OP_PUT, 9, p.encode_put(5, "value")))
        frame[-1] ^= 0x01  # flip a payload bit; header CRC now disagrees

        async def run():
            await p.read_frame(_feed_reader(bytes(frame)))

        with pytest.raises(p.ProtocolError, match="checksum"):
            asyncio.run(run())
