"""Tests for the binary page format and tree (de)serialization."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.pages import (
    KIND_INTERNAL,
    KIND_LEAF,
    KIND_RUN,
    PageCorruptionError,
    decode_internal,
    decode_leaf,
    decode_run,
    deserialize_btree,
    encode_internal,
    encode_leaf,
    encode_run,
    page_kind,
    serialize_btree,
)


class TestLeafPages:
    def test_roundtrip(self):
        keys = [1, 5, 9]
        values = ["a", {"x": 2}, None]
        data = encode_leaf(keys, values)
        assert page_kind(data) == KIND_LEAF
        assert decode_leaf(data) == (keys, values)

    def test_empty_leaf(self):
        assert decode_leaf(encode_leaf([], [])) == ([], [])

    def test_negative_and_large_keys(self):
        keys = [-(2**62), 0, 2**62]
        data = encode_leaf(keys, keys)
        assert decode_leaf(data)[0] == keys

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            encode_leaf([1], [])

    @given(
        keys=st.lists(st.integers(min_value=-(2**62), max_value=2**62), max_size=64)
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, keys):
        values = [key * 3 for key in keys]
        assert decode_leaf(encode_leaf(keys, values)) == (keys, values)


class TestInternalPages:
    def test_roundtrip(self):
        data = encode_internal([10, 20], [1, 2, 3])
        assert page_kind(data) == KIND_INTERNAL
        assert decode_internal(data) == ([10, 20], [1, 2, 3])

    def test_child_count_enforced(self):
        with pytest.raises(ValueError):
            encode_internal([10], [1])


class TestRunPages:
    def test_roundtrip_with_tombstones(self):
        entries = [(1, 10, "a", False), (2, 11, None, True), (5, 12, [1, 2], False)]
        data = encode_run(entries)
        assert page_kind(data) == KIND_RUN
        assert decode_run(data) == entries

    def test_empty_run(self):
        assert decode_run(encode_run([])) == []


class TestCorruptionDetection:
    def test_bit_flip_detected(self):
        data = bytearray(encode_leaf([1, 2, 3], ["a", "b", "c"]))
        data[20] ^= 0xFF  # flip a byte in the body
        with pytest.raises(PageCorruptionError):
            decode_leaf(bytes(data))

    def test_truncation_detected(self):
        data = encode_leaf([1, 2, 3], ["a", "b", "c"])
        with pytest.raises(PageCorruptionError):
            decode_leaf(data[: len(data) - 4])

    def test_bad_magic(self):
        with pytest.raises(PageCorruptionError):
            decode_leaf(b"\x00" * 32)

    def test_kind_confusion_detected(self):
        leaf = encode_leaf([1], ["x"])
        with pytest.raises(PageCorruptionError):
            decode_internal(leaf)

    def test_short_page(self):
        with pytest.raises(PageCorruptionError):
            page_kind(b"\x01")


class TestTreeSerialization:
    def _populated_tree(self, n=500, seed=3):
        from repro.btree.btree import BPlusTree, BPlusTreeConfig

        tree = BPlusTree(BPlusTreeConfig(leaf_capacity=8, internal_capacity=8))
        keys = list(range(n))
        random.Random(seed).shuffle(keys)
        for key in keys:
            tree.insert(key, f"v{key}")
        return tree

    def test_roundtrip_preserves_contents(self):
        tree = self._populated_tree()
        restored = deserialize_btree(serialize_btree(tree))
        restored.check_invariants()
        assert list(restored.iter_items()) == list(tree.iter_items())
        assert restored.height == tree.height
        assert restored.max_key == tree.max_key

    def test_restored_tree_is_usable(self):
        tree = self._populated_tree(n=200)
        restored = deserialize_btree(serialize_btree(tree))
        restored.insert(10_000, "new")
        assert restored.get(10_000) == "new"
        assert restored.get(50) == "v50"
        restored.delete(50)
        assert restored.get(50) is None
        restored.bulk_load_append([(20_000 + i, i) for i in range(50)])
        restored.check_invariants()

    def test_empty_tree_roundtrip(self):
        from repro.btree.btree import BPlusTree

        tree = BPlusTree()
        restored = deserialize_btree(serialize_btree(tree))
        assert restored.get(1) is None
        restored.insert(1, "x")
        assert restored.get(1) == "x"

    def test_corrupted_page_surfaces_on_load(self):
        tree = self._populated_tree(n=100)
        blob = serialize_btree(tree)
        victim = next(iter(blob["pages"]))
        page = bytearray(blob["pages"][victim])
        page[-1] ^= 0x55
        blob["pages"][victim] = bytes(page)
        with pytest.raises(PageCorruptionError):
            deserialize_btree(blob)
