"""Tests for repro.search.interpolation."""

from bisect import bisect_right

import pytest
from hypothesis import given, settings, strategies as st

from repro.search.interpolation import (
    binary_search_rightmost,
    exponential_search_rightmost,
    interpolation_search,
    lower_bound,
    upper_bound,
)

SEARCHERS = [
    binary_search_rightmost,
    interpolation_search,
    exponential_search_rightmost,
]


def rightmost_index(keys, target):
    """Reference: index of the rightmost occurrence, or -1."""
    idx = bisect_right(keys, target) - 1
    return idx if idx >= 0 and keys[idx] == target else -1


@pytest.mark.parametrize("search", SEARCHERS)
class TestAgainstReference:
    def test_empty(self, search):
        assert search([], 5) == -1

    def test_single_hit(self, search):
        assert search([5], 5) == 0

    def test_single_miss(self, search):
        assert search([5], 4) == -1
        assert search([5], 6) == -1

    def test_duplicates_rightmost(self, search):
        keys = [1, 2, 2, 2, 3]
        assert search(keys, 2) == 3

    def test_all_equal(self, search):
        assert search([7] * 10, 7) == 9
        assert search([7] * 10, 6) == -1

    def test_sub_range(self, search):
        keys = [0, 10, 20, 30, 40, 50]
        assert search(keys, 10, lo=2, hi=5) == -1
        assert search(keys, 30, lo=2, hi=5) == 3

    @given(
        st.lists(st.integers(min_value=-1000, max_value=1000), max_size=200),
        st.integers(min_value=-1100, max_value=1100),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_bisect(self, search, keys, target):
        keys = sorted(keys)
        assert search(keys, target) == rightmost_index(keys, target)


class TestInterpolationSpecifics:
    def test_uniform_keys_converge_fast(self):
        keys = list(range(0, 100_000, 7))
        steps = []
        interpolation_search(keys, keys[5000], steps=steps)
        assert steps[0] <= 8  # log log n territory

    def test_skewed_distribution_still_correct(self):
        # Exponential skew defeats interpolation's assumption; the binary
        # fallback must still find the rightmost occurrence.
        keys = sorted([2**i for i in range(60)] * 2)
        for target in (1, 2**30, 2**59):
            assert keys[interpolation_search(keys, target)] == target

    def test_out_of_range_early_exit(self):
        keys = [10, 20, 30]
        steps = []
        assert interpolation_search(keys, 5, steps=steps) == -1
        assert steps[0] == 0

    def test_steps_reported(self):
        steps = []
        interpolation_search(list(range(100)), 42, steps=steps)
        assert len(steps) == 1
        assert steps[0] >= 1


class TestExponentialSearch:
    def test_near_front_is_cheap(self):
        keys = list(range(100_000))
        steps = []
        assert exponential_search_rightmost(keys, 3, steps=steps) == 3
        assert steps[0] <= 3  # galloping doubled only a couple of times


class TestBounds:
    def test_lower_upper_bound(self):
        keys = [1, 2, 2, 4]
        assert lower_bound(keys, 2) == 1
        assert upper_bound(keys, 2) == 3
        assert lower_bound(keys, 3) == upper_bound(keys, 3) == 3

    @given(
        st.lists(st.integers(min_value=0, max_value=50), max_size=50),
        st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounds_bracket_all_occurrences(self, keys, target):
        keys = sorted(keys)
        lo = lower_bound(keys, target)
        hi = upper_bound(keys, target)
        assert all(key == target for key in keys[lo:hi])
        assert target not in keys[:lo]
        assert target not in keys[hi:]


class TestDuplicateHeavyAgreement:
    """All three searchers must agree on the *rightmost* occurrence even
    when the list is dominated by long duplicate runs (the regime where a
    probe can land anywhere inside a run and must still walk to its end).
    """

    @given(
        st.lists(st.integers(min_value=0, max_value=8), min_size=1, max_size=120),
        st.integers(min_value=-1, max_value=9),
    )
    @settings(max_examples=200, deadline=None)
    def test_rightmost_agreement(self, keys, target):
        keys = sorted(keys)
        expected = rightmost_index(keys, target)
        for search in SEARCHERS:
            assert search(keys, target) == expected, search.__name__

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=50, deadline=None)
    def test_single_value_run(self, run_length):
        keys = [7] * run_length
        for search in SEARCHERS:
            assert search(keys, 7) == run_length - 1, search.__name__
            assert search(keys, 6) == -1, search.__name__
            assert search(keys, 8) == -1, search.__name__


class TestConstantSliceGuard:
    """Regression pin for the ``lo_key == hi_key`` constant-run guard.

    When the search window degenerates to an all-equal slice *mid-search*
    (not just at the top-level call), the interpolation denominator
    ``hi_key - lo_key`` is zero; the guard must return the window's right
    edge instead of dividing. These tests construct windows that only
    become constant after a probe shrinks them, so a guard that fires only
    on the initial bounds would still divide by zero.
    """

    @given(
        st.integers(min_value=2, max_value=100),  # run length
        st.integers(min_value=0, max_value=30),  # distinct keys on each side
        st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=200, deadline=None)
    def test_plateau_reached_mid_search(self, run, n_left, n_right):
        # A long plateau of ``target`` flanked by distinct keys: probes
        # discard the flanks until the window is the constant run alone.
        target = 1000
        keys = (
            list(range(target - n_left, target))
            + [target] * run
            + list(range(target + 1, target + 1 + n_right))
        )
        expected = rightmost_index(keys, target)
        assert interpolation_search(keys, target) == expected

    @given(
        st.lists(
            st.sampled_from([0, 1, 2**40, 2**40 + 1]), min_size=1, max_size=150
        ),
        st.sampled_from([0, 1, 2, 2**40, 2**40 + 1]),
    )
    @settings(max_examples=200, deadline=None)
    def test_extreme_skew_with_duplicate_runs(self, keys, target):
        # Clustered values separated by a huge gap: interpolation probes
        # collapse onto one cluster (an all-equal sub-slice) immediately.
        keys = sorted(keys)
        assert interpolation_search(keys, target) == rightmost_index(keys, target)

    def test_constant_sub_range_within_mixed_list(self):
        # Explicit lo/hi restriction onto an all-equal slice of a list
        # whose full extent is not constant.
        keys = [1, 5, 5, 5, 5, 9]
        assert interpolation_search(keys, 5, lo=1, hi=5) == 4
        assert interpolation_search(keys, 4, lo=1, hi=5) == -1
        assert interpolation_search(keys, 6, lo=1, hi=5) == -1
