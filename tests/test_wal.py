"""Tests for the write-ahead log: framing, replay, policies, torn tails."""

import os
import threading

import pytest

from repro.errors import WALError
from repro.storage.faults import FaultyEnv
from repro.storage.wal import (
    FSYNC_ALWAYS,
    FSYNC_BATCH,
    FSYNC_NEVER,
    WriteAheadLog,
    replay_wal,
)


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "log.wal")


class TestAppendReplay:
    def test_roundtrip_put_delete(self, path):
        with WriteAheadLog(path) as wal:
            wal.append_put(1, "one")
            wal.append_put(2, {"rich": ["value", 2]})
            wal.append_delete(1)
        replay = replay_wal(path)
        assert replay.ops == [
            ("put", 1, "one"),
            ("put", 2, {"rich": ["value", 2]}),
            ("delete", 1, None),
        ]
        assert replay.records == 3
        assert not replay.torn_tail

    def test_append_puts_batch(self, path):
        items = [(k, k * 10) for k in range(50)]
        with WriteAheadLog(path) as wal:
            lsn = wal.append_puts(items)
        assert lsn == 50
        replay = replay_wal(path)
        assert [(k, v) for _op, k, v in replay.ops] == items

    def test_negative_keys(self, path):
        with WriteAheadLog(path) as wal:
            wal.append_put(-(2**40), "low")
            wal.append_delete(-1)
        replay = replay_wal(path)
        assert replay.ops[0] == ("put", -(2**40), "low")
        assert replay.ops[1] == ("delete", -1, None)

    def test_missing_file_replays_empty(self, tmp_path):
        replay = replay_wal(str(tmp_path / "nope.wal"))
        assert replay.ops == []
        assert not replay.torn_tail

    def test_empty_log_replays_empty(self, path):
        WriteAheadLog(path).close()
        replay = replay_wal(path)
        assert replay.records == 0 and not replay.torn_tail

    def test_lsn_monotonic(self, path):
        with WriteAheadLog(path) as wal:
            assert wal.append_put(1, "a") == 1
            assert wal.append_delete(1) == 2
            assert wal.append_puts([(2, "b"), (3, "c")]) == 4


class TestTornTails:
    def test_garbage_tail_tolerated(self, path):
        with WriteAheadLog(path) as wal:
            wal.append_put(1, "a")
            wal.append_put(2, "b")
        with open(path, "ab") as handle:
            handle.write(os.urandom(37))
        replay = replay_wal(path)
        assert [op[1] for op in replay.ops] == [1, 2]
        assert replay.torn_tail

    def test_truncated_final_frame_dropped(self, path):
        with WriteAheadLog(path) as wal:
            wal.append_put(1, "a")
            wal.append_put(2, "b")
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 3)
        replay = replay_wal(path)
        assert [op[1] for op in replay.ops] == [1]
        assert replay.torn_tail

    def test_corrupted_payload_stops_replay(self, path):
        with WriteAheadLog(path) as wal:
            wal.append_put(1, "aaaa")
            wal.append_put(2, "bbbb")
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.seek(size - 2)  # inside the last frame's pickled value
            handle.write(b"\xff")
        replay = replay_wal(path)
        assert [op[1] for op in replay.ops] == [1]
        assert replay.torn_tail

    def test_reopen_truncates_torn_tail_then_appends(self, path):
        with WriteAheadLog(path) as wal:
            wal.append_put(1, "a")
        with open(path, "ab") as handle:
            handle.write(b"torn-frame-fragment")
        wal = WriteAheadLog(path)
        assert wal.recovered_records == 1
        assert wal.recovered_torn_tail
        wal.append_put(2, "b")
        wal.close()
        replay = replay_wal(path)
        assert [op[1] for op in replay.ops] == [1, 2]
        assert not replay.torn_tail

    def test_short_read_during_replay_is_torn_tail(self, path):
        with WriteAheadLog(path) as wal:
            for k in range(5):
                wal.append_put(k, f"v{k}")
        env = FaultyEnv(seed=3, short_read_at=4)
        replay = replay_wal(path, opener=env.open)
        assert replay.records < 5
        assert replay.torn_tail
        # A plain reader still sees everything: the file itself is intact.
        assert replay_wal(path).records == 5


class TestPoliciesAndLifecycle:
    def test_always_fsyncs_every_append(self, path):
        with WriteAheadLog(path, fsync_policy=FSYNC_ALWAYS) as wal:
            wal.append_put(1, "a")
            wal.append_put(2, "b")
            assert wal.syncs == 2

    def test_batch_fsyncs_only_on_sync(self, path):
        with WriteAheadLog(path, fsync_policy=FSYNC_BATCH) as wal:
            wal.append_put(1, "a")
            wal.append_put(2, "b")
            assert wal.syncs == 0
            wal.sync()
            assert wal.syncs == 1
        assert replay_wal(path).records == 2

    def test_never_still_replayable_after_close(self, path):
        with WriteAheadLog(path, fsync_policy=FSYNC_NEVER) as wal:
            wal.append_put(1, "a")
            assert wal.syncs == 0
        assert replay_wal(path).records == 1

    def test_unknown_policy_rejected(self, path):
        with pytest.raises(WALError):
            WriteAheadLog(path, fsync_policy="yolo")

    def test_closed_log_rejects_appends(self, path):
        wal = WriteAheadLog(path)
        wal.close()
        with pytest.raises(WALError):
            wal.append_put(1, "a")
        with pytest.raises(WALError):
            wal.sync()
        with pytest.raises(WALError):
            wal.reset()

    def test_reset_truncates(self, path):
        wal = WriteAheadLog(path)
        wal.append_put(1, "a")
        assert wal.tail_bytes() > 0
        wal.reset()
        assert wal.tail_bytes() == 0
        assert wal.resets == 1
        wal.append_put(2, "b")
        wal.close()
        assert [op[1] for op in replay_wal(path).ops] == [2]

    def test_snapshot_counters(self, path):
        wal = WriteAheadLog(path)
        wal.append_put(1, "a")
        wal.append_delete(1)
        snap = wal.snapshot()
        assert snap["records"] == 2.0
        assert snap["bytes"] > 0
        assert snap["syncs"] == 2.0
        wal.close()

    def test_concurrent_appends_all_survive(self, path):
        wal = WriteAheadLog(path, fsync_policy=FSYNC_BATCH)

        def work(tid):
            for i in range(200):
                wal.append_put(tid * 1000 + i, tid)

        threads = [threading.Thread(target=work, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wal.sync()
        wal.close()
        replay = replay_wal(path)
        assert replay.records == 800
        assert not replay.torn_tail
        assert {op[1] for op in replay.ops} == {
            t * 1000 + i for t in range(4) for i in range(200)
        }
